//! Design-level (multi-net) optimization: several nets on one die, one
//! shared variation model, and the **joint** timing yield — where the
//! independence approximation breaks and the correlation-aware model
//! shines.
//!
//! Run with: `cargo run --release --example multi_net`

use varbuf::core::design::Design;
use varbuf::prelude::*;
use varbuf::rctree::geom::BoundingBox;

fn main() -> Result<(), InsertionError> {
    // Six nets of mixed size sharing a die.
    let trees: Vec<RoutingTree> = (0..6)
        .map(|i| {
            generate_benchmark(&BenchmarkSpec::random(
                &format!("net{i}"),
                40 + 30 * i,
                500 + i as u64,
            ))
            .subdivided(500.0)
        })
        .collect();
    let die = trees
        .iter()
        .map(RoutingTree::bounding_box)
        .reduce(|a, b| BoundingBox {
            min: Point::new(a.min.x.min(b.min.x), a.min.y.min(b.min.y)),
            max: Point::new(a.max.x.max(b.max.x), a.max.y.max(b.max.y)),
        })
        .expect("non-empty");
    let model = ProcessModel::paper_defaults(die, SpatialKind::Heterogeneous);

    let design = Design::optimize(
        &trees,
        &model,
        VariationMode::WithinDie,
        &Options::default(),
    )?;
    println!(
        "{:<8} {:>9} {:>12} {:>8}",
        "net", "buffers", "mean RAT", "σ"
    );
    for net in design.nets() {
        println!(
            "{:<8} {:>9} {:>12.1} {:>8.2}",
            net.name,
            net.result.buffer_count(),
            net.silicon_rat.mean(),
            net.silicon_rat.std_dev()
        );
    }

    // Joint yield versus the independence product at increasing margins.
    println!(
        "\n{:>8} {:>14} {:>12} {:>10}",
        "margin", "independent", "joint (MC)", "ratio"
    );
    for margin in [0.5, 1.0, 1.645, 2.0] {
        let targets = design.targets_at_margin(margin);
        let indep = design.independent_yield(&targets);
        let joint = design.joint_yield(&targets, 50_000, 11);
        println!(
            "{:>7.2}σ {:>13.1}% {:>11.1}% {:>10.3}",
            margin,
            100.0 * indep,
            100.0 * joint,
            joint / indep
        );
    }
    println!("\nshared inter-die/spatial variation makes nets fail *together*:");
    println!("the joint yield beats the independence product at every margin.");
    Ok(())
}
