//! Yield analysis deep-dive on one benchmark: analytic canonical-form
//! prediction versus Monte Carlo ground truth (the Figure 6 experiment),
//! plus the NOM-vs-WID yield gap.
//!
//! Run with: `cargo run --release --example yield_analysis`

use varbuf::prelude::*;
use varbuf::stats::mc::sample_moments;
use varbuf::stats::Histogram;

fn main() -> Result<(), InsertionError> {
    let tree = generate_benchmark(&BenchmarkSpec::named("r1").expect("known benchmark"));
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
    let options = Options::default();

    println!(
        "optimizing `{}` ({} sinks)…",
        tree.name(),
        tree.sink_count()
    );
    let wid = optimize_statistical(&tree, &model, VariationMode::WithinDie, &options)?;
    let nom = optimize_nominal(&tree, &model, &options)?;

    let silicon = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);

    // Analytic prediction.
    let analysis = silicon.analyze(&wid.assignment);
    println!(
        "model:        RAT ~ N({:.1}, {:.2}²) ps  → 95%-yield RAT {:.1}",
        analysis.rat.mean(),
        analysis.rat.std_dev(),
        analysis.rat_at_95_yield
    );

    // Monte Carlo ground truth.
    let samples = silicon.monte_carlo(&wid.assignment, 5_000, 7);
    let (mc_mean, mc_var) = sample_moments(&samples);
    println!(
        "monte carlo:  RAT ~ ({:.1}, {:.2}²) ps over {} samples",
        mc_mean,
        mc_var.sqrt(),
        samples.len()
    );

    // ASCII PDF overlay, Figure 6 style.
    let hist = Histogram::from_samples(&samples, 31);
    let peak = analysis
        .rat
        .std_dev()
        .recip()
        .max(hist.densities().iter().copied().fold(0.0, f64::max));
    println!("\n      RAT (ps)   MC density | model density");
    for (x, d) in hist.density_points() {
        let model_d = varbuf::stats::norm_pdf((x - analysis.rat.mean()) / analysis.rat.std_dev())
            / analysis.rat.std_dev();
        let bar = |v: f64| "#".repeat(((v / peak) * 40.0).round() as usize);
        println!("{x:>12.1}  {:<40} | {:<40}", bar(d), bar(model_d));
    }

    // The yield gap (Tables 3-4 in one line).
    let target = analysis.rat.mean() - 0.10 * analysis.rat.mean().abs();
    let nom_yield = silicon.analyze(&nom.assignment).yield_at(target);
    let wid_yield = analysis.yield_at(target);
    println!(
        "\nyield at a 10%-relaxed target: NOM {:.1}%  vs  WID {:.1}%",
        100.0 * nom_yield,
        100.0 * wid_yield
    );

    // Corner analysis vs statistics: the all-worst corner is far more
    // pessimistic than the statistical 5th percentile.
    println!(
        "corners: fast {:.1} / typical {:.1} / slow {:.1}  (stat 95%-yield {:.1})",
        silicon.corner(&wid.assignment, -3.0),
        silicon.corner(&wid.assignment, 0.0),
        silicon.corner(&wid.assignment, 3.0),
        analysis.rat_at_95_yield
    );

    // Statistical criticality: which sinks actually set the RAT?
    let report = varbuf::core::criticality::sink_criticalities(
        &tree,
        &model,
        VariationMode::WithinDie,
        &wid.assignment,
    );
    println!(
        "\ncriticality: {} of {} sinks cover 95% of the probability mass; top 5:",
        report.sinks_covering(0.95),
        report.sinks.len()
    );
    for (id, slack, c) in report.sinks.iter().take(5) {
        println!(
            "  {id}: P(critical) = {:>5.1}%, slack {:.1} ± {:.2} ps",
            100.0 * c,
            slack.mean(),
            slack.std_dev()
        );
    }
    Ok(())
}
