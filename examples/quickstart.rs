//! Quickstart: insert buffers into a small net three ways (NOM / D2D /
//! WID) and compare what each design achieves on variable silicon.
//!
//! Run with: `cargo run --release --example quickstart`

use varbuf::prelude::*;

fn main() -> Result<(), InsertionError> {
    // 1. A synthetic 64-sink net (same generator as the paper's suite).
    let tree = generate_benchmark(&BenchmarkSpec::random("quickstart", 64, 42));
    println!(
        "net `{}`: {} sinks, {} legal buffer positions, {:.1} mm of wire",
        tree.name(),
        tree.sink_count(),
        tree.candidate_count(),
        tree.total_wire_length() / 1000.0
    );

    // 2. The process model: 5%/5%/5% budgets, heterogeneous spatial ramp.
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
    let options = Options::default();

    // 3. Optimize with each algorithm.
    let [nom, d2d, wid] = optimize_all_modes(&tree, &model, &options)?;

    // 4. Score every design under the FULL within-die variation — the
    //    silicon does not care what the optimizer believed.
    let silicon = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
    println!(
        "\n{:<6} {:>9} {:>12} {:>12} {:>8}",
        "algo", "buffers", "mean RAT", "95%-yld RAT", "σ"
    );
    for r in [&nom, &d2d, &wid] {
        let a = silicon.analyze(&r.assignment);
        println!(
            "{:<6} {:>9} {:>12.1} {:>12.1} {:>8.2}",
            r.mode.label(),
            r.buffer_count(),
            a.rat.mean(),
            a.rat_at_95_yield,
            a.rat.std_dev()
        );
    }

    // 5. Timing yield at a common target: the WID design's mean RAT,
    //    degraded by 10% (the paper's Table 3 setup).
    let wid_mean = silicon.analyze(&wid.assignment).rat.mean();
    let target = wid_mean - 0.10 * wid_mean.abs();
    println!("\ntiming yield at target RAT {target:.1} ps:");
    for r in [&nom, &d2d, &wid] {
        let y = silicon.analyze(&r.assignment).yield_at(target);
        println!("  {:<4} {:>6.1}%", r.mode.label(), 100.0 * y);
    }
    Ok(())
}
