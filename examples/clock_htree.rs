//! Capacity demonstration: variation-aware buffer insertion on a large
//! H-tree clock network — the paper's footnote-4 experiment ("the largest
//! benchmark we have tested in house is an eight-level H-tree clock
//! network with more than 64,000 sinks").
//!
//! Run with: `cargo run --release --example clock_htree -- [levels]`
//! (levels defaults to 12 → 4096 sinks; pass 16 for the full 65 536).

use std::time::Instant;
use varbuf::prelude::*;

fn main() -> Result<(), InsertionError> {
    let levels: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);

    let spec = HTreeSpec::with_levels(levels);
    let tree = generate_htree(&spec);
    println!(
        "H-tree with {} binary levels: {} sinks, {} candidate positions",
        levels,
        tree.sink_count(),
        tree.candidate_count()
    );

    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
    let start = Instant::now();
    let wid = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())?;
    let elapsed = start.elapsed();

    println!(
        "WID insertion done in {:.2}s: {} buffers, root RAT {:.1} ± {:.2} ps",
        elapsed.as_secs_f64(),
        wid.buffer_count(),
        wid.root_rat.mean(),
        wid.root_rat.std_dev()
    );
    println!(
        "peak candidate-list size: {} solutions (linear pruning keeps this flat)",
        wid.stats.max_solutions_per_node
    );

    // Clock-skew view: with a symmetric H-tree, every source-to-sink path
    // is identical, so the RAT is set by the common path — report the
    // per-level structure instead.
    println!(
        "total wire: {:.1} mm across {} nodes",
        tree.total_wire_length() / 1000.0,
        tree.len()
    );
    Ok(())
}
