//! Pruning-rule ablation: run the same benchmark under the 2P, 1P and 4P
//! rules and compare runtime, surviving-solution counts, and result
//! quality — a miniature of the paper's Table 2 story.
//!
//! Run with: `cargo run --release --example pruning_ablation -- [sinks]`

use std::time::Duration;
use varbuf::core::dp::{optimize_with_rule, DpOptions};
use varbuf::prelude::*;

fn main() {
    let sinks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);

    let tree = generate_benchmark(&BenchmarkSpec::random("ablation", sinks, 3));
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
    let opts = DpOptions {
        // Modest caps so the 4P blow-up fails fast instead of hanging.
        max_solutions_per_node: 50_000,
        time_limit: Duration::from_secs(60),
        ..DpOptions::default()
    };

    println!(
        "{} sinks, {} candidates — WID variation\n",
        tree.sink_count(),
        tree.candidate_count()
    );
    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>14}",
        "rule", "time", "mean RAT", "buffers", "peak solutions"
    );

    let rules: Vec<(&str, Box<dyn PruningRule>)> = vec![
        ("2P", Box::new(TwoParam::default())),
        ("1P", Box::new(OneParam::default())),
        ("4P", Box::new(FourParam::default())),
    ];
    for (name, rule) in rules {
        match optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            rule.as_ref(),
            &opts,
        ) {
            Ok(r) => println!(
                "{:<6} {:>9.2}s {:>12.1} {:>10} {:>14}",
                name,
                r.stats.runtime.as_secs_f64(),
                r.root_rat.mean(),
                r.assignment.len(),
                r.stats.max_solutions_per_node
            ),
            Err(e) => println!("{name:<6} FAILED: {e}"),
        }
    }
}
