//! Simultaneous buffer insertion and wire sizing: how much does a wire
//! width library buy on a long, wire-dominated net, and what does the
//! width map look like along the critical path?
//!
//! Run with: `cargo run --release --example wire_sizing`

use varbuf::prelude::*;

fn main() -> Result<(), InsertionError> {
    // A sparse long-wire net: 48 sinks spread over a full-size die.
    let mut spec = BenchmarkSpec::random("sizing-demo", 48, 23);
    spec.die_um = 25_000.0;
    let tree = generate_benchmark(&spec).subdivided(500.0);
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
    println!(
        "{} sinks, {} candidates, {:.0} mm of wire",
        tree.sink_count(),
        tree.candidate_count(),
        tree.total_wire_length() / 1000.0
    );

    let options = Options::default();
    let plain = optimize_statistical(&tree, &model, VariationMode::WithinDie, &options)?;

    let sizing = WireSizing::default_three();
    let sized = optimize_with_sizing(
        &tree,
        &model,
        VariationMode::WithinDie,
        &options.rule,
        &sizing,
        &options.dp,
    )?;

    let y = |rat: &CanonicalForm| rat.percentile(0.05);
    println!(
        "buffers only : {:>4} buffers, 95%-yield RAT {:.1} ps",
        plain.assignment.len(),
        y(&plain.root_rat)
    );
    let widened = sized.wire_widths.iter().filter(|&&(_, wi)| wi != 0).count();
    println!(
        "with sizing  : {:>4} buffers, 95%-yield RAT {:.1} ps ({} of {} edges widened)",
        sized.assignment.len(),
        y(&sized.root_rat),
        widened,
        sized.wire_widths.len()
    );
    println!(
        "gain         : {:+.2}%",
        100.0 * (y(&sized.root_rat) - y(&plain.root_rat)) / y(&plain.root_rat).abs()
    );

    // Width histogram.
    let mut counts = vec![0usize; sizing.widths().len()];
    for &(_, wi) in &sized.wire_widths {
        counts[wi as usize] += 1;
    }
    println!("\nwidth usage:");
    for (w, c) in sizing.widths().iter().zip(&counts) {
        println!("  {w:>3}x : {c:>5} edges");
    }
    Ok(())
}
