//! `varbuf` — command-line front end for the library.
//!
//! ```text
//! varbuf gen r1 -o r1.tree                    # write a named benchmark
//! varbuf gen random:500:7 --subdivide 250 -o n.tree
//! varbuf info n.tree                          # structural summary
//! varbuf opt n.tree --mode wid --spatial hetero --mc 2000
//! varbuf skew n.tree                          # clock-skew analysis
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use varbuf::prelude::*;
use varbuf::rctree::io::{read_tree, write_tree};
use varbuf::stats::mc::sample_moments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("opt") => cmd_opt(&args[1..]),
        Some("skew") => cmd_skew(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try `varbuf help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "varbuf — variation-aware buffer insertion

usage:
  varbuf gen <spec> [--subdivide UM] [-o FILE]
      spec: a named benchmark (p1 p2 r1..r5), `htree:LEVELS`,
            or `random:SINKS:SEED`
  varbuf info FILE
  varbuf opt FILE [--mode nom|d2d|wid] [--spatial homog|hetero]
                  [--p THRESH] [--sizing] [--mc SAMPLES]
  varbuf skew FILE [--spatial homog|hetero]"
    );
}

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn build_tree(spec: &str, subdivide: Option<f64>) -> Result<RoutingTree, String> {
    let tree = if let Some(rest) = spec.strip_prefix("htree:") {
        let levels: u32 = rest.parse().map_err(|_| "bad htree levels".to_owned())?;
        generate_htree(&HTreeSpec::with_levels(levels))
    } else if let Some(rest) = spec.strip_prefix("random:") {
        let mut parts = rest.split(':');
        let sinks: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("random spec needs SINKS")?;
        let seed: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
        generate_benchmark(&BenchmarkSpec::random("random", sinks, seed))
    } else {
        let bench = BenchmarkSpec::named(spec)
            .ok_or_else(|| format!("unknown benchmark `{spec}`"))?;
        generate_benchmark(&bench)
    };
    Ok(match subdivide {
        Some(um) => tree.subdivided(um),
        None => tree,
    })
}

fn load_tree(path: &str) -> Result<RoutingTree, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_tree(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn spatial_kind(args: &[String]) -> SpatialKind {
    match flag_value(args, "--spatial") {
        Some("homog") => SpatialKind::Homogeneous,
        _ => SpatialKind::Heterogeneous,
    }
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("gen needs a spec")?;
    let subdivide = flag_value(args, "--subdivide").and_then(|v| v.parse().ok());
    let tree = build_tree(spec, subdivide)?;
    match flag_value(args, "-o") {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            write_tree(&tree, BufWriter::new(file)).map_err(|e| e.to_string())?;
            println!(
                "wrote {path}: {} sinks, {} candidates",
                tree.sink_count(),
                tree.candidate_count()
            );
        }
        None => {
            write_tree(&tree, std::io::stdout().lock()).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("info needs a FILE")?;
    let tree = load_tree(path)?;
    tree.validate().map_err(|e| e.to_string())?;
    let bb = tree.bounding_box();
    println!("name:        {}", tree.name());
    println!("nodes:       {}", tree.len());
    println!("sinks:       {}", tree.sink_count());
    println!("candidates:  {}", tree.candidate_count());
    println!("wire length: {:.1} mm", tree.total_wire_length() / 1000.0);
    println!(
        "die:         {:.2} x {:.2} mm",
        bb.width() / 1000.0,
        bb.height() / 1000.0
    );
    Ok(())
}

fn cmd_opt(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("opt needs a FILE")?;
    let tree = load_tree(path)?;
    let model = ProcessModel::paper_defaults(tree.bounding_box(), spatial_kind(args));
    let mode = match flag_value(args, "--mode") {
        Some("nom") => VariationMode::Nominal,
        Some("d2d") => VariationMode::DieToDie,
        _ => VariationMode::WithinDie,
    };
    let mut options = Options::default();
    if let Some(p) = flag_value(args, "--p").and_then(|v| v.parse::<f64>().ok()) {
        options.rule = TwoParam::new(p, p);
    }

    let (assignment, widths, rat_desc) = if has_flag(args, "--sizing") {
        let sizing = WireSizing::default_three();
        let r = optimize_with_sizing(
            &tree,
            &model,
            mode,
            &options.rule,
            &sizing,
            &options.dp,
        )
        .map_err(|e| e.to_string())?;
        let desc = format!(
            "RAT {:.1} ± {:.2} ps ({} widened edges)",
            r.root_rat.mean(),
            r.root_rat.std_dev(),
            r.wire_widths.iter().filter(|&&(_, w)| w != 0).count()
        );
        (r.assignment, Some(sizing.edge_widths(&r.wire_widths)), desc)
    } else {
        let r = optimize_statistical(&tree, &model, mode, &options).map_err(|e| e.to_string())?;
        let desc = format!("RAT {:.1} ± {:.2} ps", r.root_rat.mean(), r.root_rat.std_dev());
        (r.assignment, None, desc)
    };

    println!("mode {}: {} buffers, {rat_desc}", mode.label(), assignment.len());

    // Always score under the full silicon model.
    let silicon = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
    let analysis = match &widths {
        Some(w) => {
            let rat = silicon.rat_form_sized(&assignment, w);
            let y95 = rat.percentile(0.05);
            println!("silicon (WID): mean {:.1}, sigma {:.2}, 95%-yield RAT {:.1}", rat.mean(), rat.std_dev(), y95);
            None
        }
        None => {
            let a = silicon.analyze(&assignment);
            println!(
                "silicon (WID): mean {:.1}, sigma {:.2}, 95%-yield RAT {:.1}",
                a.rat.mean(),
                a.rat.std_dev(),
                a.rat_at_95_yield
            );
            Some(a)
        }
    };

    if let Some(samples) = flag_value(args, "--mc").and_then(|v| v.parse::<usize>().ok()) {
        if widths.is_some() {
            return Err("--mc is not supported together with --sizing".to_owned());
        }
        let mc = silicon.monte_carlo(&assignment, samples, 42);
        let (mean, var) = sample_moments(&mc);
        println!("monte carlo ({samples} samples): mean {:.1}, sigma {:.2}", mean, var.sqrt());
        if let Some(a) = analysis {
            println!(
                "model-vs-MC mean error: {:.3}%",
                100.0 * (a.rat.mean() - mean).abs() / mean.abs()
            );
        }
    }
    Ok(())
}

fn cmd_skew(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("skew needs a FILE")?;
    let tree = load_tree(path)?;
    let model = ProcessModel::paper_defaults(tree.bounding_box(), spatial_kind(args));
    let wid = optimize_statistical(
        &tree,
        &model,
        VariationMode::WithinDie,
        &Options::default(),
    )
    .map_err(|e| e.to_string())?;
    let analysis =
        SkewAnalyzer::new(&tree, &model, VariationMode::WithinDie).analyze(&wid.assignment);
    let skew = analysis.global_skew();
    println!(
        "{} sinks, {} buffers: global skew {:.2} ± {:.2} ps",
        analysis.arrivals.len(),
        wid.assignment.len(),
        skew.mean(),
        skew.std_dev()
    );
    for target_mult in [1.0, 1.5, 2.0] {
        let target = skew.mean() * target_mult + 1e-9;
        println!(
            "  P(skew <= {:.2} ps) = {:.1}%",
            target,
            100.0 * analysis.skew_yield(target)
        );
    }
    Ok(())
}
