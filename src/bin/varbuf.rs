//! `varbuf` — command-line front end for the library.
//!
//! ```text
//! varbuf gen r1 -o r1.tree                    # write a named benchmark
//! varbuf gen random:500:7 --subdivide 250 -o n.tree
//! varbuf info n.tree                          # structural summary
//! varbuf opt n.tree --mode wid --spatial hetero --mc 2000
//! varbuf skew n.tree                          # clock-skew analysis
//! varbuf serve --watchdog 5 --faults          # resident line-protocol service
//! ```

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use varbuf::prelude::*;
use varbuf::rctree::io::{read_tree, write_tree};
use varbuf::stats::mc::sample_moments;

/// How a subcommand finished: exit code 0 for a clean run, 2 when the
/// run succeeded but the governor had to degrade it (errors exit 1).
enum Outcome {
    Clean,
    Degraded,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `println!` panics when stdout closes early (`varbuf info | head`);
    // treat that as a normal end-of-output, not a crash with a backtrace.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|m| m.contains("Broken pipe"));
        if !broken_pipe {
            default_hook(info);
        }
    }));
    let run = std::panic::catch_unwind(|| match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("opt") => cmd_opt(&args[1..]),
        Some("cts") => cmd_cts(&args[1..]),
        Some("skew") => cmd_skew(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(Outcome::Clean)
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try `varbuf help`)")),
    });
    match run {
        Ok(Ok(Outcome::Clean)) => ExitCode::SUCCESS,
        Ok(Ok(Outcome::Degraded)) => ExitCode::from(2),
        Ok(Err(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if message.contains("Broken pipe") {
                ExitCode::SUCCESS
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

fn print_usage() {
    println!(
        "varbuf — variation-aware buffer insertion

usage:
  varbuf gen <spec> [--subdivide UM] [-o FILE]
      spec: a named benchmark (p1 p2 r1..r5), `htree:LEVELS`,
            or `random:SINKS:SEED`
  varbuf info FILE
  varbuf opt FILE [--mode nom|d2d|wid] [--spatial homog|hetero]
                  [--rule 2p|4p|1p] [--p THRESH] [--sizing] [--mc SAMPLES]
                  [--degrade] [--budget-solutions N] [--budget-time SECS]
                  [--budget-mem MB] [--jobs N] [--jobs-force]
                  [--no-bounds] [--no-lishi] [--no-lazy-wire]
      --jobs N: worker threads for the DP (0 = all cores); results are
                bit-identical to --jobs 1. Requests beyond the host's
                available parallelism are clamped unless --jobs-force.
      --no-bounds: disable bound-guided predictive pruning (the
                deterministic preorder bounds that retire hopeless
                candidates early); results are bit-identical either way
      --no-lishi: disable the Li–Shi generation skip (predicted-key
                predecessor dominance that avoids building candidates
                the next sweep would discard); results are bit-identical
                either way
      --no-lazy-wire: disable lazy wire propagation (deferred affine
                wire transforms materialized at merges, buffers and the
                winner); solution counts and decisions are identical,
                the objective agrees to ~1e-9 relative
  varbuf skew FILE [--spatial homog|hetero]
  varbuf cts [--levels N] [--spatial homog|hetero] [--rule 2p|4p|1p]
             [--skew-target PS] [--flat] [--cut-nodes N] [--fanout-cut N]
             [--budget-solutions N] [--budget-time SECS] [--budget-mem MB]
      clock-tree pipeline: generate an H-tree with 2^N sinks
      (default N=10), buffer it variation-aware (WID) through the
      hierarchical engine, and score the result against skew targets.
      --flat disables decomposition (byte-identical to the flat
      engine); --cut-nodes / --fanout-cut tune where the tree is cut.
      With a --budget-* flag the run is governed and exits 2 on
      degradation, like `opt --degrade`.
  varbuf serve [--jobs N] [--watchdog SECS] [--max-sessions N]
               [--queue-soft COST] [--queue-hard COST] [--faults]
               [--no-cache] [--budget-solutions N] [--budget-time SECS]
               [--budget-mem MB]
      resident service on stdin/stdout (one command per line; `help`
      inside the session prints the protocol). --faults enables the
      `inject` fault-testing commands; --watchdog cancels any request
      past the deadline and returns its best-so-far design; requests
      queued past --queue-hard cost units are shed with a typed
      `err overloaded` response; --no-cache disables the per-session
      solution cache, so every opt after an `edit` runs cold (results
      are byte-identical either way).

exit codes:
  0  success
  1  error (bad input, or a budget breach without --degrade)
  2  success with degradation: a --degrade run stayed within budget by
     falling back to a cheaper pruning rule, tightening pruning, or
     finishing best-so-far; the design printed is valid but suboptimal"
    );
}

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn build_tree(spec: &str, subdivide: Option<f64>) -> Result<RoutingTree, String> {
    // Range checks mirror the generators' asserts so a bad spec is a
    // clean exit-1 error instead of a panic.
    let tree = if let Some(rest) = spec.strip_prefix("htree:") {
        let levels: u32 = rest.parse().map_err(|_| "bad htree levels".to_owned())?;
        if !(1..=24).contains(&levels) {
            return Err(format!("htree levels must be in 1..=24, got {levels}"));
        }
        generate_htree(&HTreeSpec::with_levels(levels))
    } else if let Some(rest) = spec.strip_prefix("random:") {
        let mut parts = rest.split(':');
        let sinks: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("random spec needs SINKS")?;
        if sinks == 0 {
            return Err("random spec needs at least one sink".to_owned());
        }
        let seed: u64 = match parts.next() {
            Some(s) => s.parse().map_err(|_| format!("bad seed in `{spec}`"))?,
            None => 1,
        };
        generate_benchmark(&BenchmarkSpec::random("random", sinks, seed))
    } else {
        let bench =
            BenchmarkSpec::named(spec).ok_or_else(|| format!("unknown benchmark `{spec}`"))?;
        generate_benchmark(&bench)
    };
    Ok(match subdivide {
        Some(um) => tree.subdivided(um),
        None => tree,
    })
}

fn load_tree(path: &str) -> Result<RoutingTree, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_tree(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn spatial_kind(args: &[String]) -> Result<SpatialKind, String> {
    match flag_value(args, "--spatial") {
        Some("homog") => Ok(SpatialKind::Homogeneous),
        None | Some("hetero") => Ok(SpatialKind::Heterogeneous),
        Some(other) => Err(format!(
            "unknown --spatial `{other}` (expected homog or hetero)"
        )),
    }
}

/// The `--p` percentile pair for the 2P rule, if given (a bad value is
/// an error, not a silent fall-through to the default).
fn parse_p(args: &[String]) -> Result<Option<f64>, String> {
    match flag_value(args, "--p") {
        None => Ok(None),
        Some(v) => v
            .parse::<f64>()
            .map(Some)
            .map_err(|_| format!("bad --p value `{v}`")),
    }
}

/// The primary pruning rule from `--rule` (with `--p` honored for 2P).
fn parse_rule(args: &[String]) -> Result<Arc<dyn PruningRule>, String> {
    let p = parse_p(args)?;
    match flag_value(args, "--rule") {
        None | Some("2p") => Ok(match p {
            Some(p) => Arc::new(TwoParam::try_new(p, p).map_err(|e| e.to_string())?),
            None => Arc::new(TwoParam::default()),
        }),
        Some("4p") => Ok(Arc::new(FourParam::default())),
        Some("1p") => Ok(Arc::new(OneParam::default())),
        Some(other) => Err(format!("unknown rule `{other}` (expected 2p, 4p, or 1p)")),
    }
}

/// Soft budgets from the `--budget-*` flags; hard limits sit a fixed
/// factor above each soft limit (4x solutions/memory, 2x time).
fn parse_budget(args: &[String]) -> Result<Budget, String> {
    // A budget flag with no value is a typo, not a request for the
    // default — reject it rather than silently running ungoverned.
    for key in ["--budget-solutions", "--budget-time", "--budget-mem"] {
        if has_flag(args, key) && flag_value(args, key).is_none() {
            return Err(format!("{key} needs a value"));
        }
    }
    let mut budget = Budget::unlimited();
    if let Some(v) = flag_value(args, "--budget-solutions") {
        let n: usize = v
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--budget-solutions needs a positive integer")?;
        budget.soft_solutions = n;
        budget.hard_solutions = n.saturating_mul(4);
    }
    if let Some(v) = flag_value(args, "--budget-time") {
        let secs: f64 = v
            .parse()
            .ok()
            .filter(|&s| s > 0.0 && f64::is_finite(s))
            .ok_or("--budget-time needs a positive number of seconds")?;
        budget.soft_time = Duration::from_secs_f64(secs);
        budget.hard_time = Duration::from_secs_f64(secs * 2.0);
    }
    if let Some(v) = flag_value(args, "--budget-mem") {
        let mb: usize = v
            .parse()
            .ok()
            .filter(|&m| m > 0)
            .ok_or("--budget-mem needs a positive number of MiB")?;
        budget.soft_mem_bytes = mb.saturating_mul(1 << 20);
        budget.hard_mem_bytes = budget.soft_mem_bytes.saturating_mul(4);
    }
    Ok(budget)
}

fn cmd_gen(args: &[String]) -> Result<Outcome, String> {
    let spec = args.first().ok_or("gen needs a spec")?;
    let subdivide = match flag_value(args, "--subdivide") {
        None => None,
        Some(v) => {
            let um: f64 = v
                .parse()
                .ok()
                .filter(|&um| um > 0.0 && f64::is_finite(um))
                .ok_or_else(|| format!("--subdivide needs a positive length in um, got `{v}`"))?;
            Some(um)
        }
    };
    let tree = build_tree(spec, subdivide)?;
    match flag_value(args, "-o") {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            write_tree(&tree, BufWriter::new(file)).map_err(|e| e.to_string())?;
            println!(
                "wrote {path}: {} sinks, {} candidates",
                tree.sink_count(),
                tree.candidate_count()
            );
        }
        None => {
            write_tree(&tree, std::io::stdout().lock()).map_err(|e| e.to_string())?;
        }
    }
    Ok(Outcome::Clean)
}

fn cmd_info(args: &[String]) -> Result<Outcome, String> {
    let path = args.first().ok_or("info needs a FILE")?;
    let tree = load_tree(path)?;
    tree.validate().map_err(|e| e.to_string())?;
    let bb = tree.bounding_box();
    println!("name:        {}", tree.name());
    println!("nodes:       {}", tree.len());
    println!("sinks:       {}", tree.sink_count());
    println!("candidates:  {}", tree.candidate_count());
    println!("wire length: {:.1} mm", tree.total_wire_length() / 1000.0);
    println!(
        "die:         {:.2} x {:.2} mm",
        bb.width() / 1000.0,
        bb.height() / 1000.0
    );
    Ok(Outcome::Clean)
}

fn cmd_opt(args: &[String]) -> Result<Outcome, String> {
    let path = args.first().ok_or("opt needs a FILE")?;
    let tree = load_tree(path)?;
    let model = ProcessModel::paper_defaults(tree.bounding_box(), spatial_kind(args)?);
    let mode = match flag_value(args, "--mode") {
        Some("nom") => VariationMode::Nominal,
        Some("d2d") => VariationMode::DieToDie,
        None | Some("wid") => VariationMode::WithinDie,
        Some(other) => {
            return Err(format!(
                "unknown --mode `{other}` (expected nom, d2d, or wid)"
            ))
        }
    };
    let rule = parse_rule(args)?;
    let mut options = Options::default();
    if let Some(p) = parse_p(args)? {
        options.rule = TwoParam::try_new(p, p).map_err(|e| e.to_string())?;
    }
    if let Some(v) = flag_value(args, "--jobs") {
        let n: usize = v
            .parse()
            .map_err(|_| "--jobs needs an integer".to_owned())?;
        options.dp.jobs = if n == 0 { default_jobs() } else { n };
    }
    if has_flag(args, "--no-bounds") {
        options.dp.use_bounds = false;
    }
    if has_flag(args, "--no-lishi") {
        options.dp.use_lishi = false;
    }
    if has_flag(args, "--no-lazy-wire") {
        options.dp.use_lazy_wire = false;
    }
    if has_flag(args, "--jobs-force") {
        options.dp.jobs_force = true;
    }
    let degrade = has_flag(args, "--degrade")
        || has_flag(args, "--budget-solutions")
        || has_flag(args, "--budget-time")
        || has_flag(args, "--budget-mem");

    let mut outcome = Outcome::Clean;
    let (assignment, widths, rat_desc) = if degrade {
        if matches!(mode, VariationMode::Nominal) {
            return Err("--degrade / --budget-* need a statistical mode (d2d or wid)".to_owned());
        }
        let budget = parse_budget(args)?;
        let sizing = if has_flag(args, "--sizing") {
            WireSizing::default_three()
        } else {
            WireSizing::single()
        };
        let record_widths = sizing.widths().len() > 1;
        let g = optimize_governed_detailed(
            &tree,
            &model,
            mode,
            fallback_cascade(rule),
            &sizing,
            &options.dp,
            &budget,
            RunControls::default(),
        )
        .map_err(|e| e.to_string())?;
        if g.degradation.degraded() {
            outcome = Outcome::Degraded;
            print!("{}", g.degradation.summary());
        }
        let r = g.result;
        println!("phases: {}", r.stats.phase_summary());
        let desc = format!(
            "RAT {:.1} ± {:.2} ps",
            r.root_rat.mean(),
            r.root_rat.std_dev()
        );
        let widths = record_widths.then(|| sizing.edge_widths(&r.wire_widths));
        (r.assignment, widths, desc)
    } else if has_flag(args, "--sizing") {
        let sizing = WireSizing::default_three();
        let r = optimize_with_sizing(&tree, &model, mode, rule.as_ref(), &sizing, &options.dp)
            .map_err(|e| e.to_string())?;
        let desc = format!(
            "RAT {:.1} ± {:.2} ps ({} widened edges)",
            r.root_rat.mean(),
            r.root_rat.std_dev(),
            r.wire_widths.iter().filter(|&&(_, w)| w != 0).count()
        );
        (r.assignment, Some(sizing.edge_widths(&r.wire_widths)), desc)
    } else if flag_value(args, "--rule").is_some_and(|r| r != "2p") {
        if matches!(mode, VariationMode::Nominal) {
            return Err("--rule applies to statistical modes (d2d or wid)".to_owned());
        }
        let r = optimize_with_rule(&tree, &model, mode, rule.as_ref(), &options.dp)
            .map_err(|e| e.to_string())?;
        let desc = format!(
            "RAT {:.1} ± {:.2} ps",
            r.root_rat.mean(),
            r.root_rat.std_dev()
        );
        (r.assignment, None, desc)
    } else {
        let r = optimize_statistical(&tree, &model, mode, &options).map_err(|e| e.to_string())?;
        let desc = format!(
            "RAT {:.1} ± {:.2} ps",
            r.root_rat.mean(),
            r.root_rat.std_dev()
        );
        (r.assignment, None, desc)
    };

    println!(
        "mode {}: {} buffers, {rat_desc}",
        mode.label(),
        assignment.len()
    );

    // Always score under the full silicon model.
    let silicon = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
    let analysis = match &widths {
        Some(w) => {
            let rat = silicon.rat_form_sized(&assignment, w);
            let y95 = rat.percentile(0.05);
            println!(
                "silicon (WID): mean {:.1}, sigma {:.2}, 95%-yield RAT {:.1}",
                rat.mean(),
                rat.std_dev(),
                y95
            );
            None
        }
        None => {
            let a = silicon.analyze(&assignment);
            println!(
                "silicon (WID): mean {:.1}, sigma {:.2}, 95%-yield RAT {:.1}",
                a.rat.mean(),
                a.rat.std_dev(),
                a.rat_at_95_yield
            );
            Some(a)
        }
    };

    let mc_samples = match flag_value(args, "--mc") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("bad --mc sample count `{v}`"))?,
        ),
    };
    if let Some(samples) = mc_samples {
        if widths.is_some() {
            return Err("--mc is not supported together with --sizing".to_owned());
        }
        let mc = silicon.monte_carlo(&assignment, samples, 42);
        let (mean, var) = sample_moments(&mc);
        println!(
            "monte carlo ({samples} samples): mean {:.1}, sigma {:.2}",
            mean,
            var.sqrt()
        );
        if let Some(a) = analysis {
            println!(
                "model-vs-MC mean error: {:.3}%",
                100.0 * (a.rat.mean() - mean).abs() / mean.abs()
            );
        }
    }
    Ok(outcome)
}

/// Service policy from the `serve` flags.
fn parse_serve_config(args: &[String]) -> Result<(ServiceConfig, usize), String> {
    let mut config = ServiceConfig {
        budget: parse_budget(args)?,
        allow_faults: has_flag(args, "--faults"),
        use_cache: !has_flag(args, "--no-cache"),
        ..ServiceConfig::default()
    };
    if let Some(v) = flag_value(args, "--watchdog") {
        let secs: f64 = v
            .parse()
            .ok()
            .filter(|&s| s > 0.0 && f64::is_finite(s))
            .ok_or("--watchdog needs a positive number of seconds")?;
        config.watchdog = Some(Duration::from_secs_f64(secs));
    }
    if let Some(v) = flag_value(args, "--max-sessions") {
        config.max_sessions = v
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--max-sessions needs a positive integer")?;
    }
    if let Some(v) = flag_value(args, "--queue-soft") {
        config.queue_soft_cost = v
            .parse()
            .map_err(|_| "--queue-soft needs a cost in tree nodes".to_owned())?;
    }
    if let Some(v) = flag_value(args, "--queue-hard") {
        config.queue_hard_cost = v
            .parse()
            .map_err(|_| "--queue-hard needs a cost in tree nodes".to_owned())?;
    }
    if config.queue_soft_cost > config.queue_hard_cost {
        return Err("--queue-soft must not exceed --queue-hard".to_owned());
    }
    let jobs = match flag_value(args, "--jobs") {
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| "--jobs needs an integer".to_owned())?;
            if n == 0 {
                default_jobs()
            } else {
                n
            }
        }
        None => 1,
    };
    Ok((config, jobs))
}

/// The resident service: one command per stdin line, one response line
/// per request on stdout (see `help` inside the session). A parse error
/// or a contained crash answers `err …` and keeps serving; EOF or
/// `quit` shuts down cleanly with `ok bye`.
fn cmd_serve(args: &[String]) -> Result<Outcome, String> {
    let (config, jobs) = parse_serve_config(args)?;
    let mut service = Service::new(config);
    let stdin = std::io::stdin().lock();
    let mut out = std::io::stdout().lock();
    let mut batching = false;
    let say = |out: &mut dyn Write, line: &str| -> Result<(), String> {
        writeln!(out, "{line}")
            .and_then(|()| out.flush())
            .map_err(|e| e.to_string())
    };
    let mut lines = stdin.lines();
    while let Some(line) = lines.next() {
        let line = line.map_err(|e| format!("stdin read failed: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let command = match parse_line(trimmed) {
            Ok(c) => c,
            Err(e) => {
                say(&mut out, &Response::Error(e).to_string())?;
                continue;
            }
        };
        match command {
            Command::Quit => break,
            Command::Help => say(&mut out, varbuf::core::service::PROTOCOL_HELP)?,
            Command::Begin => {
                batching = true;
                say(&mut out, "ok begin")?;
            }
            Command::Commit => {
                batching = false;
                for response in service.drain(jobs) {
                    say(&mut out, &response.to_string())?;
                }
                say(&mut out, "ok commit")?;
            }
            Command::Inject { id, fault } => {
                say(&mut out, &service.inject(id, fault).to_string())?;
            }
            Command::LoadTree { spatial } => {
                // Collect the inline net until its `end` terminator.
                let mut text = String::new();
                let mut terminated = false;
                for body in lines.by_ref() {
                    let body = body.map_err(|e| format!("stdin read failed: {e}"))?;
                    if body.trim() == "end" {
                        terminated = true;
                        break;
                    }
                    text.push_str(&body);
                    text.push('\n');
                }
                if !terminated {
                    say(&mut out, "err malformed `load` block hit EOF before `end`")?;
                    continue;
                }
                match read_tree(text.as_bytes()) {
                    Ok(tree) => {
                        let request = Request::Open {
                            tree: Box::new(tree),
                            spatial,
                        };
                        if batching {
                            service.submit(request);
                        } else {
                            say(&mut out, &service.execute(request).to_string())?;
                        }
                    }
                    Err(e) => {
                        say(&mut out, &format!("err malformed bad tree: {e}"))?;
                    }
                }
            }
            Command::Req(request) => {
                if batching {
                    service.submit(request);
                } else {
                    say(&mut out, &service.execute(request).to_string())?;
                }
            }
        }
    }
    // Anything still queued at shutdown is abandoned deliberately; the
    // session stats have already counted its admissions.
    say(&mut out, "ok bye")?;
    Ok(Outcome::Clean)
}

/// The CTS pipeline: H-tree generation, bottom-up variation-aware
/// buffering through the hierarchical engine, skew scoring.
fn cmd_cts(args: &[String]) -> Result<Outcome, String> {
    let levels: u32 = match flag_value(args, "--levels") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|l| (1..=24).contains(l))
            .ok_or_else(|| format!("--levels must be in 1..=24, got `{v}`"))?,
        None => 10,
    };
    let tree = generate_htree(&HTreeSpec::with_levels(levels));
    tree.validate().map_err(|e| e.to_string())?;
    let model = ProcessModel::paper_defaults(tree.bounding_box(), spatial_kind(args)?);
    let rule = parse_rule(args)?;
    let budget = parse_budget(args)?;
    let mut hier = if has_flag(args, "--flat") {
        HierOptions::disabled()
    } else {
        HierOptions::default()
    };
    if let Some(v) = flag_value(args, "--cut-nodes") {
        hier.cut_nodes = v
            .parse()
            .map_err(|_| "--cut-nodes needs an integer (0 disables cuts)".to_owned())?;
    }
    if let Some(v) = flag_value(args, "--fanout-cut") {
        hier.fanout_cut = v
            .parse()
            .map_err(|_| "--fanout-cut needs an integer (0 = never by fanout)".to_owned())?;
    }
    let options = DpOptions::default();
    let g = optimize_hier(
        &tree,
        &model,
        VariationMode::WithinDie,
        fallback_cascade(rule),
        &WireSizing::single(),
        &options,
        &hier,
        &budget,
        RunControls::default(),
    )
    .map_err(|e| e.to_string())?;
    let mut outcome = Outcome::Clean;
    if g.degradation.degraded() {
        outcome = Outcome::Degraded;
        print!("{}", g.degradation.summary());
    }
    let r = &g.result;
    println!(
        "htree{levels}: {} sinks, {} buffers, RAT {:.1} ± {:.2} ps",
        tree.sink_count(),
        r.assignment.len(),
        r.root_rat.mean(),
        r.root_rat.std_dev()
    );
    println!(
        "decomposition: {} cuts, {} spliced candidates dropped, peak chunk bytes {}, frontier cap {}",
        g.hier.cut_count, g.hier.spliced_dropped, g.hier.peak_chunk_bytes, g.hier.final_frontier_cap
    );
    let analysis =
        SkewAnalyzer::new(&tree, &model, VariationMode::WithinDie).analyze(&r.assignment);
    let skew = analysis.global_skew();
    println!("global skew {:.2} ± {:.2} ps", skew.mean(), skew.std_dev());
    let targets: Vec<f64> = match flag_value(args, "--skew-target") {
        Some(v) => vec![v
            .parse::<f64>()
            .ok()
            .filter(|t| t.is_finite() && *t > 0.0)
            .ok_or_else(|| format!("--skew-target needs a positive number of ps, got `{v}`"))?],
        None => [1.0, 1.5, 2.0]
            .iter()
            .map(|m| skew.mean() * m + 1e-9)
            .collect(),
    };
    for target in targets {
        println!(
            "  P(skew <= {:.2} ps) = {:.1}%",
            target,
            100.0 * analysis.skew_yield(target)
        );
    }
    Ok(outcome)
}

fn cmd_skew(args: &[String]) -> Result<Outcome, String> {
    let path = args.first().ok_or("skew needs a FILE")?;
    let tree = load_tree(path)?;
    let model = ProcessModel::paper_defaults(tree.bounding_box(), spatial_kind(args)?);
    let wid = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
        .map_err(|e| e.to_string())?;
    let analysis =
        SkewAnalyzer::new(&tree, &model, VariationMode::WithinDie).analyze(&wid.assignment);
    let skew = analysis.global_skew();
    println!(
        "{} sinks, {} buffers: global skew {:.2} ± {:.2} ps",
        analysis.arrivals.len(),
        wid.assignment.len(),
        skew.mean(),
        skew.std_dev()
    );
    for target_mult in [1.0, 1.5, 2.0] {
        let target = skew.mean() * target_mult + 1e-9;
        println!(
            "  P(skew <= {:.2} ps) = {:.1}%",
            target,
            100.0 * analysis.skew_yield(target)
        );
    }
    Ok(Outcome::Clean)
}
