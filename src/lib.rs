//! # varbuf — variation-aware buffer insertion
//!
//! A from-scratch Rust reproduction of the Xiong/He line of work on buffer
//! insertion under process variation (DATE 2005 and its follow-up
//! introducing the linear-complexity two-parameter pruning rule).
//!
//! The workspace is organized as four library crates, re-exported here:
//!
//! * [`stats`] — Gaussian math, first-order canonical forms, statistical
//!   min/max, Monte Carlo, least squares;
//! * [`rctree`] — RC routing trees, Elmore delay, benchmark generators;
//! * [`variation`] — the first-order process-variation model (random /
//!   inter-die / spatially correlated intra-die) and device
//!   characterization;
//! * [`core`] — deterministic van Ginneken plus the variation-aware DP
//!   with the 2P / 4P / 1P pruning rules, drivers and yield analysis.
//!
//! # Quick start
//!
//! ```
//! use varbuf::prelude::*;
//!
//! # fn main() -> Result<(), varbuf::core::InsertionError> {
//! // A synthetic benchmark in the style of the paper's r1.
//! let tree = generate_benchmark(&BenchmarkSpec::random("net", 64, 42));
//! let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
//!
//! // Variation-aware insertion with the 2P pruning rule.
//! let wid = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())?;
//!
//! // Timing yield of the resulting design.
//! let analysis = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie)
//!     .analyze(&wid.assignment);
//! assert!(analysis.rat_at_95_yield < analysis.rat.mean());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use varbuf_core as core;
pub use varbuf_rctree as rctree;
pub use varbuf_stats as stats;
pub use varbuf_variation as variation;

/// One-line imports for the common workflow.
pub mod prelude {
    pub use varbuf_core::criticality::{sink_criticalities, CriticalityReport};
    pub use varbuf_core::design::{Design, DesignNet};
    pub use varbuf_core::dp::{
        fallback_cascade, optimize_governed, optimize_governed_detailed, optimize_with_rule,
        optimize_with_sizing, DpOptions, GovernedResult, RootSelection, RunControls, WireSizing,
    };
    pub use varbuf_core::driver::{
        optimize_all_modes, optimize_nominal, optimize_statistical, OptimizeResult, Options,
    };
    pub use varbuf_core::faultinject::{RequestFault, RequestFaults};
    pub use varbuf_core::governor::{Budget, CancelToken, Degradation, DegradationEvent};
    pub use varbuf_core::hier::{optimize_hier, HierOptions, HierReport, HierResult};
    pub use varbuf_core::pool::{default_jobs, optimize_batch, BatchRequest};
    pub use varbuf_core::prune::{FourParam, OneParam, PruningRule, RuleConfigError, TwoParam};
    pub use varbuf_core::service::{
        parse_line, parse_open_spec, Command, OptimizeParams, Request, Response, RuleChoice,
        Service, ServiceConfig, ServiceStats, SessionHandle, SessionStore,
    };
    pub use varbuf_core::skew::{SkewAnalysis, SkewAnalyzer};
    pub use varbuf_core::yield_eval::{YieldAnalysis, YieldEvaluator};
    pub use varbuf_core::{InsertionError, RequestError};
    pub use varbuf_rctree::generate::{
        generate_benchmark, generate_htree, BenchmarkSpec, HTreeSpec,
    };
    pub use varbuf_rctree::{NodeId, Point, RoutingTree, WireParams};
    pub use varbuf_stats::{CanonicalForm, SourceId};
    pub use varbuf_variation::{
        BufferLibrary, BufferType, BufferTypeId, ProcessModel, SpatialKind, UnknownBufferType,
        VariationBudgets, VariationMode,
    };
}
