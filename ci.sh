#!/usr/bin/env bash
# Offline CI gate for varbuf. Runs exactly what a PR must pass:
#   1. formatting        (cargo fmt --check)
#   2. lints             (cargo clippy, warnings are errors)
#   3. tier-1 build+test (the full offline workspace suite)
# No network access is required; the workspace has no external
# dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace"
cargo build --workspace

echo "==> cargo test --workspace"
cargo test --workspace

echo "==> ci.sh: all gates passed"
