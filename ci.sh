#!/usr/bin/env bash
# Offline CI gate for varbuf. Runs exactly what a PR must pass:
#   1. formatting        (cargo fmt --check)
#   2. lints             (cargo clippy, warnings are errors)
#   3. tier-1 build+test (the full offline workspace suite)
#   4. smoke bench       (scaling bench, shrunk via VARBUF_BENCH_SMOKE,
#                         must emit a parseable BENCH_dp.json)
# No network access is required; the workspace has no external
# dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace"
cargo build --workspace

echo "==> cargo test --workspace"
cargo test --workspace

echo "==> smoke bench (VARBUF_BENCH_SMOKE=1 cargo bench --bench scaling)"
VARBUF_BENCH_SMOKE=1 cargo bench --bench scaling -- --jobs 2
test -s BENCH_dp.json || { echo "BENCH_dp.json missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json; json.load(open('BENCH_dp.json'))"
else
  echo "(python3 unavailable; skipped JSON well-formedness check)"
fi

echo "==> ci.sh: all gates passed"
