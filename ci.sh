#!/usr/bin/env bash
# Offline CI gate for varbuf. Runs exactly what a PR must pass:
#   1. formatting        (cargo fmt --check)
#   2. lints             (cargo clippy, warnings are errors)
#   3. tier-1 build+test (the full offline workspace suite)
#   4. service smoke     (varbuf serve over a scripted request mix with
#                         an injected panic: the service must contain the
#                         crash and shut down cleanly)
#   5. smoke bench       (scaling bench, shrunk via VARBUF_BENCH_SMOKE,
#                         must emit a parseable BENCH_dp.json whose
#                         headline ratio stays under the checked-in
#                         results/ratchet.json ceiling)
#   6. profile smoke     (profile_stat --json: the per-phase attribution
#                         report must be well-formed — finite phase
#                         timers that fit inside the wall clock)
# No network access is required; the workspace has no external
# dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace"
cargo build --workspace

echo "==> cargo test --workspace"
cargo test --workspace

echo "==> service smoke (varbuf serve: scripted mix with an injected panic)"
SERVE_OUT=$(printf 'ping\nopen random:8:7\nedit wire s0.0 1 140\nopt s0.0\ncts s0.0 cut-nodes=12\ninject panic 3\nopt s0.0\nopt s0.0\nclose s0.0\nstats\nquit\n' \
  | ./target/debug/varbuf serve --faults --watchdog 10 2>/dev/null)
echo "$SERVE_OUT" | sed 's/^/    /'
echo "$SERVE_OUT" | grep -q '^ok edit'           || { echo "serve smoke: edit ack missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q '^ok opt id=1'       || { echo "serve smoke: clean optimize missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q '^ok opt id=2'       || { echo "serve smoke: hierarchical cts optimize missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q '^err internal'      || { echo "serve smoke: contained panic missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q '^err poisoned'      || { echo "serve smoke: poisoned-session error missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q 'panics=1'           || { echo "serve smoke: stats missed the contained panic" >&2; exit 1; }
echo "$SERVE_OUT" | tail -1 | grep -q '^ok bye$' || { echo "serve smoke: no clean shutdown" >&2; exit 1; }

echo "==> smoke bench (VARBUF_BENCH_SMOKE=1 cargo bench --bench scaling)"
VARBUF_BENCH_SMOKE=1 cargo bench --bench scaling -- --jobs 2
test -s BENCH_dp.json || { echo "BENCH_dp.json missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json, math, sys
r = json.load(open('BENCH_dp.json'))
ratio = r.get('stat_vs_det_ratio')
if not isinstance(ratio, (int, float)) or not math.isfinite(ratio) or ratio <= 0:
    sys.exit('BENCH_dp.json: stat_vs_det_ratio missing or not a finite positive number')
# Bound-guided pruning telemetry: the counters must be present, and the
# derived ratios/timers must be finite numbers (counts may be zero — the
# provable bound fires rarely — but never missing or NaN).
for key in ('pruned_by_bound', 'pruned_by_dominance'):
    v = r.get(key)
    if not isinstance(v, int) or v < 0:
        sys.exit(f'BENCH_dp.json: {key} missing or not a non-negative integer')
for key in ('pruned_by_bound_ratio', 'pruned_by_dominance_ratio',
            'bound_pass_ns', 'bound_guided_speedup'):
    v = r.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
        sys.exit(f'BENCH_dp.json: {key} missing or not a finite non-negative number')
# The headline ratio must say which size produced it, and the engine
# must report both the requested and the effective worker count (the
# thread clamp is invisible in the request otherwise).
for key in ('stat_vs_det_ratio_sinks', 'jobs_requested', 'jobs_effective'):
    v = r.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 1:
        sys.exit(f'BENCH_dp.json: {key} missing or not a finite positive number')
# Li-Shi and lane-kernel telemetry: counters non-negative, speedups
# finite and positive (they may dip below 1.0 on a noisy host — the
# ratchet below is the regression gate, these are schema checks).
if not isinstance(r.get('lishi_skipped'), int) or r['lishi_skipped'] < 0:
    sys.exit('BENCH_dp.json: lishi_skipped missing or negative')
for key in ('lishi_speedup_stat', 'lishi_speedup_det',
            'lane_variance_speedup', 'lane_covariance_speedup'):
    v = r.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v <= 0:
        sys.exit(f'BENCH_dp.json: {key} missing or not a finite positive number')
# Ratchet: the statistical/deterministic gap must not regress past the
# checked-in ceiling. The smoke ratio is noisy and measured at a small
# N, so the ceiling carries deliberate headroom — it catches collapses,
# not single-digit drift.
ratchet = json.load(open('results/ratchet.json'))
ceiling = ratchet['stat_vs_det_ratio_max']
if ratio > ceiling:
    sys.exit(f'BENCH_dp.json: stat_vs_det_ratio {ratio:.2f} exceeds the '
             f'results/ratchet.json ceiling {ceiling} — the statistical DP '
             f'regressed (or the deterministic baseline got faster; re-ratchet '
             f'deliberately if so)')
# Lazy wire propagation: the deferred-transform path (the default) must
# keep beating the eager per-segment kernels on the subdivision-heavy
# bench by at least the ratchet floor. The oracle suite pins the two
# paths equal-objective, so a collapse here means the deferral stopped
# engaging (or its materialization points multiplied), not a tradeoff.
lazy = r.get('lazy_wire_speedup')
if not isinstance(lazy, (int, float)) or not math.isfinite(lazy) or lazy <= 0:
    sys.exit('BENCH_dp.json: lazy_wire_speedup missing or not a finite positive number')
lazy_floor = ratchet.get('lazy_wire_speedup_min', 1.0)
if lazy < lazy_floor:
    sys.exit(f'BENCH_dp.json: lazy_wire_speedup {lazy:.2f} below the '
             f'results/ratchet.json floor {lazy_floor} — deferred wire '
             f'transforms stopped paying for themselves')
# Resident-service telemetry: latency percentiles and throughput must be
# positive finite numbers, the percentiles ordered, and the overload
# burst must actually have shed work.
for key in ('service_p50_ns', 'service_p99_ns', 'service_throughput_rps'):
    v = r.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v <= 0:
        sys.exit(f'BENCH_dp.json: {key} missing or not a finite positive number')
if r['service_p99_ns'] < r['service_p50_ns']:
    sys.exit('BENCH_dp.json: service p99 below p50')
shed = r.get('service_shed')
if not isinstance(shed, (int, float)) or shed < 1:
    sys.exit('BENCH_dp.json: service_shed missing or zero')
# Incremental re-optimization: the cached edit→opt loop must beat the
# cold rerun by at least the ratchet floor (smoke sizes are small, so
# the floor is far below the full-size target), the warm side must have
# actually replayed (hit rate in (0, 1]), and the scatter-plan interner
# counters must be present.
speedup = r.get('incremental_speedup')
if not isinstance(speedup, (int, float)) or not math.isfinite(speedup) or speedup <= 0:
    sys.exit('BENCH_dp.json: incremental_speedup missing or not a finite positive number')
floor = ratchet.get('incremental_speedup_min', 1.0)
if speedup < floor:
    sys.exit(f'BENCH_dp.json: incremental_speedup {speedup:.2f} below the '
             f'results/ratchet.json floor {floor} — the session cache stopped '
             f'paying for itself')
hit_rate = r.get('cache_hit_rate')
if not isinstance(hit_rate, (int, float)) or not math.isfinite(hit_rate) \
        or hit_rate <= 0 or hit_rate > 1:
    sys.exit('BENCH_dp.json: cache_hit_rate missing or outside (0, 1]')
for key in ('scatter_plan_hits', 'scatter_plan_misses'):
    v = r.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
        sys.exit(f'BENCH_dp.json: {key} missing or not a finite non-negative number')
# Clock-tree pipeline: both hierarchical wall-clock points must be
# present and positive, and the parked-frontier byte peak the governor
# observed must fit inside the budget the run was governed under.
for key in ('cts_16k_wall_ms', 'cts_64k_wall_ms'):
    v = r.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v <= 0:
        sys.exit(f'BENCH_dp.json: {key} missing or not a finite positive number')
for key in ('peak_chunk_bytes', 'cts_budget_bytes'):
    v = r.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
        sys.exit(f'BENCH_dp.json: {key} missing or not a finite non-negative number')
if r['peak_chunk_bytes'] > r['cts_budget_bytes']:
    sys.exit(f'BENCH_dp.json: peak_chunk_bytes {r["peak_chunk_bytes"]:.0f} exceeds '
             f'the governed cts_budget_bytes {r["cts_budget_bytes"]:.0f}')
if r['peak_chunk_bytes'] <= 0:
    sys.exit('BENCH_dp.json: peak_chunk_bytes is zero — the decomposition '
             'never parked a frontier, so the streaming path went unexercised')
groups = {b.get('group') for b in r.get('benches', [])}
for required in ('canonical_kernels', 'dp_scaling', 'bound_guided', 'service',
                 'lishi', 'lane_kernels', 'incremental', 'clock_cts',
                 'wire_heavy'):
    if required not in groups:
        sys.exit(f'BENCH_dp.json: {required} bench group missing')
print(f'BENCH_dp.json ok: stat_vs_det_ratio={ratio:.2f}, '
      f'incremental_speedup={speedup:.2f} (hit rate {hit_rate:.3f}), '
      f'bound/dominance pruned={r["pruned_by_bound"]}/{r["pruned_by_dominance"]}, '
      f'groups={sorted(g for g in groups if g)}')
EOF
else
  echo "(python3 unavailable; skipped BENCH_dp.json schema check)"
fi

echo "==> cts capacity gate (64k-sink H-tree, hierarchical, governed memory budget)"
cargo build --release --bin varbuf
CTS_OUT=$(./target/release/varbuf cts --levels 16 --budget-mem 512)
echo "$CTS_OUT" | sed 's/^/    /'
echo "$CTS_OUT" | grep -q '^htree16: 65536 sinks' || { echo "cts gate: 64k run did not complete" >&2; exit 1; }
echo "$CTS_OUT" | grep -q 'peak chunk bytes'      || { echo "cts gate: frontier ledger peak missing" >&2; exit 1; }

echo "==> profile smoke (profile_stat --json: phase attribution well-formed)"
cargo build --release -p varbuf-bench --examples
PROFILE_JSON=$(mktemp /tmp/profile_stat.XXXXXX.json)
./target/release/examples/profile_stat 64 --json "$PROFILE_JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$PROFILE_JSON" <<'EOF'
import json, math, sys
r = json.load(open(sys.argv[1]))
# Every phase timer and counter the attribution tables are built from
# must be present and finite; the phases must fit inside the wall clock
# (generous slack: Instant overhead inflates fine-grained intervals).
for key in ('wall_ns', 'wire_ns', 'merge_ns', 'prune_ns', 'buffer_ns', 'bound_ns'):
    v = r.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
        sys.exit(f'profile_stat: {key} missing or not a finite non-negative number')
if r['wall_ns'] <= 0:
    sys.exit('profile_stat: wall_ns must be positive')
phase_sum = r['wire_ns'] + r['merge_ns'] + r['prune_ns'] + r['buffer_ns'] + r['bound_ns']
if phase_sum > 1.5 * r['wall_ns']:
    sys.exit(f'profile_stat: phase timers ({phase_sum:.0f} ns) wildly exceed '
             f'the wall clock ({r["wall_ns"]:.0f} ns) — attribution is broken')
for key in ('sinks', 'nodes_processed', 'solutions_generated',
            'solutions_pruned', 'pruned_by_bound', 'pruned_by_dominance',
            'lishi_skipped', 'max_solutions_per_node',
            'jobs_requested', 'jobs_effective'):
    v = r.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
        sys.exit(f'profile_stat: {key} missing or not a finite non-negative number')
if r['solutions_generated'] < 1 or r['nodes_processed'] < 1:
    sys.exit('profile_stat: counters say the run did no work')
print(f"profile_stat ok: wall {r['wall_ns']/1e6:.2f} ms, phases "
      f"{phase_sum/1e6:.2f} ms, {int(r['solutions_generated'])} generated, "
      f"{int(r['lishi_skipped'])} lishi-skipped")
EOF
else
  echo "(python3 unavailable; skipped profile_stat schema check)"
fi
rm -f "$PROFILE_JSON"

echo "==> ci.sh: all gates passed"
