#!/usr/bin/env bash
# Offline CI gate for varbuf. Runs exactly what a PR must pass:
#   1. formatting        (cargo fmt --check)
#   2. lints             (cargo clippy, warnings are errors)
#   3. tier-1 build+test (the full offline workspace suite)
#   4. service smoke     (varbuf serve over a scripted request mix with
#                         an injected panic: the service must contain the
#                         crash and shut down cleanly)
#   5. smoke bench       (scaling bench, shrunk via VARBUF_BENCH_SMOKE,
#                         must emit a parseable BENCH_dp.json)
# No network access is required; the workspace has no external
# dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace"
cargo build --workspace

echo "==> cargo test --workspace"
cargo test --workspace

echo "==> service smoke (varbuf serve: scripted mix with an injected panic)"
SERVE_OUT=$(printf 'ping\nopen random:8:7\nopt s0.0\ninject panic 2\nopt s0.0\nopt s0.0\nclose s0.0\nstats\nquit\n' \
  | ./target/debug/varbuf serve --faults --watchdog 10 2>/dev/null)
echo "$SERVE_OUT" | sed 's/^/    /'
echo "$SERVE_OUT" | grep -q '^ok opt id=1'       || { echo "serve smoke: clean optimize missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q '^err internal'      || { echo "serve smoke: contained panic missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q '^err poisoned'      || { echo "serve smoke: poisoned-session error missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q 'panics=1'           || { echo "serve smoke: stats missed the contained panic" >&2; exit 1; }
echo "$SERVE_OUT" | tail -1 | grep -q '^ok bye$' || { echo "serve smoke: no clean shutdown" >&2; exit 1; }

echo "==> smoke bench (VARBUF_BENCH_SMOKE=1 cargo bench --bench scaling)"
VARBUF_BENCH_SMOKE=1 cargo bench --bench scaling -- --jobs 2
test -s BENCH_dp.json || { echo "BENCH_dp.json missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json, math, sys
r = json.load(open('BENCH_dp.json'))
ratio = r.get('stat_vs_det_ratio')
if not isinstance(ratio, (int, float)) or not math.isfinite(ratio) or ratio <= 0:
    sys.exit('BENCH_dp.json: stat_vs_det_ratio missing or not a finite positive number')
# Bound-guided pruning telemetry: the counters must be present, and the
# derived ratios/timers must be finite numbers (counts may be zero — the
# provable bound fires rarely — but never missing or NaN).
for key in ('pruned_by_bound', 'pruned_by_dominance'):
    v = r.get(key)
    if not isinstance(v, int) or v < 0:
        sys.exit(f'BENCH_dp.json: {key} missing or not a non-negative integer')
for key in ('pruned_by_bound_ratio', 'pruned_by_dominance_ratio',
            'bound_pass_ns', 'bound_guided_speedup'):
    v = r.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
        sys.exit(f'BENCH_dp.json: {key} missing or not a finite non-negative number')
# Resident-service telemetry: latency percentiles and throughput must be
# positive finite numbers, the percentiles ordered, and the overload
# burst must actually have shed work.
for key in ('service_p50_ns', 'service_p99_ns', 'service_throughput_rps'):
    v = r.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v <= 0:
        sys.exit(f'BENCH_dp.json: {key} missing or not a finite positive number')
if r['service_p99_ns'] < r['service_p50_ns']:
    sys.exit('BENCH_dp.json: service p99 below p50')
shed = r.get('service_shed')
if not isinstance(shed, (int, float)) or shed < 1:
    sys.exit('BENCH_dp.json: service_shed missing or zero')
groups = {b.get('group') for b in r.get('benches', [])}
for required in ('canonical_kernels', 'dp_scaling', 'bound_guided', 'service'):
    if required not in groups:
        sys.exit(f'BENCH_dp.json: {required} bench group missing')
print(f'BENCH_dp.json ok: stat_vs_det_ratio={ratio:.2f}, '
      f'bound/dominance pruned={r["pruned_by_bound"]}/{r["pruned_by_dominance"]}, '
      f'groups={sorted(g for g in groups if g)}')
EOF
else
  echo "(python3 unavailable; skipped BENCH_dp.json schema check)"
fi

echo "==> ci.sh: all gates passed"
