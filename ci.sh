#!/usr/bin/env bash
# Offline CI gate for varbuf. Runs exactly what a PR must pass:
#   1. formatting        (cargo fmt --check)
#   2. lints             (cargo clippy, warnings are errors)
#   3. tier-1 build+test (the full offline workspace suite)
#   4. smoke bench       (scaling bench, shrunk via VARBUF_BENCH_SMOKE,
#                         must emit a parseable BENCH_dp.json)
# No network access is required; the workspace has no external
# dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace"
cargo build --workspace

echo "==> cargo test --workspace"
cargo test --workspace

echo "==> smoke bench (VARBUF_BENCH_SMOKE=1 cargo bench --bench scaling)"
VARBUF_BENCH_SMOKE=1 cargo bench --bench scaling -- --jobs 2
test -s BENCH_dp.json || { echo "BENCH_dp.json missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json, math, sys
r = json.load(open('BENCH_dp.json'))
ratio = r.get('stat_vs_det_ratio')
if not isinstance(ratio, (int, float)) or not math.isfinite(ratio) or ratio <= 0:
    sys.exit('BENCH_dp.json: stat_vs_det_ratio missing or not a finite positive number')
# Bound-guided pruning telemetry: the counters must be present, and the
# derived ratios/timers must be finite numbers (counts may be zero — the
# provable bound fires rarely — but never missing or NaN).
for key in ('pruned_by_bound', 'pruned_by_dominance'):
    v = r.get(key)
    if not isinstance(v, int) or v < 0:
        sys.exit(f'BENCH_dp.json: {key} missing or not a non-negative integer')
for key in ('pruned_by_bound_ratio', 'pruned_by_dominance_ratio',
            'bound_pass_ns', 'bound_guided_speedup'):
    v = r.get(key)
    if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
        sys.exit(f'BENCH_dp.json: {key} missing or not a finite non-negative number')
groups = {b.get('group') for b in r.get('benches', [])}
for required in ('canonical_kernels', 'dp_scaling', 'bound_guided'):
    if required not in groups:
        sys.exit(f'BENCH_dp.json: {required} bench group missing')
print(f'BENCH_dp.json ok: stat_vs_det_ratio={ratio:.2f}, '
      f'bound/dominance pruned={r["pruned_by_bound"]}/{r["pruned_by_dominance"]}, '
      f'groups={sorted(g for g in groups if g)}')
EOF
else
  echo "(python3 unavailable; skipped BENCH_dp.json schema check)"
fi

echo "==> ci.sh: all gates passed"
