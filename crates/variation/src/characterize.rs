//! Device characterization — the "SPICE substitute".
//!
//! Section 3.1 of the paper runs SPICE on a 65 nm BSIM model, sweeps the
//! effective channel length `L_eff` (normal, σ = 10% of nominal), extracts
//! the device characteristics, and fits the first-order model of
//! eq. (19)–(20) by least squares; Figure 3 then shows that the fitted
//! normal PDF closely matches the SPICE-extracted distribution.
//!
//! We have no SPICE or foundry models, so — per the substitution policy in
//! `DESIGN.md` — [`NonlinearDevice`] provides an analytic *nonlinear*
//! stand-in (power laws in `L_eff`, the dominant first-order dependence of
//! gate capacitance and switching delay on channel length). The
//! characterization flow is identical to the paper's: Monte Carlo sample
//! the parameter, evaluate the nonlinear model, least-squares fit the
//! linear form, and compare the empirical histogram against the fitted
//! normal PDF.

use varbuf_stats::histogram::Histogram;
use varbuf_stats::linfit::{fit_linear, FitError};
use varbuf_stats::mc::{sample_moments, StandardNormal};
use varbuf_stats::norm_pdf;
use varbuf_stats::rng::SplitMix64;

/// Synthetic nonlinear buffer-device physics.
///
/// Gate capacitance grows almost linearly with channel length while the
/// intrinsic delay grows super-linearly (velocity saturation + increased
/// gate charge), captured as power laws around the nominal point:
///
/// ```text
/// C_b(L) = C_b0 · (L / L0)^pc        (pc ≈ 1.1)
/// T_b(L) = T_b0 · (L / L0)^pt        (pt ≈ 1.45)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonlinearDevice {
    /// Nominal channel length `L0`, nm.
    pub l_nominal_nm: f64,
    /// Nominal gate capacitance, fF.
    pub cap_nominal: f64,
    /// Nominal intrinsic delay, ps.
    pub delay_nominal: f64,
    /// Capacitance power-law exponent.
    pub cap_exponent: f64,
    /// Delay power-law exponent.
    pub delay_exponent: f64,
}

impl NonlinearDevice {
    /// A 65 nm-class device matching the default library's `bufx2`.
    #[must_use]
    pub fn default_65nm() -> Self {
        Self {
            l_nominal_nm: 65.0,
            cap_nominal: 23.4,
            delay_nominal: 36.4,
            cap_exponent: 1.1,
            delay_exponent: 1.45,
        }
    }

    /// Gate capacitance at channel length `l_nm`, fF.
    ///
    /// # Panics
    ///
    /// Panics if `l_nm` is not strictly positive.
    #[must_use]
    pub fn capacitance(&self, l_nm: f64) -> f64 {
        assert!(l_nm > 0.0, "channel length must be positive");
        self.cap_nominal * (l_nm / self.l_nominal_nm).powf(self.cap_exponent)
    }

    /// Intrinsic delay at channel length `l_nm`, ps.
    ///
    /// # Panics
    ///
    /// Panics if `l_nm` is not strictly positive.
    #[must_use]
    pub fn intrinsic_delay(&self, l_nm: f64) -> f64 {
        assert!(l_nm > 0.0, "channel length must be positive");
        self.delay_nominal * (l_nm / self.l_nominal_nm).powf(self.delay_exponent)
    }
}

/// Output of the characterization flow for one characteristic (Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    /// Fitted nominal value (the intercept at the nominal point).
    pub nominal: f64,
    /// Fitted sensitivity per 1σ of the underlying parameter.
    pub sensitivity: f64,
    /// Fit quality, `R²`.
    pub r_squared: f64,
    /// Empirical mean of the nonlinear samples.
    pub empirical_mean: f64,
    /// Empirical standard deviation of the nonlinear samples.
    pub empirical_std: f64,
    /// Histogram of the nonlinear samples (for PDF plots).
    pub histogram: Histogram,
}

impl Characterization {
    /// The fitted normal density at `x` — the curve Figure 3 overlays on
    /// the extracted histogram.
    #[must_use]
    pub fn fitted_pdf(&self, x: f64) -> f64 {
        let sigma = self.sensitivity.abs();
        if sigma == 0.0 {
            return 0.0;
        }
        norm_pdf((x - self.nominal) / sigma) / sigma
    }

    /// Maximum absolute difference between the empirical density and the
    /// fitted normal density over the histogram bins — a scalar summary of
    /// Figure 3's "the two PDFs are very close" claim.
    #[must_use]
    pub fn max_pdf_deviation(&self) -> f64 {
        self.histogram
            .density_points()
            .map(|(x, d)| (d - self.fitted_pdf(x)).abs())
            .fold(0.0, f64::max)
    }
}

/// Full result: both characteristics of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCharacterization {
    /// Gate capacitance characterization.
    pub capacitance: Characterization,
    /// Intrinsic delay characterization.
    pub delay: Characterization,
}

/// Runs the paper's characterization flow on the nonlinear stand-in:
/// sample `L_eff ~ N(L0, (rel_sigma·L0)²)`, evaluate the nonlinear device,
/// and least-squares fit the first-order model.
///
/// `samples` Monte Carlo points are drawn with the given `seed`;
/// `rel_sigma` is the paper's 10% by default (pass `0.10`).
///
/// # Errors
///
/// Returns a [`FitError`] if the sample count is too small to fit
/// (`samples < 2`).
///
/// # Panics
///
/// Panics if `rel_sigma` would allow non-positive channel lengths to
/// dominate (`rel_sigma >= 0.3`), since the power-law model is undefined
/// at `L <= 0`.
pub fn characterize_device(
    device: &NonlinearDevice,
    rel_sigma: f64,
    samples: usize,
    seed: u64,
) -> Result<DeviceCharacterization, FitError> {
    assert!(
        (0.0..0.3).contains(&rel_sigma),
        "rel_sigma must be in [0, 0.3) to keep channel lengths positive"
    );
    let mut rng = SplitMix64::new(seed);
    let normal = StandardNormal;
    let sigma_l = rel_sigma * device.l_nominal_nm;

    let mut xs = Vec::with_capacity(samples); // standardized L deviation
    let mut caps = Vec::with_capacity(samples);
    let mut delays = Vec::with_capacity(samples);
    for _ in 0..samples {
        // Clamp at 4σ to keep L positive even for extreme draws; with
        // rel_sigma < 0.3 the clamp point stays above 0.
        let z: f64 = normal.sample(&mut rng).clamp(-4.0, 4.0);
        let l = device.l_nominal_nm + z * sigma_l;
        xs.push(vec![z]);
        caps.push(device.capacitance(l));
        delays.push(device.intrinsic_delay(l));
    }

    let fit_one = |ys: &[f64]| -> Result<Characterization, FitError> {
        let fit = fit_linear(&xs, ys)?;
        let (mean, var) = sample_moments(ys);
        Ok(Characterization {
            nominal: fit.intercept,
            sensitivity: fit.coeffs[0],
            r_squared: fit.r_squared,
            empirical_mean: mean,
            empirical_std: var.sqrt(),
            histogram: Histogram::from_samples(ys, 40),
        })
    };

    Ok(DeviceCharacterization {
        capacitance: fit_one(&caps)?,
        delay: fit_one(&delays)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonlinear_device_is_monotone() {
        let d = NonlinearDevice::default_65nm();
        assert!(d.capacitance(70.0) > d.capacitance(65.0));
        assert!(d.intrinsic_delay(70.0) > d.intrinsic_delay(65.0));
        assert!((d.capacitance(65.0) - d.cap_nominal).abs() < 1e-12);
        assert!((d.intrinsic_delay(65.0) - d.delay_nominal).abs() < 1e-12);
    }

    #[test]
    fn characterization_recovers_first_order_sensitivities() {
        let d = NonlinearDevice::default_65nm();
        let c = characterize_device(&d, 0.10, 20_000, 42).expect("fit");

        // Analytic first-order sensitivity at the nominal point:
        // d/dz [N·(1 + 0.1·z)^p] at z=0 = N·p·0.1.
        let cap_expect = d.cap_nominal * d.cap_exponent * 0.10;
        let delay_expect = d.delay_nominal * d.delay_exponent * 0.10;
        assert!(
            (c.capacitance.sensitivity - cap_expect).abs() / cap_expect < 0.05,
            "cap sensitivity {} vs {}",
            c.capacitance.sensitivity,
            cap_expect
        );
        assert!(
            (c.delay.sensitivity - delay_expect).abs() / delay_expect < 0.05,
            "delay sensitivity {} vs {}",
            c.delay.sensitivity,
            delay_expect
        );
        // The linear model explains nearly all the variance — the paper's
        // "first-order approximation is reasonable" claim.
        assert!(c.capacitance.r_squared > 0.999);
        assert!(c.delay.r_squared > 0.99);
    }

    #[test]
    fn fitted_pdf_matches_empirical_histogram() {
        // Figure 3's visual claim as an assertion: the fitted normal PDF
        // deviates from the empirical density by a small fraction of the
        // peak density.
        let d = NonlinearDevice::default_65nm();
        let c = characterize_device(&d, 0.10, 40_000, 7).expect("fit");
        let peak = c.delay.fitted_pdf(c.delay.nominal);
        let dev = c.delay.max_pdf_deviation();
        assert!(
            dev < 0.15 * peak,
            "PDF deviation {dev} exceeds 15% of peak {peak}"
        );
    }

    #[test]
    fn characterization_is_deterministic() {
        let d = NonlinearDevice::default_65nm();
        let a = characterize_device(&d, 0.10, 2_000, 5).expect("fit");
        let b = characterize_device(&d, 0.10, 2_000, 5).expect("fit");
        assert_eq!(a.capacitance, b.capacitance);
        assert_eq!(a.delay, b.delay);
    }

    #[test]
    fn small_sample_counts_error() {
        let d = NonlinearDevice::default_65nm();
        assert!(characterize_device(&d, 0.10, 1, 5).is_err());
    }

    #[test]
    #[should_panic(expected = "rel_sigma")]
    fn huge_sigma_rejected() {
        let d = NonlinearDevice::default_65nm();
        let _ = characterize_device(&d, 0.5, 100, 5);
    }

    #[test]
    fn empirical_mean_shifted_by_nonlinearity() {
        // A convex delay law (exponent > 1) pushes the empirical mean
        // slightly above the nominal — a real, second-order effect the
        // first-order model ignores by design.
        let d = NonlinearDevice::default_65nm();
        let c = characterize_device(&d, 0.10, 50_000, 11).expect("fit");
        assert!(c.delay.empirical_mean > d.delay_nominal);
        assert!((c.delay.empirical_mean - d.delay_nominal) / d.delay_nominal < 0.02);
    }
}
