//! Process-variation modeling for variation-aware buffer insertion.
//!
//! Implements Section 3 of the paper — a first-order variation model with
//! three kinds of sources, all expressed over independent `N(0,1)`
//! variables (`varbuf_stats::CanonicalForm`):
//!
//! * **random device variation** (eq. (19)–(20)): one independent source
//!   per physical device instance;
//! * **intra-die spatially correlated variation** (eq. (21)–(22)): the die
//!   is partitioned into a grid of regions (500 µm in the paper), each
//!   with an independent source; a device is influenced by the nearby
//!   regions with isotropic Gaussian weights tapering off at ~2 mm;
//! * **inter-die variation** (eq. (23)–(24)): a single global source `G`
//!   shared by every device on the die.
//!
//! The paper budgets each category at 5% of the nominal value; the
//! homogeneous spatial model spreads that budget uniformly, while the
//! heterogeneous model ramps it linearly from the south-west corner to the
//! north-east corner (Section 5.1).
//!
//! [`characterize`] provides the "SPICE substitute": a synthetic
//! *nonlinear* device model sampled by Monte Carlo and reduced to the
//! first-order form by least squares, reproducing the paper's Figure 3
//! normality validation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod library;
pub mod model;
pub mod sources;
pub mod spatial;

pub use library::{BufferLibrary, BufferType, BufferTypeId, UnknownBufferType};
pub use model::{DeviceFormTable, ProcessModel, VariationBudgets, VariationMode};
pub use sources::SourceLayout;
pub use spatial::{CorrelationTable, SpatialKind, SpatialModel, SpatialWeightTable};
