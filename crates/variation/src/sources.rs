//! Deterministic allocation of variation-source ids.
//!
//! The whole workspace shares one id space (`varbuf_stats::SourceId`).
//! [`SourceLayout`] maps the three physical categories onto it:
//!
//! ```text
//! id 0                      : the inter-die global source G
//! ids 1 ..= R               : the R spatial region sources Y_i
//! ids R+1 ..                : per-device random sources, one per
//!                             (candidate node, buffer type) pair
//! ```
//!
//! The per-device mapping is a *pure function* of `(node, buffer type)`:
//! two candidate solutions that buffer the same site with the same type
//! describe the same physical device, so they must share the source — this
//! is what makes solutions from the same subtree correlated "by
//! construction", the key structural fact the paper's pruning rules have
//! to handle.

use varbuf_rctree::NodeId;
use varbuf_stats::SourceId;

/// The id-space layout for one die / one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceLayout {
    regions: u32,
    buffer_types: u32,
    net_index: u32,
}

/// Device-id stride between nets of a multi-net design: each net may use
/// up to this many distinct device sources.
const NET_STRIDE: u32 = 1 << 22;

impl SourceLayout {
    /// Creates a layout for `regions` spatial regions and `buffer_types`
    /// buffer library entries.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_types == 0`.
    #[must_use]
    pub fn new(regions: usize, buffer_types: usize) -> Self {
        assert!(buffer_types > 0, "need at least one buffer type");
        Self {
            regions: u32::try_from(regions).expect("region count fits u32"),
            buffer_types: u32::try_from(buffer_types).expect("type count fits u32"),
            net_index: 0,
        }
    }

    /// The same layout with device ids moved to net `net_index`'s block.
    ///
    /// Multi-net designs reuse node ids across nets; distinct blocks keep
    /// each net's physical devices on *independent* random sources while
    /// the global and region sources stay shared (the physics: different
    /// cells, same die).
    ///
    /// # Panics
    ///
    /// Panics if `net_index >= 1023` (the id space is 32-bit).
    #[must_use]
    pub fn for_net(mut self, net_index: u32) -> Self {
        assert!(net_index < 1023, "net index {net_index} out of id space");
        self.net_index = net_index;
        self
    }

    /// The inter-die global source `G`.
    #[inline]
    #[must_use]
    pub fn global(self) -> SourceId {
        SourceId(0)
    }

    /// The spatial region source `Y_i`.
    ///
    /// # Panics
    ///
    /// Panics if `region >= self.regions()`.
    #[inline]
    #[must_use]
    pub fn region(self, region: usize) -> SourceId {
        let region = u32::try_from(region).expect("region index fits u32");
        assert!(region < self.regions, "region {region} out of range");
        SourceId(1 + region)
    }

    /// The random source of the device instance `(node, buffer type)`.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_type >= self.buffer_types()`.
    #[inline]
    #[must_use]
    pub fn device(self, node: NodeId, buffer_type: usize) -> SourceId {
        let bt = u32::try_from(buffer_type).expect("type index fits u32");
        assert!(bt < self.buffer_types, "buffer type {bt} out of range");
        let local = node.0 * self.buffer_types + bt;
        debug_assert!(local < NET_STRIDE, "device id overflows the net block");
        SourceId(1 + self.regions + self.net_index * NET_STRIDE + local)
    }

    /// Number of spatial regions.
    #[inline]
    #[must_use]
    pub fn regions(self) -> usize {
        self.regions as usize
    }

    /// Number of buffer types.
    #[inline]
    #[must_use]
    pub fn buffer_types(self) -> usize {
        self.buffer_types as usize
    }

    /// Whether `id` is a spatial-region source.
    #[must_use]
    pub fn is_region(self, id: SourceId) -> bool {
        id.0 >= 1 && id.0 <= self.regions
    }

    /// Whether `id` is a per-device random source.
    #[must_use]
    pub fn is_device(self, id: SourceId) -> bool {
        id.0 > self.regions
    }

    /// Number of sources a tree with `nodes` nodes can reference in this
    /// layout (global + regions + this net's device block) — useful for
    /// enumerating every source during Monte Carlo.
    #[must_use]
    pub fn total_for_nodes(self, nodes: usize) -> usize {
        1 + self.regions as usize + nodes * self.buffer_types as usize
    }

    /// Every source id a tree with `nodes` nodes can reference, in id
    /// order: the global source, all regions, then this net's device
    /// block.
    pub fn all_for_nodes(self, nodes: usize) -> impl Iterator<Item = SourceId> {
        let shared = 1 + self.regions as usize;
        let device_base = 1 + self.regions + self.net_index * NET_STRIDE;
        let devices = nodes * self.buffer_types as usize;
        (0..shared)
            .map(|i| SourceId(i as u32))
            .chain((0..devices).map(move |i| SourceId(device_base + i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_partitions_id_space() {
        let l = SourceLayout::new(10, 3);
        assert_eq!(l.global(), SourceId(0));
        assert_eq!(l.region(0), SourceId(1));
        assert_eq!(l.region(9), SourceId(10));
        assert_eq!(l.device(NodeId(0), 0), SourceId(11));
        assert_eq!(l.device(NodeId(0), 2), SourceId(13));
        assert_eq!(l.device(NodeId(1), 0), SourceId(14));
    }

    #[test]
    fn device_ids_are_unique_per_site_and_type() {
        let l = SourceLayout::new(4, 2);
        let mut seen = std::collections::HashSet::new();
        for node in 0..50u32 {
            for bt in 0..2 {
                assert!(seen.insert(l.device(NodeId(node), bt)));
            }
        }
    }

    #[test]
    fn same_site_same_type_shares_source() {
        let l = SourceLayout::new(4, 2);
        assert_eq!(l.device(NodeId(7), 1), l.device(NodeId(7), 1));
    }

    #[test]
    fn net_blocks_do_not_collide() {
        let base = SourceLayout::new(8, 2);
        let net1 = base.for_net(1);
        let net2 = base.for_net(2);
        // Shared sources are identical across nets.
        assert_eq!(base.global(), net1.global());
        assert_eq!(base.region(3), net2.region(3));
        // Device sources are disjoint between nets.
        let mut seen = std::collections::HashSet::new();
        for layout in [base, net1, net2] {
            for n in 0..100u32 {
                for t in 0..2 {
                    assert!(seen.insert(layout.device(NodeId(n), t)), "collision");
                }
            }
        }
        // Enumeration covers the shifted block.
        let ids: Vec<_> = net1.all_for_nodes(3).collect();
        assert_eq!(ids.len(), net1.total_for_nodes(3));
        assert!(ids.contains(&net1.device(NodeId(2), 1)));
    }

    #[test]
    #[should_panic(expected = "out of id space")]
    fn net_index_bounded() {
        let _ = SourceLayout::new(1, 1).for_net(5000);
    }

    #[test]
    fn classification() {
        let l = SourceLayout::new(5, 1);
        assert!(!l.is_region(l.global()));
        assert!(l.is_region(l.region(4)));
        assert!(!l.is_device(l.region(4)));
        assert!(l.is_device(l.device(NodeId(0), 0)));
    }

    #[test]
    fn totals_and_enumeration() {
        let l = SourceLayout::new(3, 2);
        assert_eq!(l.total_for_nodes(4), 1 + 3 + 8);
        assert_eq!(l.all_for_nodes(4).count(), 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn region_bounds_checked() {
        let l = SourceLayout::new(2, 1);
        let _ = l.region(2);
    }

    #[test]
    #[should_panic(expected = "at least one buffer type")]
    fn zero_types_rejected() {
        let _ = SourceLayout::new(2, 0);
    }
}
