//! The assembled first-order process model.
//!
//! [`ProcessModel`] combines the variation budgets, the spatial grid, the
//! buffer library and the source-id layout, and produces the canonical
//! forms of eq. (23)–(24) for any buffer instance:
//!
//! ```text
//! C_b,t = C_b0 + α·X_dev + Σ γ_i·Y_i + ξ·G
//! T_b,t = T_b0 + β·X_dev + Σ θ_i·Y_i + η·G
//! ```
//!
//! where `X_dev` is the instance's private random source, the `Y_i` are
//! the spatial region sources weighted by the Gaussian taper, and `G` is
//! the shared inter-die source. The [`VariationMode`] selects which terms
//! exist: `Nominal` (the paper's **NOM**), `DieToDie` (**D2D**: random +
//! inter-die) or `WithinDie` (**WID**: everything).

use crate::library::{BufferLibrary, BufferType, BufferTypeId};
use crate::sources::SourceLayout;
use crate::spatial::{SpatialKind, SpatialModel};
use std::sync::{Arc, Mutex};
use varbuf_rctree::elmore::BufferValues;
use varbuf_rctree::geom::{BoundingBox, Point};
use varbuf_rctree::NodeId;
use varbuf_stats::mc::SampleVector;
use varbuf_stats::CanonicalForm;

/// Per-category standard-deviation budgets, as fractions of the nominal
/// value (the paper budgets 5% each, Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationBudgets {
    /// Random per-device variation σ, fraction of nominal.
    pub random: f64,
    /// Inter-die variation σ, fraction of nominal.
    pub inter_die: f64,
    /// Intra-die (spatial) variation σ, fraction of nominal.
    pub intra_die: f64,
    /// Amplitude of the *systematic* intra-die pattern (lens-distortion
    /// radial bowl / stepper SW→NE ramp, Section 3.2 of the paper) as a
    /// fraction of nominal. Device nominals are shifted by
    /// `systematic · pattern(location)` with `pattern ∈ [-1, 1]`; only a
    /// within-die-aware optimizer sees the shift, while the silicon
    /// always has it.
    pub systematic: f64,
}

impl VariationBudgets {
    /// The paper's 5%/5%/5% random budgets, plus an 8% systematic
    /// intra-die amplitude.
    #[must_use]
    pub fn paper_5pct() -> Self {
        Self {
            random: 0.05,
            inter_die: 0.05,
            intra_die: 0.05,
            systematic: 0.08,
        }
    }

    /// All categories (including the systematic pattern) set to zero —
    /// useful for checking that the statistical machinery degenerates to
    /// the deterministic one.
    #[must_use]
    pub fn zero() -> Self {
        Self {
            random: 0.0,
            inter_die: 0.0,
            intra_die: 0.0,
            systematic: 0.0,
        }
    }
}

impl Default for VariationBudgets {
    fn default() -> Self {
        Self::paper_5pct()
    }
}

/// Which variation categories an optimization run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariationMode {
    /// No variation at all — the deterministic baseline (**NOM**).
    Nominal,
    /// Random device variation + inter-die variation (**D2D**).
    DieToDie,
    /// Everything including spatially correlated intra-die variation
    /// (**WID**).
    WithinDie,
}

impl VariationMode {
    /// Short label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            VariationMode::Nominal => "NOM",
            VariationMode::DieToDie => "D2D",
            VariationMode::WithinDie => "WID",
        }
    }
}

/// Precomputed device forms for one candidate set: the outer vector is
/// indexed by position in the location list, the inner slice by buffer
/// type id; each entry is the `(capacitance, delay)` canonical-form pair.
pub type DeviceFormTable = Vec<Box<[(CanonicalForm, CanonicalForm)]>>;

/// How many candidate sets [`ProcessModel::device_forms_cached`] keeps —
/// enough for the mode/sizing variants of one net without letting an
/// interleaved multi-net sweep pin every table in memory.
const FORMS_CACHE_CAP: usize = 2;

/// Per-net memo of [`ProcessModel::precompute_device_forms`] results.
///
/// Candidate locations are fixed per net, but one net is optimized many
/// times — the governed fallback cascade retries with cheaper rules,
/// yield evaluation re-runs the DP per mode, and sweeps revisit the same
/// tree — and each run used to repay the full spatial taper scan
/// (~10 ms at 1024 sinks). The memo hands every repeat run the identical
/// `Arc`'d table, so only the first run per `(locations, mode)` pays.
///
/// The cache is an optimization, not model state: clones start cold and
/// equality ignores it entirely.
#[derive(Debug, Default)]
struct FormsCache {
    entries: Mutex<Vec<FormsCacheEntry>>,
}

#[derive(Debug)]
struct FormsCacheEntry {
    mode: VariationMode,
    locations: Vec<(NodeId, Point)>,
    table: Arc<DeviceFormTable>,
}

impl Clone for FormsCache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for FormsCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// The assembled process model for one die.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessModel {
    budgets: VariationBudgets,
    spatial: SpatialModel,
    layout: SourceLayout,
    library: BufferLibrary,
    forms_cache: FormsCache,
}

impl ProcessModel {
    /// Builds a model over a die bounding box.
    #[must_use]
    pub fn new(
        die: BoundingBox,
        kind: SpatialKind,
        budgets: VariationBudgets,
        library: BufferLibrary,
    ) -> Self {
        let spatial = SpatialModel::paper_defaults(die, kind);
        let layout = SourceLayout::new(spatial.region_count(), library.len());
        Self {
            budgets,
            spatial,
            layout,
            library,
            forms_cache: FormsCache::default(),
        }
    }

    /// The paper's 5%/5%/5% budgets with the default 65 nm library.
    #[must_use]
    pub fn paper_defaults(die: BoundingBox, kind: SpatialKind) -> Self {
        Self::new(
            die,
            kind,
            VariationBudgets::paper_5pct(),
            BufferLibrary::default_65nm(),
        )
    }

    /// The buffer library.
    #[must_use]
    pub fn library(&self) -> &BufferLibrary {
        &self.library
    }

    /// The source-id layout.
    #[must_use]
    pub fn layout(&self) -> SourceLayout {
        self.layout
    }

    /// The spatial grid.
    #[must_use]
    pub fn spatial(&self) -> &SpatialModel {
        &self.spatial
    }

    /// The budgets.
    #[must_use]
    pub fn budgets(&self) -> VariationBudgets {
        self.budgets
    }

    /// Canonical form of the input capacitance `C_b,t` of buffer type `ty`
    /// instantiated at candidate `node` located at `loc` (eq. (23)).
    #[must_use]
    pub fn buffer_cap_form(
        &self,
        ty: BufferTypeId,
        node: NodeId,
        loc: Point,
        mode: VariationMode,
    ) -> CanonicalForm {
        let t = self.library.get(ty);
        self.device_form(t.capacitance, t.cap_sensitivity, ty, node, loc, mode)
    }

    /// Canonical form of the intrinsic delay `T_b,t` (eq. (24)).
    #[must_use]
    pub fn buffer_delay_form(
        &self,
        ty: BufferTypeId,
        node: NodeId,
        loc: Point,
        mode: VariationMode,
    ) -> CanonicalForm {
        let t = self.library.get(ty);
        self.device_form(t.intrinsic_delay, t.delay_sensitivity, ty, node, loc, mode)
    }

    /// The deterministic output resistance `R_b` of `ty`.
    #[must_use]
    pub fn buffer_resistance(&self, ty: BufferTypeId) -> f64 {
        self.library.get(ty).resistance
    }

    /// The same model with device sources moved to net `net_index`'s id
    /// block — required when optimizing several nets of one design so
    /// their (node-id-keyed) random device sources do not collide while
    /// the global and spatial sources stay shared. See
    /// [`SourceLayout::for_net`].
    #[must_use]
    pub fn for_net(&self, net_index: u32) -> Self {
        let mut out = self.clone();
        out.layout = self.layout.for_net(net_index);
        out
    }

    /// The relative systematic shift of device nominals at `loc`
    /// (`budgets.systematic · pattern(loc)`), which only a
    /// within-die-aware optimizer models but the silicon always has.
    #[must_use]
    pub fn systematic_shift(&self, loc: Point) -> f64 {
        self.budgets.systematic * self.spatial.systematic_pattern(loc)
    }

    fn device_form(
        &self,
        nominal: f64,
        sensitivity: f64,
        ty: BufferTypeId,
        node: NodeId,
        loc: Point,
        mode: VariationMode,
    ) -> CanonicalForm {
        if matches!(mode, VariationMode::Nominal) {
            return CanonicalForm::constant(nominal);
        }
        let owned;
        let weights: &[(usize, f64)] = if matches!(mode, VariationMode::WithinDie) {
            owned = self.spatial.weights_at(loc);
            &owned
        } else {
            &[]
        };
        self.device_form_with_weights(nominal, sensitivity, ty, node, loc, mode, weights)
    }

    /// [`device_form`](Self::device_form) with the location's spatial
    /// weights supplied by the caller (from a
    /// [`SpatialWeightTable`](crate::spatial::SpatialWeightTable) cache),
    /// skipping the per-call taper scan. `weights` must be the
    /// weights of `loc` (ignored outside `WithinDie`); the result is
    /// bitwise what the uncached path builds.
    ///
    /// Terms are pushed in ascending id order — global (`0`), regions
    /// (`1..=R`, the weight order), device (`>R`) — so
    /// `CanonicalForm::with_terms` takes its sorted fast path.
    #[allow(clippy::too_many_arguments)]
    fn device_form_with_weights(
        &self,
        nominal: f64,
        sensitivity: f64,
        ty: BufferTypeId,
        node: NodeId,
        loc: Point,
        mode: VariationMode,
        weights: &[(usize, f64)],
    ) -> CanonicalForm {
        if matches!(mode, VariationMode::Nominal) {
            return CanonicalForm::constant(nominal);
        }
        // Only a WID-aware model sees the systematic intra-die pattern;
        // NOM and D2D optimizers assume the data-sheet nominal everywhere.
        let nominal = if matches!(mode, VariationMode::WithinDie) {
            nominal * (1.0 + self.systematic_shift(loc))
        } else {
            nominal
        };
        let base = nominal * sensitivity;
        let mut terms = Vec::with_capacity(2 + weights.len());
        // Inter-die global source.
        terms.push((self.layout.global(), self.budgets.inter_die * base));
        // Spatially correlated sources.
        if matches!(mode, VariationMode::WithinDie) {
            let coeff = self.budgets.intra_die * base;
            for &(region, w) in weights {
                terms.push((self.layout.region(region), coeff * w));
            }
        }
        // Random per-device source.
        terms.push((self.layout.device(node, ty.0), self.budgets.random * base));
        CanonicalForm::with_terms(nominal, terms)
    }

    /// Precomputes the `(capacitance, delay)` canonical-form pair of
    /// **every** buffer type at **every** candidate location, doing one
    /// spatial taper scan per location instead of one per
    /// `buffer_cap_form`/`buffer_delay_form` call (the DP queries each
    /// node `2 × |library|` times). The outer vector is indexed by
    /// position in `locations`, the inner slice by buffer type id; forms
    /// are bitwise identical to the per-call path.
    #[must_use]
    pub fn precompute_device_forms(
        &self,
        locations: &[(NodeId, Point)],
        mode: VariationMode,
    ) -> DeviceFormTable {
        let mut scratch = Vec::new();
        locations
            .iter()
            .map(|&(node, loc)| {
                if matches!(mode, VariationMode::WithinDie) {
                    self.spatial.weights_into(loc, &mut scratch);
                } else {
                    scratch.clear();
                }
                self.library
                    .iter()
                    .map(|(ty, t)| {
                        (
                            self.device_form_with_weights(
                                t.capacitance,
                                t.cap_sensitivity,
                                ty,
                                node,
                                loc,
                                mode,
                                &scratch,
                            ),
                            self.device_form_with_weights(
                                t.intrinsic_delay,
                                t.delay_sensitivity,
                                ty,
                                node,
                                loc,
                                mode,
                                &scratch,
                            ),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    /// [`precompute_device_forms`](Self::precompute_device_forms) behind
    /// the model's per-net memo: the first call for a `(locations, mode)`
    /// pair computes and stores the table; every later call with the same
    /// candidate set returns the stored `Arc` — the *same* forms, so
    /// repeat runs (governed fallback retries, yield re-evaluation,
    /// per-rule sweeps over one net) are trivially bitwise identical and
    /// skip the spatial taper scan entirely.
    ///
    /// The memo keeps the last [`FORMS_CACHE_CAP`] candidate sets
    /// (mode × sizing variants of one net); an interleaved multi-net
    /// workload simply recomputes, it never gets stale data because the
    /// key is the full location list. Model clones (e.g.
    /// [`for_net`](Self::for_net), which changes device source ids) start
    /// with a cold cache.
    #[must_use]
    pub fn device_forms_cached(
        &self,
        locations: &[(NodeId, Point)],
        mode: VariationMode,
    ) -> Arc<DeviceFormTable> {
        if let Ok(entries) = self.forms_cache.entries.lock() {
            if let Some(e) = entries
                .iter()
                .find(|e| e.mode == mode && e.locations == locations)
            {
                return Arc::clone(&e.table);
            }
        }
        let table = Arc::new(self.precompute_device_forms(locations, mode));
        if let Ok(mut entries) = self.forms_cache.entries.lock() {
            // Re-check under the lock: a racing worker may have inserted
            // the same key; keep the first table so concurrent runs share.
            if let Some(e) = entries
                .iter()
                .find(|e| e.mode == mode && e.locations == locations)
            {
                return Arc::clone(&e.table);
            }
            if entries.len() >= FORMS_CACHE_CAP {
                entries.remove(0);
            }
            entries.push(FormsCacheEntry {
                mode,
                locations: locations.to_vec(),
                table: Arc::clone(&table),
            });
        }
        table
    }

    /// Concrete [`BufferValues`] for one Monte Carlo realization: the
    /// canonical forms of `ty` at `(node, loc)` evaluated on `sample`.
    #[must_use]
    pub fn buffer_values_at(
        &self,
        ty: BufferTypeId,
        node: NodeId,
        loc: Point,
        mode: VariationMode,
        sample: &SampleVector,
    ) -> BufferValues {
        BufferValues {
            capacitance: sample.eval(&self.buffer_cap_form(ty, node, loc, mode)),
            intrinsic_delay: sample.eval(&self.buffer_delay_form(ty, node, loc, mode)),
            resistance: self.buffer_resistance(ty),
        }
    }

    /// Nominal [`BufferValues`] of `ty` (no variation).
    #[must_use]
    pub fn nominal_buffer_values(&self, ty: BufferTypeId) -> BufferValues {
        let t: &BufferType = self.library.get(ty);
        BufferValues {
            capacitance: t.capacitance,
            intrinsic_delay: t.intrinsic_delay,
            resistance: t.resistance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die(side: f64) -> BoundingBox {
        BoundingBox {
            min: Point::new(0.0, 0.0),
            max: Point::new(side, side),
        }
    }

    fn model(kind: SpatialKind) -> ProcessModel {
        ProcessModel::paper_defaults(die(8000.0), kind)
    }

    #[test]
    fn nominal_mode_is_deterministic() {
        let m = model(SpatialKind::Homogeneous);
        let f = m.buffer_cap_form(
            BufferTypeId(0),
            NodeId(3),
            Point::new(100.0, 100.0),
            VariationMode::Nominal,
        );
        assert_eq!(f.term_count(), 0);
        assert_eq!(f.mean(), m.library().get(BufferTypeId(0)).capacitance);
    }

    #[test]
    fn d2d_has_random_and_global_only() {
        let m = model(SpatialKind::Homogeneous);
        let f = m.buffer_delay_form(
            BufferTypeId(1),
            NodeId(5),
            Point::new(4000.0, 4000.0),
            VariationMode::DieToDie,
        );
        assert_eq!(f.term_count(), 2);
        let nominal = m.library().get(BufferTypeId(1)).intrinsic_delay;
        // σ² = (5%·T)² + (5%·T)².
        let expect_var = 2.0 * (0.05 * nominal) * (0.05 * nominal);
        assert!((f.variance() - expect_var).abs() < 1e-9);
        assert!(f.coeff(m.layout().global()) > 0.0);
    }

    #[test]
    fn wid_adds_spatial_variance() {
        let m = model(SpatialKind::Homogeneous);
        let loc = Point::new(4000.0, 4000.0);
        let d2d = m.buffer_cap_form(BufferTypeId(0), NodeId(1), loc, VariationMode::DieToDie);
        let wid = m.buffer_cap_form(BufferTypeId(0), NodeId(1), loc, VariationMode::WithinDie);
        let nominal = m.library().get(BufferTypeId(0)).capacitance;
        // WID applies the systematic shift to the nominal before budgets.
        let shifted = nominal * (1.0 + m.systematic_shift(loc));
        assert!((wid.mean() - shifted).abs() < 1e-9);
        let expect_wid_var = 3.0 * (0.05 * shifted) * (0.05 * shifted); // rand+global+spatial, scale 1
        assert!((wid.variance() - expect_wid_var).abs() < 1e-9);
        assert!(wid.term_count() > d2d.term_count());
        // D2D remains unshifted.
        assert_eq!(d2d.mean(), nominal);
    }

    #[test]
    fn systematic_pattern_shapes() {
        // Heterogeneous: monotone SW→NE ramp from -amp to +amp.
        let m = model(SpatialKind::Heterogeneous);
        let sw = m.systematic_shift(Point::new(0.0, 0.0));
        let center = m.systematic_shift(Point::new(4000.0, 4000.0));
        let ne = m.systematic_shift(Point::new(8000.0, 8000.0));
        assert!((sw + 0.08).abs() < 1e-9, "SW shift {sw}");
        assert!(center.abs() < 1e-9, "center shift {center}");
        assert!((ne - 0.08).abs() < 1e-9, "NE shift {ne}");
        // Homogeneous: radial bowl, slowest at the corners.
        let h = model(SpatialKind::Homogeneous);
        let c = h.systematic_shift(Point::new(4000.0, 4000.0));
        let corner = h.systematic_shift(Point::new(0.0, 0.0));
        assert!(c < 0.0 && corner > 0.0 && corner.abs() <= 0.08 * 0.5 + 1e-9);
    }

    #[test]
    fn heterogeneous_scales_spatial_with_location() {
        let m = model(SpatialKind::Heterogeneous);
        let sw = m.buffer_cap_form(
            BufferTypeId(0),
            NodeId(1),
            Point::new(100.0, 100.0),
            VariationMode::WithinDie,
        );
        let ne = m.buffer_cap_form(
            BufferTypeId(0),
            NodeId(2),
            Point::new(7900.0, 7900.0),
            VariationMode::WithinDie,
        );
        assert!(
            ne.variance() > sw.variance(),
            "NE must vary more: {} vs {}",
            ne.variance(),
            sw.variance()
        );
    }

    #[test]
    fn same_site_same_type_fully_correlated_random() {
        let m = model(SpatialKind::Homogeneous);
        let loc = Point::new(1000.0, 1000.0);
        let a = m.buffer_cap_form(BufferTypeId(0), NodeId(9), loc, VariationMode::DieToDie);
        let b = m.buffer_cap_form(BufferTypeId(0), NodeId(9), loc, VariationMode::DieToDie);
        assert!((a.correlation(&b) - 1.0).abs() < 1e-12);
        // Different node: only the global source is shared.
        let c = m.buffer_cap_form(BufferTypeId(0), NodeId(10), loc, VariationMode::DieToDie);
        let rho = a.correlation(&c);
        assert!((rho - 0.5).abs() < 1e-9, "expected 1/2, got {rho}");
    }

    #[test]
    fn nearby_instances_correlate_through_regions() {
        let m = model(SpatialKind::Homogeneous);
        let a = m.buffer_cap_form(
            BufferTypeId(0),
            NodeId(1),
            Point::new(4000.0, 4000.0),
            VariationMode::WithinDie,
        );
        let near = m.buffer_cap_form(
            BufferTypeId(0),
            NodeId(2),
            Point::new(4200.0, 4000.0),
            VariationMode::WithinDie,
        );
        let far = m.buffer_cap_form(
            BufferTypeId(0),
            NodeId(3),
            Point::new(7900.0, 100.0),
            VariationMode::WithinDie,
        );
        let rho_near = a.correlation(&near);
        let rho_far = a.correlation(&far);
        assert!(rho_near > rho_far, "{rho_near} !> {rho_far}");
        // Far instances still share the global source, so correlation is
        // bounded below by the inter-die fraction but not by spatial terms.
        assert!(rho_far > 0.0 && rho_far < 0.5);
    }

    #[test]
    fn precomputed_device_forms_match_per_call_path_bitwise() {
        for kind in [SpatialKind::Homogeneous, SpatialKind::Heterogeneous] {
            let m = model(kind);
            let locations = [
                (NodeId(1), Point::new(100.0, 100.0)),
                (NodeId(7), Point::new(4000.0, 4000.0)),
                (NodeId(12), Point::new(7900.0, 7900.0)),
            ];
            for mode in [
                VariationMode::Nominal,
                VariationMode::DieToDie,
                VariationMode::WithinDie,
            ] {
                let table = m.precompute_device_forms(&locations, mode);
                assert_eq!(table.len(), locations.len());
                for (slot, &(node, loc)) in locations.iter().enumerate() {
                    assert_eq!(table[slot].len(), m.library().len());
                    for (ty, _) in m.library().iter() {
                        let (cap, delay) = &table[slot][ty.0];
                        assert_eq!(*cap, m.buffer_cap_form(ty, node, loc, mode));
                        assert_eq!(*delay, m.buffer_delay_form(ty, node, loc, mode));
                    }
                }
            }
        }
    }

    #[test]
    fn cached_device_forms_share_one_table_and_match_pure_path() {
        let m = model(SpatialKind::Heterogeneous);
        let locations = [
            (NodeId(1), Point::new(100.0, 100.0)),
            (NodeId(7), Point::new(4000.0, 4000.0)),
        ];
        let first = m.device_forms_cached(&locations, VariationMode::WithinDie);
        let second = m.device_forms_cached(&locations, VariationMode::WithinDie);
        // Repeat runs on one net get the *same* table, not a recompute.
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(
            *first,
            m.precompute_device_forms(&locations, VariationMode::WithinDie)
        );
        // A different mode is a different key, served alongside the first.
        let d2d = m.device_forms_cached(&locations, VariationMode::DieToDie);
        assert!(!Arc::ptr_eq(&first, &d2d));
        assert!(Arc::ptr_eq(
            &first,
            &m.device_forms_cached(&locations, VariationMode::WithinDie)
        ));
        // Clones (e.g. `for_net`, which changes device ids) start cold.
        let clone = m.for_net(3);
        let cloned = clone.device_forms_cached(&locations, VariationMode::WithinDie);
        assert!(!Arc::ptr_eq(&first, &cloned));
        assert_eq!(
            *cloned,
            clone.precompute_device_forms(&locations, VariationMode::WithinDie)
        );
    }

    #[test]
    fn mc_values_match_forms() {
        let m = model(SpatialKind::Homogeneous);
        let loc = Point::new(2000.0, 2000.0);
        let mut sample = SampleVector::new();
        sample.set(m.layout().global(), 1.0);
        let v = m.buffer_values_at(
            BufferTypeId(0),
            NodeId(4),
            loc,
            VariationMode::DieToDie,
            &sample,
        );
        let t = m.library().get(BufferTypeId(0));
        // Global at +1σ shifts cap by 5% of nominal.
        assert!((v.capacitance - t.capacitance * 1.05).abs() < 1e-9);
        assert_eq!(v.resistance, t.resistance);
        // Nominal values helper.
        let nv = m.nominal_buffer_values(BufferTypeId(0));
        assert_eq!(nv.capacitance, t.capacitance);
    }
}
