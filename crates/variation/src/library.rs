//! Buffer libraries.
//!
//! Each [`BufferType`] carries the nominal device characteristics of
//! Section 3 — gate capacitance `C_b`, intrinsic delay `T_b`, and output
//! resistance `R_b` — plus the *relative* first-order sensitivities of
//! `C_b` and `T_b` to the underlying parametric variation. Following the
//! paper, `R_b` is kept deterministic and all variation is lumped into
//! `C_b` and `T_b`.

use std::fmt;

/// Index of a buffer type inside its [`BufferLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferTypeId(pub usize);

/// A [`BufferTypeId`] that does not exist in the library it was used
/// against — typically a stale or corrupted id in an externally supplied
/// buffer assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownBufferType {
    /// The offending id.
    pub id: BufferTypeId,
    /// Number of types in the library that rejected it.
    pub library_len: usize,
}

impl fmt::Display for UnknownBufferType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer type {} is out of range for a library of {} types",
            self.id, self.library_len
        )
    }
}

impl std::error::Error for UnknownBufferType {}

impl fmt::Display for BufferTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// One buffer cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferType {
    /// Cell name.
    pub name: String,
    /// Nominal input capacitance `C_b0`, fF.
    pub capacitance: f64,
    /// Nominal intrinsic delay `T_b0`, ps.
    pub intrinsic_delay: f64,
    /// Output resistance `R_b`, kΩ (deterministic, per the paper).
    pub resistance: f64,
    /// Relative sensitivity of `C_b` per unit of underlying variation
    /// (dimensionless; the σ budgets multiply it).
    pub cap_sensitivity: f64,
    /// Relative sensitivity of `T_b` per unit of underlying variation.
    pub delay_sensitivity: f64,
    /// Maximum downstream capacitance this cell may drive, fF
    /// (`None` = unconstrained). The optimizers skip buffered candidates
    /// that would violate it; the classic electrical proxy for slew
    /// limits in buffer insertion.
    pub max_load: Option<f64>,
}

impl BufferType {
    /// A buffer with unit relative sensitivities — variation budgets apply
    /// directly as fractions of nominal.
    #[must_use]
    pub fn with_unit_sensitivity(
        name: impl Into<String>,
        capacitance: f64,
        intrinsic_delay: f64,
        resistance: f64,
    ) -> Self {
        Self {
            name: name.into(),
            capacitance,
            intrinsic_delay,
            resistance,
            cap_sensitivity: 1.0,
            delay_sensitivity: 1.0,
            max_load: None,
        }
    }

    /// Returns the type with a maximum-load (drive-strength) constraint.
    ///
    /// # Panics
    ///
    /// Panics if `max_load` is not strictly positive and finite.
    #[must_use]
    pub fn with_max_load(mut self, max_load: f64) -> Self {
        assert!(
            max_load.is_finite() && max_load > 0.0,
            "max load must be positive and finite, got {max_load}"
        );
        self.max_load = Some(max_load);
        self
    }
}

/// An ordered collection of buffer types (`B` in the paper's `O(B·N²)`).
#[derive(Debug, Clone, PartialEq)]
pub struct BufferLibrary {
    types: Vec<BufferType>,
}

impl BufferLibrary {
    /// Builds a library from a non-empty type list.
    ///
    /// # Panics
    ///
    /// Panics if `types` is empty or any electrical value is non-positive
    /// or non-finite.
    #[must_use]
    pub fn new(types: Vec<BufferType>) -> Self {
        assert!(!types.is_empty(), "a buffer library cannot be empty");
        for t in &types {
            assert!(
                t.capacitance > 0.0
                    && t.capacitance.is_finite()
                    && t.intrinsic_delay > 0.0
                    && t.intrinsic_delay.is_finite()
                    && t.resistance > 0.0
                    && t.resistance.is_finite(),
                "buffer `{}` has invalid electrical values",
                t.name
            );
        }
        Self { types }
    }

    /// A representative 65 nm library with three drive strengths.
    #[must_use]
    pub fn default_65nm() -> Self {
        Self::new(vec![
            BufferType::with_unit_sensitivity("bufx1", 11.7, 40.0, 0.36),
            BufferType::with_unit_sensitivity("bufx2", 23.4, 36.4, 0.18),
            BufferType::with_unit_sensitivity("bufx4", 46.8, 33.0, 0.09),
        ])
    }

    /// A single-type library (the classic van Ginneken setting).
    #[must_use]
    pub fn single_65nm() -> Self {
        Self::new(vec![BufferType::with_unit_sensitivity(
            "bufx2", 23.4, 36.4, 0.18,
        )])
    }

    /// Number of types (`B`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the library is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The type at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range. Use [`try_get`](Self::try_get)
    /// when the id comes from outside the optimizer (a stored design, a
    /// user-assembled assignment).
    #[must_use]
    pub fn get(&self, id: BufferTypeId) -> &BufferType {
        match self.try_get(id) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible lookup of the type at `id`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownBufferType`] if `id` is out of range.
    pub fn try_get(&self, id: BufferTypeId) -> Result<&BufferType, UnknownBufferType> {
        self.types.get(id.0).ok_or(UnknownBufferType {
            id,
            library_len: self.types.len(),
        })
    }

    /// Iterator over `(BufferTypeId, &BufferType)`.
    pub fn iter(&self) -> impl Iterator<Item = (BufferTypeId, &BufferType)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (BufferTypeId(i), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_has_three_sizes() {
        let lib = BufferLibrary::default_65nm();
        assert_eq!(lib.len(), 3);
        // Larger buffers: more cap, less resistance.
        let caps: Vec<f64> = lib.iter().map(|(_, t)| t.capacitance).collect();
        let ress: Vec<f64> = lib.iter().map(|(_, t)| t.resistance).collect();
        assert!(caps.windows(2).all(|w| w[0] < w[1]));
        assert!(ress.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn single_library() {
        let lib = BufferLibrary::single_65nm();
        assert_eq!(lib.len(), 1);
        assert!(!lib.is_empty());
        assert_eq!(lib.get(BufferTypeId(0)).name, "bufx2");
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_library_rejected() {
        let _ = BufferLibrary::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid electrical values")]
    fn bad_values_rejected() {
        let _ = BufferLibrary::new(vec![BufferType::with_unit_sensitivity(
            "bad", -1.0, 10.0, 0.1,
        )]);
    }

    #[test]
    fn display_of_type_id() {
        assert_eq!(BufferTypeId(2).to_string(), "B2");
    }

    #[test]
    fn try_get_reports_out_of_range_ids() {
        let lib = BufferLibrary::default_65nm();
        assert_eq!(lib.try_get(BufferTypeId(1)).unwrap().name, "bufx2");
        let e = lib.try_get(BufferTypeId(9)).unwrap_err();
        assert_eq!(e.id, BufferTypeId(9));
        assert_eq!(e.library_len, 3);
        assert!(e.to_string().contains("out of range"), "{e}");
    }
}
