//! Intra-die spatial correlation model.
//!
//! The die is partitioned into a square grid of regions (500 µm cells in
//! the paper, Section 5.1), each carrying one independent `N(0,1)` source
//! `Y_i`. A device at location `p` is influenced by every region whose
//! center lies within the taper radius, with isotropic Gaussian weights
//! that fall off with distance and vanish at about 2 mm. Two devices that
//! are close share many regions (high correlation); distant devices share
//! none (Figure 4 of the paper).
//!
//! Weights are normalized so the *total* spatial standard deviation at any
//! location equals a target scale: uniform across the die for the
//! **homogeneous** model, or ramping linearly from 0.5× at the south-west
//! corner to 1.5× at the north-east corner for the **heterogeneous** model
//! (the paper's "linearly increasing fashion").

use varbuf_rctree::geom::{BoundingBox, Point};

/// Which budget-distribution pattern the die uses (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialKind {
    /// Every region has the same variance scale.
    Homogeneous,
    /// Variance scale ramps linearly from SW (0.5×) to NE (1.5×).
    Heterogeneous,
}

/// The spatial grid plus weight computation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialModel {
    kind: SpatialKind,
    origin: Point,
    cols: usize,
    rows: usize,
    cell_um: f64,
    taper_um: f64,
    die_diag: f64,
}

impl SpatialModel {
    /// Builds a grid covering `die` with `cell_um`-sized cells and a
    /// Gaussian weight taper that reaches ≈`e⁻²` at `taper_um`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_um` or `taper_um` is not strictly positive.
    #[must_use]
    pub fn new(die: BoundingBox, kind: SpatialKind, cell_um: f64, taper_um: f64) -> Self {
        assert!(cell_um > 0.0, "cell size must be positive");
        assert!(taper_um > 0.0, "taper distance must be positive");
        let cols = ((die.width() / cell_um).ceil() as usize).max(1);
        let rows = ((die.height() / cell_um).ceil() as usize).max(1);
        Self {
            kind,
            origin: die.min,
            cols,
            rows,
            cell_um,
            taper_um,
            die_diag: die.width() + die.height(),
        }
    }

    /// The paper's configuration: 500 µm grid, ~2 mm taper.
    #[must_use]
    pub fn paper_defaults(die: BoundingBox, kind: SpatialKind) -> Self {
        Self::new(die, kind, 500.0, 2_000.0)
    }

    /// Number of regions (grid cells).
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.cols * self.rows
    }

    /// The grid dimensions `(cols, rows)`.
    #[must_use]
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// The `SpatialKind` this model was built with.
    #[must_use]
    pub fn kind(&self) -> SpatialKind {
        self.kind
    }

    /// Center of region `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.region_count()`.
    #[must_use]
    pub fn region_center(&self, i: usize) -> Point {
        assert!(i < self.region_count(), "region {i} out of range");
        let col = i % self.cols;
        let row = i / self.cols;
        Point::new(
            self.origin.x + (col as f64 + 0.5) * self.cell_um,
            self.origin.y + (row as f64 + 0.5) * self.cell_um,
        )
    }

    /// The region containing `p` (clamped to the grid).
    #[must_use]
    pub fn region_of(&self, p: Point) -> usize {
        let col = (((p.x - self.origin.x) / self.cell_um) as isize).clamp(0, self.cols as isize - 1)
            as usize;
        let row = (((p.y - self.origin.y) / self.cell_um) as isize).clamp(0, self.rows as isize - 1)
            as usize;
        row * self.cols + col
    }

    /// The location-dependent variance scale: `1.0` everywhere for the
    /// homogeneous model; `0.5 → 1.5` linearly SW→NE for the heterogeneous
    /// one.
    #[must_use]
    pub fn scale_at(&self, p: Point) -> f64 {
        match self.kind {
            SpatialKind::Homogeneous => 1.0,
            SpatialKind::Heterogeneous => {
                if self.die_diag <= 0.0 {
                    return 1.0;
                }
                let t = ((p.x - self.origin.x) + (p.y - self.origin.y)) / self.die_diag;
                0.5 + t.clamp(0.0, 1.0)
            }
        }
    }

    /// The *systematic* intra-die pattern at `p`, normalized to `[-1, 1]`.
    ///
    /// Intra-die variation has a deterministic, repeatable component on
    /// top of the random one — Section 3.2 of the paper attributes it to
    /// optical lens distortion ("differences depending on distance from
    /// the center of the lens") and the stepper's SW→NE exposure
    /// gradient. The pattern returned here is multiplied by the
    /// systematic budget in `ProcessModel` to shift device nominals:
    ///
    /// * heterogeneous: the paper's linear SW→NE ramp, `-1` at the SW
    ///   corner to `+1` at the NE corner;
    /// * homogeneous: a milder radial (lens-distortion) bowl, `-0.5` at
    ///   the die center to `+0.5` at the corners.
    #[must_use]
    pub fn systematic_pattern(&self, p: Point) -> f64 {
        match self.kind {
            SpatialKind::Heterogeneous => {
                if self.die_diag <= 0.0 {
                    return 0.0;
                }
                let t = ((p.x - self.origin.x) + (p.y - self.origin.y)) / self.die_diag;
                2.0 * t.clamp(0.0, 1.0) - 1.0
            }
            SpatialKind::Homogeneous => {
                let cx = self.origin.x + self.cols as f64 * self.cell_um / 2.0;
                let cy = self.origin.y + self.rows as f64 * self.cell_um / 2.0;
                let dmax = Point::new(cx, cy)
                    .euclid(self.origin)
                    .max(f64::MIN_POSITIVE);
                let d = p.euclid(Point::new(cx, cy)).min(dmax);
                let unit = d / dmax;
                0.5 * (2.0 * unit * unit - 1.0)
            }
        }
    }

    /// The normalized region weights for a device at `p`:
    /// `(region index, coefficient)` pairs such that
    /// `Σ coeff² = scale_at(p)²`.
    ///
    /// Multiplying each coefficient by the per-category sigma budget gives
    /// the canonical-form sensitivities of eq. (21)–(24).
    ///
    /// Allocates a fresh vector per call; the hot path uses
    /// [`weights_into`](Self::weights_into) with a recycled buffer.
    #[must_use]
    pub fn weights_at(&self, p: Point) -> Vec<(usize, f64)> {
        let mut weights = Vec::new();
        self.weights_into(p, &mut weights);
        weights
    }

    /// [`weights_at`](Self::weights_at) writing into a caller-provided
    /// buffer (cleared first), so repeated queries reuse one allocation.
    ///
    /// The weights are pushed in ascending region-index order (the grid
    /// scan is row-major), which downstream code relies on for sorted
    /// merges.
    pub fn weights_into(&self, p: Point, weights: &mut Vec<(usize, f64)>) {
        weights.clear();
        // Visit the cells within the taper radius of p.
        let sigma = self.taper_um / 2.0; // weight = e^{-2} at the taper edge
        let reach = (self.taper_um / self.cell_um).ceil() as isize;
        let pc = self.region_of(p);
        let (pcol, prow) = ((pc % self.cols) as isize, (pc / self.cols) as isize);

        // The in-range window, clamped to the grid up front so the inner
        // loop carries no bounds checks. Row-major, exactly the order the
        // old `-reach..=reach` double loop visited its surviving cells.
        let col_lo = pcol.saturating_sub(reach).max(0) as usize;
        let col_hi = ((pcol + reach).min(self.cols as isize - 1)).max(0) as usize;
        let row_lo = prow.saturating_sub(reach).max(0) as usize;
        let row_hi = ((prow + reach).min(self.rows as isize - 1)).max(0) as usize;

        // Distances are computed from the inlined center coordinates —
        // the same `origin + (index + 0.5)·cell` expression as
        // `region_center`, with the row term `dy²` hoisted out of the
        // column loop; `dx·dx + dy²` then matches `euclid`'s
        // `dx·dx + dy·dy` operation-for-operation, so every weight keeps
        // the exact bits of the original per-cell scan.
        let denom = 2.0 * sigma * sigma;
        let mut sum_sq = 0.0;
        for row in row_lo..=row_hi {
            let cy = self.origin.y + (row as f64 + 0.5) * self.cell_um;
            let dy = p.y - cy;
            let dy2 = dy * dy;
            let base = row * self.cols;
            for col in col_lo..=col_hi {
                let cx = self.origin.x + (col as f64 + 0.5) * self.cell_um;
                let dx = p.x - cx;
                let d = (dx * dx + dy2).sqrt();
                if d > self.taper_um {
                    continue;
                }
                let w = (-d * d / denom).exp();
                sum_sq += w * w;
                weights.push((base + col, w));
            }
        }
        // The containing cell is always within the taper, so sum_sq > 0.
        let norm = self.scale_at(p) / sum_sq.sqrt();
        for (_, w) in weights.iter_mut() {
            *w *= norm;
        }
    }

    /// The spatial correlation between two device locations — the dot
    /// product of their normalized weight vectors divided by their norms.
    ///
    /// `1.0` for co-located devices, decaying to `0.0` beyond ~2× taper.
    #[must_use]
    pub fn correlation(&self, a: Point, b: Point) -> f64 {
        let wa = self.weights_at(a);
        let wb = self.weights_at(b);
        correlation_of_weights(&wa, &wb)
    }
}

/// Correlation of two normalized weight vectors (each sorted ascending by
/// region index, as [`SpatialModel::weights_into`] produces them): their
/// dot product over shared regions divided by the product of their norms,
/// clamped to `[-1, 1]`.
fn correlation_of_weights(wa: &[(usize, f64)], wb: &[(usize, f64)]) -> f64 {
    let na: f64 = wa.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
    let nb: f64 = wb.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    // Sorted merge over the shared regions, accumulating in `wa` order —
    // the same order (ascending region index) the old hash-lookup walk
    // visited. Starts at `-0.0` like `Sum`'s fold so a disjoint pair
    // keeps the exact bits of the previous implementation.
    let mut dot = -0.0;
    let (mut i, mut j) = (0, 0);
    while i < wa.len() && j < wb.len() {
        let (ra, x) = wa[i];
        let (rb, y) = wb[j];
        match ra.cmp(&rb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += x * y;
                i += 1;
                j += 1;
            }
        }
    }
    (dot / (na * nb)).clamp(-1.0, 1.0)
}

/// Precomputed region weights for a fixed set of candidate locations.
///
/// Buffer-insertion candidate sites are fixed before the DP starts, so a
/// run can compute every location's taper scan **once** and serve all
/// later queries from a flat arena — replacing the per-call `Vec`
/// allocation (and 81-cell exp/distance scan) `weights_at` performs.
/// Weight slices keep the ascending region-index order of
/// [`SpatialModel::weights_into`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialWeightTable {
    /// `offsets[i]..offsets[i+1]` delimits location `i`'s weights.
    offsets: Vec<usize>,
    weights: Vec<(usize, f64)>,
}

impl SpatialWeightTable {
    /// Precomputes the weights of every location (indexed by position).
    #[must_use]
    pub fn new(model: &SpatialModel, locations: &[Point]) -> Self {
        let mut offsets = Vec::with_capacity(locations.len() + 1);
        offsets.push(0);
        let mut weights = Vec::new();
        let mut scratch = Vec::new();
        for &p in locations {
            model.weights_into(p, &mut scratch);
            weights.extend_from_slice(&scratch);
            offsets.push(weights.len());
        }
        Self { offsets, weights }
    }

    /// Number of cached locations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the table holds no locations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached `(region, coefficient)` weights of location `i` —
    /// bitwise the slice `weights_at` would return for the same point.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn weights(&self, i: usize) -> &[(usize, f64)] {
        &self.weights[self.offsets[i]..self.offsets[i + 1]]
    }
}

/// Memoized pairwise spatial correlations over a fixed location set.
///
/// Stores the full symmetric matrix (one `f64` per ordered pair), so a
/// query is a single indexed load — no weight scan, no allocation. Values
/// are bitwise what [`SpatialModel::correlation`] returns for the same
/// point pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationTable {
    n: usize,
    rho: Vec<f64>,
}

impl CorrelationTable {
    /// Precomputes all pairwise correlations of `locations`.
    #[must_use]
    pub fn new(model: &SpatialModel, locations: &[Point]) -> Self {
        Self::from_weights(&SpatialWeightTable::new(model, locations))
    }

    /// Builds the table from an existing weight cache (each diagonal
    /// entry is still computed through the shared kernel so degenerate
    /// zero-norm locations stay at `0.0`, exactly like the direct path).
    #[must_use]
    pub fn from_weights(table: &SpatialWeightTable) -> Self {
        let n = table.len();
        let mut rho = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let c = correlation_of_weights(table.weights(i), table.weights(j));
                rho[i * n + j] = c;
                rho[j * n + i] = c;
            }
        }
        Self { n, rho }
    }

    /// Number of locations the table covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table covers no locations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The memoized correlation between locations `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "location index out of range");
        self.rho[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die(side: f64) -> BoundingBox {
        BoundingBox {
            min: Point::new(0.0, 0.0),
            max: Point::new(side, side),
        }
    }

    #[test]
    fn grid_dimensions() {
        let m = SpatialModel::paper_defaults(die(5000.0), SpatialKind::Homogeneous);
        assert_eq!(m.grid_dims(), (10, 10));
        assert_eq!(m.region_count(), 100);
    }

    #[test]
    fn region_lookup_roundtrip() {
        let m = SpatialModel::paper_defaults(die(5000.0), SpatialKind::Homogeneous);
        for i in [0usize, 5, 42, 99] {
            let c = m.region_center(i);
            assert_eq!(m.region_of(c), i);
        }
        // Clamping outside the die.
        assert_eq!(m.region_of(Point::new(-100.0, -100.0)), 0);
        assert_eq!(m.region_of(Point::new(9e9, 9e9)), 99);
    }

    #[test]
    fn homogeneous_weights_are_unit_norm() {
        let m = SpatialModel::paper_defaults(die(8000.0), SpatialKind::Homogeneous);
        for p in [
            Point::new(4000.0, 4000.0),
            Point::new(100.0, 100.0),
            Point::new(7900.0, 50.0),
        ] {
            let w = m.weights_at(p);
            let sum_sq: f64 = w.iter().map(|&(_, c)| c * c).sum();
            assert!((sum_sq - 1.0).abs() < 1e-9, "at {p}: {sum_sq}");
            assert!(!w.is_empty());
        }
    }

    #[test]
    fn heterogeneous_ramps_sw_to_ne() {
        let m = SpatialModel::paper_defaults(die(8000.0), SpatialKind::Heterogeneous);
        let sw = m.scale_at(Point::new(0.0, 0.0));
        let center = m.scale_at(Point::new(4000.0, 4000.0));
        let ne = m.scale_at(Point::new(8000.0, 8000.0));
        assert!((sw - 0.5).abs() < 1e-9);
        assert!((center - 1.0).abs() < 1e-9);
        assert!((ne - 1.5).abs() < 1e-9);
        // Weight norms match the scale.
        let w = m.weights_at(Point::new(8000.0, 8000.0));
        let sum_sq: f64 = w.iter().map(|&(_, c)| c * c).sum();
        assert!((sum_sq.sqrt() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn nearby_devices_correlate_far_ones_do_not() {
        // Figure 4's qualitative behavior.
        let m = SpatialModel::paper_defaults(die(10_000.0), SpatialKind::Homogeneous);
        let a = Point::new(5000.0, 5000.0);
        let near = Point::new(5300.0, 5000.0);
        let mid = Point::new(6500.0, 5000.0);
        let far = Point::new(9900.0, 200.0);
        let c_self = m.correlation(a, a);
        let c_near = m.correlation(a, near);
        let c_mid = m.correlation(a, mid);
        let c_far = m.correlation(a, far);
        assert!((c_self - 1.0).abs() < 1e-9);
        assert!(c_near > 0.7, "near correlation {c_near}");
        assert!(c_mid < c_near && c_mid > 0.0, "mid correlation {c_mid}");
        assert_eq!(c_far, 0.0, "far correlation {c_far}");
    }

    #[test]
    fn correlation_decreases_with_distance() {
        let m = SpatialModel::paper_defaults(die(10_000.0), SpatialKind::Homogeneous);
        let a = Point::new(5000.0, 5000.0);
        let mut prev = 1.1;
        for d in [0.0, 250.0, 500.0, 1000.0, 1500.0, 2000.0, 3000.0, 4500.0] {
            let c = m.correlation(a, Point::new(5000.0 + d, 5000.0));
            assert!(c <= prev + 1e-9, "correlation rose at d={d}: {c} > {prev}");
            prev = c;
        }
    }

    #[test]
    fn tiny_die_single_region() {
        let m = SpatialModel::paper_defaults(die(200.0), SpatialKind::Homogeneous);
        assert_eq!(m.region_count(), 1);
        let w = m.weights_at(Point::new(100.0, 100.0));
        assert_eq!(w.len(), 1);
        assert!((w[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_rejected() {
        let _ = SpatialModel::new(die(100.0), SpatialKind::Homogeneous, 0.0, 100.0);
    }

    #[test]
    fn weights_into_matches_weights_at_bitwise() {
        let m = SpatialModel::paper_defaults(die(8000.0), SpatialKind::Heterogeneous);
        let mut buf = vec![(999usize, 1.23)]; // stale content must be cleared
        for p in [
            Point::new(0.0, 0.0),
            Point::new(4000.0, 4000.0),
            Point::new(7900.0, 50.0),
        ] {
            m.weights_into(p, &mut buf);
            let fresh = m.weights_at(p);
            assert_eq!(buf.len(), fresh.len());
            for (a, b) in buf.iter().zip(&fresh) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
            // Ascending region order, the contract sorted merges rely on.
            assert!(buf.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn weight_table_caches_every_location() {
        let m = SpatialModel::paper_defaults(die(10_000.0), SpatialKind::Homogeneous);
        let locs = [
            Point::new(500.0, 500.0),
            Point::new(5000.0, 5000.0),
            Point::new(9900.0, 100.0),
        ];
        let table = SpatialWeightTable::new(&m, &locs);
        assert_eq!(table.len(), locs.len());
        assert!(!table.is_empty());
        for (i, &p) in locs.iter().enumerate() {
            let direct = m.weights_at(p);
            let cached = table.weights(i);
            assert_eq!(cached.len(), direct.len());
            for (a, b) in cached.iter().zip(&direct) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }

    #[test]
    fn correlation_table_matches_direct_queries_bitwise() {
        let m = SpatialModel::paper_defaults(die(10_000.0), SpatialKind::Heterogeneous);
        let locs = [
            Point::new(5000.0, 5000.0),
            Point::new(5300.0, 5000.0),
            Point::new(6500.0, 5000.0),
            Point::new(9900.0, 200.0),
        ];
        let table = CorrelationTable::new(&m, &locs);
        assert_eq!(table.len(), locs.len());
        for i in 0..locs.len() {
            for j in 0..locs.len() {
                let direct = m.correlation(locs[i], locs[j]);
                let cached = table.correlation(i, j);
                assert_eq!(
                    cached.to_bits(),
                    direct.to_bits(),
                    "pair ({i}, {j}): {cached} vs {direct}"
                );
                // Symmetry of the memoized matrix.
                assert_eq!(cached.to_bits(), table.correlation(j, i).to_bits());
            }
        }
        assert!((table.correlation(0, 0) - 1.0).abs() < 1e-9);
    }
}
