//! Intra-die spatial correlation model.
//!
//! The die is partitioned into a square grid of regions (500 µm cells in
//! the paper, Section 5.1), each carrying one independent `N(0,1)` source
//! `Y_i`. A device at location `p` is influenced by every region whose
//! center lies within the taper radius, with isotropic Gaussian weights
//! that fall off with distance and vanish at about 2 mm. Two devices that
//! are close share many regions (high correlation); distant devices share
//! none (Figure 4 of the paper).
//!
//! Weights are normalized so the *total* spatial standard deviation at any
//! location equals a target scale: uniform across the die for the
//! **homogeneous** model, or ramping linearly from 0.5× at the south-west
//! corner to 1.5× at the north-east corner for the **heterogeneous** model
//! (the paper's "linearly increasing fashion").

use varbuf_rctree::geom::{BoundingBox, Point};

/// Which budget-distribution pattern the die uses (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialKind {
    /// Every region has the same variance scale.
    Homogeneous,
    /// Variance scale ramps linearly from SW (0.5×) to NE (1.5×).
    Heterogeneous,
}

/// The spatial grid plus weight computation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialModel {
    kind: SpatialKind,
    origin: Point,
    cols: usize,
    rows: usize,
    cell_um: f64,
    taper_um: f64,
    die_diag: f64,
}

impl SpatialModel {
    /// Builds a grid covering `die` with `cell_um`-sized cells and a
    /// Gaussian weight taper that reaches ≈`e⁻²` at `taper_um`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_um` or `taper_um` is not strictly positive.
    #[must_use]
    pub fn new(die: BoundingBox, kind: SpatialKind, cell_um: f64, taper_um: f64) -> Self {
        assert!(cell_um > 0.0, "cell size must be positive");
        assert!(taper_um > 0.0, "taper distance must be positive");
        let cols = ((die.width() / cell_um).ceil() as usize).max(1);
        let rows = ((die.height() / cell_um).ceil() as usize).max(1);
        Self {
            kind,
            origin: die.min,
            cols,
            rows,
            cell_um,
            taper_um,
            die_diag: die.width() + die.height(),
        }
    }

    /// The paper's configuration: 500 µm grid, ~2 mm taper.
    #[must_use]
    pub fn paper_defaults(die: BoundingBox, kind: SpatialKind) -> Self {
        Self::new(die, kind, 500.0, 2_000.0)
    }

    /// Number of regions (grid cells).
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.cols * self.rows
    }

    /// The grid dimensions `(cols, rows)`.
    #[must_use]
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// The `SpatialKind` this model was built with.
    #[must_use]
    pub fn kind(&self) -> SpatialKind {
        self.kind
    }

    /// Center of region `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.region_count()`.
    #[must_use]
    pub fn region_center(&self, i: usize) -> Point {
        assert!(i < self.region_count(), "region {i} out of range");
        let col = i % self.cols;
        let row = i / self.cols;
        Point::new(
            self.origin.x + (col as f64 + 0.5) * self.cell_um,
            self.origin.y + (row as f64 + 0.5) * self.cell_um,
        )
    }

    /// The region containing `p` (clamped to the grid).
    #[must_use]
    pub fn region_of(&self, p: Point) -> usize {
        let col = (((p.x - self.origin.x) / self.cell_um) as isize).clamp(0, self.cols as isize - 1)
            as usize;
        let row = (((p.y - self.origin.y) / self.cell_um) as isize).clamp(0, self.rows as isize - 1)
            as usize;
        row * self.cols + col
    }

    /// The location-dependent variance scale: `1.0` everywhere for the
    /// homogeneous model; `0.5 → 1.5` linearly SW→NE for the heterogeneous
    /// one.
    #[must_use]
    pub fn scale_at(&self, p: Point) -> f64 {
        match self.kind {
            SpatialKind::Homogeneous => 1.0,
            SpatialKind::Heterogeneous => {
                if self.die_diag <= 0.0 {
                    return 1.0;
                }
                let t = ((p.x - self.origin.x) + (p.y - self.origin.y)) / self.die_diag;
                0.5 + t.clamp(0.0, 1.0)
            }
        }
    }

    /// The *systematic* intra-die pattern at `p`, normalized to `[-1, 1]`.
    ///
    /// Intra-die variation has a deterministic, repeatable component on
    /// top of the random one — Section 3.2 of the paper attributes it to
    /// optical lens distortion ("differences depending on distance from
    /// the center of the lens") and the stepper's SW→NE exposure
    /// gradient. The pattern returned here is multiplied by the
    /// systematic budget in `ProcessModel` to shift device nominals:
    ///
    /// * heterogeneous: the paper's linear SW→NE ramp, `-1` at the SW
    ///   corner to `+1` at the NE corner;
    /// * homogeneous: a milder radial (lens-distortion) bowl, `-0.5` at
    ///   the die center to `+0.5` at the corners.
    #[must_use]
    pub fn systematic_pattern(&self, p: Point) -> f64 {
        match self.kind {
            SpatialKind::Heterogeneous => {
                if self.die_diag <= 0.0 {
                    return 0.0;
                }
                let t = ((p.x - self.origin.x) + (p.y - self.origin.y)) / self.die_diag;
                2.0 * t.clamp(0.0, 1.0) - 1.0
            }
            SpatialKind::Homogeneous => {
                let cx = self.origin.x + self.cols as f64 * self.cell_um / 2.0;
                let cy = self.origin.y + self.rows as f64 * self.cell_um / 2.0;
                let dmax = Point::new(cx, cy)
                    .euclid(self.origin)
                    .max(f64::MIN_POSITIVE);
                let d = p.euclid(Point::new(cx, cy)).min(dmax);
                let unit = d / dmax;
                0.5 * (2.0 * unit * unit - 1.0)
            }
        }
    }

    /// The normalized region weights for a device at `p`:
    /// `(region index, coefficient)` pairs such that
    /// `Σ coeff² = scale_at(p)²`.
    ///
    /// Multiplying each coefficient by the per-category sigma budget gives
    /// the canonical-form sensitivities of eq. (21)–(24).
    #[must_use]
    pub fn weights_at(&self, p: Point) -> Vec<(usize, f64)> {
        // Visit the cells within the taper radius of p.
        let sigma = self.taper_um / 2.0; // weight = e^{-2} at the taper edge
        let reach = (self.taper_um / self.cell_um).ceil() as isize;
        let pc = self.region_of(p);
        let (pcol, prow) = ((pc % self.cols) as isize, (pc / self.cols) as isize);

        let mut weights = Vec::new();
        let mut sum_sq = 0.0;
        for dr in -reach..=reach {
            for dc in -reach..=reach {
                let col = pcol + dc;
                let row = prow + dr;
                if col < 0 || row < 0 || col >= self.cols as isize || row >= self.rows as isize {
                    continue;
                }
                let idx = row as usize * self.cols + col as usize;
                let d = p.euclid(self.region_center(idx));
                if d > self.taper_um {
                    continue;
                }
                let w = (-d * d / (2.0 * sigma * sigma)).exp();
                sum_sq += w * w;
                weights.push((idx, w));
            }
        }
        // The containing cell is always within the taper, so sum_sq > 0.
        let norm = self.scale_at(p) / sum_sq.sqrt();
        for (_, w) in &mut weights {
            *w *= norm;
        }
        weights
    }

    /// The spatial correlation between two device locations — the dot
    /// product of their normalized weight vectors divided by their norms.
    ///
    /// `1.0` for co-located devices, decaying to `0.0` beyond ~2× taper.
    #[must_use]
    pub fn correlation(&self, a: Point, b: Point) -> f64 {
        let wa = self.weights_at(a);
        let wb = self.weights_at(b);
        let na: f64 = wa.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        let nb: f64 = wb.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        let b_by_region: std::collections::HashMap<usize, f64> = wb.into_iter().collect();
        let dot: f64 = wa
            .iter()
            .filter_map(|&(i, w)| b_by_region.get(&i).map(|&v| v * w))
            .sum();
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die(side: f64) -> BoundingBox {
        BoundingBox {
            min: Point::new(0.0, 0.0),
            max: Point::new(side, side),
        }
    }

    #[test]
    fn grid_dimensions() {
        let m = SpatialModel::paper_defaults(die(5000.0), SpatialKind::Homogeneous);
        assert_eq!(m.grid_dims(), (10, 10));
        assert_eq!(m.region_count(), 100);
    }

    #[test]
    fn region_lookup_roundtrip() {
        let m = SpatialModel::paper_defaults(die(5000.0), SpatialKind::Homogeneous);
        for i in [0usize, 5, 42, 99] {
            let c = m.region_center(i);
            assert_eq!(m.region_of(c), i);
        }
        // Clamping outside the die.
        assert_eq!(m.region_of(Point::new(-100.0, -100.0)), 0);
        assert_eq!(m.region_of(Point::new(9e9, 9e9)), 99);
    }

    #[test]
    fn homogeneous_weights_are_unit_norm() {
        let m = SpatialModel::paper_defaults(die(8000.0), SpatialKind::Homogeneous);
        for p in [
            Point::new(4000.0, 4000.0),
            Point::new(100.0, 100.0),
            Point::new(7900.0, 50.0),
        ] {
            let w = m.weights_at(p);
            let sum_sq: f64 = w.iter().map(|&(_, c)| c * c).sum();
            assert!((sum_sq - 1.0).abs() < 1e-9, "at {p}: {sum_sq}");
            assert!(!w.is_empty());
        }
    }

    #[test]
    fn heterogeneous_ramps_sw_to_ne() {
        let m = SpatialModel::paper_defaults(die(8000.0), SpatialKind::Heterogeneous);
        let sw = m.scale_at(Point::new(0.0, 0.0));
        let center = m.scale_at(Point::new(4000.0, 4000.0));
        let ne = m.scale_at(Point::new(8000.0, 8000.0));
        assert!((sw - 0.5).abs() < 1e-9);
        assert!((center - 1.0).abs() < 1e-9);
        assert!((ne - 1.5).abs() < 1e-9);
        // Weight norms match the scale.
        let w = m.weights_at(Point::new(8000.0, 8000.0));
        let sum_sq: f64 = w.iter().map(|&(_, c)| c * c).sum();
        assert!((sum_sq.sqrt() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn nearby_devices_correlate_far_ones_do_not() {
        // Figure 4's qualitative behavior.
        let m = SpatialModel::paper_defaults(die(10_000.0), SpatialKind::Homogeneous);
        let a = Point::new(5000.0, 5000.0);
        let near = Point::new(5300.0, 5000.0);
        let mid = Point::new(6500.0, 5000.0);
        let far = Point::new(9900.0, 200.0);
        let c_self = m.correlation(a, a);
        let c_near = m.correlation(a, near);
        let c_mid = m.correlation(a, mid);
        let c_far = m.correlation(a, far);
        assert!((c_self - 1.0).abs() < 1e-9);
        assert!(c_near > 0.7, "near correlation {c_near}");
        assert!(c_mid < c_near && c_mid > 0.0, "mid correlation {c_mid}");
        assert_eq!(c_far, 0.0, "far correlation {c_far}");
    }

    #[test]
    fn correlation_decreases_with_distance() {
        let m = SpatialModel::paper_defaults(die(10_000.0), SpatialKind::Homogeneous);
        let a = Point::new(5000.0, 5000.0);
        let mut prev = 1.1;
        for d in [0.0, 250.0, 500.0, 1000.0, 1500.0, 2000.0, 3000.0, 4500.0] {
            let c = m.correlation(a, Point::new(5000.0 + d, 5000.0));
            assert!(c <= prev + 1e-9, "correlation rose at d={d}: {c} > {prev}");
            prev = c;
        }
    }

    #[test]
    fn tiny_die_single_region() {
        let m = SpatialModel::paper_defaults(die(200.0), SpatialKind::Homogeneous);
        assert_eq!(m.region_count(), 1);
        let w = m.weights_at(Point::new(100.0, 100.0));
        assert_eq!(w.len(), 1);
        assert!((w[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_rejected() {
        let _ = SpatialModel::new(die(100.0), SpatialKind::Homogeneous, 0.0, 100.0);
    }
}
