//! Property-style tests of the process-variation model: spatial weight
//! normalization, correlation structure, source-id uniqueness, and
//! characterization sanity across device parameters. Cases are drawn
//! from the in-tree deterministic [`SplitMix64`] generator.

use varbuf_rctree::geom::{BoundingBox, Point};
use varbuf_rctree::NodeId;
use varbuf_stats::rng::SplitMix64;
use varbuf_variation::characterize::{characterize_device, NonlinearDevice};
use varbuf_variation::sources::SourceLayout;
use varbuf_variation::{
    BufferLibrary, BufferTypeId, ProcessModel, SpatialKind, SpatialModel, VariationBudgets,
    VariationMode,
};

const CASES: usize = 64;

fn die(side: f64) -> BoundingBox {
    BoundingBox {
        min: Point::new(0.0, 0.0),
        max: Point::new(side, side),
    }
}

#[test]
fn spatial_weights_norm_matches_scale() {
    let mut rng = SplitMix64::new(0xE0);
    for case in 0..CASES {
        let side = rng.uniform(600.0, 20_000.0);
        let x = rng.next_f64();
        let y = rng.next_f64();
        let kind = if case % 2 == 0 {
            SpatialKind::Heterogeneous
        } else {
            SpatialKind::Homogeneous
        };
        let m = SpatialModel::paper_defaults(die(side), kind);
        let p = Point::new(x * side, y * side);
        let w = m.weights_at(p);
        assert!(!w.is_empty());
        let sum_sq: f64 = w.iter().map(|&(_, c)| c * c).sum();
        let scale = m.scale_at(p);
        assert!((sum_sq.sqrt() - scale).abs() < 1e-9 * scale.max(1.0));
        // All referenced regions exist.
        for &(r, _) in &w {
            assert!(r < m.region_count());
        }
    }
}

#[test]
fn spatial_correlation_bounds_and_symmetry() {
    let mut rng = SplitMix64::new(0xE1);
    for _ in 0..CASES {
        let side = rng.uniform(2_000.0, 20_000.0);
        let a = Point::new(rng.next_f64() * side, rng.next_f64() * side);
        let b = Point::new(rng.next_f64() * side, rng.next_f64() * side);
        let m = SpatialModel::paper_defaults(die(side), SpatialKind::Homogeneous);
        let rho_ab = m.correlation(a, b);
        let rho_ba = m.correlation(b, a);
        assert!((rho_ab - rho_ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&rho_ab), "rho={rho_ab}");
        // Beyond twice the taper distance the supports cannot overlap.
        if a.euclid(b) > 2.0 * 2_000.0 + 2.0 * 500.0 {
            assert_eq!(rho_ab, 0.0);
        }
    }
}

#[test]
fn systematic_pattern_bounded() {
    let mut rng = SplitMix64::new(0xE2);
    for case in 0..CASES {
        let side = rng.uniform(600.0, 20_000.0);
        let x = rng.uniform(-0.2, 1.2);
        let y = rng.uniform(-0.2, 1.2);
        let kind = if case % 2 == 0 {
            SpatialKind::Heterogeneous
        } else {
            SpatialKind::Homogeneous
        };
        let m = SpatialModel::paper_defaults(die(side), kind);
        let v = m.systematic_pattern(Point::new(x * side, y * side));
        assert!((-1.0..=1.0).contains(&v), "pattern {v} out of range");
    }
}

#[test]
fn source_ids_never_collide() {
    let mut rng = SplitMix64::new(0xE3);
    for _ in 0..CASES {
        let regions = rng.below(500);
        let types = 1 + rng.below(4);
        let nodes = 1 + rng.below(199) as u32;
        let layout = SourceLayout::new(regions, types);
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(layout.global()));
        for r in 0..regions {
            assert!(seen.insert(layout.region(r)));
        }
        for n in 0..nodes {
            for t in 0..types {
                assert!(seen.insert(layout.device(NodeId(n), t)));
            }
        }
        assert_eq!(seen.len(), layout.total_for_nodes(nodes as usize));
    }
}

#[test]
fn buffer_forms_have_budgeted_variance() {
    let mut rng = SplitMix64::new(0xE4);
    for _ in 0..CASES {
        let side = rng.uniform(2_000.0, 12_000.0);
        let x = rng.uniform(0.05, 0.95);
        let y = rng.uniform(0.05, 0.95);
        let random = rng.uniform(0.0, 0.2);
        let inter = rng.uniform(0.0, 0.2);
        let intra = rng.uniform(0.0, 0.2);
        let budgets = VariationBudgets {
            random,
            inter_die: inter,
            intra_die: intra,
            systematic: 0.0,
        };
        let model = ProcessModel::new(
            die(side),
            SpatialKind::Homogeneous,
            budgets,
            BufferLibrary::single_65nm(),
        );
        let loc = Point::new(x * side, y * side);
        let form = model.buffer_cap_form(BufferTypeId(0), NodeId(1), loc, VariationMode::WithinDie);
        let nominal = model.library().get(BufferTypeId(0)).capacitance;
        let expect = (random * random + inter * inter + intra * intra) * nominal * nominal;
        assert!(
            (form.variance() - expect).abs() < 1e-6 * expect.max(1e-9),
            "var {} vs expected {expect}",
            form.variance()
        );
        assert_eq!(form.mean(), nominal);
    }
}

#[test]
fn characterization_tracks_exponent() {
    let mut rng = SplitMix64::new(0xE5);
    for _ in 0..16 {
        let cap_exp = rng.uniform(0.6, 1.6);
        let delay_exp = rng.uniform(0.8, 2.0);
        let device = NonlinearDevice {
            l_nominal_nm: 65.0,
            cap_nominal: 20.0,
            delay_nominal: 40.0,
            cap_exponent: cap_exp,
            delay_exponent: delay_exp,
        };
        let c = characterize_device(&device, 0.10, 4_000, 17).expect("fit");
        // First-order sensitivity at the nominal point is N·p·σ_rel.
        let expect_delay = 40.0 * delay_exp * 0.10;
        assert!(
            (c.delay.sensitivity - expect_delay).abs() / expect_delay < 0.1,
            "delay sens {} vs {expect_delay}",
            c.delay.sensitivity
        );
        assert!(c.delay.r_squared > 0.98);
        assert!(c.capacitance.r_squared > 0.98);
    }
}
