//! Property-based tests of the process-variation model: spatial weight
//! normalization, correlation structure, source-id uniqueness, and
//! characterization sanity across device parameters.

use proptest::prelude::*;
use varbuf_rctree::geom::{BoundingBox, Point};
use varbuf_rctree::NodeId;
use varbuf_variation::characterize::{characterize_device, NonlinearDevice};
use varbuf_variation::sources::SourceLayout;
use varbuf_variation::{
    BufferLibrary, BufferTypeId, ProcessModel, SpatialKind, SpatialModel, VariationBudgets,
    VariationMode,
};

fn die(side: f64) -> BoundingBox {
    BoundingBox {
        min: Point::new(0.0, 0.0),
        max: Point::new(side, side),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spatial_weights_norm_matches_scale(
        side in 600.0f64..20_000.0,
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
        hetero in proptest::bool::ANY,
    ) {
        let kind = if hetero { SpatialKind::Heterogeneous } else { SpatialKind::Homogeneous };
        let m = SpatialModel::paper_defaults(die(side), kind);
        let p = Point::new(x * side, y * side);
        let w = m.weights_at(p);
        prop_assert!(!w.is_empty());
        let sum_sq: f64 = w.iter().map(|&(_, c)| c * c).sum();
        let scale = m.scale_at(p);
        prop_assert!((sum_sq.sqrt() - scale).abs() < 1e-9 * scale.max(1.0));
        // All referenced regions exist.
        for &(r, _) in &w {
            prop_assert!(r < m.region_count());
        }
    }

    #[test]
    fn spatial_correlation_bounds_and_symmetry(
        side in 2_000.0f64..20_000.0,
        ax in 0.0f64..1.0, ay in 0.0f64..1.0,
        bx in 0.0f64..1.0, by in 0.0f64..1.0,
    ) {
        let m = SpatialModel::paper_defaults(die(side), SpatialKind::Homogeneous);
        let a = Point::new(ax * side, ay * side);
        let b = Point::new(bx * side, by * side);
        let rho_ab = m.correlation(a, b);
        let rho_ba = m.correlation(b, a);
        prop_assert!((rho_ab - rho_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&rho_ab), "rho={rho_ab}");
        // Beyond twice the taper distance the supports cannot overlap.
        if a.euclid(b) > 2.0 * 2_000.0 + 2.0 * 500.0 {
            prop_assert_eq!(rho_ab, 0.0);
        }
    }

    #[test]
    fn systematic_pattern_bounded(
        side in 600.0f64..20_000.0,
        x in -0.2f64..1.2,
        y in -0.2f64..1.2,
        hetero in proptest::bool::ANY,
    ) {
        let kind = if hetero { SpatialKind::Heterogeneous } else { SpatialKind::Homogeneous };
        let m = SpatialModel::paper_defaults(die(side), kind);
        let v = m.systematic_pattern(Point::new(x * side, y * side));
        prop_assert!((-1.0..=1.0).contains(&v), "pattern {v} out of range");
    }

    #[test]
    fn source_ids_never_collide(
        regions in 0usize..500,
        types in 1usize..5,
        nodes in 1u32..200,
    ) {
        let layout = SourceLayout::new(regions, types);
        let mut seen = std::collections::HashSet::new();
        prop_assert!(seen.insert(layout.global()));
        for r in 0..regions {
            prop_assert!(seen.insert(layout.region(r)));
        }
        for n in 0..nodes {
            for t in 0..types {
                prop_assert!(seen.insert(layout.device(NodeId(n), t)));
            }
        }
        prop_assert_eq!(seen.len(), layout.total_for_nodes(nodes as usize));
    }

    #[test]
    fn buffer_forms_have_budgeted_variance(
        side in 2_000.0f64..12_000.0,
        x in 0.05f64..0.95,
        y in 0.05f64..0.95,
        random in 0.0f64..0.2,
        inter in 0.0f64..0.2,
        intra in 0.0f64..0.2,
    ) {
        let budgets = VariationBudgets { random, inter_die: inter, intra_die: intra, systematic: 0.0 };
        let model = ProcessModel::new(die(side), SpatialKind::Homogeneous, budgets, BufferLibrary::single_65nm());
        let loc = Point::new(x * side, y * side);
        let form = model.buffer_cap_form(BufferTypeId(0), NodeId(1), loc, VariationMode::WithinDie);
        let nominal = model.library().get(BufferTypeId(0)).capacitance;
        let expect = (random * random + inter * inter + intra * intra) * nominal * nominal;
        prop_assert!((form.variance() - expect).abs() < 1e-6 * expect.max(1e-9),
            "var {} vs expected {expect}", form.variance());
        prop_assert_eq!(form.mean(), nominal);
    }

    #[test]
    fn characterization_tracks_exponent(
        cap_exp in 0.6f64..1.6,
        delay_exp in 0.8f64..2.0,
    ) {
        let device = NonlinearDevice {
            l_nominal_nm: 65.0,
            cap_nominal: 20.0,
            delay_nominal: 40.0,
            cap_exponent: cap_exp,
            delay_exponent: delay_exp,
        };
        let c = characterize_device(&device, 0.10, 4_000, 17).expect("fit");
        // First-order sensitivity at the nominal point is N·p·σ_rel.
        let expect_delay = 40.0 * delay_exp * 0.10;
        prop_assert!(
            (c.delay.sensitivity - expect_delay).abs() / expect_delay < 0.1,
            "delay sens {} vs {expect_delay}",
            c.delay.sensitivity
        );
        prop_assert!(c.delay.r_squared > 0.98);
        prop_assert!(c.capacitance.r_squared > 0.98);
    }
}
