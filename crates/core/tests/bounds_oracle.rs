//! The bound-guided pruning golden oracle.
//!
//! Bounding is sold as a *pure speedup*: retiring a candidate on the
//! deterministic upstream bound must never change what the engine
//! returns — not the winning assignment, not the wire widths, not one
//! bit of the root RAT's canonical form. This suite replays the repo's
//! 336-case verification matrix (rules × governance × jobs × seeds ×
//! spatial kinds × variation modes, plus a wire-sizing subset) with
//! `use_bounds` on and off and asserts byte-for-byte identity, then
//! checks the filter actually fired somewhere (a vacuous pass would
//! prove nothing).

use std::sync::Arc;
use varbuf_core::dp::{
    fallback_cascade, optimize_governed_detailed, optimize_with_sizing, DpOptions, RunControls,
    StatResult, WireSizing,
};
use varbuf_core::governor::Budget;
use varbuf_core::prune::{FourParam, OneParam, PruningRule, TwoParam};
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_rctree::RoutingTree;
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

const SEEDS: [u64; 3] = [0x9E37_79B9, 0x85EB_CA6B, 0xC2B2_AE35];

#[derive(Clone, Copy)]
enum Gov {
    /// `optimize_with_sizing`: hard caps, no degradation — bounds armed.
    Strict,
    /// Governed with `Budget::unlimited()` — cannot degrade, bounds armed.
    Governed,
    /// Governed with a tight solution budget — degradation schedule
    /// depends on list sizes, so bounding must disarm itself.
    Pressured,
}

impl Gov {
    fn label(self) -> &'static str {
        match self {
            Gov::Strict => "strict",
            Gov::Governed => "governed",
            Gov::Pressured => "pressured",
        }
    }

    fn armed(self) -> bool {
        !matches!(self, Gov::Pressured)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_case(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    rule: &Arc<dyn PruningRule>,
    sizing: &WireSizing,
    gov: Gov,
    jobs: usize,
    use_bounds: bool,
) -> StatResult {
    let options = DpOptions {
        jobs,
        use_bounds,
        ..DpOptions::default()
    };
    match gov {
        Gov::Strict => optimize_with_sizing(tree, model, mode, rule.as_ref(), sizing, &options)
            .expect("strict run"),
        Gov::Governed | Gov::Pressured => {
            let budget = match gov {
                Gov::Pressured => Budget {
                    soft_solutions: 6,
                    hard_solutions: 24,
                    ..Budget::unlimited()
                },
                _ => Budget::unlimited(),
            };
            optimize_governed_detailed(
                tree,
                model,
                mode,
                fallback_cascade(Arc::clone(rule)),
                sizing,
                &options,
                &budget,
                RunControls::default(),
            )
            .expect("governed run")
            .result
        }
    }
}

fn assert_results_identical(label: &str, on: &StatResult, off: &StatResult) {
    assert_eq!(on.assignment, off.assignment, "{label}: assignment");
    assert_eq!(on.wire_widths, off.wire_widths, "{label}: wire widths");
    assert_eq!(
        on.root_rat.mean().to_bits(),
        off.root_rat.mean().to_bits(),
        "{label}: RAT mean bits"
    );
    assert_eq!(
        on.root_rat.variance().to_bits(),
        off.root_rat.variance().to_bits(),
        "{label}: RAT variance bits"
    );
    let (ta, tb) = (on.root_rat.terms(), off.root_rat.terms());
    assert_eq!(ta.len(), tb.len(), "{label}: term count");
    for (a, b) in ta.iter().zip(tb) {
        assert_eq!(a.0, b.0, "{label}: term source");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "{label}: term coefficient");
    }
}

fn rule_suite() -> Vec<(&'static str, Arc<dyn PruningRule>, usize)> {
    vec![
        (
            "1P",
            Arc::new(OneParam::default()) as Arc<dyn PruningRule>,
            40,
        ),
        (
            "2P",
            Arc::new(TwoParam::default()) as Arc<dyn PruningRule>,
            40,
        ),
        (
            "2P9",
            Arc::new(TwoParam::new(0.9, 0.9)) as Arc<dyn PruningRule>,
            40,
        ),
        (
            "4P",
            Arc::new(FourParam::default()) as Arc<dyn PruningRule>,
            6,
        ),
    ]
}

const GOVS: [Gov; 3] = [Gov::Strict, Gov::Governed, Gov::Pressured];
const JOBS: [usize; 2] = [1, 4];
const KINDS: [SpatialKind; 2] = [SpatialKind::Homogeneous, SpatialKind::Heterogeneous];
const MODES: [VariationMode; 2] = [VariationMode::DieToDie, VariationMode::WithinDie];

#[test]
fn bounding_never_changes_any_output_bit() {
    let mut cases = 0usize;
    let mut retired_total = 0usize;
    let single = WireSizing::single();
    let sized = WireSizing::default_three();

    // 288 unsized cases: 4 rules × 3 governance levels × 2 jobs ×
    // 3 seeds × 2 spatial kinds × 2 variation modes.
    for (rule_name, rule, sinks) in rule_suite() {
        for &seed in &SEEDS {
            let tree = generate_benchmark(&BenchmarkSpec::random("oracle", sinks, seed));
            for kind in KINDS {
                let model = ProcessModel::paper_defaults(tree.bounding_box(), kind);
                for mode in MODES {
                    for gov in GOVS {
                        for jobs in JOBS {
                            let label = format!(
                                "{rule_name}/seed{seed:x}/{kind:?}/{mode:?}/{}/jobs{jobs}",
                                gov.label()
                            );
                            let on = run_case(&tree, &model, mode, &rule, &single, gov, jobs, true);
                            let off =
                                run_case(&tree, &model, mode, &rule, &single, gov, jobs, false);
                            assert_results_identical(&label, &on, &off);
                            if gov.armed() {
                                retired_total += on.stats.pruned_by_bound;
                            } else {
                                assert_eq!(
                                    on.stats.pruned_by_bound, 0,
                                    "{label}: pressured runs must disarm bounding"
                                );
                            }
                            assert_eq!(
                                off.stats.pruned_by_bound, 0,
                                "{label}: disabled runs must not bound-prune"
                            );
                            cases += 1;
                        }
                    }
                }
            }
        }
    }

    // 48 sized cases: the 2P rule re-run with the three-width sizing
    // table over 2 seeds (the sized decision space multiplies candidate
    // counts, so this is where an unsound bound would show first).
    let two_p: Arc<dyn PruningRule> = Arc::new(TwoParam::default());
    for &seed in &SEEDS[..2] {
        let tree = generate_benchmark(&BenchmarkSpec::random("oracle-sized", 40, seed));
        for kind in KINDS {
            let model = ProcessModel::paper_defaults(tree.bounding_box(), kind);
            for mode in MODES {
                for gov in GOVS {
                    for jobs in JOBS {
                        let label = format!(
                            "2P-sized/seed{seed:x}/{kind:?}/{mode:?}/{}/jobs{jobs}",
                            gov.label()
                        );
                        let on = run_case(&tree, &model, mode, &two_p, &sized, gov, jobs, true);
                        let off = run_case(&tree, &model, mode, &two_p, &sized, gov, jobs, false);
                        assert_results_identical(&label, &on, &off);
                        if gov.armed() {
                            retired_total += on.stats.pruned_by_bound;
                        }
                        cases += 1;
                    }
                }
            }
        }
    }

    assert_eq!(cases, 336, "oracle matrix must cover exactly 336 cases");
    assert!(
        retired_total > 0,
        "the bound filter never fired across the armed matrix — the oracle is vacuous"
    );
}
