//! The incremental re-optimization golden oracle.
//!
//! Epoch-scoped subtree caching is sold as a *pure speedup*: replaying
//! a clean subtree's cached list must never change what the engine
//! returns — not the winning assignment, not the wire widths, not one
//! bit of the root RAT's canonical form. This suite fuzzes mutation
//! scripts (random sink-cap / sink-RAT / wire-length edits) across
//! seeds × rules × tree sizes and, after every edit, compares the
//! incremental replay byte-for-byte against a cold run, then checks
//! the cache actually replayed something (a vacuous pass would prove
//! nothing).

use std::sync::Arc;
use varbuf_core::cache::{run_signature, NodeSigs, SolutionCache};
use varbuf_core::dp::{
    fallback_cascade, optimize_governed_detailed, optimize_incremental, DpOptions, RunControls,
    StatResult, WireSizing,
};
use varbuf_core::governor::Budget;
use varbuf_core::prune::{FourParam, OneParam, PruningRule, TwoParam};
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_rctree::tree::NodeKind;
use varbuf_rctree::{NodeId, RoutingTree};
use varbuf_stats::rng::SplitMix64;
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

const SEEDS: [u64; 3] = [0x9E37_79B9, 0x85EB_CA6B, 0xC2B2_AE35];
const EDITS_PER_SCRIPT: usize = 12;

/// (name, signature tag, rule, tree sizes) — one row of the fuzz matrix.
type RuleCase = (&'static str, u64, Arc<dyn PruningRule>, [usize; 2]);

/// Rule × tree-size matrix. 4P runs one net below the engine's
/// `guard_4p_sinks` threshold (its unconstrained cross-product merge
/// is exact there) and one above it, where both the cold and replayed
/// paths deterministically substitute 2P via the guarded fallback —
/// byte identity must hold across that substitution too.
fn rules() -> Vec<RuleCase> {
    vec![
        ("2p", 2, Arc::new(TwoParam::default()) as _, [24, 48]),
        ("4p", 4, Arc::new(FourParam::default()) as _, [6, 24]),
        ("1p", 1, Arc::new(OneParam::default()) as _, [24, 48]),
    ]
}

fn assert_results_identical(label: &str, inc: &StatResult, cold: &StatResult) {
    assert_eq!(inc.assignment, cold.assignment, "{label}: assignment");
    assert_eq!(inc.wire_widths, cold.wire_widths, "{label}: wire widths");
    assert_eq!(
        inc.root_rat.mean().to_bits(),
        cold.root_rat.mean().to_bits(),
        "{label}: RAT mean bits"
    );
    assert_eq!(
        inc.root_rat.variance().to_bits(),
        cold.root_rat.variance().to_bits(),
        "{label}: RAT variance bits"
    );
    assert_eq!(
        inc.root_rat.term_count(),
        cold.root_rat.term_count(),
        "{label}: term count"
    );
    for (a, b) in inc.root_rat.terms().zip(cold.root_rat.terms()) {
        assert_eq!(a.0, b.0, "{label}: term source");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "{label}: term coefficient");
    }
}

/// One random in-place mutation; returns the edited node.
fn random_edit(tree: &mut RoutingTree, rng: &mut SplitMix64) -> NodeId {
    let sinks: Vec<NodeId> = tree.sinks().collect();
    match rng.below(3) {
        0 => {
            let id = sinks[rng.below(sinks.len())];
            let NodeKind::Sink {
                required_arrival, ..
            } = tree.node(id).kind
            else {
                unreachable!("sinks() yields sinks");
            };
            tree.set_sink(id, rng.uniform(0.5, 20.0), required_arrival);
            id
        }
        1 => {
            let id = sinks[rng.below(sinks.len())];
            let NodeKind::Sink { capacitance, .. } = tree.node(id).kind else {
                unreachable!("sinks() yields sinks");
            };
            tree.set_sink(id, capacitance, rng.uniform(-200.0, 400.0));
            id
        }
        _ => {
            // Any non-root node owns its parent edge.
            let id = NodeId(1 + rng.below(tree.len() - 1) as u32);
            tree.set_edge_length(id, rng.uniform(1.0, 500.0));
            id
        }
    }
}

/// Replays a fuzzed mutation script, asserting after every edit that
/// the incremental replay is byte-identical to a cold run.
#[test]
fn mutation_fuzz_replay_matches_cold() {
    let options = DpOptions::default();
    let sizing = WireSizing::single();
    let budget = Budget::unlimited();
    let mut cases = 0usize;
    let mut total_hits = 0usize;
    for seed in SEEDS {
        for (rule_name, rule_tag, rule, sizes) in rules() {
            for sinks in sizes {
                let name = format!("fuzz-{seed:x}-{sinks}-{rule_name}");
                let mut tree = generate_benchmark(&BenchmarkSpec::random(&name, sinks, seed));
                let model =
                    ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
                let mut rng = SplitMix64::new(seed ^ sinks as u64 ^ rule_tag);
                let mut sigs = NodeSigs::build(&tree);
                let mut cache = SolutionCache::new();
                let run_sig = run_signature(
                    rule_tag,
                    2, // within-die
                    options.sparsify_epsilon,
                    sizing.widths().len(),
                    options.use_lazy_wire,
                    0,
                );
                for step in 0..EDITS_PER_SCRIPT {
                    let edited = random_edit(&mut tree, &mut rng);
                    for id in sigs.update_path(&tree, edited) {
                        cache.invalidate(id);
                    }
                    let inc = optimize_incremental(
                        &tree,
                        &model,
                        VariationMode::WithinDie,
                        fallback_cascade(rule.clone()),
                        &sizing,
                        &options,
                        &budget,
                        RunControls::default(),
                        &sigs,
                        &mut cache,
                        run_sig,
                    )
                    .expect("incremental run succeeds");
                    let cold = optimize_governed_detailed(
                        &tree,
                        &model,
                        VariationMode::WithinDie,
                        fallback_cascade(rule.clone()),
                        &sizing,
                        &options,
                        &budget,
                        RunControls::default(),
                    )
                    .expect("cold run succeeds");
                    let label = format!("{name} step {step}");
                    assert!(!inc.degradation.degraded(), "{label}: degraded");
                    assert_results_identical(&label, &inc.result, &cold.result);
                    assert_eq!(
                        inc.result.stats.cache_hits + inc.result.stats.cache_misses,
                        tree.len(),
                        "{label}: hit/miss partition"
                    );
                    total_hits += inc.result.stats.cache_hits;
                    cases += 1;
                }
            }
        }
    }
    assert!(cases >= 200, "fuzz matrix shrank to {cases} cases");
    // Non-vacuity: after the first (cold) step of each script, edits
    // dirty only a root path, so replays must dominate.
    assert!(
        total_hits > cases,
        "cache never replayed anything ({total_hits} hits over {cases} cases)"
    );
}

/// Re-optimizing with no intervening edit replays every node.
#[test]
fn replay_without_edit_is_all_hits() {
    let tree = generate_benchmark(&BenchmarkSpec::random("warm", 32, 7));
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
    let options = DpOptions::default();
    let sizing = WireSizing::single();
    let budget = Budget::unlimited();
    let sigs = NodeSigs::build(&tree);
    let mut cache = SolutionCache::new();
    let run_sig = run_signature(
        2,
        2,
        options.sparsify_epsilon,
        sizing.widths().len(),
        options.use_lazy_wire,
        0,
    );
    let run = |cache: &mut SolutionCache| {
        optimize_incremental(
            &tree,
            &model,
            VariationMode::WithinDie,
            fallback_cascade(Arc::new(TwoParam::default())),
            &sizing,
            &options,
            &budget,
            RunControls::default(),
            &sigs,
            cache,
            run_sig,
        )
        .expect("run succeeds")
    };
    let first = run(&mut cache);
    assert_eq!(first.result.stats.cache_hits, 0);
    assert_eq!(first.result.stats.cache_misses, tree.len());
    let second = run(&mut cache);
    assert_eq!(second.result.stats.cache_hits, tree.len());
    assert_eq!(second.result.stats.cache_misses, 0);
    assert_results_identical("warm replay", &second.result, &first.result);
}

/// A changed run signature (different rule, mode, or model epoch)
/// flushes the cache instead of replaying foreign lists.
#[test]
fn run_signature_mismatch_flushes() {
    // Small net: the 4P side of the crossover runs unconstrained.
    let tree = generate_benchmark(&BenchmarkSpec::random("sig", 6, 3));
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
    let options = DpOptions::default();
    let sizing = WireSizing::single();
    let budget = Budget::unlimited();
    let sigs = NodeSigs::build(&tree);
    let mut cache = SolutionCache::new();
    let sig_a = run_signature(
        2,
        2,
        options.sparsify_epsilon,
        sizing.widths().len(),
        options.use_lazy_wire,
        0,
    );
    let sig_b = run_signature(
        4,
        2,
        options.sparsify_epsilon,
        sizing.widths().len(),
        options.use_lazy_wire,
        0,
    );
    assert_ne!(sig_a, sig_b);
    let run = |cache: &mut SolutionCache, rule: Arc<dyn PruningRule>, sig: u64| {
        optimize_incremental(
            &tree,
            &model,
            VariationMode::WithinDie,
            fallback_cascade(rule),
            &sizing,
            &options,
            &budget,
            RunControls::default(),
            &sigs,
            cache,
            sig,
        )
        .expect("run succeeds")
    };
    run(&mut cache, Arc::new(TwoParam::default()), sig_a);
    let cross = run(&mut cache, Arc::new(FourParam::default()), sig_b);
    assert_eq!(cross.result.stats.cache_hits, 0, "foreign lists replayed");
    let cold = optimize_governed_detailed(
        &tree,
        &model,
        VariationMode::WithinDie,
        fallback_cascade(Arc::new(FourParam::default())),
        &sizing,
        &options,
        &budget,
        RunControls::default(),
    )
    .expect("cold run succeeds");
    assert_results_identical("post-flush 4p", &cross.result, &cold.result);
}
