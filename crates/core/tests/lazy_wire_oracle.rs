//! The lazy wire propagation equal-objective oracle.
//!
//! Lazy wire propagation (see `DpOptions::use_lazy_wire`) replaces the
//! per-segment O(terms) RAT update with an O(1) deferred transform that
//! is materialized only where a consumer needs the full canonical form
//! (merges, the buffering argmax partner, term-keyed prunes, winner
//! selection). Along a chain, means evolve through the *same* fadd
//! sequence either way; only the RAT *term coefficients* of solutions
//! that crossed more than one segment before materializing differ, by
//! floating-point reassociation (`(T − r₁·L) − r₂·L` versus
//! `T − (r₁+r₂)·L`). Clark merges fold term coefficients back into the
//! merged mean, so downstream of a branch point even means can drift at
//! the ulp level — the contract there is 1e-9 *relative*, while the
//! discrete outputs (assignment, widths, survivor counts) must still
//! agree exactly.
//!
//! This suite replays the repo's 336-case verification matrix (rules ×
//! governance × jobs × seeds × spatial kinds × variation modes, plus a
//! wire-sizing subset) on *subdivided* trees — multi-segment chains,
//! the case the deferral exists for — with `use_lazy_wire` on and off,
//! asserting:
//!
//! * identical buffer assignment and wire widths,
//! * bit-identical root RAT mean,
//! * root RAT variance within 1e-9 relative,
//! * identical solution counts (generated / pruned / peak / per-cause),
//!
//! plus two sharper contracts: term-keyed rules on unit chains are
//! byte-for-byte identical (each pending transform spans exactly one
//! segment and materializes at the very point the eager kernel ran),
//! and the deferral demonstrably engages on subdivided chains (some
//! coefficient bit differs somewhere — a vacuous oracle proves
//! nothing).

use std::sync::Arc;
use varbuf_core::dp::{
    fallback_cascade, optimize_governed_detailed, optimize_with_sizing, DpOptions, RunControls,
    StatResult, WireSizing,
};
use varbuf_core::governor::Budget;
use varbuf_core::prune::{FourParam, OneParam, PruningRule, TwoParam};
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_rctree::RoutingTree;
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

const SEEDS: [u64; 3] = [0x9E37_79B9, 0x85EB_CA6B, 0xC2B2_AE35];

/// Subdivision pitch, µm. The random benchmarks place sinks on a
/// `1000·√sinks` µm die, so typical Steiner edges run several hundred
/// µm and split into 2–4 segments at this pitch — enough for pending
/// transforms to compound without blowing up the candidate-node count.
const PITCH_UM: f64 = 700.0;

/// Relative tolerance for the root RAT objective between the eager and
/// deferred evaluation orders (the ISSUE's equal-objective contract).
const REL_TOL: f64 = 1e-9;

#[derive(Clone, Copy)]
enum Gov {
    /// `optimize_with_sizing`: hard caps, no degradation — lazy armed.
    Strict,
    /// Governed with `Budget::unlimited()` — cannot degrade, lazy armed.
    Governed,
    /// Governed with a tight solution budget: the run is degradable, so
    /// lazy wire disarms itself and both runs take the eager path.
    Pressured,
}

impl Gov {
    fn label(self) -> &'static str {
        match self {
            Gov::Strict => "strict",
            Gov::Governed => "governed",
            Gov::Pressured => "pressured",
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_case(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    rule: &Arc<dyn PruningRule>,
    sizing: &WireSizing,
    gov: Gov,
    jobs: usize,
    use_lazy_wire: bool,
) -> StatResult {
    let options = DpOptions {
        jobs,
        // Forced so single-thread hosts still cover the parallel engine.
        jobs_force: true,
        use_lazy_wire,
        ..DpOptions::default()
    };
    match gov {
        Gov::Strict => optimize_with_sizing(tree, model, mode, rule.as_ref(), sizing, &options)
            .expect("strict run"),
        Gov::Governed | Gov::Pressured => {
            let budget = match gov {
                Gov::Pressured => Budget {
                    soft_solutions: 6,
                    hard_solutions: 24,
                    ..Budget::unlimited()
                },
                _ => Budget::unlimited(),
            };
            optimize_governed_detailed(
                tree,
                model,
                mode,
                fallback_cascade(Arc::clone(rule)),
                sizing,
                &options,
                &budget,
                RunControls::default(),
            )
            .expect("governed run")
            .result
        }
    }
}

/// The equal-objective contract: identical decisions and counts,
/// bit-identical means, objective within `REL_TOL`.
fn assert_equal_objective(label: &str, on: &StatResult, off: &StatResult) {
    assert_eq!(on.assignment, off.assignment, "{label}: assignment");
    assert_eq!(on.wire_widths, off.wire_widths, "{label}: wire widths");
    let (ma, mb) = (on.root_rat.mean(), off.root_rat.mean());
    let mean_scale = ma.abs().max(mb.abs()).max(1.0);
    assert!(
        (ma - mb).abs() <= REL_TOL * mean_scale,
        "{label}: RAT mean diverged beyond {REL_TOL:e} relative: {ma} vs {mb}"
    );
    let (va, vb) = (on.root_rat.variance(), off.root_rat.variance());
    let scale = va.abs().max(vb.abs()).max(1.0);
    assert!(
        (va - vb).abs() <= REL_TOL * scale,
        "{label}: RAT variance diverged beyond {REL_TOL:e} relative: {va} vs {vb}"
    );

    // Solution-count identity: bit-identical means drive every keyed
    // prune, Li–Shi prediction, and bound test, so the survivor sets —
    // not just the winner — must agree exactly.
    let (a, b) = (&on.stats, &off.stats);
    assert_eq!(a.nodes_processed, b.nodes_processed, "{label}: nodes");
    assert_eq!(
        a.solutions_generated, b.solutions_generated,
        "{label}: solutions generated"
    );
    assert_eq!(
        a.solutions_pruned, b.solutions_pruned,
        "{label}: solutions pruned"
    );
    assert_eq!(
        a.max_solutions_per_node, b.max_solutions_per_node,
        "{label}: peak list size"
    );
    assert_eq!(
        a.pruned_by_bound, b.pruned_by_bound,
        "{label}: bound retirements"
    );
    assert_eq!(
        a.pruned_by_dominance, b.pruned_by_dominance,
        "{label}: dominance retirements"
    );
    assert_eq!(a.lishi_skipped, b.lishi_skipped, "{label}: Li–Shi skips");
}

/// The stronger contract for cases where the deferred path is
/// guaranteed to materialize exactly where the eager kernel ran.
fn assert_byte_identical(label: &str, on: &StatResult, off: &StatResult) {
    assert_equal_objective(label, on, off);
    assert_eq!(
        on.root_rat.mean().to_bits(),
        off.root_rat.mean().to_bits(),
        "{label}: RAT mean bits"
    );
    assert_eq!(
        on.root_rat.variance().to_bits(),
        off.root_rat.variance().to_bits(),
        "{label}: RAT variance bits"
    );
    assert_eq!(
        on.root_rat.term_count(),
        off.root_rat.term_count(),
        "{label}: term count"
    );
    for (a, b) in on.root_rat.terms().zip(off.root_rat.terms()) {
        assert_eq!(a.0, b.0, "{label}: term source");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "{label}: term coefficient");
    }
}

/// `(name, rule, sinks)` — sink counts mirror the Li–Shi oracle but
/// smaller, because subdivision multiplies candidate nodes.
fn rule_suite() -> Vec<(&'static str, Arc<dyn PruningRule>, usize)> {
    vec![
        (
            "1P",
            Arc::new(OneParam::default()) as Arc<dyn PruningRule>,
            24,
        ),
        (
            "2P",
            Arc::new(TwoParam::default()) as Arc<dyn PruningRule>,
            24,
        ),
        (
            "2P9",
            Arc::new(TwoParam::new(0.9, 0.9)) as Arc<dyn PruningRule>,
            24,
        ),
        (
            "4P",
            Arc::new(FourParam::default()) as Arc<dyn PruningRule>,
            5,
        ),
    ]
}

const GOVS: [Gov; 3] = [Gov::Strict, Gov::Governed, Gov::Pressured];
const JOBS: [usize; 2] = [1, 4];
const KINDS: [SpatialKind; 2] = [SpatialKind::Homogeneous, SpatialKind::Heterogeneous];
const MODES: [VariationMode; 2] = [VariationMode::DieToDie, VariationMode::WithinDie];

#[test]
fn lazy_wire_matches_eager_across_the_verification_matrix() {
    let mut cases = 0usize;
    let single = WireSizing::single();
    let sized = WireSizing::default_three();

    // 288 unsized cases: 4 rules × 3 governance levels × 2 jobs ×
    // 3 seeds × 2 spatial kinds × 2 variation modes, all on subdivided
    // (multi-segment) trees.
    for (rule_name, rule, sinks) in rule_suite() {
        for &seed in &SEEDS {
            let tree = generate_benchmark(&BenchmarkSpec::random("lazy-oracle", sinks, seed))
                .subdivided(PITCH_UM);
            for kind in KINDS {
                let model = ProcessModel::paper_defaults(tree.bounding_box(), kind);
                for mode in MODES {
                    for gov in GOVS {
                        for jobs in JOBS {
                            let label = format!(
                                "{rule_name}/seed{seed:x}/{kind:?}/{mode:?}/{}/jobs{jobs}",
                                gov.label()
                            );
                            let on = run_case(&tree, &model, mode, &rule, &single, gov, jobs, true);
                            let off =
                                run_case(&tree, &model, mode, &rule, &single, gov, jobs, false);
                            assert_equal_objective(&label, &on, &off);
                            if matches!(gov, Gov::Pressured) {
                                // A degradable run disarms the deferral:
                                // both runs took the eager path, so even
                                // the coefficients must agree bitwise.
                                assert_byte_identical(&label, &on, &off);
                            }
                            cases += 1;
                        }
                    }
                }
            }
        }
    }

    // 48 sized cases: the 2P rule re-run with the three-width sizing
    // table over 2 seeds. Sizing multiplies the per-segment kernel
    // count, so this is where a broken deferral/materialization pairing
    // would show first.
    let two_p: Arc<dyn PruningRule> = Arc::new(TwoParam::default());
    for &seed in &SEEDS[..2] {
        let tree = generate_benchmark(&BenchmarkSpec::random("lazy-oracle-sized", 24, seed))
            .subdivided(PITCH_UM);
        for kind in KINDS {
            let model = ProcessModel::paper_defaults(tree.bounding_box(), kind);
            for mode in MODES {
                for gov in GOVS {
                    for jobs in JOBS {
                        let label = format!(
                            "2P-sized/seed{seed:x}/{kind:?}/{mode:?}/{}/jobs{jobs}",
                            gov.label()
                        );
                        let on = run_case(&tree, &model, mode, &two_p, &sized, gov, jobs, true);
                        let off = run_case(&tree, &model, mode, &two_p, &sized, gov, jobs, false);
                        assert_equal_objective(&label, &on, &off);
                        if matches!(gov, Gov::Pressured) {
                            assert_byte_identical(&label, &on, &off);
                        }
                        cases += 1;
                    }
                }
            }
        }
    }

    assert_eq!(cases, 336, "oracle matrix must cover exactly 336 cases");
}

/// On unit chains (no subdivision — one segment per Steiner edge) a
/// term-keyed rule materializes every pending transform at the same
/// program point where the eager kernel would have run, and a
/// single-segment materialization performs the identical fadd/fmul
/// sequence. The whole run must therefore be byte-for-byte identical.
/// (`2P` is mean-keyed: its pending transforms survive keyed prunes and
/// compound across edges, so it is exercised by the relative-tolerance
/// matrix above instead.)
#[test]
fn term_keyed_rules_on_unit_chains_are_byte_identical() {
    let suite: Vec<(&str, Arc<dyn PruningRule>, usize)> = vec![
        ("1P", Arc::new(OneParam::default()), 24),
        ("2P9", Arc::new(TwoParam::new(0.9, 0.9)), 24),
        ("4P", Arc::new(FourParam::default()), 6),
    ];
    for (rule_name, rule, sinks) in suite {
        for &seed in &SEEDS {
            let tree = generate_benchmark(&BenchmarkSpec::random("lazy-unit", sinks, seed));
            let model =
                ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
            for mode in MODES {
                for jobs in JOBS {
                    let label = format!("{rule_name}/seed{seed:x}/{mode:?}/jobs{jobs}");
                    let single = WireSizing::single();
                    let on = run_case(&tree, &model, mode, &rule, &single, Gov::Strict, jobs, true);
                    let off = run_case(
                        &tree,
                        &model,
                        mode,
                        &rule,
                        &single,
                        Gov::Strict,
                        jobs,
                        false,
                    );
                    assert_byte_identical(&label, &on, &off);
                }
            }
        }
    }
}

/// Guards against a vacuous oracle: if the deferral never engaged (a
/// broken arming condition would fall back to the eager kernels and
/// every assertion above would pass trivially), multi-segment chains
/// could not show reassociation-level coefficient differences. At least
/// one mean-keyed subdivided case must differ in some variance bit.
#[test]
fn lazy_wire_engages_on_subdivided_chains() {
    let rule: Arc<dyn PruningRule> = Arc::new(TwoParam::default());
    let single = WireSizing::single();
    let mut any_bit_differs = false;
    for &seed in &SEEDS {
        let tree = generate_benchmark(&BenchmarkSpec::random("lazy-engage", 24, seed))
            .subdivided(PITCH_UM);
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
        for mode in MODES {
            let on = run_case(&tree, &model, mode, &rule, &single, Gov::Strict, 1, true);
            let off = run_case(&tree, &model, mode, &rule, &single, Gov::Strict, 1, false);
            if on.root_rat.variance().to_bits() != off.root_rat.variance().to_bits() {
                any_bit_differs = true;
            }
        }
    }
    assert!(
        any_bit_differs,
        "no subdivided case showed a reassociation-level difference — \
         the lazy path never engaged and the oracle is vacuous"
    );
}
