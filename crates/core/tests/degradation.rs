//! Integration tests of the resource governor's graceful-degradation
//! paths, driven by the deterministic fault-injection harness.
//!
//! The two headline scenarios:
//!
//! 1. a solution budget that kills a strict 4P run outright is survived
//!    by the governed engine via automatic fallback to the 2P rule,
//!    returning a valid buffered tree plus a populated report;
//! 2. a hard wall-clock breach (scripted through an injected clock, no
//!    sleeping) still yields a best-so-far design instead of an error.

use std::sync::Arc;
use std::time::Duration;
use varbuf_core::dp::{
    optimize_governed, optimize_governed_detailed, optimize_with_rule, DpOptions, GovernedResult,
    RunControls, WireSizing,
};
use varbuf_core::faultinject::{FaultInjector, FaultPlan, PoisonKind, SkewedClock, StepClock};
use varbuf_core::governor::Budget;
use varbuf_core::prune::{FourParam, TwoParam};
use varbuf_core::{InsertionError, YieldEvaluator};
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_rctree::RoutingTree;
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

fn model_for(tree: &RoutingTree) -> ProcessModel {
    ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous)
}

/// Independently re-evaluates a result's buffer assignment and asserts
/// the reported root RAT is real — the "valid buffered tree" check.
fn assert_valid_design(tree: &RoutingTree, model: &ProcessModel, g: &GovernedResult) {
    assert!(g.result.root_rat.mean().is_finite());
    assert!(g.result.root_rat.variance().is_finite());
    let ye = YieldEvaluator::new(tree, model, VariationMode::WithinDie);
    let independent = ye.rat_form(&g.result.assignment);
    assert!(
        (independent.mean() - g.result.root_rat.mean()).abs()
            < 1e-6 * g.result.root_rat.mean().abs(),
        "evaluator {} vs DP {}",
        independent.mean(),
        g.result.root_rat.mean()
    );
}

#[test]
fn solution_cap_that_kills_strict_4p_degrades_to_2p_and_completes() {
    // The exact setup of the strict engine's capacity test: 120 sinks,
    // 200-solution cap, 4P. Strict: typed error. Governed: fallback.
    let tree = generate_benchmark(&BenchmarkSpec::random("cap", 120, 6));
    let model = model_for(&tree);
    let options = DpOptions {
        max_solutions_per_node: 200,
        ..DpOptions::default()
    };
    let strict = optimize_with_rule(
        &tree,
        &model,
        VariationMode::WithinDie,
        &FourParam::default(),
        &options,
    );
    assert!(
        matches!(strict, Err(InsertionError::CapacityExceeded { .. })),
        "the strict engine must still abort"
    );

    let budget = Budget {
        soft_solutions: 200,
        hard_solutions: 800,
        ..Budget::unlimited()
    };
    let governed = optimize_governed(
        &tree,
        &model,
        VariationMode::WithinDie,
        Arc::new(FourParam::default()),
        &options,
        &budget,
    )
    .expect("the governed engine must complete");

    assert!(governed.degradation.degraded());
    assert!(governed.degradation.rule_fallbacks() >= 1);
    assert_eq!(governed.degradation.initial_rule, "4P");
    assert_eq!(governed.degradation.final_rule, "2P");
    assert!(governed.result.stats.rule_fallbacks >= 1);
    assert!(!governed.result.assignment.is_empty());
    assert_valid_design(&tree, &model, &governed);
    // The report is populated and readable.
    let summary = governed.degradation.summary();
    assert!(summary.contains("4P"), "summary: {summary}");
    assert!(summary.contains("2P"), "summary: {summary}");
}

#[test]
fn hard_wall_clock_breach_returns_best_so_far_not_err() {
    let tree = generate_benchmark(&BenchmarkSpec::random("clock", 80, 11));
    let model = model_for(&tree);
    // A scripted clock: every read advances 1s, so the 30s hard budget
    // breaks deterministically partway through the postorder sweep.
    let clock = StepClock::new(Duration::from_secs(1));
    let budget = Budget {
        soft_time: Duration::from_secs(20),
        hard_time: Duration::from_secs(30),
        ..Budget::unlimited()
    };
    let governed = optimize_governed_detailed(
        &tree,
        &model,
        VariationMode::WithinDie,
        varbuf_core::dp::fallback_cascade(Arc::new(TwoParam::default())),
        &WireSizing::single(),
        &DpOptions::default(),
        &budget,
        RunControls {
            clock: Some(Box::new(clock)),
            ..RunControls::default()
        },
    )
    .expect("hard time breach must not error");

    assert!(governed.degradation.panic_completion);
    assert!(governed.result.stats.panic_completion);
    assert!(governed.degradation.degraded());
    assert_valid_design(&tree, &model, &governed);
    // Panic completion keeps one candidate per node from the breach on.
    assert!(governed.result.stats.nodes_processed == tree.len());
}

#[test]
fn frozen_clock_past_hard_limit_still_completes_whole_tree() {
    // Time already exhausted before the first node: the entire run is
    // panic completion, which must still produce a valid design.
    let tree = generate_benchmark(&BenchmarkSpec::random("frozen", 60, 3));
    let model = model_for(&tree);
    let budget = Budget {
        soft_time: Duration::from_secs(1),
        hard_time: Duration::from_secs(2),
        ..Budget::unlimited()
    };
    let governed = optimize_governed_detailed(
        &tree,
        &model,
        VariationMode::WithinDie,
        varbuf_core::dp::fallback_cascade(Arc::new(TwoParam::default())),
        &WireSizing::single(),
        &DpOptions::default(),
        &budget,
        RunControls {
            clock: Some(Box::new(SkewedClock::frozen(Duration::from_secs(10)))),
            ..RunControls::default()
        },
    )
    .expect("completes");
    assert!(governed.degradation.panic_completion);
    assert_eq!(governed.result.stats.max_solutions_per_node, 1);
    assert_valid_design(&tree, &model, &governed);
}

#[test]
fn soft_time_pressure_triggers_rule_fallback_not_panic() {
    let tree = generate_benchmark(&BenchmarkSpec::random("soft", 60, 7));
    let model = model_for(&tree);
    // Soft limit breached immediately, hard limit unreachable.
    let budget = Budget {
        soft_time: Duration::from_secs(1),
        hard_time: Duration::from_secs(1_000_000),
        ..Budget::unlimited()
    };
    let governed = optimize_governed_detailed(
        &tree,
        &model,
        VariationMode::WithinDie,
        varbuf_core::dp::fallback_cascade(Arc::new(FourParam::default())),
        &WireSizing::single(),
        &DpOptions::default(),
        &budget,
        RunControls {
            clock: Some(Box::new(SkewedClock::frozen(Duration::from_secs(5)))),
            ..RunControls::default()
        },
    )
    .expect("completes");
    assert!(!governed.degradation.panic_completion);
    assert_eq!(
        governed.degradation.rule_fallbacks(),
        1,
        "one soft-time step"
    );
    assert_eq!(governed.degradation.final_rule, "2P");
    assert_valid_design(&tree, &model, &governed);
}

#[test]
fn poisoned_solutions_are_dropped_and_reported() {
    let tree = generate_benchmark(&BenchmarkSpec::random("poison", 50, 5));
    let model = model_for(&tree);
    for kind in [
        PoisonKind::NanRat,
        PoisonKind::NanLoad,
        PoisonKind::InfiniteVariance,
    ] {
        let mut injector = FaultInjector::new(FaultPlan::poison(3, kind));
        let governed = optimize_governed_detailed(
            &tree,
            &model,
            VariationMode::WithinDie,
            varbuf_core::dp::fallback_cascade(Arc::new(TwoParam::default())),
            &WireSizing::single(),
            &DpOptions::default(),
            &Budget::unlimited(),
            RunControls {
                faults: Some(&mut injector),
                ..RunControls::default()
            },
        )
        .expect("poison must be survivable");
        assert!(injector.poisoned_injected() > 0);
        assert_eq!(
            governed.result.stats.poisoned_dropped,
            injector.poisoned_injected(),
            "every injected poison must be caught ({kind:?})"
        );
        assert!(governed.degradation.degraded());
        assert_valid_design(&tree, &model, &governed);
        // Poison never leaks into the reported result.
        assert!(governed.result.root_rat.mean().is_finite());
    }
}

#[test]
fn padding_pressure_forces_truncation_but_run_completes() {
    let tree = generate_benchmark(&BenchmarkSpec::random("pad", 60, 9));
    let model = model_for(&tree);
    // Pad every node with 50 duplicates against a 20-solution soft cap:
    // the ladder (fallbacks, epsilon, truncation) must absorb it.
    let mut injector = FaultInjector::new(FaultPlan::pad(1, 50));
    let budget = Budget {
        soft_solutions: 20,
        hard_solutions: 60,
        ..Budget::unlimited()
    };
    let governed = optimize_governed_detailed(
        &tree,
        &model,
        VariationMode::WithinDie,
        varbuf_core::dp::fallback_cascade(Arc::new(TwoParam::new(0.9, 0.9))),
        &WireSizing::single(),
        &DpOptions::default(),
        &budget,
        RunControls {
            faults: Some(&mut injector),
            ..RunControls::default()
        },
    )
    .expect("capacity pressure must be survivable");
    assert!(injector.padded_injected() > 0);
    assert!(governed.degradation.degraded());
    assert!(governed.result.stats.max_solutions_per_node <= 60 + 51);
    assert_valid_design(&tree, &model, &governed);
}

#[test]
fn memory_budget_pressure_degrades_gracefully() {
    let tree = generate_benchmark(&BenchmarkSpec::random("mem", 70, 13));
    let model = model_for(&tree);
    let budget = Budget {
        soft_mem_bytes: 64 * 1024,
        hard_mem_bytes: 64 * 1024 * 1024,
        ..Budget::unlimited()
    };
    let governed = optimize_governed(
        &tree,
        &model,
        VariationMode::WithinDie,
        Arc::new(FourParam::default()),
        &DpOptions::default(),
        &budget,
    )
    .expect("memory pressure must be survivable");
    assert!(governed.degradation.degraded());
    assert!(governed
        .degradation
        .events
        .iter()
        .any(|e| e.to_string().contains("KiB")));
    assert_valid_design(&tree, &model, &governed);
}

#[test]
fn fallback_cascade_never_worse_than_pure_two_param() {
    // Property-style sweep (satellite of the governor work): a governed
    // run that starts from 4P and falls back must end no worse than a
    // pure 2P run — the cascade only ever *adds* exploration before the
    // fallback point, and prunes with the same 2P rule after it.
    for seed in [1u64, 5, 9, 23, 41] {
        let tree = generate_benchmark(&BenchmarkSpec::random("prop", 40, seed));
        let model = model_for(&tree);
        let options = DpOptions::default();
        let pure = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &options,
        )
        .expect("pure 2P");
        // Budget chosen so rule fallback fires well before any
        // truncation could discard candidates a 2P run would keep.
        let budget = Budget {
            soft_solutions: 64,
            hard_solutions: 1_000_000,
            ..Budget::unlimited()
        };
        let governed = optimize_governed(
            &tree,
            &model,
            VariationMode::WithinDie,
            Arc::new(FourParam::default()),
            &options,
            &budget,
        )
        .expect("governed");
        let y = |f: &varbuf_stats::CanonicalForm| f.percentile(0.05);
        let pure_y = y(&pure.root_rat);
        let gov_y = y(&governed.result.root_rat);
        assert!(
            gov_y >= pure_y - 1e-6 * pure_y.abs(),
            "seed {seed}: governed {gov_y} worse than pure 2P {pure_y}"
        );
    }
}

#[test]
fn unpressured_governed_run_reports_clean() {
    let tree = generate_benchmark(&BenchmarkSpec::random("clean", 40, 2));
    let model = model_for(&tree);
    let governed = optimize_governed(
        &tree,
        &model,
        VariationMode::WithinDie,
        Arc::new(TwoParam::default()),
        &DpOptions::default(),
        &Budget::unlimited(),
    )
    .expect("clean");
    assert!(!governed.degradation.degraded());
    assert!(!governed.result.stats.degraded());
    assert_eq!(
        governed.degradation.summary(),
        "completed within budget (no degradation)"
    );
}
