//! Property-style tests of the optimization core: DP optimality
//! invariants against the independent Elmore evaluator, pruning
//! soundness, and key-operation consistency. Cases are drawn from the
//! in-tree deterministic [`SplitMix64`] generator.

use varbuf_core::det::{assignment_with_nominal_values, optimize_deterministic};
use varbuf_core::dp::{optimize_with_rule, DpOptions};
use varbuf_core::prune::{prune_solutions, OneParam, PruningRule, TwoParam};
use varbuf_core::solution::StatSolution;
use varbuf_rctree::elmore::ElmoreEvaluator;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_stats::rng::SplitMix64;
use varbuf_stats::{CanonicalForm, SourceId};
use varbuf_variation::{
    BufferLibrary, BufferTypeId, ProcessModel, SpatialKind, VariationBudgets, VariationMode,
};

const CASES: usize = 24;

/// Random (load, rat) pairs for synthetic pruning inputs.
fn load_rat_pairs(rng: &mut SplitMix64) -> Vec<(f64, f64)> {
    let n = 1 + rng.below(59);
    (0..n)
        .map(|_| (rng.uniform(0.0, 100.0), rng.uniform(-500.0, 0.0)))
        .collect()
}

#[test]
fn det_dp_is_exact_per_elmore() {
    let mut rng = SplitMix64::new(0xD0);
    for _ in 0..CASES {
        let sinks = 2 + rng.below(38);
        let seed = rng.next_u64() % 40;
        // The DP's claimed RAT must match an independent deterministic
        // Elmore evaluation of its own assignment.
        let tree = generate_benchmark(&BenchmarkSpec::random("pc", sinks, seed));
        let lib = BufferLibrary::default_65nm();
        let r = optimize_deterministic(&tree, &lib).expect("optimize");
        let rep = ElmoreEvaluator::new(&tree).evaluate(
            &assignment_with_nominal_values(&r.assignment, &lib).expect("ids from this library"),
        );
        assert!(
            (rep.root_rat - r.root_rat).abs() < 1e-6 * rep.root_rat.abs().max(1.0),
            "DP {} vs Elmore {}",
            r.root_rat,
            rep.root_rat
        );
        // And never lose to the unbuffered tree.
        let unbuf = ElmoreEvaluator::new(&tree).evaluate_unbuffered().root_rat;
        assert!(r.root_rat >= unbuf - 1e-9);
    }
}

#[test]
fn det_dp_beats_every_single_buffer_design() {
    let mut rng = SplitMix64::new(0xD1);
    for _ in 0..CASES {
        let sinks = 2 + rng.below(14);
        let seed = rng.next_u64() % 20;
        // The optimum dominates the entire one-buffer design family.
        let tree = generate_benchmark(&BenchmarkSpec::random("pc1", sinks, seed));
        let lib = BufferLibrary::single_65nm();
        let best = optimize_deterministic(&tree, &lib)
            .expect("optimize")
            .root_rat;
        let eval = ElmoreEvaluator::new(&tree);
        for (id, node) in tree.iter() {
            if !node.is_candidate {
                continue;
            }
            let one = assignment_with_nominal_values(&[(id, BufferTypeId(0))], &lib)
                .expect("ids from this library");
            assert!(eval.evaluate(&one).root_rat <= best + 1e-9);
        }
    }
}

#[test]
fn stat_dp_zero_budgets_equals_det() {
    let mut rng = SplitMix64::new(0xD2);
    for _ in 0..CASES {
        let sinks = 2 + rng.below(28);
        let seed = rng.next_u64() % 20;
        let tree = generate_benchmark(&BenchmarkSpec::random("pc0", sinks, seed));
        let lib = BufferLibrary::default_65nm();
        let model = ProcessModel::new(
            tree.bounding_box(),
            SpatialKind::Heterogeneous,
            VariationBudgets::zero(),
            lib.clone(),
        );
        let s = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("stat");
        let d = optimize_deterministic(&tree, &lib).expect("det");
        assert!(
            (s.root_rat.mean() - d.root_rat).abs() < 1e-6 * d.root_rat.abs().max(1.0),
            "stat {} vs det {}",
            s.root_rat.mean(),
            d.root_rat
        );
        assert!(s.root_rat.std_dev() < 1e-9);
    }
}

#[test]
fn pruned_set_is_mutually_nondominated() {
    let mut rng = SplitMix64::new(0xD3);
    for case in 0..CASES {
        let loads = load_rat_pairs(&mut rng);
        let rules: [Box<dyn PruningRule>; 3] = [
            Box::new(TwoParam::default()),
            Box::new(TwoParam::new(0.8, 0.8)),
            Box::new(OneParam::default()),
        ];
        let rule = rules[case % 3].as_ref();
        let sols: Vec<StatSolution> = loads
            .iter()
            .enumerate()
            .map(|(i, &(l, t))| {
                StatSolution::new(
                    CanonicalForm::with_terms(l, vec![(SourceId(i as u32 % 5), 1.0)]),
                    CanonicalForm::with_terms(t, vec![(SourceId(5 + i as u32 % 5), 2.0)]),
                )
            })
            .collect();
        let kept = prune_solutions(rule, sols.clone());
        assert!(!kept.is_empty());
        assert!(kept.len() <= sols.len());
        // Consecutive survivors must not dominate each other (transitive
        // rules prune against the predecessor, so adjacency is the
        // guarantee the algorithm gives).
        for w in kept.windows(2) {
            assert!(
                !rule.dominates(&w[0], &w[1]),
                "adjacent domination survived"
            );
        }
        // Survivors are sorted by the load key.
        for w in kept.windows(2) {
            assert!(rule.load_key(&w[0]) <= rule.load_key(&w[1]) + 1e-12);
        }
    }
}

#[test]
fn prune_keeps_a_best_rat_solution() {
    let mut rng = SplitMix64::new(0xD4);
    for _ in 0..CASES {
        let loads = load_rat_pairs(&mut rng);
        // Whatever gets pruned, the best-RAT (by mean) solution survives
        // under the 2P rule: nothing can dominate it on the RAT side.
        let rule = TwoParam::default();
        let sols: Vec<StatSolution> = loads
            .iter()
            .map(|&(l, t)| {
                StatSolution::new(CanonicalForm::constant(l), CanonicalForm::constant(t))
            })
            .collect();
        let best_rat = sols
            .iter()
            .map(|s| s.rat_mean())
            .fold(f64::NEG_INFINITY, f64::max);
        let kept = prune_solutions(&rule, sols);
        let kept_best = kept
            .iter()
            .map(|s| s.rat_mean())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((kept_best - best_rat).abs() < 1e-12);
    }
}

#[test]
fn more_variation_never_improves_yield_rat() {
    let mut rng = SplitMix64::new(0xD5);
    for _ in 0..12 {
        let sinks = 4 + rng.below(20);
        let seed = rng.next_u64() % 12;
        // Scaling every budget up can only worsen (or preserve) the
        // 95%-yield RAT of the optimized design.
        let tree = generate_benchmark(&BenchmarkSpec::random("mv", sinks, seed)).subdivided(1000.0);
        let lib = BufferLibrary::default_65nm();
        let mut y95 = Vec::new();
        for scale in [0.5, 2.0] {
            let budgets = VariationBudgets {
                random: 0.05 * scale,
                inter_die: 0.05 * scale,
                intra_die: 0.05 * scale,
                systematic: 0.0,
            };
            let model = ProcessModel::new(
                tree.bounding_box(),
                SpatialKind::Homogeneous,
                budgets,
                lib.clone(),
            );
            let r = optimize_with_rule(
                &tree,
                &model,
                VariationMode::WithinDie,
                &TwoParam::default(),
                &DpOptions::default(),
            )
            .expect("opt");
            y95.push(r.root_rat.percentile(0.05));
        }
        assert!(
            y95[0] >= y95[1] - 1e-9,
            "low-var {} vs high-var {}",
            y95[0],
            y95[1]
        );
    }
}
