//! Property-based tests of the optimization core: DP optimality
//! invariants against the independent Elmore evaluator, pruning
//! soundness, and key-operation consistency.

use proptest::prelude::*;
use varbuf_core::det::{assignment_with_nominal_values, optimize_deterministic};
use varbuf_core::dp::{optimize_with_rule, DpOptions};
use varbuf_core::prune::{prune_solutions, OneParam, PruningRule, TwoParam};
use varbuf_core::solution::StatSolution;
use varbuf_rctree::elmore::ElmoreEvaluator;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_variation::{
    BufferLibrary, BufferTypeId, ProcessModel, SpatialKind, VariationBudgets, VariationMode,
};
use varbuf_stats::{CanonicalForm, SourceId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn det_dp_is_exact_per_elmore(sinks in 2usize..40, seed in 0u64..40) {
        // The DP's claimed RAT must match an independent deterministic
        // Elmore evaluation of its own assignment.
        let tree = generate_benchmark(&BenchmarkSpec::random("pc", sinks, seed));
        let lib = BufferLibrary::default_65nm();
        let r = optimize_deterministic(&tree, &lib).expect("optimize");
        let rep = ElmoreEvaluator::new(&tree)
            .evaluate(&assignment_with_nominal_values(&r.assignment, &lib));
        prop_assert!(
            (rep.root_rat - r.root_rat).abs() < 1e-6 * rep.root_rat.abs().max(1.0),
            "DP {} vs Elmore {}", r.root_rat, rep.root_rat
        );
        // And never lose to the unbuffered tree.
        let unbuf = ElmoreEvaluator::new(&tree).evaluate_unbuffered().root_rat;
        prop_assert!(r.root_rat >= unbuf - 1e-9);
    }

    #[test]
    fn det_dp_beats_every_single_buffer_design(sinks in 2usize..16, seed in 0u64..20) {
        // The optimum dominates the entire one-buffer design family.
        let tree = generate_benchmark(&BenchmarkSpec::random("pc1", sinks, seed));
        let lib = BufferLibrary::single_65nm();
        let best = optimize_deterministic(&tree, &lib).expect("optimize").root_rat;
        let eval = ElmoreEvaluator::new(&tree);
        for (id, node) in tree.iter() {
            if !node.is_candidate {
                continue;
            }
            let one = assignment_with_nominal_values(&[(id, BufferTypeId(0))], &lib);
            prop_assert!(eval.evaluate(&one).root_rat <= best + 1e-9);
        }
    }

    #[test]
    fn stat_dp_zero_budgets_equals_det(sinks in 2usize..30, seed in 0u64..20) {
        let tree = generate_benchmark(&BenchmarkSpec::random("pc0", sinks, seed));
        let lib = BufferLibrary::default_65nm();
        let model = ProcessModel::new(
            tree.bounding_box(),
            SpatialKind::Heterogeneous,
            VariationBudgets::zero(),
            lib.clone(),
        );
        let s = optimize_with_rule(
            &tree, &model, VariationMode::WithinDie,
            &TwoParam::default(), &DpOptions::default(),
        ).expect("stat");
        let d = optimize_deterministic(&tree, &lib).expect("det");
        prop_assert!(
            (s.root_rat.mean() - d.root_rat).abs() < 1e-6 * d.root_rat.abs().max(1.0),
            "stat {} vs det {}", s.root_rat.mean(), d.root_rat
        );
        prop_assert!(s.root_rat.std_dev() < 1e-9);
    }

    #[test]
    fn pruned_set_is_mutually_nondominated(
        loads in proptest::collection::vec((0.0f64..100.0, -500.0f64..0.0), 1..60),
        p_idx in 0usize..3,
    ) {
        let rules: [Box<dyn PruningRule>; 3] = [
            Box::new(TwoParam::default()),
            Box::new(TwoParam::new(0.8, 0.8)),
            Box::new(OneParam::default()),
        ];
        let rule = rules[p_idx].as_ref();
        let sols: Vec<StatSolution> = loads
            .iter()
            .enumerate()
            .map(|(i, &(l, t))| {
                StatSolution::new(
                    CanonicalForm::with_terms(l, vec![(SourceId(i as u32 % 5), 1.0)]),
                    CanonicalForm::with_terms(t, vec![(SourceId(5 + i as u32 % 5), 2.0)]),
                )
            })
            .collect();
        let kept = prune_solutions(rule, sols.clone());
        prop_assert!(!kept.is_empty());
        prop_assert!(kept.len() <= sols.len());
        // Consecutive survivors must not dominate each other (transitive
        // rules prune against the predecessor, so adjacency is the
        // guarantee the algorithm gives).
        for w in kept.windows(2) {
            prop_assert!(!rule.dominates(&w[0], &w[1]), "adjacent domination survived");
        }
        // Survivors are sorted by the load key.
        for w in kept.windows(2) {
            prop_assert!(rule.load_key(&w[0]) <= rule.load_key(&w[1]) + 1e-12);
        }
    }

    #[test]
    fn prune_keeps_a_best_rat_solution(
        loads in proptest::collection::vec((0.0f64..100.0, -500.0f64..0.0), 1..60),
    ) {
        // Whatever gets pruned, the best-RAT (by mean) solution survives
        // under the 2P rule: nothing can dominate it on the RAT side.
        let rule = TwoParam::default();
        let sols: Vec<StatSolution> = loads
            .iter()
            .map(|&(l, t)| {
                StatSolution::new(CanonicalForm::constant(l), CanonicalForm::constant(t))
            })
            .collect();
        let best_rat = sols
            .iter()
            .map(|s| s.rat_mean())
            .fold(f64::NEG_INFINITY, f64::max);
        let kept = prune_solutions(&rule, sols);
        let kept_best = kept
            .iter()
            .map(|s| s.rat_mean())
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((kept_best - best_rat).abs() < 1e-12);
    }

    #[test]
    fn more_variation_never_improves_yield_rat(sinks in 4usize..24, seed in 0u64..12) {
        // Scaling every budget up can only worsen (or preserve) the
        // 95%-yield RAT of the optimized design.
        let tree = generate_benchmark(&BenchmarkSpec::random("mv", sinks, seed)).subdivided(1000.0);
        let lib = BufferLibrary::default_65nm();
        let mut y95 = Vec::new();
        for scale in [0.5, 2.0] {
            let budgets = VariationBudgets {
                random: 0.05 * scale,
                inter_die: 0.05 * scale,
                intra_die: 0.05 * scale,
                systematic: 0.0,
            };
            let model = ProcessModel::new(
                tree.bounding_box(),
                SpatialKind::Homogeneous,
                budgets,
                lib.clone(),
            );
            let r = optimize_with_rule(
                &tree, &model, VariationMode::WithinDie,
                &TwoParam::default(), &DpOptions::default(),
            ).expect("opt");
            y95.push(r.root_rat.percentile(0.05));
        }
        prop_assert!(y95[0] >= y95[1] - 1e-9, "low-var {} vs high-var {}", y95[0], y95[1]);
    }
}
