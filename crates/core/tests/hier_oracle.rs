//! Hierarchical-vs-flat oracle for the decomposition engine.
//!
//! The hierarchical engine buys full-chip scale by splicing cut-node
//! frontiers with an epsilon-bounded thinning, so it owes two
//! guarantees: with decomposition disabled it is *byte-identical* to
//! the flat governed engine (same walk, same admissions, same bits),
//! and with decomposition active its root objective stays within a
//! small relative epsilon of the flat answer. This suite checks both,
//! plus the 4P guard satellite: an unconstrained governed 4P run over
//! the guard threshold completes quickly via the deterministic 2P
//! substitution, reported as a guard note rather than a degradation.

use std::sync::Arc;
use varbuf_core::dp::{
    fallback_cascade, optimize_governed_detailed, DpOptions, RunControls, StatResult, WireSizing,
};
use varbuf_core::governor::Budget;
use varbuf_core::hier::{optimize_hier, HierOptions};
use varbuf_core::prune::{FourParam, OneParam, PruningRule, TwoParam};
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_rctree::RoutingTree;
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

const SEEDS: [u64; 3] = [0x9E37_79B9, 0x85EB_CA6B, 0xC2B2_AE35];

fn setup(sinks: usize, seed: u64) -> (RoutingTree, ProcessModel) {
    let tree = generate_benchmark(&BenchmarkSpec::random("hier-oracle", sinks, seed));
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
    (tree, model)
}

fn run_flat(
    tree: &RoutingTree,
    model: &ProcessModel,
    rule: &Arc<dyn PruningRule>,
    options: &DpOptions,
) -> StatResult {
    optimize_governed_detailed(
        tree,
        model,
        VariationMode::WithinDie,
        fallback_cascade(Arc::clone(rule)),
        &WireSizing::single(),
        options,
        &Budget::unlimited(),
        RunControls::default(),
    )
    .expect("flat governed run")
    .result
}

fn assert_results_identical(label: &str, hier: &StatResult, flat: &StatResult) {
    assert_eq!(hier.assignment, flat.assignment, "{label}: assignment");
    assert_eq!(hier.wire_widths, flat.wire_widths, "{label}: wire widths");
    assert_eq!(
        hier.root_rat.mean().to_bits(),
        flat.root_rat.mean().to_bits(),
        "{label}: RAT mean bits"
    );
    assert_eq!(
        hier.root_rat.variance().to_bits(),
        flat.root_rat.variance().to_bits(),
        "{label}: RAT variance bits"
    );
}

/// `cut_nodes == 0` must delegate to the flat engine bit-for-bit.
#[test]
fn decomposition_off_is_byte_identical() {
    let (tree, model) = setup(96, SEEDS[0]);
    let rule: Arc<dyn PruningRule> = Arc::new(TwoParam::default());
    let options = DpOptions::default();
    let flat = run_flat(&tree, &model, &rule, &options);
    let hier = optimize_hier(
        &tree,
        &model,
        VariationMode::WithinDie,
        fallback_cascade(Arc::clone(&rule)),
        &WireSizing::single(),
        &options,
        &HierOptions::disabled(),
        &Budget::unlimited(),
        RunControls::default(),
    )
    .expect("hier run with decomposition off");
    assert_eq!(hier.hier.cut_count, 0, "disabled config must plan no cuts");
    assert_results_identical("decomposition off", &hier.result, &flat);
}

/// With decomposition forced on (small cut regions so mid-size trees
/// actually fracture), the hierarchical root objective stays within a
/// relative epsilon of the flat engine across seeds, rules, and sizes.
#[test]
fn hierarchical_root_objective_within_epsilon_of_flat() {
    let rules: Vec<(&str, Arc<dyn PruningRule>)> = vec![
        ("2p", Arc::new(TwoParam::default()) as _),
        ("1p", Arc::new(OneParam::default()) as _),
    ];
    let hier_opts = HierOptions {
        cut_nodes: 32,
        fanout_cut: 0,
        ..HierOptions::default()
    };
    let options = DpOptions::default();
    let mut cases = 0usize;
    for &seed in &SEEDS {
        for (name, rule) in &rules {
            for &sinks in &[64usize, 128] {
                let (tree, model) = setup(sinks, seed);
                let flat = run_flat(&tree, &model, rule, &options);
                let hier = optimize_hier(
                    &tree,
                    &model,
                    VariationMode::WithinDie,
                    fallback_cascade(Arc::clone(rule)),
                    &WireSizing::single(),
                    &options,
                    &hier_opts,
                    &Budget::unlimited(),
                    RunControls::default(),
                )
                .expect("hier run");
                let label = format!("{name}/n{sinks}/seed{seed:x}");
                assert!(
                    hier.hier.cut_count > 0,
                    "{label}: decomposition must actually fire (vacuous otherwise)"
                );
                let f = flat.root_rat.mean();
                let h = hier.result.root_rat.mean();
                let rel = (h - f).abs() / f.abs().max(1.0);
                assert!(
                    rel <= 1e-2,
                    "{label}: hier root RAT {h} strays {rel:.3e} from flat {f}"
                );
                cases += 1;
            }
        }
    }
    assert_eq!(cases, 12, "full seed x rule x size matrix must run");
}

/// A governed, unconstrained 4P run past the guard threshold completes
/// via the deterministic 2P substitution: guard note set, *zero*
/// degradation events, and bytes identical to running 2P directly.
#[test]
fn guarded_4p_matches_2p_without_degradation() {
    let (tree, model) = setup(24, SEEDS[1]);
    let options = DpOptions::default();
    let four: Arc<dyn PruningRule> = Arc::new(FourParam::default());
    let governed = optimize_governed_detailed(
        &tree,
        &model,
        VariationMode::WithinDie,
        fallback_cascade(Arc::clone(&four)),
        &WireSizing::single(),
        &options,
        &Budget::unlimited(),
        RunControls::default(),
    )
    .expect("guarded 4P run");
    let guard = governed
        .degradation
        .guard
        .as_ref()
        .expect("24 sinks over the default 12-sink threshold must be guarded");
    assert_eq!(guard.from, "4P");
    assert_eq!(guard.to, "2P");
    assert_eq!(guard.sinks, 24);
    assert!(
        !governed.degradation.degraded(),
        "a guard note is a planning decision, not a degradation"
    );
    let two: Arc<dyn PruningRule> = Arc::new(TwoParam::default());
    let direct = run_flat(&tree, &model, &two, &options);
    assert_results_identical("guarded 4P vs direct 2P", &governed.result, &direct);
}
