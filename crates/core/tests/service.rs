//! Service-level robustness suites: crash isolation (a fault in request
//! k leaves every other request bit-identical to a clean run) and a
//! soak run (thousands of queued requests under a constraining governor
//! with zero leaked sessions and monotone generation counters).

use std::time::Duration;
use varbuf_core::faultinject::RequestFault;
use varbuf_core::governor::Budget;
use varbuf_core::service::{
    OptimizeParams, Request, Response, Service, ServiceConfig, SessionHandle,
};
use varbuf_core::RequestError;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_rctree::RoutingTree;
use varbuf_variation::SpatialKind;

fn tree(sinks: usize, seed: u64) -> RoutingTree {
    generate_benchmark(&BenchmarkSpec::random("svc", sinks, seed))
}

fn open(service: &mut Service, sinks: usize, seed: u64) -> SessionHandle {
    match service.execute(Request::Open {
        tree: Box::new(tree(sinks, seed)),
        spatial: SpatialKind::Heterogeneous,
    }) {
        Response::Opened { handle, .. } => handle,
        other => panic!("expected Opened, got {other}"),
    }
}

/// Runs the 100-request isolation script — open/opt/close triples over
/// distinct nets — optionally arming a panic for optimize request id
/// `fault_at`, and returns every response rendered to its protocol line.
fn isolation_script(fault_at: Option<u64>) -> Vec<String> {
    let mut service = Service::new(ServiceConfig {
        allow_faults: true,
        ..ServiceConfig::default()
    });
    if let Some(id) = fault_at {
        let armed = service.inject(id, RequestFault::Panic);
        assert!(matches!(armed, Response::Injected { .. }));
    }
    let mut lines = Vec::new();
    for k in 0..100u64 {
        // Distinct net per triple so the fault's poison cannot leak
        // into any other request's session.
        let handle = open(&mut service, 3 + (k as usize % 5), k + 1);
        let responses = [
            service.execute(Request::Optimize {
                handle,
                params: OptimizeParams::default(),
            }),
            service.execute(Request::Close { handle }),
        ];
        lines.push(format!("ok open session={handle}"));
        lines.extend(responses.iter().map(ToString::to_string));
    }
    assert_eq!(service.store().live(), 0, "script leaks sessions");
    lines
}

#[test]
fn fault_in_request_k_leaves_every_other_request_bit_identical() {
    let clean = isolation_script(None);
    // Optimize request ids are 1-based: triple k's opt has id k+1.
    let fault_id = 50u64;
    let faulted = isolation_script(Some(fault_id));
    assert_eq!(clean.len(), faulted.len());
    let mut diffs = Vec::new();
    for (i, (c, f)) in clean.iter().zip(&faulted).enumerate() {
        if c != f {
            diffs.push((i, c.clone(), f.clone()));
        }
    }
    assert_eq!(
        diffs.len(),
        1,
        "exactly the faulted request may differ; got {diffs:#?}"
    );
    let (_, clean_line, fault_line) = &diffs[0];
    assert!(clean_line.starts_with("ok opt"), "diff hit {clean_line}");
    assert!(
        fault_line.starts_with("err internal"),
        "faulted request should be a contained panic, got {fault_line}"
    );
    assert!(fault_line.contains("injected panic"));
}

#[test]
fn repeated_faults_never_take_the_service_down() {
    let mut service = Service::new(ServiceConfig {
        allow_faults: true,
        ..ServiceConfig::default()
    });
    for round in 0..20u64 {
        let handle = open(&mut service, 4, round + 1);
        let id = service
            .submit(Request::Optimize {
                handle,
                params: OptimizeParams::default(),
            })
            .unwrap();
        service.inject(id, RequestFault::Panic);
        let responses = service.drain(1);
        assert!(
            matches!(
                &responses[0],
                Response::Error(RequestError::Internal { .. })
            ),
            "round {round}"
        );
        assert!(matches!(
            service.execute(Request::Close { handle }),
            Response::Closed { .. }
        ));
    }
    assert_eq!(service.stats().panics_contained, 20);
    assert_eq!(service.store().live(), 0);
    // The service still answers clean work.
    let handle = open(&mut service, 4, 99);
    assert!(matches!(
        service.execute(Request::Optimize {
            handle,
            params: OptimizeParams::default(),
        }),
        Response::Optimized { .. }
    ));
}

/// The soak harness: `total` optimize requests in chunks against a pool
/// of resident sessions, under a constraining governor and queue
/// budgets picked to force both tightening and shedding.
fn soak(total: u64, jobs: usize) {
    let mut budget = Budget::unlimited();
    budget.soft_solutions = 4;
    budget.hard_solutions = 16;
    let session_cost = {
        // One 4-sink net's node count, the per-request admission cost.
        let mut probe = Service::new(ServiceConfig::default());
        let h = open(&mut probe, 4, 1);
        probe.store().resolve(h).unwrap().tree().len() as u64
    };
    let chunk = 100u64;
    let mut service = Service::new(ServiceConfig {
        allow_faults: true,
        budget,
        // Roughly: a chunk's first third is admitted untightened, the
        // middle third tightened, the rest shed.
        queue_soft_cost: session_cost * chunk / 3,
        queue_hard_cost: session_cost * chunk * 2 / 3,
        watchdog: Some(Duration::from_secs(30)),
        ..ServiceConfig::default()
    });
    let pool: Vec<SessionHandle> = (0..8).map(|i| open(&mut service, 4, i + 1)).collect();
    let mut submitted = 0u64;
    let mut responses = 0u64;
    while submitted < total {
        for i in 0..chunk.min(total - submitted) {
            let handle = pool[(submitted + i) as usize % pool.len()];
            let id = service
                .submit(Request::Optimize {
                    handle,
                    params: OptimizeParams::default(),
                })
                .unwrap();
            // A sprinkle of request-scoped faults to keep the envelope
            // hot: every 97th request panics, every 101st is delayed
            // past the watchdog.
            if id.is_multiple_of(97) {
                service.inject(id, RequestFault::Panic);
            } else if id.is_multiple_of(101) {
                service.inject(id, RequestFault::Delay(Duration::from_secs(60)));
            }
        }
        submitted += chunk.min(total - submitted);
        let drained = service.drain(jobs);
        responses += drained.len() as u64;
        for r in &drained {
            assert!(
                matches!(
                    r,
                    Response::Optimized { .. }
                        | Response::Error(RequestError::Overloaded { .. })
                        | Response::Error(RequestError::Internal { .. })
                        | Response::Error(RequestError::SessionPoisoned { .. })
                ),
                "unexpected soak response: {r}"
            );
        }
        // Panicked sessions poison; replace them so the pool stays
        // serviceable (close works on poisoned sessions).
    }
    assert_eq!(responses, total, "every request must be answered");
    let stats = service.stats();
    assert_eq!(stats.served + stats.shed, total);
    assert!(stats.shed > 0, "soak never exercised load shedding");
    assert!(stats.tightened > 0, "soak never exercised tightening");
    assert!(stats.degraded > 0, "soak never exercised the governor");
    assert!(stats.panics_contained > 0);
    assert!(stats.cancelled > 0);

    // Zero leaked sessions, and every close bumps its slot's generation
    // monotonically.
    let before: Vec<u32> = (0..service.store().slot_count())
        .map(|i| service.store().generation(i as u32).unwrap())
        .collect();
    for h in pool {
        assert!(matches!(
            service.execute(Request::Close { handle: h }),
            Response::Closed { .. }
        ));
    }
    assert_eq!(service.store().live(), 0, "soak leaked sessions");
    for (i, b) in before.iter().enumerate() {
        let after = service.store().generation(i as u32).unwrap();
        assert!(after > *b, "slot {i} generation did not advance");
    }
}

#[test]
fn soak_two_thousand_requests_sequential() {
    soak(2000, 1);
}

#[test]
fn soak_two_thousand_requests_parallel() {
    soak(2000, 4);
}

#[test]
fn drain_with_mixed_control_plane_preserves_submission_order() {
    let run = |jobs: usize| -> Vec<String> {
        let mut service = Service::new(ServiceConfig::default());
        let a = open(&mut service, 4, 1);
        let b = open(&mut service, 5, 2);
        for _ in 0..3 {
            service.submit(Request::Optimize {
                handle: a,
                params: OptimizeParams::default(),
            });
        }
        service.submit(Request::Info { handle: b });
        for _ in 0..3 {
            service.submit(Request::Optimize {
                handle: b,
                params: OptimizeParams::default(),
            });
        }
        service.submit(Request::Close { handle: a });
        service.submit(Request::Close { handle: b });
        service
            .drain(jobs)
            .iter()
            .map(ToString::to_string)
            .collect()
    };
    let serial = run(1);
    assert_eq!(serial, run(3));
    // Shape check: 3 opts, info, 3 opts, 2 closes, in order.
    assert!(serial[..3].iter().all(|l| l.starts_with("ok opt")));
    assert!(serial[3].starts_with("ok info"));
    assert!(serial[4..7].iter().all(|l| l.starts_with("ok opt")));
    assert!(serial[7..].iter().all(|l| l.starts_with("ok close")));
}
