//! The Li–Shi generation-skip golden oracle.
//!
//! The skip (see `DpOptions::use_lishi`) predicts a buffered candidate's
//! scalar keys before building its canonical forms and drops it when a
//! listed solution already shadows it under the keyed prune sweep. Like
//! bounding, it is sold as a *pure speedup*: toggling it must never
//! change what the engine returns — not the winning assignment, not the
//! wire widths, not one bit of the root RAT's canonical form. This
//! suite replays the repo's 336-case verification matrix (rules ×
//! governance × jobs × seeds × spatial kinds × variation modes, plus a
//! wire-sizing subset) with `use_lishi` on and off and asserts
//! byte-for-byte identity, then checks the skip actually fired
//! somewhere (a vacuous pass would prove nothing).
//!
//! Arming is narrower than bounding's: besides disarming under a
//! degradable (pressured) governor, the skip only runs for rules whose
//! scalar keys are plain means — in this matrix, the default 2P rule.
//! Percentile-keyed rules (1P, 2P9) and the 4P partial order must
//! report zero skips even when armed.

use std::sync::Arc;
use varbuf_core::dp::{
    fallback_cascade, optimize_governed_detailed, optimize_with_sizing, DpOptions, RunControls,
    StatResult, WireSizing,
};
use varbuf_core::governor::Budget;
use varbuf_core::prune::{FourParam, OneParam, PruningRule, TwoParam};
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_rctree::RoutingTree;
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

const SEEDS: [u64; 3] = [0x9E37_79B9, 0x85EB_CA6B, 0xC2B2_AE35];

#[derive(Clone, Copy)]
enum Gov {
    /// `optimize_with_sizing`: hard caps, no degradation — skip armed.
    Strict,
    /// Governed with `Budget::unlimited()` — cannot degrade, skip armed.
    Governed,
    /// Governed with a tight solution budget — the degradation schedule
    /// keys off pre-prune list sizes, so the skip must disarm itself.
    Pressured,
}

impl Gov {
    fn label(self) -> &'static str {
        match self {
            Gov::Strict => "strict",
            Gov::Governed => "governed",
            Gov::Pressured => "pressured",
        }
    }

    fn armed(self) -> bool {
        !matches!(self, Gov::Pressured)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_case(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    rule: &Arc<dyn PruningRule>,
    sizing: &WireSizing,
    gov: Gov,
    jobs: usize,
    use_lishi: bool,
) -> StatResult {
    let options = DpOptions {
        jobs,
        // Forced so single-thread hosts still cover the parallel engine.
        jobs_force: true,
        use_lishi,
        ..DpOptions::default()
    };
    match gov {
        Gov::Strict => optimize_with_sizing(tree, model, mode, rule.as_ref(), sizing, &options)
            .expect("strict run"),
        Gov::Governed | Gov::Pressured => {
            let budget = match gov {
                Gov::Pressured => Budget {
                    soft_solutions: 6,
                    hard_solutions: 24,
                    ..Budget::unlimited()
                },
                _ => Budget::unlimited(),
            };
            optimize_governed_detailed(
                tree,
                model,
                mode,
                fallback_cascade(Arc::clone(rule)),
                sizing,
                &options,
                &budget,
                RunControls::default(),
            )
            .expect("governed run")
            .result
        }
    }
}

fn assert_results_identical(label: &str, on: &StatResult, off: &StatResult) {
    assert_eq!(on.assignment, off.assignment, "{label}: assignment");
    assert_eq!(on.wire_widths, off.wire_widths, "{label}: wire widths");
    assert_eq!(
        on.root_rat.mean().to_bits(),
        off.root_rat.mean().to_bits(),
        "{label}: RAT mean bits"
    );
    assert_eq!(
        on.root_rat.variance().to_bits(),
        off.root_rat.variance().to_bits(),
        "{label}: RAT variance bits"
    );
    assert_eq!(
        on.root_rat.term_count(),
        off.root_rat.term_count(),
        "{label}: term count"
    );
    for (a, b) in on.root_rat.terms().zip(off.root_rat.terms()) {
        assert_eq!(a.0, b.0, "{label}: term source");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "{label}: term coefficient");
    }
}

/// `(name, rule, sinks, mean_keyed)` — the last field says whether the
/// skip is allowed to fire at all under this rule.
fn rule_suite() -> Vec<(&'static str, Arc<dyn PruningRule>, usize, bool)> {
    vec![
        (
            "1P",
            Arc::new(OneParam::default()) as Arc<dyn PruningRule>,
            40,
            false,
        ),
        (
            "2P",
            Arc::new(TwoParam::default()) as Arc<dyn PruningRule>,
            40,
            true,
        ),
        (
            "2P9",
            Arc::new(TwoParam::new(0.9, 0.9)) as Arc<dyn PruningRule>,
            40,
            false,
        ),
        (
            "4P",
            Arc::new(FourParam::default()) as Arc<dyn PruningRule>,
            6,
            false,
        ),
    ]
}

const GOVS: [Gov; 3] = [Gov::Strict, Gov::Governed, Gov::Pressured];
const JOBS: [usize; 2] = [1, 4];
const KINDS: [SpatialKind; 2] = [SpatialKind::Homogeneous, SpatialKind::Heterogeneous];
const MODES: [VariationMode; 2] = [VariationMode::DieToDie, VariationMode::WithinDie];

#[test]
fn lishi_skip_never_changes_any_output_bit() {
    let mut cases = 0usize;
    let mut skipped_total = 0usize;
    let single = WireSizing::single();
    let sized = WireSizing::default_three();

    // 288 unsized cases: 4 rules × 3 governance levels × 2 jobs ×
    // 3 seeds × 2 spatial kinds × 2 variation modes.
    for (rule_name, rule, sinks, mean_keyed) in rule_suite() {
        for &seed in &SEEDS {
            let tree = generate_benchmark(&BenchmarkSpec::random("oracle", sinks, seed));
            for kind in KINDS {
                let model = ProcessModel::paper_defaults(tree.bounding_box(), kind);
                for mode in MODES {
                    for gov in GOVS {
                        for jobs in JOBS {
                            let label = format!(
                                "{rule_name}/seed{seed:x}/{kind:?}/{mode:?}/{}/jobs{jobs}",
                                gov.label()
                            );
                            let on = run_case(&tree, &model, mode, &rule, &single, gov, jobs, true);
                            let off =
                                run_case(&tree, &model, mode, &rule, &single, gov, jobs, false);
                            assert_results_identical(&label, &on, &off);
                            if gov.armed() && mean_keyed {
                                skipped_total += on.stats.lishi_skipped;
                            } else {
                                assert_eq!(
                                    on.stats.lishi_skipped, 0,
                                    "{label}: skip must stay disarmed (pressured governor \
                                     or non-mean-keyed rule)"
                                );
                            }
                            assert_eq!(
                                off.stats.lishi_skipped, 0,
                                "{label}: disabled runs must not skip"
                            );
                            cases += 1;
                        }
                    }
                }
            }
        }
    }

    // 48 sized cases: the 2P rule re-run with the three-width sizing
    // table over 2 seeds (sizing multiplies the buffered-candidate
    // count per node, so this is where an unsound skip would show
    // first).
    let two_p: Arc<dyn PruningRule> = Arc::new(TwoParam::default());
    for &seed in &SEEDS[..2] {
        let tree = generate_benchmark(&BenchmarkSpec::random("oracle-sized", 40, seed));
        for kind in KINDS {
            let model = ProcessModel::paper_defaults(tree.bounding_box(), kind);
            for mode in MODES {
                for gov in GOVS {
                    for jobs in JOBS {
                        let label = format!(
                            "2P-sized/seed{seed:x}/{kind:?}/{mode:?}/{}/jobs{jobs}",
                            gov.label()
                        );
                        let on = run_case(&tree, &model, mode, &two_p, &sized, gov, jobs, true);
                        let off = run_case(&tree, &model, mode, &two_p, &sized, gov, jobs, false);
                        assert_results_identical(&label, &on, &off);
                        if gov.armed() {
                            skipped_total += on.stats.lishi_skipped;
                        } else {
                            assert_eq!(
                                on.stats.lishi_skipped, 0,
                                "{label}: pressured runs must disarm the skip"
                            );
                        }
                        cases += 1;
                    }
                }
            }
        }
    }

    assert_eq!(cases, 336, "oracle matrix must cover exactly 336 cases");
    assert!(
        skipped_total > 0,
        "the Li–Shi skip never fired across the armed mean-keyed matrix — \
         the oracle is vacuous"
    );
}
