//! Bit-for-bit determinism of the parallel engine.
//!
//! The contract (see `pool` module docs): for every pruning rule and
//! any `jobs` count, batch and intra-tree parallel results — winning
//! RAT form, assignment, wire widths, `DpStats` counters, degradation
//! events — are identical to the sequential engine's, bit for bit.

use std::sync::Arc;
use std::time::Duration;
use varbuf_core::dp::{
    optimize_governed, optimize_with_rule, DpOptions, GovernedResult, StatResult,
};
use varbuf_core::governor::Budget;
use varbuf_core::pool::{optimize_batch, BatchRequest};
use varbuf_core::prune::{FourParam, OneParam, PruningRule, TwoParam};
use varbuf_core::solution::StatSolution;
use varbuf_core::InsertionError;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_rctree::RoutingTree;
use varbuf_stats::{
    lane_dot_ref, lane_variance_ref, CanonicalForm, ColumnForm, FormBatch, SourceId, SplitMix64,
    TermInterner,
};
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

/// SplitMix64-style seeds for the generated benchmark topologies.
const SEEDS: [u64; 3] = [0x9E37_79B9, 0x85EB_CA6B, 0xC2B2_AE35];

fn model_for(tree: &RoutingTree) -> ProcessModel {
    ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous)
}

/// All three rules with tree sizes each can digest (the 4P cross
/// product blows up fast, mirroring the paper's 9-sink ceiling).
fn rule_suite() -> Vec<(&'static str, Arc<dyn PruningRule>, usize)> {
    vec![
        (
            "1P",
            Arc::new(OneParam::default()) as Arc<dyn PruningRule>,
            40,
        ),
        (
            "2P",
            Arc::new(TwoParam::default()) as Arc<dyn PruningRule>,
            40,
        ),
        (
            "4P",
            Arc::new(FourParam::default()) as Arc<dyn PruningRule>,
            6,
        ),
    ]
}

/// Bitwise equality of two results, durations excluded (wall-clock
/// fields are the only thing allowed to differ between runs).
fn assert_bit_identical(label: &str, seq: &StatResult, par: &StatResult) {
    assert_eq!(seq.assignment, par.assignment, "{label}: assignment");
    assert_eq!(seq.wire_widths, par.wire_widths, "{label}: wire widths");
    assert_eq!(
        seq.root_rat.mean().to_bits(),
        par.root_rat.mean().to_bits(),
        "{label}: RAT mean bits"
    );
    assert_eq!(
        seq.root_rat.variance().to_bits(),
        par.root_rat.variance().to_bits(),
        "{label}: RAT variance bits"
    );
    assert_eq!(
        seq.root_rat.term_count(),
        par.root_rat.term_count(),
        "{label}: term count"
    );
    for (a, b) in seq.root_rat.terms().zip(par.root_rat.terms()) {
        assert_eq!(a.0, b.0, "{label}: term source");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "{label}: term coefficient");
    }
    assert_eq!(
        seq.stats.sans_times(),
        par.stats.sans_times(),
        "{label}: DpStats counters"
    );
}

fn assert_same_degradation(label: &str, seq: &GovernedResult, par: &GovernedResult) {
    assert_bit_identical(label, &seq.result, &par.result);
    // Event timestamps are wall clock; triggers and actions are not.
    let strip = |g: &GovernedResult| {
        g.degradation
            .events
            .iter()
            .map(|e| (e.trigger.clone(), e.action.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(seq), strip(par), "{label}: degradation events");
    assert_eq!(
        seq.degradation.final_rule, par.degradation.final_rule,
        "{label}: final rule"
    );
    assert_eq!(
        seq.degradation.panic_completion, par.degradation.panic_completion,
        "{label}: panic completion"
    );
}

#[test]
fn strict_parallel_is_bit_identical_for_all_rules() {
    for (name, rule, sinks) in rule_suite() {
        for seed in SEEDS {
            let tree = generate_benchmark(&BenchmarkSpec::random("det-strict", sinks, seed));
            let model = model_for(&tree);
            let run = |jobs: usize| {
                optimize_with_rule(
                    &tree,
                    &model,
                    VariationMode::WithinDie,
                    rule.as_ref(),
                    &DpOptions {
                        jobs,
                        // Force the fan-out so single-thread hosts still
                        // exercise the parallel engine under test.
                        jobs_force: true,
                        ..DpOptions::default()
                    },
                )
                .expect("strict run")
            };
            let seq = run(1);
            let par = run(4);
            assert_bit_identical(&format!("{name}/seed{seed:x}/strict"), &seq, &par);
        }
    }
}

#[test]
fn governed_parallel_is_bit_identical_for_all_rules() {
    for (name, rule, sinks) in rule_suite() {
        for seed in SEEDS {
            let tree = generate_benchmark(&BenchmarkSpec::random("det-gov", sinks, seed));
            let model = model_for(&tree);
            let run = |jobs: usize| {
                optimize_governed(
                    &tree,
                    &model,
                    VariationMode::WithinDie,
                    Arc::clone(&rule),
                    &DpOptions {
                        jobs,
                        // Force the fan-out so single-thread hosts still
                        // exercise the parallel engine under test.
                        jobs_force: true,
                        ..DpOptions::default()
                    },
                    &Budget::unlimited(),
                )
                .expect("governed run")
            };
            let seq = run(1);
            let par = run(4);
            assert_same_degradation(&format!("{name}/seed{seed:x}/governed"), &seq, &par);
        }
    }
}

#[test]
fn governed_under_pressure_matches_including_degradation_counters() {
    // A tight solution budget forces the degradation ladder: the
    // speculative parallel phase must detect the pressure, abandon
    // itself, and reproduce the sequential run — including every
    // recorded trigger/action pair — bit for bit.
    let budget = Budget {
        soft_solutions: 6,
        hard_solutions: 24,
        ..Budget::unlimited()
    };
    for (name, rule, sinks) in rule_suite() {
        for seed in SEEDS {
            let tree = generate_benchmark(&BenchmarkSpec::random("det-press", sinks, seed));
            let model = model_for(&tree);
            let run = |jobs: usize| {
                optimize_governed(
                    &tree,
                    &model,
                    VariationMode::WithinDie,
                    Arc::clone(&rule),
                    &DpOptions {
                        jobs,
                        // Force the fan-out so single-thread hosts still
                        // exercise the parallel engine under test.
                        jobs_force: true,
                        ..DpOptions::default()
                    },
                    &budget,
                )
                .expect("governed run")
            };
            let seq = run(1);
            let par = run(4);
            let label = format!("{name}/seed{seed:x}/pressure");
            assert_same_degradation(&label, &seq, &par);
            assert!(
                seq.result.stats.degraded(),
                "{label}: budget was meant to force degradation"
            );
        }
    }
}

/// Random canonical forms over a shared (non-contiguous) source
/// universe: a mix of empty, sparse, and fully dense forms, with signed
/// coefficients spanning several magnitudes.
fn random_forms(rng: &mut SplitMix64, universe: &[SourceId], count: usize) -> Vec<CanonicalForm> {
    (0..count)
        .map(|i| {
            let nominal = (rng.next_f64() - 0.5) * 200.0;
            let density = match i % 4 {
                0 => 0.0,            // constant form
                1 => 1.0,            // fully dense
                _ => rng.next_f64(), // sparse
            };
            let terms: Vec<(SourceId, f64)> = universe
                .iter()
                .filter_map(|&id| {
                    let keep = rng.next_f64() < density;
                    let coeff = (rng.next_f64() - 0.5) * 10.0;
                    (keep && coeff != 0.0).then_some((id, coeff))
                })
                .collect();
            CanonicalForm::with_terms(nominal, terms)
        })
        .collect()
}

fn assert_form_bits(label: &str, a: &CanonicalForm, b: &CanonicalForm) {
    assert_eq!(a.mean().to_bits(), b.mean().to_bits(), "{label}: mean");
    assert_eq!(
        a.variance().to_bits(),
        b.variance().to_bits(),
        "{label}: variance"
    );
    assert_eq!(a.term_count(), b.term_count(), "{label}: term count");
    for (x, y) in a.terms().zip(b.terms()) {
        assert_eq!(x.0, y.0, "{label}: term source");
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "{label}: term coefficient");
    }
}

#[test]
fn interner_round_trip_preserves_moments_and_rule_decisions() {
    // The representation-equivalence contract behind the batched
    // kernels: round-tripping sparse forms through the dense interner
    // representation changes no observable moment — mean, variance,
    // pairwise covariance — by even one bit, and therefore cannot
    // perturb any pruning rule's decisions.
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        // Non-contiguous ids, as a real run's source layout produces.
        let universe: Vec<SourceId> = (0..24u32).map(|i| SourceId(i * 3 + 1)).collect();
        let interner = TermInterner::new(universe.iter().copied());
        let forms = random_forms(&mut rng, &universe, 24);

        // 1. Round-trip is a bitwise identity on every moment.
        let columns: Vec<ColumnForm> = forms
            .iter()
            .map(|f| ColumnForm::from_canonical(&interner, f))
            .collect();
        for (i, (f, col)) in forms.iter().zip(&columns).enumerate() {
            let label = format!("seed{seed:x}/form{i}");
            assert_eq!(f.mean().to_bits(), col.mean().to_bits(), "{label}: mean");
            assert_eq!(
                f.variance().to_bits(),
                col.variance().to_bits(),
                "{label}: variance"
            );
            assert_form_bits(&label, f, &col.to_canonical(&interner));
        }

        // 2. Dense covariance replays the sparse merge walk exactly.
        for (i, (fi, ci)) in forms.iter().zip(&columns).enumerate() {
            for (fj, cj) in forms.iter().zip(&columns).skip(i) {
                assert_eq!(
                    fi.covariance(fj).to_bits(),
                    ci.covariance(cj).to_bits(),
                    "seed{seed:x}: covariance"
                );
            }
        }

        // 3. The lane-blocked batch kernels follow their documented
        // scalar references exactly (the lane schedule reassociates the
        // fold, so the pin is against `lane_*_ref`, not the sparse
        // walk), and stay numerically equivalent to the sparse moments.
        let mut batch = FormBatch::new(&interner);
        for f in &forms {
            batch.push(&interner, f);
        }
        let mut variances = Vec::new();
        batch.variances_into(&mut variances);
        let mut covariances = Vec::new();
        batch.covariances_with_into(&columns[0], &mut covariances);
        for (i, f) in forms.iter().enumerate() {
            assert_eq!(
                lane_variance_ref(batch.row(i)).to_bits(),
                variances[i].to_bits(),
                "seed{seed:x}: batched variance {i}"
            );
            assert_eq!(
                lane_dot_ref(batch.row(i), columns[0].columns()).to_bits(),
                covariances[i].to_bits(),
                "seed{seed:x}: batched covariance {i}"
            );
            let tol = 1e-12 * (1.0 + f.variance().abs());
            assert!(
                (f.variance() - variances[i]).abs() <= tol,
                "seed{seed:x}: lane variance {i} drifted beyond reassociation"
            );
            assert!(
                (f.covariance(&forms[0]) - covariances[i]).abs()
                    <= 1e-12 * (1.0 + f.covariance(&forms[0]).abs()),
                "seed{seed:x}: lane covariance {i} drifted beyond reassociation"
            );
        }

        // 4. Pruning under every rule is blind to the representation:
        // a list built from round-tripped forms keeps the same
        // survivors, in the same order, bit for bit.
        let solutions: Vec<StatSolution> = forms
            .chunks_exact(2)
            .map(|pair| StatSolution::new(pair[0].clone(), pair[1].clone()))
            .collect();
        let round_tripped: Vec<StatSolution> = columns
            .chunks_exact(2)
            .map(|pair| {
                StatSolution::new(
                    pair[0].to_canonical(&interner),
                    pair[1].to_canonical(&interner),
                )
            })
            .collect();
        for (name, rule, _) in rule_suite() {
            let a = varbuf_core::prune::prune_solutions(rule.as_ref(), solutions.clone());
            let b = varbuf_core::prune::prune_solutions(rule.as_ref(), round_tripped.clone());
            let label = format!("seed{seed:x}/{name}");
            assert_eq!(a.len(), b.len(), "{label}: survivor count");
            for (x, y) in a.iter().zip(&b) {
                assert_form_bits(&format!("{label}/load"), &x.load, &y.load);
                assert_form_bits(&format!("{label}/rat"), &x.rat, &y.rat);
            }
        }
    }
}

#[test]
fn strict_capacity_error_is_deterministic_across_jobs() {
    // The 4P cross product on a bigger tree breaches a tight cap; the
    // parallel engine must surface the same first-in-postorder breach
    // the sequential engine hits.
    let tree = generate_benchmark(&BenchmarkSpec::random("det-cap", 100, 11));
    let model = model_for(&tree);
    let run = |jobs: usize| -> InsertionError {
        optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &FourParam::default(),
            &DpOptions {
                max_solutions_per_node: 150,
                jobs,
                jobs_force: true,
                ..DpOptions::default()
            },
        )
        .expect_err("cap was meant to breach")
    };
    let seq = run(1);
    let par = run(4);
    assert!(matches!(seq, InsertionError::CapacityExceeded { .. }));
    assert_eq!(format!("{seq:?}"), format!("{par:?}"), "breach identity");
}

#[test]
fn batch_is_bit_identical_to_serial_loop_and_order_preserving() {
    let trees: Vec<RoutingTree> = SEEDS
        .iter()
        .enumerate()
        .map(|(i, &seed)| generate_benchmark(&BenchmarkSpec::random("det-batch", 24 + 8 * i, seed)))
        .collect();
    let models: Vec<ProcessModel> = trees.iter().map(model_for).collect();
    let mut requests = Vec::new();
    for (tree, model) in trees.iter().zip(&models) {
        for strict in [false, true] {
            let mut req = BatchRequest::new(
                tree,
                model,
                VariationMode::WithinDie,
                Arc::new(TwoParam::default()),
            );
            req.strict = strict;
            requests.push(req);
        }
    }
    // One deliberately failing request: batch must report errors in
    // place without disturbing its neighbors' slots.
    let mut failing = BatchRequest::new(
        &trees[0],
        &models[0],
        VariationMode::WithinDie,
        Arc::new(FourParam::default()),
    );
    failing.strict = true;
    failing.options = DpOptions {
        max_solutions_per_node: 10,
        time_limit: Duration::from_secs(4 * 3600),
        ..DpOptions::default()
    };
    requests.push(failing);

    // Forced fan-out: the host clamp would quietly serialize this on a
    // single-thread machine, and the whole point is to drive the
    // multi-worker result slots.
    let serial = optimize_batch(&requests, 1);
    let batched = varbuf_core::optimize_batch_forced(&requests, 4);
    assert_eq!(serial.len(), requests.len());
    assert_eq!(batched.len(), requests.len());
    for (i, (s, p)) in serial.iter().zip(&batched).enumerate() {
        match (s, p) {
            (Ok(s), Ok(p)) => assert_same_degradation(&format!("batch[{i}]"), s, p),
            (Err(es), Err(ep)) => {
                assert_eq!(format!("{es:?}"), format!("{ep:?}"), "batch[{i}]: error")
            }
            _ => panic!("batch[{i}]: Ok/Err divergence between jobs=1 and jobs=4"),
        }
    }
    assert!(
        serial.last().expect("non-empty").is_err(),
        "failing request must error in both"
    );
}
