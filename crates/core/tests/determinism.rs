//! Bit-for-bit determinism of the parallel engine.
//!
//! The contract (see `pool` module docs): for every pruning rule and
//! any `jobs` count, batch and intra-tree parallel results — winning
//! RAT form, assignment, wire widths, `DpStats` counters, degradation
//! events — are identical to the sequential engine's, bit for bit.

use std::sync::Arc;
use std::time::Duration;
use varbuf_core::dp::{
    optimize_governed, optimize_with_rule, DpOptions, GovernedResult, StatResult,
};
use varbuf_core::governor::Budget;
use varbuf_core::pool::{optimize_batch, BatchRequest};
use varbuf_core::prune::{FourParam, OneParam, PruningRule, TwoParam};
use varbuf_core::InsertionError;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_rctree::RoutingTree;
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

/// SplitMix64-style seeds for the generated benchmark topologies.
const SEEDS: [u64; 3] = [0x9E37_79B9, 0x85EB_CA6B, 0xC2B2_AE35];

fn model_for(tree: &RoutingTree) -> ProcessModel {
    ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous)
}

/// All three rules with tree sizes each can digest (the 4P cross
/// product blows up fast, mirroring the paper's 9-sink ceiling).
fn rule_suite() -> Vec<(&'static str, Arc<dyn PruningRule>, usize)> {
    vec![
        (
            "1P",
            Arc::new(OneParam::default()) as Arc<dyn PruningRule>,
            40,
        ),
        (
            "2P",
            Arc::new(TwoParam::default()) as Arc<dyn PruningRule>,
            40,
        ),
        (
            "4P",
            Arc::new(FourParam::default()) as Arc<dyn PruningRule>,
            6,
        ),
    ]
}

/// Bitwise equality of two results, durations excluded (wall-clock
/// fields are the only thing allowed to differ between runs).
fn assert_bit_identical(label: &str, seq: &StatResult, par: &StatResult) {
    assert_eq!(seq.assignment, par.assignment, "{label}: assignment");
    assert_eq!(seq.wire_widths, par.wire_widths, "{label}: wire widths");
    assert_eq!(
        seq.root_rat.mean().to_bits(),
        par.root_rat.mean().to_bits(),
        "{label}: RAT mean bits"
    );
    assert_eq!(
        seq.root_rat.variance().to_bits(),
        par.root_rat.variance().to_bits(),
        "{label}: RAT variance bits"
    );
    let (ts, tp) = (seq.root_rat.terms(), par.root_rat.terms());
    assert_eq!(ts.len(), tp.len(), "{label}: term count");
    for (a, b) in ts.iter().zip(tp) {
        assert_eq!(a.0, b.0, "{label}: term source");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "{label}: term coefficient");
    }
    assert_eq!(
        seq.stats.sans_times(),
        par.stats.sans_times(),
        "{label}: DpStats counters"
    );
}

fn assert_same_degradation(label: &str, seq: &GovernedResult, par: &GovernedResult) {
    assert_bit_identical(label, &seq.result, &par.result);
    // Event timestamps are wall clock; triggers and actions are not.
    let strip = |g: &GovernedResult| {
        g.degradation
            .events
            .iter()
            .map(|e| (e.trigger.clone(), e.action.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(seq), strip(par), "{label}: degradation events");
    assert_eq!(
        seq.degradation.final_rule, par.degradation.final_rule,
        "{label}: final rule"
    );
    assert_eq!(
        seq.degradation.panic_completion, par.degradation.panic_completion,
        "{label}: panic completion"
    );
}

#[test]
fn strict_parallel_is_bit_identical_for_all_rules() {
    for (name, rule, sinks) in rule_suite() {
        for seed in SEEDS {
            let tree = generate_benchmark(&BenchmarkSpec::random("det-strict", sinks, seed));
            let model = model_for(&tree);
            let run = |jobs: usize| {
                optimize_with_rule(
                    &tree,
                    &model,
                    VariationMode::WithinDie,
                    rule.as_ref(),
                    &DpOptions {
                        jobs,
                        ..DpOptions::default()
                    },
                )
                .expect("strict run")
            };
            let seq = run(1);
            let par = run(4);
            assert_bit_identical(&format!("{name}/seed{seed:x}/strict"), &seq, &par);
        }
    }
}

#[test]
fn governed_parallel_is_bit_identical_for_all_rules() {
    for (name, rule, sinks) in rule_suite() {
        for seed in SEEDS {
            let tree = generate_benchmark(&BenchmarkSpec::random("det-gov", sinks, seed));
            let model = model_for(&tree);
            let run = |jobs: usize| {
                optimize_governed(
                    &tree,
                    &model,
                    VariationMode::WithinDie,
                    Arc::clone(&rule),
                    &DpOptions {
                        jobs,
                        ..DpOptions::default()
                    },
                    &Budget::unlimited(),
                )
                .expect("governed run")
            };
            let seq = run(1);
            let par = run(4);
            assert_same_degradation(&format!("{name}/seed{seed:x}/governed"), &seq, &par);
        }
    }
}

#[test]
fn governed_under_pressure_matches_including_degradation_counters() {
    // A tight solution budget forces the degradation ladder: the
    // speculative parallel phase must detect the pressure, abandon
    // itself, and reproduce the sequential run — including every
    // recorded trigger/action pair — bit for bit.
    let budget = Budget {
        soft_solutions: 6,
        hard_solutions: 24,
        ..Budget::unlimited()
    };
    for (name, rule, sinks) in rule_suite() {
        for seed in SEEDS {
            let tree = generate_benchmark(&BenchmarkSpec::random("det-press", sinks, seed));
            let model = model_for(&tree);
            let run = |jobs: usize| {
                optimize_governed(
                    &tree,
                    &model,
                    VariationMode::WithinDie,
                    Arc::clone(&rule),
                    &DpOptions {
                        jobs,
                        ..DpOptions::default()
                    },
                    &budget,
                )
                .expect("governed run")
            };
            let seq = run(1);
            let par = run(4);
            let label = format!("{name}/seed{seed:x}/pressure");
            assert_same_degradation(&label, &seq, &par);
            assert!(
                seq.result.stats.degraded(),
                "{label}: budget was meant to force degradation"
            );
        }
    }
}

#[test]
fn strict_capacity_error_is_deterministic_across_jobs() {
    // The 4P cross product on a bigger tree breaches a tight cap; the
    // parallel engine must surface the same first-in-postorder breach
    // the sequential engine hits.
    let tree = generate_benchmark(&BenchmarkSpec::random("det-cap", 100, 11));
    let model = model_for(&tree);
    let run = |jobs: usize| -> InsertionError {
        optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &FourParam::default(),
            &DpOptions {
                max_solutions_per_node: 150,
                jobs,
                ..DpOptions::default()
            },
        )
        .expect_err("cap was meant to breach")
    };
    let seq = run(1);
    let par = run(4);
    assert!(matches!(seq, InsertionError::CapacityExceeded { .. }));
    assert_eq!(format!("{seq:?}"), format!("{par:?}"), "breach identity");
}

#[test]
fn batch_is_bit_identical_to_serial_loop_and_order_preserving() {
    let trees: Vec<RoutingTree> = SEEDS
        .iter()
        .enumerate()
        .map(|(i, &seed)| generate_benchmark(&BenchmarkSpec::random("det-batch", 24 + 8 * i, seed)))
        .collect();
    let models: Vec<ProcessModel> = trees.iter().map(model_for).collect();
    let mut requests = Vec::new();
    for (tree, model) in trees.iter().zip(&models) {
        for strict in [false, true] {
            let mut req = BatchRequest::new(
                tree,
                model,
                VariationMode::WithinDie,
                Arc::new(TwoParam::default()),
            );
            req.strict = strict;
            requests.push(req);
        }
    }
    // One deliberately failing request: batch must report errors in
    // place without disturbing its neighbors' slots.
    let mut failing = BatchRequest::new(
        &trees[0],
        &models[0],
        VariationMode::WithinDie,
        Arc::new(FourParam::default()),
    );
    failing.strict = true;
    failing.options = DpOptions {
        max_solutions_per_node: 10,
        time_limit: Duration::from_secs(4 * 3600),
        ..DpOptions::default()
    };
    requests.push(failing);

    let serial = optimize_batch(&requests, 1);
    let batched = optimize_batch(&requests, 4);
    assert_eq!(serial.len(), requests.len());
    assert_eq!(batched.len(), requests.len());
    for (i, (s, p)) in serial.iter().zip(&batched).enumerate() {
        match (s, p) {
            (Ok(s), Ok(p)) => assert_same_degradation(&format!("batch[{i}]"), s, p),
            (Err(es), Err(ep)) => {
                assert_eq!(format!("{es:?}"), format!("{ep:?}"), "batch[{i}]: error")
            }
            _ => panic!("batch[{i}]: Ok/Err divergence between jobs=1 and jobs=4"),
        }
    }
    assert!(
        serial.last().expect("non-empty").is_err(),
        "failing request must error in both"
    );
}
