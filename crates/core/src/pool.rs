//! Parallel execution layer: the batch API ([`optimize_batch`]) and the
//! intra-tree scheduler behind [`DpOptions::jobs`]. Hermetic std-only
//! threading (`std::thread::scope`) — no external runtime.
//!
//! # Threading model
//!
//! Two independent tiers:
//!
//! * **Batch** ([`optimize_batch`]): independent requests (net + rule +
//!   budget) are pulled off a shared atomic cursor by a fixed worker
//!   pool. Result `i` always corresponds to request `i`, and each
//!   request runs with one intra-tree worker, so a batch at any `jobs`
//!   is bit-identical to the same requests run in a serial loop.
//! * **Intra-tree** ([`DpOptions::jobs`] > 1): independent sibling
//!   subtrees of the RC tree are solved concurrently. Dependencies are
//!   tracked with per-node pending-children counters; a node becomes
//!   ready when its last child finishes, and the worker that finished
//!   that child continues with the parent (chain locality). Children
//!   are always joined in fixed child order, so merge results are
//!   bit-identical to the sequential engine.
//!
//! # Determinism contract and governor reconciliation
//!
//! The intra-tree phase is *speculative*: workers run against a frozen
//! snapshot of the governor (rule, epsilon, budget, clock origin) and
//! never mutate it. Any event that would require governor accounting —
//! a candidate list over the soft solution cap, wall clock past the
//! soft time limit, a poisoned candidate the sanitizer would drop —
//! raises *pressure*: the phase is abandoned wholesale and the run
//! redone sequentially under the real, untouched governor. Degraded
//! runs therefore reconcile to the sequential engine by construction:
//! the parallel engine only ever commits results for runs the governor
//! would have left pristine, and those are bit-identical by the fixed
//! join order. Strict-mode capacity breaches are node-local and
//! deterministic; the breach at the smallest postorder position is
//! reported, which is exactly the error the sequential engine hits
//! first. Wall-clock–triggered outcomes (strict time errors, governed
//! time degradations) remain timing-dependent, as they already are
//! between two sequential runs on different machines.
//!
//! Runs that are ineligible for the speculative phase fall back to one
//! thread silently: fault injection active, a scripted [`Clock`]
//! (reads are order-dependent), or a governed budget with finite
//! memory limits (live-byte accounting is order-dependent).
//!
//! [`Clock`]: crate::governor::Clock

use crate::dp::{
    fallback_cascade, optimize_governed_detailed, optimize_with_sizing, process_node, DpOptions,
    EngineInterrupt, GovernedResult, RuleHandle, RunControls, RunCtx, SolPool, Supervisor,
    WireSizing,
};
use crate::error::InsertionError;
use crate::governor::{Admission, Budget, Degradation, Governor};
use crate::hier::HierOptions;
use crate::metrics::DpStats;
use crate::prune::PruningRule;
use crate::solution::StatSolution;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use varbuf_rctree::{NodeId, RoutingTree};
use varbuf_variation::{ProcessModel, VariationMode};

/// The machine's available parallelism (`1` when undetectable) — what
/// the CLI's `--jobs 0` resolves to.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One independent optimization request for [`optimize_batch`].
///
/// Strict requests (`strict == true`) take their limits from
/// `options` (the legacy caps) and surface breaches as typed errors;
/// governed requests degrade within `budget` and always carry a
/// [`Degradation`] report.
pub struct BatchRequest<'a> {
    /// The net to optimize.
    pub tree: &'a RoutingTree,
    /// Process-variation model.
    pub model: &'a ProcessModel,
    /// Variation categories the solution forms carry.
    pub mode: VariationMode,
    /// Primary pruning rule; governed requests start their fallback
    /// cascade here.
    pub rule: Arc<dyn PruningRule>,
    /// Wire-width choice set.
    pub sizing: WireSizing,
    /// Engine knobs (including intra-tree `jobs`, forced to 1 inside a
    /// multi-worker batch).
    pub options: DpOptions,
    /// Resource budget for governed requests.
    pub budget: Budget,
    /// Strict (typed errors on breach) vs governed (degrade) policy.
    pub strict: bool,
    /// When set, governed requests route through the hierarchical
    /// engine ([`crate::hier::optimize_hier`]) with these decomposition
    /// knobs; strict requests ignore it. This is how a forest of
    /// clock subtrees shards across the batch pool at full-chip scale.
    pub hier: Option<HierOptions>,
}

impl<'a> BatchRequest<'a> {
    /// A governed request with default sizing, options, and an
    /// unlimited budget.
    #[must_use]
    pub fn new(
        tree: &'a RoutingTree,
        model: &'a ProcessModel,
        mode: VariationMode,
        rule: Arc<dyn PruningRule>,
    ) -> Self {
        Self {
            tree,
            model,
            mode,
            rule,
            sizing: WireSizing::single(),
            options: DpOptions::default(),
            budget: Budget::unlimited(),
            strict: false,
            hier: None,
        }
    }

    /// Routes this request through the hierarchical engine.
    #[must_use]
    pub fn with_hier(mut self, hier: HierOptions) -> Self {
        self.hier = Some(hier);
        self
    }

    fn run(&self, inner_jobs: Option<usize>) -> Result<GovernedResult, InsertionError> {
        let mut options = self.options;
        if let Some(jobs) = inner_jobs {
            options.jobs = jobs;
        }
        if self.strict {
            let result = optimize_with_sizing(
                self.tree,
                self.model,
                self.mode,
                self.rule.as_ref(),
                &self.sizing,
                &options,
            )?;
            let name = self.rule.name().to_owned();
            return Ok(GovernedResult {
                result,
                degradation: Degradation {
                    initial_rule: name.clone(),
                    final_rule: name,
                    ..Degradation::default()
                },
            });
        }
        if let Some(hier) = &self.hier {
            return crate::hier::optimize_hier(
                self.tree,
                self.model,
                self.mode,
                fallback_cascade(Arc::clone(&self.rule)),
                &self.sizing,
                &options,
                hier,
                &self.budget,
                RunControls::default(),
            )
            .map(crate::hier::HierResult::into_governed);
        }
        optimize_governed_detailed(
            self.tree,
            self.model,
            self.mode,
            fallback_cascade(Arc::clone(&self.rule)),
            &self.sizing,
            &options,
            &self.budget,
            RunControls::default(),
        )
    }
}

/// Order-preserving parallel map over `0..n`: result `i` is `f(i)`,
/// independent of `jobs`. The shared-atomic-cursor worker pool behind
/// both [`optimize_batch`] and the service layer's request drain.
pub(crate) fn run_indexed<R, F>(n: usize, jobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let work = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let out = f(i);
        *slots[i].lock().expect("result slot") = Some(out);
    };
    std::thread::scope(|s| {
        // `work` only captures shared references, so it is `Copy` and
        // each spawn gets its own copy.
        for _ in 1..jobs {
            s.spawn(work);
        }
        work();
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("every index completed")
        })
        .collect()
}

/// Fans independent optimization requests across `jobs` workers.
///
/// Result `i` always corresponds to `requests[i]`. With `jobs > 1`
/// each request runs with one intra-tree worker (the batch already
/// saturates the pool; nesting would oversubscribe), so the output is
/// bit-identical to running the requests in a serial loop.
/// `jobs` beyond the host's available parallelism is clamped (an
/// oversubscribed pool only adds contention); use
/// [`optimize_batch_forced`] to probe the pool machinery regardless.
#[must_use]
pub fn optimize_batch(
    requests: &[BatchRequest<'_>],
    jobs: usize,
) -> Vec<Result<GovernedResult, InsertionError>> {
    optimize_batch_with(requests, jobs.min(default_jobs()))
}

/// [`optimize_batch`] without the available-parallelism clamp: spawns
/// exactly `min(jobs, requests.len())` workers even on a host with
/// fewer hardware threads. The output is bit-identical to
/// [`optimize_batch`] either way (order-preserving result slots); this
/// exists so determinism tests and pool diagnostics exercise the
/// multi-worker path on any machine.
#[must_use]
pub fn optimize_batch_forced(
    requests: &[BatchRequest<'_>],
    jobs: usize,
) -> Vec<Result<GovernedResult, InsertionError>> {
    optimize_batch_with(requests, jobs)
}

fn optimize_batch_with(
    requests: &[BatchRequest<'_>],
    jobs: usize,
) -> Vec<Result<GovernedResult, InsertionError>> {
    let jobs = jobs.max(1).min(requests.len().max(1));
    if jobs == 1 {
        return requests.iter().map(|r| r.run(None)).collect();
    }
    run_indexed(requests.len(), jobs, |i| requests[i].run(Some(1)))
}

/// Frozen governor snapshot shared by the speculative phase's workers.
struct ProbeShared {
    /// Governor-relative elapsed time at phase start…
    base_elapsed: Duration,
    /// …plus this phase-local stopwatch (the governor's clock keeps
    /// counting through the phase either way).
    start: Instant,
    governed: bool,
    soft_time: Duration,
    hard_time: Duration,
    soft_solutions: usize,
    hard_solutions: usize,
    pressure: AtomicBool,
}

impl ProbeShared {
    fn elapsed(&self) -> Duration {
        self.base_elapsed + self.start.elapsed()
    }

    fn pressured(&self) -> bool {
        self.pressure.load(Ordering::Relaxed)
    }

    fn raise_pressure(&self) {
        self.pressure.store(true, Ordering::Relaxed);
    }
}

/// Per-worker supervisor for the speculative phase: read-only against
/// the frozen snapshot, raising [`EngineInterrupt::Pressure`] at the
/// first event the real governor would have had to account for.
struct ProbeSupervisor<'r, 's> {
    shared: &'s ProbeShared,
    rule: RuleHandle<'r>,
    epsilon: f64,
}

impl<'r> Supervisor<'r> for ProbeSupervisor<'r, '_> {
    fn rule(&self) -> RuleHandle<'r> {
        self.rule.clone()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn is_governed(&self) -> bool {
        self.shared.governed
    }

    fn panicking(&self) -> bool {
        false
    }

    fn check_time(&mut self) -> Result<(), EngineInterrupt> {
        if self.shared.pressured() {
            return Err(EngineInterrupt::Pressure);
        }
        let elapsed = self.shared.elapsed();
        if self.shared.governed {
            if elapsed > self.shared.soft_time {
                self.shared.raise_pressure();
                return Err(EngineInterrupt::Pressure);
            }
        } else if elapsed > self.shared.hard_time {
            return Err(EngineInterrupt::Error(InsertionError::TimeLimitExceeded {
                elapsed,
                limit: self.shared.hard_time,
            }));
        }
        Ok(())
    }

    fn admit(&mut self, node: NodeId, solutions: usize) -> Result<Admission, EngineInterrupt> {
        if self.shared.governed {
            if solutions > self.shared.soft_solutions {
                self.shared.raise_pressure();
                return Err(EngineInterrupt::Pressure);
            }
        } else if solutions > self.shared.hard_solutions {
            return Err(EngineInterrupt::Error(InsertionError::CapacityExceeded {
                node,
                solutions,
                limit: self.shared.hard_solutions,
            }));
        }
        Ok(Admission::Ok)
    }

    fn sanitize(
        &mut self,
        _node: NodeId,
        sols: &mut Vec<StatSolution>,
    ) -> Result<(), EngineInterrupt> {
        // Mirror of Governor::sanitize's predicate — but any candidate
        // it would drop is pressure, because the drop must be recorded
        // by the real governor.
        let clean = sols.iter().all(|s| {
            s.load.mean().is_finite()
                && s.rat.mean().is_finite()
                && s.load.variance().is_finite()
                && s.rat.variance().is_finite()
                && s.load.variance() >= 0.0
                && s.rat.variance() >= 0.0
                && s.wire_pending.is_finite()
        });
        if clean {
            Ok(())
        } else {
            self.shared.raise_pressure();
            Err(EngineInterrupt::Pressure)
        }
    }

    fn note_memory(&mut self, _stored: &[StatSolution], _freed: usize) {
        // Eligibility guarantees memory budgets are unlimited, so the
        // estimate can never trigger anything.
    }
}

/// Dependency-counter scheduler shared by the phase's workers.
struct Scheduler {
    /// Initially the leaves; interior nodes are handed directly to the
    /// worker that completed their last child.
    queue: Mutex<VecDeque<NodeId>>,
    cv: Condvar,
    done: AtomicUsize,
    total: usize,
    /// Smallest postorder position with a recorded strict error
    /// (`usize::MAX` = none) — nodes at or past it are skipped.
    err_pos: AtomicUsize,
    error: Mutex<Option<(usize, InsertionError)>>,
}

impl Scheduler {
    fn next_ready(&self, shared: &ProbeShared) -> Option<NodeId> {
        let mut q = self.queue.lock().expect("queue lock");
        loop {
            if shared.pressured() || self.done.load(Ordering::Acquire) >= self.total {
                return None;
            }
            if let Some(id) = q.pop_front() {
                return Some(id);
            }
            q = self.cv.wait(q).expect("queue lock");
        }
    }

    fn skip(&self, pos: usize) -> bool {
        pos >= self.err_pos.load(Ordering::Relaxed)
    }

    fn record_error(&self, pos: usize, e: InsertionError) {
        let mut slot = self.error.lock().expect("error lock");
        if slot.as_ref().is_none_or(|(p, _)| pos < *p) {
            *slot = Some((pos, e));
            self.err_pos.store(pos, Ordering::Relaxed);
        }
    }

    /// Stores a finished node's list and hands its parent to this
    /// worker if that completed the parent's last dependency.
    fn complete(
        &self,
        tree: &RoutingTree,
        id: NodeId,
        sols: Vec<StatSolution>,
        slots: &[Mutex<Option<Vec<StatSolution>>>],
        pending: &[AtomicUsize],
        next: &mut Option<NodeId>,
    ) {
        *slots[id.index()].lock().expect("slot lock") = Some(sols);
        let finished = self.done.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(p) = tree.node(id).parent {
            if pending[p.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
                *next = Some(p);
            }
        }
        if finished == self.total {
            self.cv.notify_all();
        }
    }

    fn wake_all(&self) {
        self.cv.notify_all();
    }
}

/// The speculative intra-tree phase. `None` means the run is
/// ineligible or aborted on pressure — the caller falls through to the
/// sequential engine with the governor untouched. `Some(Ok)` carries
/// the root's candidate list plus worker-merged stats; `Some(Err)` is
/// a deterministic strict-mode error (smallest postorder position).
#[allow(clippy::type_complexity)]
pub(crate) fn try_parallel_tree(
    ctx: &RunCtx<'_>,
    static_rule: Option<&dyn PruningRule>,
    options: &DpOptions,
    governor: &Governor,
) -> Option<Result<(Vec<StatSolution>, DpStats), InsertionError>> {
    let tree = ctx.tree;
    if options.effective_jobs() <= 1
        || !governor.uses_real_clock()
        || !governor.pristine()
        || governor.cancellable()
    {
        // Cancellable runs stay sequential: the probe supervisor never
        // polls the token, so a watchdog could overrun unobserved for
        // the whole speculative phase.
        return None;
    }
    let budget = governor.budget();
    if governor.is_governed()
        && (budget.soft_mem_bytes != usize::MAX || budget.hard_mem_bytes != usize::MAX)
    {
        // Live-byte accounting is order-dependent; leave it sequential.
        return None;
    }
    let rule: RuleHandle<'_> = match static_rule {
        Some(r) => RuleHandle::Static(r),
        None => RuleHandle::Shared(governor.active_rule()),
    };
    let epsilon = governor.epsilon();
    let shared = ProbeShared {
        base_elapsed: governor.elapsed(),
        start: Instant::now(),
        governed: governor.is_governed(),
        soft_time: budget.soft_time,
        hard_time: budget.hard_time,
        soft_solutions: budget.soft_solutions,
        hard_solutions: budget.hard_solutions,
        pressure: AtomicBool::new(false),
    };

    let order = tree.postorder();
    let n = tree.len();
    let mut pos = vec![0usize; n];
    for (i, id) in order.iter().enumerate() {
        pos[id.index()] = i;
    }
    let pending: Vec<AtomicUsize> = (0..n)
        .map(|i| AtomicUsize::new(tree.node(NodeId(i as u32)).children.len()))
        .collect();
    let slots: Vec<Mutex<Option<Vec<StatSolution>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let leaves: VecDeque<NodeId> = order
        .iter()
        .copied()
        .filter(|id| tree.node(*id).children.is_empty())
        .collect();
    let sched = Scheduler {
        queue: Mutex::new(leaves),
        cv: Condvar::new(),
        done: AtomicUsize::new(0),
        total: n,
        err_pos: AtomicUsize::new(usize::MAX),
        error: Mutex::new(None),
    };

    let workers = options.effective_jobs().min(n.max(1));
    let mut worker_stats: Vec<DpStats> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers - 1);
        for _ in 1..workers {
            let rule = rule.clone();
            handles.push(
                s.spawn(|| worker(ctx, &shared, rule, epsilon, &sched, &pos, &pending, &slots)),
            );
        }
        worker_stats.push(worker(
            ctx,
            &shared,
            rule.clone(),
            epsilon,
            &sched,
            &pos,
            &pending,
            &slots,
        ));
        for h in handles {
            worker_stats.push(h.join().expect("parallel worker panicked"));
        }
    });

    if shared.pressured() {
        return None;
    }
    if let Some((_, e)) = sched.error.into_inner().expect("error lock") {
        return Some(Err(e));
    }
    let root_list = slots[tree.root().index()]
        .lock()
        .expect("slot lock")
        .take()
        .expect("root list computed");
    let mut stats = DpStats::default();
    for w in &worker_stats {
        stats.absorb(w);
    }
    Some(Ok((root_list, stats)))
}

/// One worker of the speculative phase: pulls ready nodes, processes
/// them with the shared per-node DP body, and chains into parents it
/// unblocks.
#[allow(clippy::too_many_arguments)]
fn worker(
    ctx: &RunCtx<'_>,
    shared: &ProbeShared,
    rule: RuleHandle<'_>,
    epsilon: f64,
    sched: &Scheduler,
    pos: &[usize],
    pending: &[AtomicUsize],
    slots: &[Mutex<Option<Vec<StatSolution>>>],
) -> DpStats {
    let tree = ctx.tree;
    let mut sup = ProbeSupervisor {
        shared,
        rule,
        epsilon,
    };
    let mut pool = SolPool::default();
    let mut stats = DpStats::default();
    let mut next: Option<NodeId> = None;
    loop {
        let id = match next.take() {
            Some(id) => id,
            None => match sched.next_ready(shared) {
                Some(id) => id,
                None => break,
            },
        };
        // Past a recorded error position nothing can lower the minimum
        // (ancestors only have larger positions): skip, but keep the
        // dependency counters flowing so the phase still drains.
        if sched.skip(pos[id.index()]) {
            sched.complete(tree, id, Vec::new(), slots, pending, &mut next);
            continue;
        }
        let children: Vec<Vec<StatSolution>> = tree
            .node(id)
            .children
            .iter()
            .map(|c| {
                slots[c.index()]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .unwrap_or_default()
            })
            .collect();
        match process_node(ctx, &mut sup, id, children, None, &mut pool, &mut stats) {
            Ok(sols) => sched.complete(tree, id, sols, slots, pending, &mut next),
            Err(EngineInterrupt::Pressure) => {
                shared.raise_pressure();
                sched.wake_all();
                break;
            }
            Err(EngineInterrupt::Error(e)) => {
                sched.record_error(pos[id.index()], e);
                sched.complete(tree, id, Vec::new(), slots, pending, &mut next);
            }
        }
    }
    stats
}
