//! Resource governor and graceful-degradation policy for the DP engine.
//!
//! The paper's own evaluation (Table 2) shows the 4P rule blowing past
//! 2 GB of memory and a four-hour wall-clock cutoff; the seed engine
//! modeled that failure mode as a hard abort that threw away all work.
//! This module replaces the abort with a *policy object*, the
//! [`Governor`], consulted by the DP at every resource-relevant point:
//!
//! * a [`Budget`] carries **soft and hard** limits on per-node solution
//!   count, wall clock, and estimated live memory;
//! * on a **soft breach** the governor degrades instead of aborting:
//!   it walks a *fallback cascade* of pruning rules (e.g. 4P → thresholded
//!   2P → deterministic mean dominance, each strictly cheaper), then
//!   tightens epsilon-sparsification, then truncates candidate lists;
//! * on a **hard breach** it enters *panic completion*: every remaining
//!   node keeps only its single best candidate, so the run finishes in
//!   linear time and still returns a valid (suboptimal) buffered tree —
//!   the best-so-far recovery path;
//! * every degradation is recorded as a [`DegradationEvent`] in a
//!   structured [`Degradation`] report returned alongside the result.
//!
//! The legacy strict behavior (breach ⇒ typed error) is the same engine
//! with a [`Governor::strict`] policy whose soft and hard limits
//! coincide and whose cascade is empty.

use crate::error::InsertionError;
use crate::prune::PruningRule;
use crate::solution::StatSolution;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use varbuf_rctree::NodeId;

/// A monotonic elapsed-time source.
///
/// The DP never reads wall-clock time directly; it asks its governor's
/// clock. That indirection is what lets the fault-injection harness
/// (`crate::faultinject`) skew time deterministically in tests.
pub trait Clock: fmt::Debug {
    /// Time elapsed since the clock was started.
    fn elapsed(&self) -> Duration;
}

/// The real clock: elapsed time since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// Starts the clock now.
    #[must_use]
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A cooperative cancellation token shared between a run and whoever may
/// need to stop it early — the service layer's shutdown path, or a
/// request watchdog. Cancelling is a one-way latch; the DP observes it at
/// its regular `check_time` points, so cancellation is *cooperative*:
/// a governed run answers it by entering panic completion (best-so-far),
/// a strict run by returning [`InsertionError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Latches the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Soft/hard resource limits for one optimization run.
///
/// A *soft* breach triggers graceful degradation (rule fallback, epsilon
/// tightening, list truncation); a *hard* breach triggers panic
/// completion. Every soft limit must be at most its hard counterpart —
/// constructors clamp to guarantee it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Per-node candidate count above which degradation starts.
    pub soft_solutions: usize,
    /// Per-node candidate count that must never be materialized.
    pub hard_solutions: usize,
    /// Wall clock after which degradation starts.
    pub soft_time: Duration,
    /// Wall clock after which only panic completion is allowed.
    pub hard_time: Duration,
    /// Estimated live solution memory (bytes) at which degradation starts.
    pub soft_mem_bytes: usize,
    /// Estimated live solution memory (bytes) forcing panic completion.
    pub hard_mem_bytes: usize,
}

impl Budget {
    /// Effectively no limits (the permissive default).
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            soft_solutions: usize::MAX,
            hard_solutions: usize::MAX,
            soft_time: Duration::MAX,
            hard_time: Duration::MAX,
            soft_mem_bytes: usize::MAX,
            hard_mem_bytes: usize::MAX,
        }
    }

    /// A budget with the given soft limits and hard limits a fixed factor
    /// (4× solutions/memory, 2× time) above them.
    #[must_use]
    pub fn with_soft(solutions: usize, time: Duration, mem_bytes: usize) -> Self {
        Self {
            soft_solutions: solutions,
            hard_solutions: solutions.saturating_mul(4),
            soft_time: time,
            hard_time: time.saturating_mul(2),
            soft_mem_bytes: mem_bytes,
            hard_mem_bytes: mem_bytes.saturating_mul(4),
        }
    }

    /// The strict legacy budget: soft and hard limits coincide at the
    /// engine caps, so the first breach is already a hard breach.
    #[must_use]
    pub fn strict(max_solutions_per_node: usize, time_limit: Duration) -> Self {
        Self {
            soft_solutions: max_solutions_per_node,
            hard_solutions: max_solutions_per_node,
            soft_time: time_limit,
            hard_time: time_limit,
            soft_mem_bytes: usize::MAX,
            hard_mem_bytes: usize::MAX,
        }
    }

    /// Whether any axis of this budget is finite — i.e. resource
    /// pressure can actually trigger degradation. Bound-guided pruning
    /// disarms itself on governed runs where this is `true`: shrinking
    /// candidate lists would shift *when* the governor degrades, and a
    /// degraded run's output legitimately depends on that timing.
    #[must_use]
    pub fn constrains_run(&self) -> bool {
        self.soft_solutions != usize::MAX
            || self.hard_solutions != usize::MAX
            || self.soft_time != Duration::MAX
            || self.hard_time != Duration::MAX
            || self.soft_mem_bytes != usize::MAX
            || self.hard_mem_bytes != usize::MAX
    }

    /// Clamps soft limits to their hard counterparts (soft ≤ hard).
    #[must_use]
    pub fn normalized(mut self) -> Self {
        self.soft_solutions = self.soft_solutions.min(self.hard_solutions);
        self.soft_time = self.soft_time.min(self.hard_time);
        self.soft_mem_bytes = self.soft_mem_bytes.min(self.hard_mem_bytes);
        self
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// What resource pressure triggered a degradation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// A node's candidate list (or a pending cross-product merge)
    /// exceeded a solution-count limit.
    SolutionPressure {
        /// The node being processed.
        node: NodeId,
        /// The candidate count observed or required.
        solutions: usize,
        /// The limit that was breached.
        limit: usize,
    },
    /// Wall clock crossed a time limit.
    TimePressure {
        /// Elapsed time at the breach.
        elapsed: Duration,
        /// The limit that was breached.
        limit: Duration,
    },
    /// The estimated live-memory footprint crossed a limit.
    MemoryPressure {
        /// Estimated live bytes.
        estimated_bytes: usize,
        /// The limit that was breached.
        limit_bytes: usize,
    },
    /// Candidate solutions with non-finite statistics were found.
    PoisonedSolutions {
        /// The node whose list carried the poison.
        node: NodeId,
        /// How many entries were invalid.
        count: usize,
    },
    /// The run was cancelled — its watchdog deadline fired, or an
    /// external [`CancelToken`] was triggered.
    Cancelled {
        /// Elapsed time when the cancellation was observed.
        elapsed: Duration,
        /// The watchdog deadline, if that is what fired (`None` for an
        /// external cancel).
        deadline: Option<Duration>,
    },
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::SolutionPressure {
                node,
                solutions,
                limit,
            } => write!(f, "{solutions} candidates at {node} over the {limit} cap"),
            Trigger::TimePressure { elapsed, limit } => write!(
                f,
                "{:.2}s elapsed over the {:.2}s budget",
                elapsed.as_secs_f64(),
                limit.as_secs_f64()
            ),
            Trigger::MemoryPressure {
                estimated_bytes,
                limit_bytes,
            } => write!(
                f,
                "~{} KiB live over the {} KiB budget",
                estimated_bytes / 1024,
                limit_bytes / 1024
            ),
            Trigger::PoisonedSolutions { node, count } => {
                write!(f, "{count} poisoned candidates at {node}")
            }
            Trigger::Cancelled { elapsed, deadline } => match deadline {
                Some(d) => write!(
                    f,
                    "watchdog deadline {:.2}s hit at {:.2}s",
                    d.as_secs_f64(),
                    elapsed.as_secs_f64()
                ),
                None => write!(f, "cancelled externally at {:.2}s", elapsed.as_secs_f64()),
            },
        }
    }
}

/// What the governor did about a trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// The active pruning rule was switched to a cheaper fallback.
    RuleFallback {
        /// Rule that was abandoned.
        from: &'static str,
        /// Rule now active.
        to: &'static str,
    },
    /// Epsilon-sparsification was tightened.
    EpsilonTightened {
        /// Previous epsilon ×10⁶ (scaled to stay integral/Eq-comparable).
        from_micros: u64,
        /// New epsilon ×10⁶.
        to_micros: u64,
    },
    /// A candidate list was cut down, keeping a load-spread subset.
    ListTruncated {
        /// Size before truncation.
        from: usize,
        /// Size after truncation.
        to: usize,
    },
    /// Panic completion engaged: one candidate per node from here on.
    PanicCompletion,
    /// Invalid (NaN / non-finite-variance) candidates were dropped.
    PoisonedDropped {
        /// How many entries were removed.
        count: usize,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::RuleFallback { from, to } => write!(f, "fell back from {from} to {to}"),
            Action::EpsilonTightened {
                from_micros,
                to_micros,
            } => write!(
                f,
                "tightened sparsify epsilon {:.0e} -> {:.0e}",
                *from_micros as f64 * 1e-6,
                *to_micros as f64 * 1e-6
            ),
            Action::ListTruncated { from, to } => {
                write!(f, "truncated candidate list {from} -> {to}")
            }
            Action::PanicCompletion => write!(f, "entered panic completion (best-so-far)"),
            Action::PoisonedDropped { count } => write!(f, "dropped {count} poisoned candidates"),
        }
    }
}

/// One recorded degradation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationEvent {
    /// When it happened, relative to run start.
    pub at: Duration,
    /// The resource pressure observed.
    pub trigger: Trigger,
    /// The mitigation applied.
    pub action: Action,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>8.3}s] {}: {}",
            self.at.as_secs_f64(),
            self.trigger,
            self.action
        )
    }
}

/// A pre-run guard substitution: an unconstrained 4P request on a tree
/// large enough that its cross-product merges are known-intractable was
/// started directly under a cheaper rule instead of discovering the
/// blowup mid-run. Unlike a [`DegradationEvent`] this is a *planning*
/// decision — the run itself then proceeds at full fidelity under the
/// substituted rule, so it does not count as resource degradation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardedFallback {
    /// Rule the caller asked for.
    pub from: String,
    /// Rule the run actually started under.
    pub to: String,
    /// Sink count of the offending tree.
    pub sinks: usize,
    /// The configured sink-count threshold that tripped the guard.
    pub threshold: usize,
}

impl fmt::Display for GuardedFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "guarded {} -> {}: {} sinks over the {}-sink unconstrained-merge threshold",
            self.from, self.to, self.sinks, self.threshold
        )
    }
}

/// Structured report of everything a governed run relaxed.
///
/// An empty report (`degraded() == false`) means the run completed within
/// its budget at full fidelity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Every degradation step, in order.
    pub events: Vec<DegradationEvent>,
    /// Rule the run started with.
    pub initial_rule: String,
    /// Rule active when the run finished.
    pub final_rule: String,
    /// Whether panic completion (best-so-far recovery) was engaged.
    pub panic_completion: bool,
    /// Whether the run was cancelled (watchdog deadline or external
    /// token) and finished on the best-so-far path.
    pub cancelled: bool,
    /// A pre-run rule substitution applied by the combinatorial-blowup
    /// guard, if any. Deliberately *not* part of [`Degradation::degraded`]:
    /// the substituted run completes within budget at full fidelity.
    pub guard: Option<GuardedFallback>,
    /// Peak bytes simultaneously resident in streaming solution chunks
    /// (hierarchical runs; `0` for flat runs, which hold no chunks).
    pub peak_chunk_bytes: usize,
}

impl Degradation {
    /// Whether anything was relaxed.
    #[must_use]
    pub fn degraded(&self) -> bool {
        !self.events.is_empty() || self.panic_completion || self.cancelled
    }

    /// Number of rule-fallback steps taken.
    #[must_use]
    pub fn rule_fallbacks(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, Action::RuleFallback { .. }))
            .count()
    }

    /// Number of epsilon-tightening steps taken.
    #[must_use]
    pub fn epsilon_tightenings(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, Action::EpsilonTightened { .. }))
            .count()
    }

    /// Number of list-truncation events recorded.
    #[must_use]
    pub fn truncations(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, Action::ListTruncated { .. }))
            .count()
    }

    /// Total poisoned candidates dropped across the run.
    #[must_use]
    pub fn poisoned_dropped(&self) -> usize {
        self.events
            .iter()
            .filter_map(|e| match e.action {
                Action::PoisonedDropped { count } => Some(count),
                _ => None,
            })
            .sum()
    }

    /// A one-line-per-event human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        if !self.degraded() {
            let mut out = "completed within budget (no degradation)".to_owned();
            if let Some(guard) = &self.guard {
                out.push_str(&format!("\n  {guard}\n"));
            }
            return out;
        }
        let mut out = format!(
            "degraded run: rule {} -> {}, {} event(s){}{}\n",
            self.initial_rule,
            self.final_rule,
            self.events.len(),
            if self.panic_completion {
                ", panic completion"
            } else {
                ""
            },
            if self.cancelled { ", cancelled" } else { "" }
        );
        if let Some(guard) = &self.guard {
            out.push_str(&format!("  {guard}\n"));
        }
        for e in &self.events {
            out.push_str(&format!("  {e}\n"));
        }
        out
    }
}

/// What the DP must do after offering a candidate list to the governor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Within budget; proceed.
    Ok,
    /// The governor switched the active rule; re-prune with
    /// [`Governor::active_rule`] and offer the list again.
    Reprune,
    /// Cut the list to this many entries (keep a load-spread subset),
    /// then offer it again.
    Truncate(usize),
}

/// Estimated heap footprint of one candidate solution, in bytes.
///
/// Canonical-form terms are `(u32, f64)` pairs in a `Vec` (16 aligned
/// bytes each); the struct bodies, two `Vec` headers and the trace `Arc`
/// cost roughly 128 bytes more. An estimate is all the budget needs —
/// it is compared against user-supplied soft limits, not against an
/// allocator.
#[must_use]
pub fn solution_footprint(s: &StatSolution) -> usize {
    // A pending lazy-wire transform will add up to the load's term set
    // to the RAT at materialization; charge that growth now so parked
    // or cached pending solutions don't under-report what they are
    // about to cost.
    let pending_rat = if s.wire_pending != 0.0 {
        s.load.term_count()
    } else {
        0
    };
    128 + 16 * (s.load.term_count() + s.rat.term_count() + pending_rat)
}

/// The resource-governing policy object threaded through the DP.
///
/// Construct with [`Governor::strict`] for the legacy abort-on-breach
/// behavior or [`Governor::governed`] for graceful degradation, then pass
/// to the engine. After the run, [`Governor::into_report`] yields the
/// [`Degradation`] report.
#[derive(Debug)]
pub struct Governor {
    budget: Budget,
    clock: Box<dyn Clock>,
    /// Fallback rules, cheapest last. `active` indexes into it; an empty
    /// cascade means the engine's caller-supplied rule stays active.
    cascade: Vec<Arc<dyn PruningRule>>,
    active: usize,
    /// `None` ⇒ strict mode (breach = typed error, no degradation).
    governed: bool,
    epsilon: f64,
    max_epsilon: f64,
    panic_mode: bool,
    /// Whether `clock` is the real monotonic clock (false after
    /// [`Governor::with_clock`]) — the parallel engine refuses to run on
    /// scripted clocks, whose reads are order-dependent.
    real_clock: bool,
    /// Soft-time pressure is acted on once per escalation, not per node.
    time_steps_taken: u32,
    mem_steps_taken: u32,
    live_bytes: usize,
    /// High-water mark of bytes held in streaming solution chunks
    /// (reported by the hierarchical engine via `note_chunk_bytes`).
    peak_chunk_bytes: usize,
    events: Vec<DegradationEvent>,
    initial_rule: String,
    poisoned_total: usize,
    /// External cancellation token, polled in `check_time`.
    cancel: Option<CancelToken>,
    /// Per-request deadline on the governor's clock; overrun cancels the
    /// run from within (distinct from `budget.hard_time`, which is a
    /// *resource* wall — the watchdog is a *liveness* wall the service
    /// layer sets uniformly across requests).
    watchdog: Option<Duration>,
    cancelled: bool,
}

impl Governor {
    /// The legacy strict policy: the caller's rule stays active for the
    /// whole run and the first breach of `budget`'s hard limits is a
    /// typed error.
    #[must_use]
    pub fn strict(budget: Budget, base_epsilon: f64) -> Self {
        Self {
            budget: budget.normalized(),
            clock: Box::new(MonotonicClock::new()),
            cascade: Vec::new(),
            active: 0,
            governed: false,
            epsilon: base_epsilon,
            max_epsilon: base_epsilon,
            panic_mode: false,
            real_clock: true,
            time_steps_taken: 0,
            mem_steps_taken: 0,
            live_bytes: 0,
            peak_chunk_bytes: 0,
            events: Vec::new(),
            initial_rule: String::new(),
            poisoned_total: 0,
            cancel: None,
            watchdog: None,
            cancelled: false,
        }
    }

    /// The graceful-degradation policy.
    ///
    /// `cascade` lists the pruning rules in order of decreasing cost,
    /// starting with the rule the run begins under; soft breaches advance
    /// through it before tightening epsilon or truncating.
    ///
    /// # Panics
    ///
    /// Panics if `cascade` is empty — a governed run owns its rule.
    #[must_use]
    pub fn governed(budget: Budget, cascade: Vec<Arc<dyn PruningRule>>, base_epsilon: f64) -> Self {
        assert!(!cascade.is_empty(), "governed cascade must not be empty");
        let initial_rule = cascade[0].name().to_owned();
        Self {
            budget: budget.normalized(),
            clock: Box::new(MonotonicClock::new()),
            cascade,
            active: 0,
            governed: true,
            epsilon: base_epsilon,
            max_epsilon: 1e-2,
            panic_mode: false,
            real_clock: true,
            time_steps_taken: 0,
            mem_steps_taken: 0,
            live_bytes: 0,
            peak_chunk_bytes: 0,
            events: Vec::new(),
            initial_rule,
            poisoned_total: 0,
            cancel: None,
            watchdog: None,
            cancelled: false,
        }
    }

    /// Replaces the wall-clock source (fault injection uses this to skew
    /// time deterministically).
    #[must_use]
    pub fn with_clock(mut self, clock: Box<dyn Clock>) -> Self {
        self.clock = clock;
        self.real_clock = false;
        self
    }

    /// Arms cooperative cancellation: `token` may be latched externally
    /// (service shutdown, client disconnect) and `watchdog`, when set, is
    /// a per-run deadline measured on the governor's clock. Either firing
    /// turns the next `check_time` into best-so-far completion (governed)
    /// or [`InsertionError::Cancelled`] (strict).
    #[must_use]
    pub fn with_cancellation(mut self, token: CancelToken, watchdog: Option<Duration>) -> Self {
        self.cancel = Some(token);
        self.watchdog = watchdog;
        self
    }

    /// Whether a cancellation source (token or watchdog) is armed.
    pub(crate) fn cancellable(&self) -> bool {
        self.cancel.is_some() || self.watchdog.is_some()
    }

    /// Whether the run has observed a cancellation.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }

    /// The budget this governor enforces.
    #[must_use]
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Whether the governor still runs on the real monotonic clock.
    pub(crate) fn uses_real_clock(&self) -> bool {
        self.real_clock
    }

    /// Whether no degradation of any kind has happened yet — the state
    /// the parallel engine snapshots before forking workers.
    pub(crate) fn pristine(&self) -> bool {
        self.events.is_empty() && !self.panic_mode && self.active == 0 && self.poisoned_total == 0
    }

    /// The rule a governed run is currently pruning with.
    ///
    /// # Panics
    ///
    /// Panics on a strict governor, whose rule lives with the caller.
    #[must_use]
    pub fn active_rule(&self) -> Arc<dyn PruningRule> {
        Arc::clone(&self.cascade[self.active])
    }

    /// Whether this governor degrades (true) or aborts (false) on breach.
    #[must_use]
    pub fn is_governed(&self) -> bool {
        self.governed
    }

    /// Current epsilon-sparsification level.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Whether panic completion is engaged (keep one candidate per node).
    #[must_use]
    pub fn panicking(&self) -> bool {
        self.panic_mode
    }

    /// Elapsed run time per the governor's clock.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.clock.elapsed()
    }

    fn record(&mut self, trigger: Trigger, action: Action) {
        self.events.push(DegradationEvent {
            at: self.clock.elapsed(),
            trigger,
            action,
        });
    }

    /// Advances the cascade if a cheaper rule remains. Returns the new
    /// rule's name on success.
    fn try_fallback(&mut self, trigger: Trigger) -> bool {
        if self.active + 1 >= self.cascade.len() {
            return false;
        }
        let from = self.cascade[self.active].name();
        self.active += 1;
        let to = self.cascade[self.active].name();
        self.record(trigger, Action::RuleFallback { from, to });
        true
    }

    /// Tightens epsilon if headroom remains.
    fn try_tighten_epsilon(&mut self, trigger: Trigger) -> bool {
        if self.epsilon >= self.max_epsilon {
            return false;
        }
        let from = self.epsilon;
        self.epsilon = (self.epsilon.max(1e-5) * 10.0).min(self.max_epsilon);
        let to = self.epsilon;
        self.record(
            trigger,
            Action::EpsilonTightened {
                from_micros: (from * 1e6) as u64,
                to_micros: (to * 1e6) as u64,
            },
        );
        true
    }

    fn enter_panic(&mut self, trigger: Trigger) {
        if !self.panic_mode {
            self.panic_mode = true;
            self.record(trigger, Action::PanicCompletion);
        }
    }

    /// Wall-clock check. Strict: hard breach is a typed error. Governed:
    /// a soft breach walks the degradation ladder (once per escalation
    /// level), a hard breach engages panic completion. Cancellation
    /// (external token or watchdog overrun) is observed here too: a
    /// governed run enters panic completion marked `cancelled`, a strict
    /// run returns a typed error.
    ///
    /// # Errors
    ///
    /// [`InsertionError::TimeLimitExceeded`] or
    /// [`InsertionError::Cancelled`] in strict mode only.
    pub fn check_time(&mut self) -> Result<(), InsertionError> {
        let elapsed = self.clock.elapsed();
        let deadline_hit = self.watchdog.is_some_and(|d| elapsed > d);
        if deadline_hit || self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            if !self.governed {
                return Err(InsertionError::Cancelled { elapsed });
            }
            if !self.cancelled {
                self.cancelled = true;
                let trigger = Trigger::Cancelled {
                    elapsed,
                    deadline: if deadline_hit { self.watchdog } else { None },
                };
                if self.panic_mode {
                    // Already on the best-so-far path (e.g. a hard-time
                    // breach beat the watchdog); still record the cancel.
                    self.record(trigger, Action::PanicCompletion);
                } else {
                    self.enter_panic(trigger);
                }
            }
            return Ok(());
        }
        if !self.governed {
            if elapsed > self.budget.hard_time {
                return Err(InsertionError::TimeLimitExceeded {
                    elapsed,
                    limit: self.budget.hard_time,
                });
            }
            return Ok(());
        }
        if elapsed > self.budget.hard_time {
            self.enter_panic(Trigger::TimePressure {
                elapsed,
                limit: self.budget.hard_time,
            });
        } else if elapsed > self.budget.soft_time && self.time_steps_taken == 0 {
            self.time_steps_taken += 1;
            let trigger = Trigger::TimePressure {
                elapsed,
                limit: self.budget.soft_time,
            };
            let _ = self.try_fallback(trigger.clone()) || self.try_tighten_epsilon(trigger);
        }
        Ok(())
    }

    /// Offers a node's materialized candidate count (or, before a
    /// cross-product merge, the count *about to be* materialized).
    ///
    /// # Errors
    ///
    /// [`InsertionError::CapacityExceeded`] in strict mode only.
    pub fn admit(&mut self, node: NodeId, solutions: usize) -> Result<Admission, InsertionError> {
        if !self.governed {
            if solutions > self.budget.hard_solutions {
                return Err(InsertionError::CapacityExceeded {
                    node,
                    solutions,
                    limit: self.budget.hard_solutions,
                });
            }
            return Ok(Admission::Ok);
        }
        if self.panic_mode {
            return Ok(if solutions > 1 {
                Admission::Truncate(1)
            } else {
                Admission::Ok
            });
        }
        // Memory pressure feeds the same ladder as solution-count
        // pressure; check the harder constraint of the two.
        let mem_breach = self.live_bytes > self.budget.soft_mem_bytes && self.mem_steps_taken < 2;
        if solutions <= self.budget.soft_solutions && !mem_breach {
            return Ok(Admission::Ok);
        }
        let trigger = if solutions > self.budget.soft_solutions {
            Trigger::SolutionPressure {
                node,
                solutions,
                limit: self.budget.soft_solutions,
            }
        } else {
            self.mem_steps_taken += 1;
            Trigger::MemoryPressure {
                estimated_bytes: self.live_bytes,
                limit_bytes: self.budget.soft_mem_bytes,
            }
        };
        if self.try_fallback(trigger.clone()) {
            return Ok(Admission::Reprune);
        }
        if self.try_tighten_epsilon(trigger.clone()) {
            // Epsilon only helps future forms; give immediate relief too
            // when over the hard cap.
            if solutions > self.budget.hard_solutions {
                self.record(
                    trigger,
                    Action::ListTruncated {
                        from: solutions,
                        to: self.budget.soft_solutions,
                    },
                );
                return Ok(Admission::Truncate(self.budget.soft_solutions.max(1)));
            }
            return Ok(Admission::Ok);
        }
        if solutions > self.budget.hard_solutions || self.live_bytes > self.budget.hard_mem_bytes {
            self.enter_panic(trigger);
            return Ok(Admission::Truncate(1));
        }
        // Ladder exhausted but still under the hard cap: truncate back to
        // the soft cap and keep going.
        self.record(
            trigger,
            Action::ListTruncated {
                from: solutions,
                to: self.budget.soft_solutions,
            },
        );
        Ok(Admission::Truncate(self.budget.soft_solutions.max(1)))
    }

    /// Removes candidates with non-finite load/RAT statistics, recording
    /// a [`Action::PoisonedDropped`] event when any are found.
    ///
    /// # Errors
    ///
    /// [`InsertionError::PoisonedSolutions`] if *every* candidate at the
    /// node is invalid — there is no valid state to recover to.
    pub fn sanitize(
        &mut self,
        node: NodeId,
        sols: &mut Vec<StatSolution>,
    ) -> Result<(), InsertionError> {
        let before = sols.len();
        sols.retain(|s| {
            s.load.mean().is_finite()
                && s.rat.mean().is_finite()
                && s.load.variance().is_finite()
                && s.rat.variance().is_finite()
                && s.load.variance() >= 0.0
                && s.rat.variance() >= 0.0
                && s.wire_pending.is_finite()
        });
        let dropped = before - sols.len();
        if dropped > 0 {
            self.poisoned_total += dropped;
            if sols.is_empty() {
                return Err(InsertionError::PoisonedSolutions { node });
            }
            self.record(
                Trigger::PoisonedSolutions {
                    node,
                    count: dropped,
                },
                Action::PoisonedDropped { count: dropped },
            );
        }
        Ok(())
    }

    /// Updates the live-memory estimate after a node's list is stored.
    pub fn note_memory(&mut self, stored: &[StatSolution], freed_estimate: usize) {
        let added: usize = stored.iter().map(solution_footprint).sum();
        self.live_bytes = self.live_bytes.saturating_add(added);
        self.live_bytes = self.live_bytes.saturating_sub(freed_estimate);
    }

    /// Estimated live bytes currently tracked.
    #[must_use]
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Reports the bytes currently resident in streaming solution
    /// chunks; the governor keeps the high-water mark for the report.
    pub fn note_chunk_bytes(&mut self, bytes: usize) {
        self.peak_chunk_bytes = self.peak_chunk_bytes.max(bytes);
    }

    /// High-water mark of streaming-chunk bytes observed so far.
    #[must_use]
    pub fn peak_chunk_bytes(&self) -> usize {
        self.peak_chunk_bytes
    }

    /// Total poisoned candidates dropped so far.
    #[must_use]
    pub fn poisoned_total(&self) -> usize {
        self.poisoned_total
    }

    /// Consumes the governor into its degradation report.
    #[must_use]
    pub fn into_report(self) -> Degradation {
        let final_rule = if self.cascade.is_empty() {
            self.initial_rule.clone()
        } else {
            self.cascade[self.active].name().to_owned()
        };
        Degradation {
            events: self.events,
            initial_rule: self.initial_rule,
            final_rule,
            panic_completion: self.panic_mode,
            cancelled: self.cancelled,
            guard: None,
            peak_chunk_bytes: self.peak_chunk_bytes,
        }
    }
}

/// Truncates `sols` (sorted by the rule's load key) to `keep` entries
/// while preserving Pareto spread: the best-RAT candidate always
/// survives, and the rest are sampled evenly across the load range.
pub fn truncate_spread(rule: &dyn PruningRule, sols: &mut Vec<StatSolution>, keep: usize) {
    if sols.len() <= keep || keep == 0 {
        return;
    }
    sols.sort_by(|a, b| rule.load_key(a).total_cmp(&rule.load_key(b)));
    let best_rat_idx = sols
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| rule.rat_key(a).total_cmp(&rule.rat_key(b)))
        .map_or(0, |(i, _)| i);
    let n = sols.len();
    let mut keep_flags = vec![false; n];
    keep_flags[best_rat_idx] = true;
    let mut kept = 1usize;
    let mut slot = 0usize;
    while kept < keep {
        // Even sampling across the load-sorted list.
        let idx = slot * (n - 1) / (keep - 1).max(1);
        slot += 1;
        if slot > n {
            break;
        }
        if !keep_flags[idx] {
            keep_flags[idx] = true;
            kept += 1;
        }
    }
    let mut flags = keep_flags.into_iter();
    sols.retain(|_| flags.next().unwrap_or(false));
}

/// Keeps only the single best candidate by the rule's RAT key — the
/// panic-completion reduction.
pub fn keep_best(rule: &dyn PruningRule, sols: &mut Vec<StatSolution>) {
    if sols.len() <= 1 {
        return;
    }
    let best = sols
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| rule.rat_key(a).total_cmp(&rule.rat_key(b)))
        .map_or(0, |(i, _)| i);
    sols.swap(0, best);
    sols.truncate(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::{FourParam, TwoParam};
    use varbuf_stats::CanonicalForm;

    fn sol(load: f64, rat: f64) -> StatSolution {
        StatSolution::new(CanonicalForm::constant(load), CanonicalForm::constant(rat))
    }

    fn governed_cascade() -> Vec<Arc<dyn PruningRule>> {
        vec![
            Arc::new(FourParam::default()),
            Arc::new(TwoParam::new(0.9, 0.9)),
            Arc::new(TwoParam::default()),
        ]
    }

    #[test]
    fn strict_governor_errors_on_capacity() {
        let mut g = Governor::strict(Budget::strict(10, Duration::MAX), 0.0);
        assert!(matches!(g.admit(NodeId(1), 5), Ok(Admission::Ok)));
        let err = g.admit(NodeId(1), 11).unwrap_err();
        assert!(matches!(err, InsertionError::CapacityExceeded { .. }));
    }

    #[test]
    fn strict_governor_errors_on_time() {
        let mut g = Governor::strict(Budget::strict(usize::MAX, Duration::from_nanos(1)), 0.0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            g.check_time(),
            Err(InsertionError::TimeLimitExceeded { .. })
        ));
    }

    #[test]
    fn governed_walks_the_cascade_then_epsilon_then_truncates() {
        let budget = Budget {
            soft_solutions: 10,
            hard_solutions: 40,
            ..Budget::unlimited()
        };
        let mut g = Governor::governed(budget, governed_cascade(), 0.0);
        assert_eq!(g.active_rule().name(), "4P");
        // First breach: 4P -> 2P(0.9).
        assert_eq!(g.admit(NodeId(0), 11).unwrap(), Admission::Reprune);
        assert_eq!(g.active_rule().name(), "2P");
        // Second breach: 2P(0.9) -> 2P mean dominance.
        assert_eq!(g.admit(NodeId(0), 11).unwrap(), Admission::Reprune);
        // Third: cascade exhausted, epsilon tightens (under hard cap).
        assert_eq!(g.admit(NodeId(0), 11).unwrap(), Admission::Ok);
        assert!(g.epsilon() > 0.0);
        // Keep breaching: epsilon maxes out, then truncation.
        let mut saw_truncate = false;
        for _ in 0..6 {
            if let Admission::Truncate(n) = g.admit(NodeId(0), 12).unwrap() {
                assert_eq!(n, 10);
                saw_truncate = true;
                break;
            }
        }
        assert!(saw_truncate, "ladder must end in truncation");
        // Over the hard cap with the ladder exhausted: panic completion.
        assert_eq!(g.admit(NodeId(0), 41).unwrap(), Admission::Truncate(1));
        assert!(g.panicking());
        let report = g.into_report();
        assert!(report.degraded());
        assert!(report.panic_completion);
        assert_eq!(report.initial_rule, "4P");
        assert_eq!(report.final_rule, "2P");
        assert!(report.rule_fallbacks() >= 2);
        assert!(report.summary().contains("panic completion"));
    }

    #[test]
    fn governed_never_errors_on_time() {
        let budget = Budget {
            soft_time: Duration::from_nanos(1),
            hard_time: Duration::from_nanos(2),
            ..Budget::unlimited()
        };
        let mut g = Governor::governed(budget, governed_cascade(), 0.0);
        std::thread::sleep(Duration::from_millis(1));
        g.check_time().expect("governed time check never errors");
        assert!(g.panicking());
        assert_eq!(g.admit(NodeId(3), 5).unwrap(), Admission::Truncate(1));
    }

    #[test]
    fn sanitize_drops_poison_and_reports() {
        let mut g = Governor::governed(Budget::unlimited(), governed_cascade(), 0.0);
        let mut sols = vec![
            sol(10.0, -50.0),
            sol(f64::NAN, -60.0),
            StatSolution::new(
                CanonicalForm::constant(5.0),
                CanonicalForm::constant(f64::INFINITY),
            ),
        ];
        g.sanitize(NodeId(7), &mut sols).expect("one survivor");
        assert_eq!(sols.len(), 1);
        assert_eq!(g.poisoned_total(), 2);
        let mut all_bad = vec![sol(f64::NAN, f64::NAN)];
        let err = g.sanitize(NodeId(8), &mut all_bad).unwrap_err();
        assert!(matches!(err, InsertionError::PoisonedSolutions { .. }));
    }

    #[test]
    fn memory_pressure_degrades() {
        let budget = Budget {
            soft_mem_bytes: 64,
            hard_mem_bytes: 1 << 40,
            ..Budget::unlimited()
        };
        let mut g = Governor::governed(budget, governed_cascade(), 0.0);
        let sols = vec![sol(1.0, -1.0), sol(2.0, -2.0)];
        g.note_memory(&sols, 0);
        assert!(g.live_bytes() > 64);
        assert_eq!(g.admit(NodeId(2), 1).unwrap(), Admission::Reprune);
        let report = g.into_report();
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e.trigger, Trigger::MemoryPressure { .. })));
    }

    #[test]
    fn truncate_spread_keeps_best_rat_and_endpoints() {
        let rule = TwoParam::default();
        let mut sols: Vec<StatSolution> = (0..100)
            .map(|i| sol(f64::from(i), -500.0 + f64::from(i)))
            .collect();
        let best_rat_before = sols
            .iter()
            .map(StatSolution::rat_mean)
            .fold(f64::NEG_INFINITY, f64::max);
        truncate_spread(&rule, &mut sols, 10);
        assert_eq!(sols.len(), 10);
        let best_rat_after = sols
            .iter()
            .map(StatSolution::rat_mean)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(best_rat_before, best_rat_after);
    }

    #[test]
    fn keep_best_selects_max_rat() {
        let rule = TwoParam::default();
        let mut sols = vec![sol(1.0, -100.0), sol(2.0, -50.0), sol(3.0, -75.0)];
        keep_best(&rule, &mut sols);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].rat_mean(), -50.0);
    }

    #[test]
    fn budget_normalization_and_constructors() {
        let b = Budget {
            soft_solutions: 100,
            hard_solutions: 50,
            ..Budget::unlimited()
        }
        .normalized();
        assert_eq!(b.soft_solutions, 50);
        let w = Budget::with_soft(10, Duration::from_secs(1), 1000);
        assert_eq!(w.hard_solutions, 40);
        assert_eq!(w.hard_time, Duration::from_secs(2));
        assert_eq!(w.hard_mem_bytes, 4000);
        let s = Budget::strict(7, Duration::from_secs(3));
        assert_eq!(s.soft_solutions, s.hard_solutions);
        assert_eq!(s.soft_time, s.hard_time);
    }

    #[test]
    fn cancel_token_turns_governed_run_into_best_so_far() {
        let token = CancelToken::new();
        let mut g = Governor::governed(Budget::unlimited(), governed_cascade(), 0.0)
            .with_cancellation(token.clone(), None);
        g.check_time().expect("uncancelled check passes");
        assert!(!g.panicking());
        token.cancel();
        assert!(token.is_cancelled());
        g.check_time().expect("governed cancel never errors");
        assert!(g.panicking());
        assert!(g.is_cancelled());
        let report = g.into_report();
        assert!(report.cancelled);
        assert!(report.degraded());
        assert!(report.summary().contains("cancelled"));
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e.trigger, Trigger::Cancelled { deadline: None, .. })));
    }

    #[test]
    fn watchdog_deadline_cancels_on_the_governor_clock() {
        #[derive(Debug)]
        struct Fixed(Duration);
        impl Clock for Fixed {
            fn elapsed(&self) -> Duration {
                self.0
            }
        }
        let mut g = Governor::governed(Budget::unlimited(), governed_cascade(), 0.0)
            .with_clock(Box::new(Fixed(Duration::from_secs(10))))
            .with_cancellation(CancelToken::new(), Some(Duration::from_secs(5)));
        g.check_time().expect("governed watchdog never errors");
        assert!(g.is_cancelled());
        let report = g.into_report();
        assert!(report.cancelled && report.panic_completion);
        assert!(report.events.iter().any(|e| matches!(
            e.trigger,
            Trigger::Cancelled {
                deadline: Some(_),
                ..
            }
        )));
    }

    #[test]
    fn strict_cancellation_is_a_typed_error() {
        let token = CancelToken::new();
        let mut g =
            Governor::strict(Budget::unlimited(), 0.0).with_cancellation(token.clone(), None);
        g.check_time().expect("uncancelled strict check passes");
        token.cancel();
        assert!(matches!(
            g.check_time(),
            Err(InsertionError::Cancelled { .. })
        ));
    }

    #[test]
    fn undegraded_report_reads_clean() {
        let g = Governor::governed(Budget::unlimited(), governed_cascade(), 0.0);
        let report = g.into_report();
        assert!(!report.degraded());
        assert!(report.summary().contains("no degradation"));
    }

    #[test]
    fn guard_note_is_not_degradation() {
        let g = Governor::governed(Budget::unlimited(), governed_cascade(), 0.0);
        let mut report = g.into_report();
        report.guard = Some(GuardedFallback {
            from: "4P".to_owned(),
            to: "2P".to_owned(),
            sinks: 120,
            threshold: 12,
        });
        assert!(!report.degraded(), "guard alone must not read as degraded");
        let summary = report.summary();
        assert!(summary.contains("no degradation"));
        assert!(summary.contains("guarded 4P -> 2P"));
    }

    #[test]
    fn chunk_peak_is_high_water_marked() {
        let mut g = Governor::governed(Budget::unlimited(), governed_cascade(), 0.0);
        g.note_chunk_bytes(100);
        g.note_chunk_bytes(5000);
        g.note_chunk_bytes(200);
        assert_eq!(g.peak_chunk_bytes(), 5000);
        let report = g.into_report();
        assert_eq!(report.peak_chunk_bytes, 5000);
    }
}
