//! Persistent decision traces for backtracking.
//!
//! The dynamic program explores thousands of candidate solutions per node;
//! each must remember which buffers it inserted so the winning solution at
//! the root can be turned back into a concrete [`BufferAssignment`]. A
//! [`Trace`] is a persistent (structurally shared) DAG of decisions:
//! cloning is an `Arc` bump, and merging two subtree solutions is a single
//! `Join` node — no per-solution vector copying anywhere in the DP.
//!
//! [`BufferAssignment`]: varbuf_rctree::elmore::BufferAssignment

use std::sync::Arc;
use varbuf_rctree::NodeId;
use varbuf_variation::BufferTypeId;

/// A persistent trace of buffer-insertion (and wire-sizing) decisions.
#[derive(Debug, Clone)]
pub enum Trace {
    /// No decisions (a bare sink or unbuffered wire).
    Empty,
    /// A buffer of `ty` inserted at `node`, on top of earlier decisions.
    Buffer {
        /// The candidate node hosting the buffer.
        node: NodeId,
        /// The library type used.
        ty: BufferTypeId,
        /// Decisions made downstream of this one.
        rest: Arc<Trace>,
    },
    /// A non-default width chosen for the edge above `node`
    /// (simultaneous buffer insertion and wire sizing, ref. \[8\]).
    Wire {
        /// The downstream node of the sized edge.
        node: NodeId,
        /// Index into the sizing option's width table.
        width_index: u8,
        /// Decisions made downstream of this one.
        rest: Arc<Trace>,
    },
    /// The union of two subtree traces (a branch merge).
    Join(Arc<Trace>, Arc<Trace>),
}

impl Trace {
    /// The shared empty trace.
    #[must_use]
    pub fn empty() -> Arc<Trace> {
        Arc::new(Trace::Empty)
    }

    /// Extends `rest` with a buffer decision.
    #[must_use]
    pub fn buffer(node: NodeId, ty: BufferTypeId, rest: Arc<Trace>) -> Arc<Trace> {
        Arc::new(Trace::Buffer { node, ty, rest })
    }

    /// Extends `rest` with a wire-sizing decision.
    #[must_use]
    pub fn wire(node: NodeId, width_index: u8, rest: Arc<Trace>) -> Arc<Trace> {
        Arc::new(Trace::Wire {
            node,
            width_index,
            rest,
        })
    }

    /// Joins two traces at a branch point.
    #[must_use]
    pub fn join(a: Arc<Trace>, b: Arc<Trace>) -> Arc<Trace> {
        // Tiny optimization: joining with an empty side is a no-op.
        match (&*a, &*b) {
            (Trace::Empty, _) => b,
            (_, Trace::Empty) => a,
            _ => Arc::new(Trace::Join(a, b)),
        }
    }

    /// Collects every `(node, type)` buffer decision reachable from this
    /// trace.
    ///
    /// The DP never records two decisions for the same node inside one
    /// solution, so the output has no duplicates.
    #[must_use]
    pub fn collect(self: &Arc<Trace>) -> Vec<(NodeId, BufferTypeId)> {
        let mut out = Vec::new();
        let mut stack: Vec<&Trace> = vec![self];
        while let Some(t) = stack.pop() {
            match t {
                Trace::Empty => {}
                Trace::Buffer { node, ty, rest } => {
                    out.push((*node, *ty));
                    stack.push(rest);
                }
                Trace::Wire { rest, .. } => stack.push(rest),
                Trace::Join(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        out
    }

    /// Collects every `(node, width index)` wire-sizing decision.
    #[must_use]
    pub fn collect_wires(self: &Arc<Trace>) -> Vec<(NodeId, u8)> {
        let mut out = Vec::new();
        let mut stack: Vec<&Trace> = vec![self];
        while let Some(t) = stack.pop() {
            match t {
                Trace::Empty => {}
                Trace::Buffer { rest, .. } => stack.push(rest),
                Trace::Wire {
                    node,
                    width_index,
                    rest,
                } => {
                    out.push((*node, *width_index));
                    stack.push(rest);
                }
                Trace::Join(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        out
    }

    /// Number of buffer decisions in the trace.
    #[must_use]
    pub fn buffer_count(self: &Arc<Trace>) -> usize {
        self.collect().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_collects_nothing() {
        let t = Trace::empty();
        assert!(t.collect().is_empty());
        assert_eq!(t.buffer_count(), 0);
    }

    #[test]
    fn buffer_chain_collects_in_any_order() {
        let t = Trace::buffer(
            NodeId(2),
            BufferTypeId(0),
            Trace::buffer(NodeId(5), BufferTypeId(1), Trace::empty()),
        );
        let mut got = t.collect();
        got.sort();
        assert_eq!(
            got,
            vec![(NodeId(2), BufferTypeId(0)), (NodeId(5), BufferTypeId(1))]
        );
    }

    #[test]
    fn join_unions_subtrees() {
        let left = Trace::buffer(NodeId(1), BufferTypeId(0), Trace::empty());
        let right = Trace::buffer(NodeId(2), BufferTypeId(0), Trace::empty());
        let j = Trace::join(left.clone(), right);
        assert_eq!(j.buffer_count(), 2);
        // Joining with empty returns the other side unchanged.
        let k = Trace::join(left.clone(), Trace::empty());
        assert!(Arc::ptr_eq(&k, &left));
    }

    #[test]
    fn wire_decisions_collected_separately() {
        let t = Trace::wire(
            NodeId(3),
            2,
            Trace::buffer(NodeId(1), BufferTypeId(0), Trace::empty()),
        );
        assert_eq!(t.collect(), vec![(NodeId(1), BufferTypeId(0))]);
        assert_eq!(t.collect_wires(), vec![(NodeId(3), 2)]);
        // Joins see both sides' wires.
        let u = Trace::wire(NodeId(4), 1, Trace::empty());
        let j = Trace::join(t, u);
        let mut wires = j.collect_wires();
        wires.sort();
        assert_eq!(wires, vec![(NodeId(3), 2), (NodeId(4), 1)]);
    }

    #[test]
    fn structural_sharing_is_cheap() {
        // A deep chain shared by many solutions: cloning must not deep-copy.
        let mut t = Trace::empty();
        for i in 0..1000 {
            t = Trace::buffer(NodeId(i), BufferTypeId(0), t);
        }
        let clones: Vec<_> = (0..100).map(|_| t.clone()).collect();
        assert_eq!(clones[99].buffer_count(), 1000);
    }
}
