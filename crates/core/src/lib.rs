//! Variation-aware buffer insertion.
//!
//! This crate implements the optimization layer of the reproduction:
//!
//! * [`det`] — the classic deterministic van Ginneken / Lillis dynamic
//!   program (`O(B·N²)` with a multi-type library), the paper's **NOM**
//!   baseline;
//! * [`prune`] — the three statistical pruning rules the paper compares:
//!   the proposed **two-parameter (2P)** rule with provably linear merge
//!   and prune under joint normality (Section 2.3), the **four-parameter
//!   (4P)** rule of the DATE 2005 paper it extends (Section 2.2), and the
//!   **one-parameter (1P)** percentile rule of \[8\];
//! * [`dp`] — the variation-aware dynamic program, generic over the
//!   pruning rule, using the statistical key operations of Section 4.2
//!   (canonical-form wire/buffer extension, tightness-probability merge);
//! * [`driver`] — the NOM / D2D / WID optimization entry points used by
//!   the experiments;
//! * [`yield_eval`] — timing-yield analysis of a *fixed* buffered tree
//!   under any variation model: canonical root-RAT form, 95%-yield RAT,
//!   yield at a target, and Monte Carlo cross-validation (Figure 6);
//! * [`governor`] — soft/hard resource budgets and the graceful-
//!   degradation policy (pruning-rule fallback cascade, epsilon
//!   tightening, best-so-far panic completion) behind
//!   [`dp::optimize_governed`];
//! * [`faultinject`] — deterministic clock skew and solution poisoning
//!   for exercising the degradation paths in tests;
//! * [`pool`] — the std-only parallel execution layer: the
//!   [`pool::optimize_batch`] worker pool over independent nets and the
//!   speculative intra-tree scheduler behind [`dp::DpOptions::jobs`],
//!   both bit-identical to the sequential engine;
//! * [`cache`] — epoch-scoped per-node solution caching (Merkle content
//!   signatures + a per-session solution arena) behind the service's
//!   incremental re-optimization path;
//! * [`hier`] — hierarchical decomposition for full-chip scale: cut-node
//!   partitioning, epsilon-bounded frontier splicing, and chunked
//!   streaming solution lists charged against the governor's memory
//!   budget (64k-sink clock trees);
//! * [`service`] — the resident optimization service behind
//!   `varbuf serve`: a generational-arena session store, per-request
//!   crash isolation (`catch_unwind` + session poisoning), watchdog
//!   deadlines wired into the governor, and cost-based admission
//!   control with load shedding.
//!
//! # Quick start
//!
//! ```
//! use varbuf_core::driver::{optimize_nominal, Options};
//! use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
//! use varbuf_variation::{BufferLibrary, ProcessModel, SpatialKind};
//!
//! # fn main() -> Result<(), varbuf_core::InsertionError> {
//! let tree = generate_benchmark(&BenchmarkSpec::random("demo", 32, 7));
//! let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
//! let result = optimize_nominal(&tree, &model, &Options::default())?;
//! assert!(result.assignment.len() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod bounds;
pub mod cache;
pub mod criticality;
pub mod design;
pub mod det;
pub mod dp;
pub mod driver;
pub mod error;
pub mod faultinject;
pub mod governor;
pub mod hier;
pub mod metrics;
pub mod ops;
pub mod pool;
pub mod prune;
pub mod service;
pub mod skew;
pub mod solution;
pub mod trace;
pub mod yield_eval;

pub use cache::{NodeSigs, SolutionCache};
pub use det::{optimize_deterministic, optimize_deterministic_with};
pub use dp::{optimize_governed, optimize_incremental, GovernedResult};
pub use driver::{optimize_nominal, optimize_statistical, OptimizeResult, Options};
pub use error::{InsertionError, RequestError};
pub use governor::{Budget, Degradation, DegradationEvent, Governor, GuardedFallback};
pub use hier::{optimize_hier, HierOptions, HierReport, HierResult};
pub use pool::{default_jobs, optimize_batch, optimize_batch_forced, BatchRequest};
pub use prune::{FourParam, OneParam, PruningRule, TwoParam};
pub use service::{
    EditOp, LibChoice, OptimizeParams, Request, Response, RuleChoice, Service, ServiceConfig,
    ServiceStats, SessionHandle,
};
pub use solution::{ChunkLedger, ChunkedList, StatSolution};
pub use yield_eval::{YieldAnalysis, YieldEvaluator};
