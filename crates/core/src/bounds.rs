//! Deterministic upstream bounds for bound-guided pruning.
//!
//! Li & Shi's *predictive pruning* observation, adapted to the
//! statistical DP: long before the dominance sweep compares candidates
//! against each other, most of them can be proven incapable of ever
//! becoming the root winner — because everything that happens *above* a
//! node can only lower a candidate's RAT by a computable minimum amount.
//!
//! For a candidate `(L, T)` held at node `v`, every upstream DP step is
//! monotone in the candidate's favorables:
//!
//! * the wire edge directly above `v` subtracts `r·(c/2 + L)` from `T`
//!   before any buffer can decouple `L` (buffers are offered at nodes,
//!   after the lift), and wire sizing can shrink `r` at most to
//!   `r / w_max`;
//! * every other edge on the root path subtracts at least its own
//!   `r·c/2` (charging its own capacitance through its own resistance is
//!   unavoidable, and `r·c` is width-invariant: `r/w · c·w = r·c`);
//! * buffers subtract positive delays, merges take a min against a
//!   sibling and add sibling load, and the driver subtracts
//!   `R_d·L_root ≥ 0`.
//!
//! So the root RAT of **any** completion through the candidate is at
//! most `T − up_res(v)·L − up_delay(v)`, where `up_res(v)` is the
//! width-maximized resistance of the edge above `v` (the driver
//! resistance at the root) and `up_delay(v)` is the accumulated `r·c/2`
//! of the root path. At the statistical level the same bound holds for
//! the *mean* (wire/buffer ops are exact on means, Clark's min mean is
//! ≤ either operand's mean, and both root-selection keys are ≤ the
//! mean), so a candidate whose optimistic envelope
//! `μ_T + k·σ_T − up_res·max(μ_L − k·σ_L, 0)` falls below an *anchor* —
//! a proven lower bound on the winner's selection key — can be retired
//! without ever being merged, pruned, or lifted again.
//!
//! The anchor is built in two stages. Two cheap deterministic runs —
//! one at the process mean and one at a conservative corner (buffer
//! capacitance and intrinsic delay degraded by the run's variation
//! budgets, see [`corner_library`]) — give a coarse floor,
//! `min(mean, corner)`. Then the mean run's winning assignment is
//! replayed through the *statistical* operators ([`stat_anchor`]): the
//! resulting root form's selection key is the key of one concrete,
//! reachable candidate, so the true winner — which maximizes that key —
//! can only sit at or above it. That replayed key is usually within
//! `z·σ` of the winner and far tighter than the corner floor, which
//! over-prices every device at a simultaneous `k·σ` excursion. The
//! anchor takes the better (larger) of the two; the 336-case oracle in
//! `tests/bounds_oracle.rs` asserts the resulting filter is
//! output-invariant bit for bit.

use crate::det::optimize_deterministic;
use crate::dp::{RootSelection, RunCtx, WireSizing};
use crate::ops::{
    buffer_extend_stat_into, driver_rat_stat, merge_pair_stat_into, wire_extend_stat_in_place,
};
use crate::solution::StatSolution;
use std::cell::RefCell;
use std::sync::Arc;
use varbuf_rctree::tree::NodeKind;
use varbuf_rctree::{NodeId, RoutingTree};
use varbuf_stats::CanonicalForm;
use varbuf_variation::{BufferLibrary, BufferType, BufferTypeId, ProcessModel, VariationMode};

/// Per-node upstream bounds plus the run's anchor, cached in the DP's
/// `RunCtx` and shared read-only by every worker.
/// How many `(threshold, resistance)` states each node retains. Upstream
/// completions form a concave family of linear charges in the
/// candidate's load; three lines (few upstream buffers / balanced / many
/// upstream buffers) approximate its lower envelope well, and unused
/// slots are padded with an infinite threshold that can never win the
/// min.
const BOUND_STATES: usize = 3;

#[derive(Debug)]
pub(crate) struct DetBounds {
    /// `node.index()` → up to [`BOUND_STATES`] linear retirement tests
    /// `(threshold, resistance)`: a candidate `(L, T)` can only reach
    /// the root winner through SOME upstream completion class, and each
    /// class `j` guarantees `root ≤ T − resistanceⱼ·L −
    /// (thresholdⱼ − anchor)`. The candidate survives if its optimistic
    /// envelope clears ANY class: `rat_hi − resistanceⱼ·load_lo ≥
    /// thresholdⱼ` for some `j`.
    states: Vec<[(f64, f64); BOUND_STATES]>,
    /// The envelope width, in σ, from [`crate::dp::DpOptions::bound_k`].
    k: f64,
}

impl DetBounds {
    /// The envelope half-width, in σ, the table was built for.
    #[inline]
    pub(crate) fn k(&self) -> f64 {
        self.k
    }

    /// The envelope-endpoint form of the bound test: `load_lo` is the
    /// candidate's optimistic (lower) load excursion, `rat_hi` its
    /// optimistic (upper) RAT excursion — both from
    /// `CanonicalForm::envelope(k)` with this table's `k`.
    /// Every completion above `node` belongs to one upstream class (how
    /// its buffers split the root path), and every class is covered by a
    /// stored state whose linear charge never exceeds the class's real
    /// delay. The candidate survives if it clears ANY state; it is
    /// retired only when every state provably falls short.
    #[inline]
    pub(crate) fn keeps_envelope(&self, node: NodeId, load_lo: f64, rat_hi: f64) -> bool {
        let load = load_lo.max(0.0);
        // Retire only on a definite strict shortfall of EVERY state;
        // `>= threshold` and NaN keep, so poisoned solutions stay
        // visible to the sanitizer.
        !self.states[node.index()]
            .iter()
            .all(|&(threshold, resistance)| rat_hi - resistance * load < threshold)
    }

    /// Diagnostic: how far the candidate's optimistic envelope sits
    /// above the retirement cutoff (negative means it would be retired).
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn margin(&self, node: NodeId, load_lo: f64, rat_hi: f64) -> f64 {
        let load = load_lo.max(0.0);
        self.states[node.index()]
            .iter()
            .map(|&(threshold, resistance)| rat_hi - resistance * load - threshold)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Whether the candidate with the given load/RAT moments can still
    /// reach the root winner's selection key — `false` means it is
    /// provably non-optimal and may be retired. (The hot path computes
    /// the envelope endpoints itself; this moment form serves the tests.)
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn keeps(
        &self,
        node: NodeId,
        load_mean: f64,
        load_sigma: f64,
        rat_mean: f64,
        rat_sigma: f64,
    ) -> bool {
        self.keeps_envelope(
            node,
            load_mean - self.k * load_sigma,
            rat_mean + self.k * rat_sigma,
        )
    }
}

/// The conservative corner of `model`'s buffer library for `mode`: every
/// type's capacitance and intrinsic delay degraded by `k·σ` of the
/// variation categories the mode activates, plus the full systematic
/// intra-die amplitude for within-die runs. Resistance stays nominal
/// (the paper keeps `R_b` deterministic).
fn corner_library(model: &ProcessModel, mode: VariationMode, k: f64) -> BufferLibrary {
    let budgets = model.budgets();
    let (random_span, systematic) = match mode {
        VariationMode::Nominal => (0.0, 0.0),
        VariationMode::DieToDie => (budgets.random + budgets.inter_die, 0.0),
        VariationMode::WithinDie => (
            budgets.random + budgets.inter_die + budgets.intra_die,
            budgets.systematic,
        ),
    };
    let types = model
        .library()
        .iter()
        .map(|(_, t)| BufferType {
            name: t.name.clone(),
            capacitance: t.capacitance * (1.0 + k * random_span * t.cap_sensitivity + systematic),
            intrinsic_delay: t.intrinsic_delay
                * (1.0 + k * random_span * t.delay_sensitivity + systematic),
            resistance: t.resistance,
            cap_sensitivity: t.cap_sensitivity,
            delay_sensitivity: t.delay_sensitivity,
            max_load: t.max_load,
        })
        .collect();
    BufferLibrary::new(types)
}

/// Replays a fixed buffer assignment (every wire at the sizing table's
/// first width) through the statistical operators and returns the root
/// selection key, or `None` when the assignment is not reachable in the
/// statistical decision space (a buffer's mean load exceeds its
/// `max_load` once the variation-shifted device forms are priced in) or
/// the key comes out non-finite.
///
/// Because the DP's winner *maximizes* the selection key over reachable
/// candidates, the replayed key is a lower bound on the winner's key —
/// the tight anchor the corner run cannot provide.
fn stat_anchor(
    ctx: &RunCtx<'_>,
    assignment: &[(NodeId, BufferTypeId)],
    selection: RootSelection,
) -> Option<f64> {
    let tree = ctx.tree;
    let mut buf_at = vec![usize::MAX; tree.len()];
    for &(n, ty) in assignment {
        buf_at[n.index()] = ty.0;
    }
    let mut sols: Vec<Option<StatSolution>> = vec![None; tree.len()];
    for id in tree.postorder() {
        let node = tree.node(id);
        let mut sol = match node.kind {
            NodeKind::Sink {
                capacitance,
                required_arrival,
            } => StatSolution::new(
                CanonicalForm::constant(capacitance),
                CanonicalForm::constant(required_arrival),
            ),
            NodeKind::Internal | NodeKind::Source { .. } => {
                let mut acc: Option<StatSolution> = None;
                for &c in &node.children {
                    let mut child = sols[c.index()].take()?;
                    wire_extend_stat_in_place(&mut child, ctx.segment(c, 0));
                    acc = Some(match acc {
                        None => child,
                        Some(a) => {
                            let mut merged = StatSolution::new(
                                CanonicalForm::constant(0.0),
                                CanonicalForm::constant(0.0),
                            );
                            merge_pair_stat_into(&mut merged, &a, &child);
                            merged
                        }
                    });
                }
                acc?
            }
        };
        let ty = buf_at[id.index()];
        if ty != usize::MAX {
            let bt = ctx.model.library().get(BufferTypeId(ty));
            if bt.max_load.is_some_and(|m| sol.load.mean() > m) {
                return None;
            }
            let (cap_form, delay_form) = &ctx.device_forms(id)[ty];
            let mut buffered =
                StatSolution::new(CanonicalForm::constant(0.0), CanonicalForm::constant(0.0));
            buffer_extend_stat_into(
                &mut buffered,
                &sol,
                cap_form,
                delay_form,
                bt.resistance,
                id,
                BufferTypeId(ty),
            );
            sol = buffered;
        }
        sols[id.index()] = Some(sol);
    }
    let root = tree.root();
    let driver_resistance = match tree.node(root).kind {
        NodeKind::Source { driver_resistance } => driver_resistance,
        _ => return None,
    };
    let sol = sols[root.index()].take()?;
    let key = selection.key(&driver_rat_stat(&sol, driver_resistance));
    key.is_finite().then_some(key)
}

/// Builds the bounds for one run: two deterministic DPs plus one
/// statistical replay for the anchor, then a parents-before-children
/// sweep for `up_res`/`up_delay`. Returns `None` when the deterministic
/// engine cannot run the tree (the statistical engine will then surface
/// its own validation error) or a bound came out non-finite — the
/// caller simply runs unbounded.
fn compute(
    ctx: &RunCtx<'_>,
    mode: VariationMode,
    k: f64,
    selection: RootSelection,
) -> Option<Arc<DetBounds>> {
    let tree = ctx.tree;
    let model = ctx.model;
    let sizing = ctx.sizing;
    let mean = optimize_deterministic(tree, model.library()).ok()?;
    let corner_best = optimize_deterministic(tree, &corner_library(model, mode, k))
        .ok()?
        .root_rat;
    // Coarse floor: the corner run prices EVERY device at its
    // simultaneous k·σ-worst excursion, which sits well below the
    // winner's selection key (a z·σ excursion of the aggregated root
    // form, z ≤ 2.33 for the yield selections in use, against k ≥ 3 per
    // device) plus the Clark-min mean drift the statistical forms pick
    // up. With zero variation the corner equals the mean and the floor
    // is exactly the shared deterministic optimum, which the winner
    // chain meets with equality (the bound test keeps on ≥).
    let floor = mean.root_rat.min(corner_best);
    // Tight anchor: the mean run's assignment replayed statistically is
    // one reachable candidate, so its key lower-bounds the winner's by
    // construction. A relative guard band absorbs ulp-level operand
    // ordering differences against the engine's own evaluation of the
    // same decisions. The 336-case oracle pins the combination
    // empirically: bounds on/off are bit-identical.
    let anchor = match stat_anchor(ctx, &mean.assignment, selection) {
        Some(key) => (key - (key.abs() * 1e-9 + 1e-9)).max(floor),
        None => floor,
    };
    if !anchor.is_finite() {
        return None;
    }

    let w_max = sizing
        .widths()
        .iter()
        .copied()
        .fold(1.0_f64, f64::max)
        .max(1e-12);
    let w_min = sizing
        .widths()
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let wire = tree.wire();
    let order = tree.postorder();

    // Per-node load floor: the smallest mean load ANY decision sequence
    // can present at a node — either a buffer's input capacitance (the
    // cheapest device, at its most favorable systematic shift) or the
    // merged wire-plus-child floors at the narrowest width. Charging
    // each upstream edge `r·Lfloor` on top of its `r·c/2` recovers the
    // load-dependent share of the unavoidable path delay, which on
    // finely subdivided nets dwarfs the quadratic-shrinking `r·c/2`
    // terms. (Buffer intrinsic delays stay uncharged: a completion with
    // zero upstream buffers is always reachable.)
    // Device floors: the smallest mean capacitance, intrinsic delay and
    // output resistance ANY buffer can present, at its most favorable
    // systematic shift (only a within-die run shifts nominals, and the
    // pattern reaches `−systematic`; resistance stays deterministic).
    let sys = match mode {
        VariationMode::WithinDie => model.budgets().systematic,
        _ => 0.0,
    };
    let lib_min = |f: fn(&BufferType) -> f64| {
        model
            .library()
            .iter()
            .map(|(_, t)| f(t))
            .fold(f64::INFINITY, f64::min)
    };
    let min_buf_cap = (lib_min(|t| t.capacitance) * (1.0 - sys)).max(0.0);
    let min_buf_delay = (lib_min(|t| t.intrinsic_delay) * (1.0 - sys)).max(0.0);
    let min_buf_res = lib_min(|t| t.resistance).max(0.0);

    // Per-node load floor: the smallest mean load ANY decision sequence
    // can present at a node — either a buffer's input capacitance or the
    // merged wire-plus-child floors at the narrowest width.
    let mut lfloor = vec![0.0_f64; tree.len()];
    for &id in &order {
        let node = tree.node(id);
        let mut floor = match node.kind {
            NodeKind::Sink { capacitance, .. } => capacitance,
            NodeKind::Internal | NodeKind::Source { .. } => node
                .children
                .iter()
                .map(|&c| {
                    wire.segment(tree.node(c).edge_length).capacitance * w_min + lfloor[c.index()]
                })
                .sum(),
        };
        if node.is_candidate {
            floor = floor.min(min_buf_cap);
        }
        lfloor[id.index()] = floor.max(0.0);
    }
    // `childmass(p)`: the wire-plus-floor mass ALL of p's children merge
    // into it at minimum width — transitions subtract the path child's
    // floor to get the mass a lifted candidate joins (its own edge cap
    // plus the sibling floors).
    let childmass: Vec<f64> = (0..tree.len())
        .map(|i| {
            tree.node(NodeId(i as u32))
                .children
                .iter()
                .map(|&c| {
                    wire.segment(tree.node(c).edge_length).capacitance * w_min + lfloor[c.index()]
                })
                .sum()
        })
        .collect();

    let root = tree.root();
    let driver_resistance = match tree.node(root).kind {
        NodeKind::Source { driver_resistance } => driver_resistance,
        _ => return None,
    };

    // Preorder state DP. A state `(threshold, resistance)` at node `v`
    // covers a class of upstream completions and certifies
    // `root_mean ≤ μ_T − resistance·μ_L − (threshold − anchor)` for any
    // candidate in that class. Walking parent → child, each class either
    //
    // * keeps the candidate undecoupled: the joined wire/sibling mass
    //   crosses everything above the parent (`+R·mass`), and the child
    //   edge's resistance stacks onto the load coefficient; or
    // * inserts a buffer at the parent (candidate nodes only): one
    //   minimum intrinsic delay, the buffer's floor input cap crossing
    //   the resistance above, and the merged mass crossing the buffer's
    //   floor output resistance — which then becomes the load's new,
    //   small coefficient.
    //
    // Dominated states are dropped (sound: a state with smaller
    // threshold AND resistance charges less for every load); overflow
    // beyond BOUND_STATES is merged pairwise by component-wise min
    // (sound: the merged line under-charges both classes).
    let mut states: Vec<[(f64, f64); BOUND_STATES]> =
        vec![[(f64::INFINITY, 0.0); BOUND_STATES]; tree.len()];
    states[root.index()][0] = (anchor, driver_resistance);
    let mut scratch: Vec<(f64, f64)> = Vec::with_capacity(2 * BOUND_STATES);
    for &id in order.iter().rev() {
        let p = id.index();
        let parent_is_candidate = tree.node(id).is_candidate;
        let parent_states = states[p];
        for &c in &tree.node(id).children {
            let seg = wire.segment(tree.node(c).edge_length);
            let i = c.index();
            let half = seg.resistance * seg.capacitance * 0.5;
            let edge_res = seg.resistance / w_max;
            let mass = childmass[p] - lfloor[i];
            scratch.clear();
            for &(threshold, resistance) in &parent_states {
                if !threshold.is_finite() {
                    continue;
                }
                // Undecoupled: the mass crosses everything above.
                scratch.push((threshold + half + resistance * mass, resistance + edge_res));
                // Decoupled at the parent: pay the device floors, reset
                // the load coefficient to the buffer's output
                // resistance.
                if parent_is_candidate {
                    scratch.push((
                        threshold
                            + half
                            + min_buf_delay
                            + resistance * min_buf_cap
                            + min_buf_res * mass,
                        min_buf_res + edge_res,
                    ));
                }
            }
            // Pareto sweep: sort by threshold, keep states whose
            // resistance strictly improves on everything cheaper.
            scratch.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut kept = 0usize;
            for j in 0..scratch.len() {
                if kept == 0 || scratch[j].1 < scratch[kept - 1].1 {
                    scratch[kept] = scratch[j];
                    kept += 1;
                }
            }
            scratch.truncate(kept);
            // Merge-down to capacity: fold the adjacent pair that loses
            // the least envelope area into its component-wise min.
            while scratch.len() > BOUND_STATES {
                let mut best = 0usize;
                let mut best_area = f64::INFINITY;
                for j in 0..scratch.len() - 1 {
                    let area =
                        (scratch[j + 1].0 - scratch[j].0) * (scratch[j].1 - scratch[j + 1].1);
                    if area < best_area {
                        best_area = area;
                        best = j;
                    }
                }
                scratch[best] = (scratch[best].0, scratch[best + 1].1);
                scratch.remove(best + 1);
            }
            for (slot, &s) in states[i].iter_mut().zip(scratch.iter()) {
                *slot = s;
            }
        }
    }
    if states
        .iter()
        .flatten()
        .any(|&(t, r)| t.is_nan() || !r.is_finite())
    {
        return None;
    }
    Some(Arc::new(DetBounds { states, k }))
}

/// How many `(tree, model, mode, sizing, k)` combinations the per-thread
/// memo retains — enough for a bench or sweep revisiting the same net
/// without letting a multi-net batch pin every table.
const BOUNDS_CACHE_CAP: usize = 4;

thread_local! {
    /// Per-thread memo of [`compute`] results. The two deterministic DPs
    /// cost ~1/8 of a statistical run; sweeps, yield re-evaluation and
    /// bench iterations revisit the same net many times, and the memo
    /// hands every repeat the identical `Arc`'d table. Keyed by the full
    /// input content (tree structure and electricals, library, budgets,
    /// mode, widths, k), so a hit is exactly a recompute.
    static BOUNDS_CACHE: RefCell<Vec<(Vec<u64>, Arc<DetBounds>)>> = const { RefCell::new(Vec::new()) };
}

/// The complete content signature of a bounds computation. Folding the
/// inputs into bit patterns (not hashes of hashes) keeps equality exact:
/// two signatures match only if every float and every topology entry is
/// bitwise identical.
fn signature(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    sizing: &WireSizing,
    k: f64,
    selection: RootSelection,
) -> Vec<u64> {
    let mut sig = Vec::with_capacity(4 * tree.len() + 8 * model.library().len() + 16);
    sig.push(tree.len() as u64);
    sig.push(mode as u64);
    sig.push(k.to_bits());
    match selection {
        RootSelection::MeanRat => sig.push(u64::MAX - 1),
        RootSelection::YieldRat(y) => {
            sig.push(u64::MAX);
            sig.push(y.to_bits());
        }
    }
    let wire = tree.wire();
    sig.push(wire.res_per_um.to_bits());
    sig.push(wire.cap_per_um.to_bits());
    for &w in sizing.widths() {
        sig.push(w.to_bits());
    }
    let budgets = model.budgets();
    sig.extend([
        budgets.random.to_bits(),
        budgets.inter_die.to_bits(),
        budgets.intra_die.to_bits(),
        budgets.systematic.to_bits(),
    ]);
    for (_, t) in model.library().iter() {
        sig.extend([
            t.capacitance.to_bits(),
            t.intrinsic_delay.to_bits(),
            t.resistance.to_bits(),
            t.cap_sensitivity.to_bits(),
            t.delay_sensitivity.to_bits(),
            t.max_load.unwrap_or(f64::NAN).to_bits(),
        ]);
    }
    for i in 0..tree.len() {
        let node = tree.node(NodeId(i as u32));
        sig.push(node.edge_length.to_bits());
        sig.push(u64::from(node.is_candidate));
        match node.kind {
            NodeKind::Sink {
                capacitance,
                required_arrival,
            } => sig.extend([1, capacitance.to_bits(), required_arrival.to_bits()]),
            NodeKind::Internal => sig.push(2),
            NodeKind::Source { driver_resistance } => sig.extend([3, driver_resistance.to_bits()]),
        }
        for &c in &node.children {
            sig.push(u64::from(c.0));
        }
    }
    sig
}

/// The memoized entry point the DP engine calls once per run.
pub(crate) fn det_bounds(
    ctx: &RunCtx<'_>,
    mode: VariationMode,
    k: f64,
    selection: RootSelection,
) -> Option<Arc<DetBounds>> {
    let sig = signature(ctx.tree, ctx.model, mode, ctx.sizing, k, selection);
    BOUNDS_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(pos) = cache.iter().position(|(s, _)| *s == sig) {
            let entry = cache.remove(pos);
            let hit = Arc::clone(&entry.1);
            cache.push(entry); // most-recently-used at the back
            return Some(hit);
        }
        let bounds = compute(ctx, mode, k, selection)?;
        if cache.len() >= BOUNDS_CACHE_CAP {
            cache.remove(0);
        }
        cache.push((sig, Arc::clone(&bounds)));
        Some(bounds)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
    use varbuf_variation::SpatialKind;

    #[test]
    fn corner_library_is_uniformly_worse() {
        let tree = generate_benchmark(&BenchmarkSpec::random("cb", 16, 1));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        let corner = corner_library(&model, VariationMode::WithinDie, 3.0);
        for ((_, nom), (_, cor)) in model.library().iter().zip(corner.iter()) {
            assert!(cor.capacitance > nom.capacitance);
            assert!(cor.intrinsic_delay > nom.intrinsic_delay);
            assert_eq!(cor.resistance, nom.resistance);
        }
        // D2D skips the intra-die and systematic shares.
        let d2d = corner_library(&model, VariationMode::DieToDie, 3.0);
        for ((_, w), (_, d)) in corner.iter().zip(d2d.iter()) {
            assert!(d.capacitance < w.capacitance);
        }
        // Nominal mode degrades nothing.
        let nom = corner_library(&model, VariationMode::Nominal, 3.0);
        for ((_, a), (_, b)) in model.library().iter().zip(nom.iter()) {
            assert_eq!(a.capacitance.to_bits(), b.capacitance.to_bits());
        }
    }

    #[test]
    fn bounds_anchor_is_below_the_deterministic_optimum() {
        let tree = generate_benchmark(&BenchmarkSpec::random("ba", 24, 3));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        let sizing = WireSizing::single();
        // Nominal mode: zero variation makes the statistical replay, the
        // corner run and the mean run coincide, so the anchor must sit at
        // (just below) the deterministic optimum exactly.
        let ctx = RunCtx::new(&tree, &model, VariationMode::Nominal, &sizing);
        let b = compute(
            &ctx,
            VariationMode::Nominal,
            3.0,
            RootSelection::YieldRat(0.95),
        )
        .expect("bounds");
        let det = optimize_deterministic(&tree, model.library()).expect("det");
        let root = tree.root();
        // The root's single state is the anchor itself paired with the
        // driver resistance (no path above the root).
        let (anchor, root_res) = b.states[root.index()][0];
        assert!(anchor <= det.root_rat);
        assert!(anchor > det.root_rat - det.root_rat.abs() * 1e-6 - 1e-6);
        assert!(root_res > 0.0);
        // Every node's state thresholds grow with path delay, never
        // shrink below the anchor, and every load coefficient is
        // non-negative.
        for id in tree.postorder() {
            let mut finite = 0;
            for &(threshold, resistance) in &b.states[id.index()] {
                if threshold.is_finite() {
                    assert!(threshold >= anchor);
                    assert!(resistance >= 0.0);
                    finite += 1;
                }
            }
            assert!(finite >= 1, "every node needs at least one live state");
        }
        // A candidate matching the deterministic optimum with zero load
        // must always be kept.
        assert!(b.keeps(root, 0.0, 0.0, det.root_rat, 0.0));
        // A hopeless candidate (RAT far below the anchor) is retired.
        assert!(!b.keeps(root, 0.0, 0.0, anchor - 1e6, 0.0));
        // NaN moments are kept for the sanitizer.
        assert!(b.keeps(root, f64::NAN, 0.0, f64::NAN, 0.0));
    }

    #[test]
    fn memo_returns_the_same_table() {
        let tree = generate_benchmark(&BenchmarkSpec::random("bm", 12, 5));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        let sizing = WireSizing::single();
        let sel = RootSelection::YieldRat(0.95);
        let ctx = RunCtx::new(&tree, &model, VariationMode::DieToDie, &sizing);
        let a = det_bounds(&ctx, VariationMode::DieToDie, 3.0, sel).expect("a");
        let b = det_bounds(&ctx, VariationMode::DieToDie, 3.0, sel).expect("b");
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        // A different k misses.
        let c = det_bounds(&ctx, VariationMode::DieToDie, 4.0, sel).expect("c");
        assert!(!Arc::ptr_eq(&a, &c));
        // A different root selection misses too: the anchor replay is
        // keyed by it.
        let d = det_bounds(&ctx, VariationMode::DieToDie, 3.0, RootSelection::MeanRat).expect("d");
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn stat_anchor_tightens_the_corner_floor() {
        // On a within-die heterogeneous net the corner floor prices every
        // buffer at its simultaneous 3σ-worst and lands far below any
        // reachable key; the statistical replay of the mean assignment
        // must recover (almost) all of that gap.
        let tree = generate_benchmark(&BenchmarkSpec::random("sa", 32, 7)).subdivided(500.0);
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
        let sizing = WireSizing::single();
        let mode = VariationMode::WithinDie;
        let ctx = RunCtx::new(&tree, &model, mode, &sizing);
        let mean = optimize_deterministic(&tree, model.library()).expect("mean det");
        let corner_best = optimize_deterministic(&tree, &corner_library(&model, mode, 3.0))
            .expect("corner det")
            .root_rat;
        let replay =
            stat_anchor(&ctx, &mean.assignment, RootSelection::YieldRat(0.95)).expect("replay key");
        assert!(
            replay > mean.root_rat.min(corner_best),
            "replayed key {replay} must beat the corner floor {}",
            mean.root_rat.min(corner_best)
        );
    }
}
