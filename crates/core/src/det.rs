//! The deterministic van Ginneken / Lillis dynamic program.
//!
//! This is the classic `O(B·N²)` algorithm (\[4\], \[9\], \[10\] in the paper):
//! traverse the routing tree in reverse topological order keeping, at each
//! node, the Pareto front of `(L, T)` candidates; lift candidate lists
//! across wires, offer a buffer at every legal position, and merge
//! branches with the linear merge of Figure 1. It is both the paper's
//! **NOM** baseline and the structural template the statistical DP
//! mirrors.

use crate::error::InsertionError;
use crate::metrics::DpStats;
use crate::ops::{buffer_extend_det, driver_rat_det, merge_pair_det, PendingWire};
use crate::solution::DetSolution;
use crate::trace::Trace;
use std::sync::Arc;
use std::time::Instant;
use varbuf_rctree::tree::NodeKind;
use varbuf_rctree::{NodeId, RoutingTree};
use varbuf_variation::{BufferLibrary, BufferTypeId, UnknownBufferType};

/// Result of a deterministic optimization.
#[derive(Debug, Clone)]
pub struct DetResult {
    /// The maximized RAT at the source (driver delay included), ps.
    pub root_rat: f64,
    /// The winning buffer placement.
    pub assignment: Vec<(NodeId, BufferTypeId)>,
    /// Run instrumentation.
    pub stats: DpStats,
}

/// Runs deterministic buffer insertion on `tree` with `library`.
///
/// # Errors
///
/// Returns [`InsertionError::InvalidTree`] if the tree fails validation
/// and [`InsertionError::NoSinks`] for a sink-less net.
///
/// ```
/// use varbuf_core::det::optimize_deterministic;
/// use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
/// use varbuf_variation::BufferLibrary;
///
/// # fn main() -> Result<(), varbuf_core::InsertionError> {
/// let tree = generate_benchmark(&BenchmarkSpec::random("demo", 16, 3));
/// let result = optimize_deterministic(&tree, &BufferLibrary::default_65nm())?;
/// assert!(result.root_rat.is_finite());
/// # Ok(())
/// # }
/// ```
pub fn optimize_deterministic(
    tree: &RoutingTree,
    library: &BufferLibrary,
) -> Result<DetResult, InsertionError> {
    optimize_deterministic_with(tree, library, false)
}

/// [`optimize_deterministic`] with the Li–Shi generation skip selectable.
///
/// With `use_lishi` the buffering arm predicts each candidate's `(L, T)`
/// pair from the chosen partner's scalars — replicating
/// `buffer_extend_det`'s grouping `(T − T_b) − R_b·L` bit for bit — and
/// skips generation when a listed solution already *strictly* shadows
/// the prediction: it sorts before the appended candidate under
/// [`prune_det`]'s `(L asc, T desc)` sweep order, carries at least the
/// candidate's RAT, and is strictly better on at least one key. The
/// strictness matters because deterministic candidates feed later
/// buffer types' `max_by` partner search in the same loop: a strictly
/// shadowed candidate trails the shadowing entry's partner key
/// `T − R·L` by `(T_e − T_c) + R·(L_c − L_e) > 0` for every positive
/// drive resistance, so it can never be selected (not even as a
/// last-wins tie), and the final sweep discards it — the surviving
/// lists, traces, and root RAT are bitwise identical to the plain path;
/// only generation counters differ. The skip disarms itself when any
/// buffer has non-positive resistance (the gap degenerates at `R = 0`).
///
/// # Errors
///
/// Same as [`optimize_deterministic`].
pub fn optimize_deterministic_with(
    tree: &RoutingTree,
    library: &BufferLibrary,
    use_lishi: bool,
) -> Result<DetResult, InsertionError> {
    tree.validate()?;
    if tree.sink_count() == 0 {
        return Err(InsertionError::NoSinks);
    }
    let start = Instant::now();
    let mut stats = DpStats::default();
    let lishi = use_lishi && library.iter().all(|(_, b)| b.resistance > 0.0);

    // Candidate lists per node, indexed by arena position.
    let mut lists: Vec<Vec<DetSolution>> = vec![Vec::new(); tree.len()];
    let wire = tree.wire();

    for id in tree.postorder() {
        let node = tree.node(id);
        stats.nodes_processed += 1;

        // 1. Base list for the subtree seen at this node.
        let mut sols: Vec<DetSolution> = match node.kind {
            NodeKind::Sink {
                capacitance,
                required_arrival,
            } => vec![DetSolution::new(capacitance, required_arrival)],
            NodeKind::Internal | NodeKind::Source { .. } => {
                let mut acc: Option<Vec<DetSolution>> = None;
                for &c in &node.children {
                    // Lift the child's list across its edge, applied as a
                    // single affine [`PendingWire`] transform. For one
                    // segment the transform is the eager kernel bit for
                    // bit (`from_segment` keeps its exact grouping), and
                    // the same type composes chains of segments in O(1)
                    // each for subdivision-heavy trees.
                    let seg = wire.segment(tree.node(c).edge_length);
                    let pending = PendingWire::from_segment(&seg);
                    let mut lifted: Vec<DetSolution> = lists[c.index()]
                        .iter()
                        .map(|s| pending.apply_det(s))
                        .collect();
                    lists[c.index()].clear(); // free memory eagerly
                    stats.solutions_generated += lifted.len();
                    lifted = prune_det(lifted, &mut stats);
                    acc = Some(match acc {
                        None => lifted,
                        Some(prev) => merge_det(prev, lifted, &mut stats),
                    });
                }
                acc.expect("validated internal nodes have children")
            }
        };

        // 2. Offer a buffer at legal positions.
        if node.is_candidate {
            for (ty, buf) in library.iter() {
                // The best downstream partner maximizes T − R_b·L, among
                // partners the cell is allowed to drive.
                if let Some(best) = sols
                    .iter()
                    .filter(|s| buf.max_load.is_none_or(|m| s.load <= m))
                    .max_by(|a, b| {
                        (a.rat - buf.resistance * a.load)
                            .total_cmp(&(b.rat - buf.resistance * b.load))
                    })
                    .cloned()
                {
                    if lishi {
                        // Predict the candidate's keys with
                        // `buffer_extend_det`'s exact grouping.
                        let cand_load = buf.capacitance;
                        let cand_rat = best.rat - buf.intrinsic_delay - buf.resistance * best.load;
                        let shadows = |e: &DetSolution| {
                            use std::cmp::Ordering::{Greater, Less};
                            // `e` sorts before the appended candidate under
                            // the sweep's `(L asc, T desc)` `total_cmp`
                            // order (stable ties leave the listed entry
                            // first)…
                            let before = match e.load.total_cmp(&cand_load) {
                                Less => true,
                                std::cmp::Ordering::Equal => cand_rat.total_cmp(&e.rat) != Greater,
                                Greater => false,
                            };
                            // …carries at least the candidate's RAT, and is
                            // strictly better on one key, so no later
                            // partner search can tie on the skipped entry.
                            before && e.rat >= cand_rat && (e.load < cand_load || e.rat > cand_rat)
                        };
                        if sols.iter().any(shadows) {
                            stats.lishi_skipped += 1;
                            continue;
                        }
                    }
                    sols.push(buffer_extend_det(
                        &best,
                        buf.capacitance,
                        buf.intrinsic_delay,
                        buf.resistance,
                        id,
                        ty,
                    ));
                    stats.solutions_generated += 1;
                }
            }
            sols = prune_det(sols, &mut stats);
        }

        stats.max_solutions_per_node = stats.max_solutions_per_node.max(sols.len());
        lists[id.index()] = sols;
    }

    // 3. Account for the driver at the source and pick the winner.
    let root = tree.root();
    let driver_res = match tree.node(root).kind {
        NodeKind::Source { driver_resistance } => driver_resistance,
        _ => unreachable!("validated root is a source"),
    };
    let winner = lists[root.index()]
        .iter()
        .max_by(|a, b| driver_rat_det(a, driver_res).total_cmp(&driver_rat_det(b, driver_res)))
        .expect("at least one candidate always survives");

    stats.runtime = start.elapsed();
    Ok(DetResult {
        root_rat: driver_rat_det(winner, driver_res),
        assignment: winner.trace.collect(),
        stats,
    })
}

/// Deterministic prune: sort by `(L asc, T desc)`, keep strict
/// T-improvements. Output is sorted by ascending `L` and ascending `T`.
fn prune_det(mut sols: Vec<DetSolution>, stats: &mut DpStats) -> Vec<DetSolution> {
    let before = sols.len();
    sols.sort_by(|a, b| a.load.total_cmp(&b.load).then(b.rat.total_cmp(&a.rat)));
    let mut kept: Vec<DetSolution> = Vec::with_capacity(sols.len());
    for s in sols {
        match kept.last() {
            Some(last) if s.rat <= last.rat => {} // dominated (L >= last.L by sort)
            _ => kept.push(s),
        }
    }
    stats.solutions_pruned += before - kept.len();
    kept
}

/// The linear branch merge of Figure 1: both inputs sorted by ascending
/// `L` and ascending `T`; the result is too.
fn merge_det(a: Vec<DetSolution>, b: Vec<DetSolution>, stats: &mut DpStats) -> Vec<DetSolution> {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() { b } else { a };
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    loop {
        out.push(merge_pair_det(&a[i], &b[j]));
        stats.solutions_generated += 1;
        // Advance the side whose T constrains the pair: pairing it with a
        // larger partner can only improve the min.
        match a[i].rat.total_cmp(&b[j].rat) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
        if i >= a.len() || j >= b.len() {
            break;
        }
    }
    prune_det(out, stats)
}

/// Builds a [`BufferAssignment`] with nominal electrical values from a
/// decision list — the bridge from an optimization result to the
/// Elmore/yield evaluators.
///
/// # Errors
///
/// Returns [`UnknownBufferType`] when a decision references a type id
/// outside `library` — possible when the decision list comes from a
/// stored design or another library, rather than from this optimizer.
///
/// [`BufferAssignment`]: varbuf_rctree::elmore::BufferAssignment
pub fn assignment_with_nominal_values(
    decisions: &[(NodeId, BufferTypeId)],
    library: &BufferLibrary,
) -> Result<varbuf_rctree::elmore::BufferAssignment, UnknownBufferType> {
    let mut a = varbuf_rctree::elmore::BufferAssignment::new();
    for &(node, ty) in decisions {
        let t = library.try_get(ty)?;
        a.insert(
            node,
            varbuf_rctree::elmore::BufferValues {
                capacitance: t.capacitance,
                intrinsic_delay: t.intrinsic_delay,
                resistance: t.resistance,
            },
        );
    }
    Ok(a)
}

// Keep an explicit reference to Trace so the module docs read naturally.
#[allow(unused)]
fn _trace_type_anchor(_: Arc<Trace>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_rctree::elmore::ElmoreEvaluator;
    use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
    use varbuf_rctree::{Point, WireParams};

    fn wire() -> WireParams {
        WireParams {
            res_per_um: 1e-3,
            cap_per_um: 0.1,
        }
    }

    #[test]
    fn single_long_wire_gets_buffered() {
        // A 10 mm wire: unbuffered Elmore is quadratic, buffers win big.
        let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.2, wire());
        let mut prev = t.root();
        for i in 1..=10 {
            prev = t.add_internal(prev, Point::new(1000.0 * f64::from(i), 0.0));
        }
        t.add_sink(prev, Point::new(11_000.0, 0.0), 20.0, 0.0);

        let lib = BufferLibrary::single_65nm();
        let result = optimize_deterministic(&t, &lib).expect("optimize");
        assert!(
            !result.assignment.is_empty(),
            "long line must get at least one buffer"
        );
        // The optimizer's RAT matches an independent Elmore evaluation of
        // the returned assignment.
        let eval = ElmoreEvaluator::new(&t);
        let rep = eval.evaluate(
            &assignment_with_nominal_values(&result.assignment, &lib)
                .expect("ids from this library"),
        );
        assert!(
            (rep.root_rat - result.root_rat).abs() < 1e-6 * rep.root_rat.abs(),
            "DP said {}, Elmore says {}",
            result.root_rat,
            rep.root_rat
        );
        // And it beats the unbuffered tree.
        assert!(result.root_rat > eval.evaluate_unbuffered().root_rat);
    }

    #[test]
    fn dp_rat_matches_elmore_on_random_benchmarks() {
        let lib = BufferLibrary::default_65nm();
        for seed in 0..5 {
            let tree = generate_benchmark(&BenchmarkSpec::random("det", 40, seed));
            let result = optimize_deterministic(&tree, &lib).expect("optimize");
            let eval = ElmoreEvaluator::new(&tree);
            let rep = eval.evaluate(
                &assignment_with_nominal_values(&result.assignment, &lib)
                    .expect("ids from this library"),
            );
            assert!(
                (rep.root_rat - result.root_rat).abs() < 1e-6 * rep.root_rat.abs().max(1.0),
                "seed {seed}: DP {} vs Elmore {}",
                result.root_rat,
                rep.root_rat
            );
        }
    }

    #[test]
    fn dp_never_loses_to_unbuffered_or_greedy() {
        let lib = BufferLibrary::default_65nm();
        let tree = generate_benchmark(&BenchmarkSpec::random("det2", 60, 9));
        let result = optimize_deterministic(&tree, &lib).expect("optimize");
        let eval = ElmoreEvaluator::new(&tree);
        let unbuf = eval.evaluate_unbuffered().root_rat;
        assert!(result.root_rat >= unbuf - 1e-9);

        // Exhaustive check on a tiny tree: DP equals brute force.
        let small = generate_benchmark(&BenchmarkSpec::random("small", 3, 4));
        let lib1 = BufferLibrary::single_65nm();
        let dp = optimize_deterministic(&small, &lib1).expect("optimize");
        let brute = brute_force_best(&small, &lib1);
        assert!(
            (dp.root_rat - brute).abs() < 1e-6 * brute.abs().max(1.0),
            "DP {} vs brute {}",
            dp.root_rat,
            brute
        );
    }

    /// Enumerates every subset of candidate positions with a single
    /// buffer type. Exponential — only for tiny trees.
    fn brute_force_best(tree: &RoutingTree, lib: &BufferLibrary) -> f64 {
        let candidates: Vec<NodeId> = tree
            .iter()
            .filter(|(_, n)| n.is_candidate)
            .map(|(id, _)| id)
            .collect();
        let eval = ElmoreEvaluator::new(tree);
        let mut best = f64::NEG_INFINITY;
        for mask in 0u32..(1 << candidates.len()) {
            let mut decisions = Vec::new();
            for (bit, &c) in candidates.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    decisions.push((c, BufferTypeId(0)));
                }
            }
            let rep = eval.evaluate(
                &assignment_with_nominal_values(&decisions, lib).expect("ids from this library"),
            );
            best = best.max(rep.root_rat);
        }
        best
    }

    #[test]
    fn max_load_constraint_changes_the_design() {
        use varbuf_variation::BufferType;
        // A 10 mm line with a 200 fF sink: unconstrained insertion uses a
        // handful of buffers; a tight drive limit forbids buffering the
        // heavy tail directly, forcing a different (worse) design.
        let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.2, wire());
        let mut prev = t.root();
        for i in 1..=10 {
            prev = t.add_internal(prev, Point::new(1000.0 * f64::from(i), 0.0));
        }
        t.add_sink(prev, Point::new(11_000.0, 0.0), 200.0, 0.0);

        let free = BufferLibrary::new(vec![BufferType::with_unit_sensitivity(
            "b", 23.4, 36.4, 0.18,
        )]);
        let tight = BufferLibrary::new(vec![BufferType::with_unit_sensitivity(
            "b", 23.4, 36.4, 0.18,
        )
        .with_max_load(150.0)]);

        let free_r = optimize_deterministic(&t, &free).expect("free");
        let tight_r = optimize_deterministic(&t, &tight).expect("tight");
        // The constrained optimum cannot beat the unconstrained one.
        assert!(tight_r.root_rat <= free_r.root_rat + 1e-9);
        // And the constraint is honored: re-evaluating the design, no
        // buffer drives more than its limit.
        let eval = ElmoreEvaluator::new(&t);
        let rep = eval.evaluate(
            &assignment_with_nominal_values(&tight_r.assignment, &tight)
                .expect("ids from this library"),
        );
        assert!(rep.root_rat.is_finite());
        // A generous limit is a no-op.
        let loose = BufferLibrary::new(vec![BufferType::with_unit_sensitivity(
            "b", 23.4, 36.4, 0.18,
        )
        .with_max_load(1e9)]);
        let loose_r = optimize_deterministic(&t, &loose).expect("loose");
        assert_eq!(loose_r.assignment.len(), free_r.assignment.len());
        assert!((loose_r.root_rat - free_r.root_rat).abs() < 1e-9);
    }

    #[test]
    fn multi_type_library_is_at_least_as_good() {
        let tree = generate_benchmark(&BenchmarkSpec::random("multi", 50, 11));
        let single = optimize_deterministic(&tree, &BufferLibrary::single_65nm()).expect("single");
        let multi = optimize_deterministic(&tree, &BufferLibrary::default_65nm()).expect("multi");
        assert!(
            multi.root_rat >= single.root_rat - 1e-9,
            "multi {} < single {}",
            multi.root_rat,
            single.root_rat
        );
    }

    #[test]
    fn lishi_skip_is_byte_identical_and_non_vacuous() {
        // Across benchmark shapes and libraries the Li–Shi path must
        // reproduce the plain path's winner exactly — same root RAT
        // bits, same decision list — while actually skipping work
        // somewhere (otherwise the test proves nothing).
        let mut total_skipped = 0usize;
        for (lib, tag) in [
            (BufferLibrary::default_65nm(), "multi"),
            (BufferLibrary::single_65nm(), "single"),
        ] {
            for seed in 0..6 {
                let tree = generate_benchmark(&BenchmarkSpec::random(tag, 50, seed));
                let plain = optimize_deterministic_with(&tree, &lib, false).expect("plain");
                let fast = optimize_deterministic_with(&tree, &lib, true).expect("lishi");
                assert_eq!(
                    plain.root_rat.to_bits(),
                    fast.root_rat.to_bits(),
                    "{tag}/{seed}: root RAT drifted"
                );
                assert_eq!(
                    plain.assignment, fast.assignment,
                    "{tag}/{seed}: assignment"
                );
                assert_eq!(plain.stats.lishi_skipped, 0, "plain path must not skip");
                assert_eq!(
                    plain.stats.solutions_generated,
                    fast.stats.solutions_generated + fast.stats.lishi_skipped,
                    "{tag}/{seed}: every skip must account for one avoided generation"
                );
                total_skipped += fast.stats.lishi_skipped;
            }
        }
        assert!(total_skipped > 0, "the skip never armed across the suite");
    }

    #[test]
    #[should_panic(expected = "electrical values")]
    fn lishi_precondition_is_enforced_by_the_library() {
        use varbuf_variation::BufferType;
        // The skip's strict key gap degenerates at R = 0. The arming
        // guard checks for that defensively, but the case must already
        // be unreachable: the library constructor rejects non-positive
        // resistance, which this pin keeps honest.
        let _ = BufferLibrary::new(vec![BufferType::with_unit_sensitivity(
            "free", 10.0, 5.0, 0.0,
        )]);
    }

    #[test]
    fn stats_are_populated() {
        let tree = generate_benchmark(&BenchmarkSpec::random("stats", 30, 2));
        let r = optimize_deterministic(&tree, &BufferLibrary::default_65nm()).expect("opt");
        assert_eq!(r.stats.nodes_processed, tree.len());
        assert!(r.stats.max_solutions_per_node >= 1);
        assert!(r.stats.solutions_generated > 0);
        assert!(r.stats.prune_ratio() >= 0.0);
    }

    #[test]
    fn assignment_rejects_foreign_type_ids() {
        // A decision list built against a bigger library must surface a
        // typed error on a smaller one, not a panic.
        let small = BufferLibrary::single_65nm();
        let e =
            assignment_with_nominal_values(&[(NodeId(1), BufferTypeId(2))], &small).unwrap_err();
        assert_eq!(e.id, BufferTypeId(2));
        assert_eq!(e.library_len, 1);
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn no_sinks_is_an_error() {
        // A source-only tree fails validation (no sinks reachable), which
        // surfaces as an InvalidTree error before NoSinks can trigger.
        let t = RoutingTree::new(Point::new(0.0, 0.0), 0.1, wire());
        assert!(optimize_deterministic(&t, &BufferLibrary::single_65nm()).is_err());
    }
}
