//! Hierarchical decomposition for full-chip-scale buffer insertion.
//!
//! The flat DP's peak memory is `O(largest candidate list × live
//! lists)` — acceptable at the paper's net sizes, hostile at the 64k
//! sinks a clock tree brings. This module bounds it structurally:
//!
//! * [`plan_cuts`] partitions the routing tree at *cut nodes* chosen by
//!   accumulated subtree size and fanout, so the tree becomes a forest
//!   of bounded regions solved bottom-up by the existing
//!   [`process_node`] engine;
//! * at each cut node the surviving Pareto frontier is **spliced**: an
//!   epsilon-bounded thinning keeps a representative subset (the best-
//!   RAT survivor always included) capped at
//!   [`HierOptions::frontier_cap`] entries, so what a region exports
//!   upward is a bounded frontier, not its full candidate list;
//! * spliced frontiers are parked in chunked streaming lists
//!   ([`ChunkedList`]) charged byte-by-byte to a shared
//!   [`ChunkLedger`], making "frontier memory resident right now" one
//!   ledger read; when the ledger crosses the budget's soft memory
//!   limit the frontier cap halves for subsequent splices, and the
//!   high-water mark is reported as
//!   [`Degradation::peak_chunk_bytes`].
//!
//! The contract with the flat engine: with decomposition disabled
//! ([`HierOptions::disabled`], or a tree that produces no cuts) the run
//! delegates to [`optimize_governed_detailed`] and is byte-identical to
//! it; with decomposition on, the root objective is within an epsilon
//! bounded by the splice parameters (pinned by the `hier_oracle`
//! suite). Bound-guided pruning stays off on the decomposed path — its
//! deterministic anchor presumes the flat fixpoint.

use crate::dp::{
    guard_cascade, materialize_list, optimize_governed_detailed, process_node, select_winner,
    DpOptions, GovSupervisor, GovernedResult, RunControls, RunCtx, SolPool, StatResult, Supervisor,
    WireSizing,
};
use crate::error::InsertionError;
use crate::governor::{solution_footprint, truncate_spread, Budget, Degradation, Governor};
use crate::metrics::DpStats;
use crate::prune::PruningRule;
use crate::solution::{ChunkLedger, ChunkedList, StatSolution};
use std::sync::Arc;
use varbuf_rctree::RoutingTree;
use varbuf_variation::{ProcessModel, VariationMode};

/// Decomposition knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierOptions {
    /// Accumulated-subtree-size threshold: a node whose region has
    /// grown to at least this many nodes becomes a cut. `0` disables
    /// decomposition entirely (byte-identical delegation to the flat
    /// engine).
    pub cut_nodes: usize,
    /// Fanout threshold: a node with at least this many children
    /// becomes a cut regardless of region size (`0` = never by fanout).
    pub fanout_cut: usize,
    /// Relative epsilon of the frontier thinning at cut nodes, as a
    /// fraction of the frontier's load/RAT key spans. A dropped
    /// candidate is within this distance of a kept one on both axes.
    pub splice_epsilon: f64,
    /// Hard cap on the solutions a cut node exports upward (spread-
    /// preserving truncation past the epsilon thinning). Halved — down
    /// to a floor of 4 — each time parked-frontier memory crosses the
    /// budget's soft memory limit.
    pub frontier_cap: usize,
}

impl HierOptions {
    /// Decomposition off: the run delegates to the flat engine.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            cut_nodes: 0,
            ..Self::default()
        }
    }

    /// Whether this configuration can produce cuts at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cut_nodes > 0
    }
}

impl Default for HierOptions {
    fn default() -> Self {
        Self {
            cut_nodes: 2048,
            fanout_cut: 8,
            splice_epsilon: 1e-4,
            frontier_cap: 64,
        }
    }
}

/// What the decomposition did on one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierReport {
    /// Cut nodes the planner selected (0 = the run was effectively
    /// flat, whether by configuration or tree shape).
    pub cut_count: usize,
    /// Solutions dropped by frontier splicing across all cuts.
    pub spliced_dropped: usize,
    /// High-water mark of bytes parked in streaming chunks.
    pub peak_chunk_bytes: usize,
    /// The frontier cap in force at the end of the run (smaller than
    /// the configured cap when memory pressure halved it).
    pub final_frontier_cap: usize,
}

/// A hierarchical run's outcome: the design, the governed-degradation
/// report, and the decomposition report.
#[derive(Debug, Clone)]
pub struct HierResult {
    /// The winning design.
    pub result: StatResult,
    /// Budget-driven relaxations (as for [`optimize_governed_detailed`]).
    pub degradation: Degradation,
    /// What the decomposition itself did.
    pub hier: HierReport,
}

impl HierResult {
    /// Collapses to the flat engine's result shape (the batch pool's
    /// common currency), keeping the degradation report.
    #[must_use]
    pub fn into_governed(self) -> GovernedResult {
        GovernedResult {
            result: self.result,
            degradation: self.degradation,
        }
    }
}

/// Selects cut nodes: a postorder sweep accumulates region weight
/// (1 per node plus the *residual* weight of each child — a child that
/// is itself a cut contributes 1, its region having been exported);
/// a non-root node cuts when its region reaches `cut_nodes` nodes or
/// its fanout reaches `fanout_cut`. Returns a `tree.len()`-indexed cut
/// mask. Deterministic in the tree and options.
#[must_use]
pub fn plan_cuts(tree: &RoutingTree, hier: &HierOptions) -> Vec<bool> {
    let mut cuts = vec![false; tree.len()];
    if !hier.enabled() {
        return cuts;
    }
    let mut residual = vec![0usize; tree.len()];
    let root = tree.root();
    for id in tree.postorder() {
        let node = tree.node(id);
        let mut weight = 1usize;
        for &c in &node.children {
            weight += residual[c.index()];
        }
        let by_size = weight >= hier.cut_nodes;
        let by_fanout = hier.fanout_cut > 0 && node.children.len() >= hier.fanout_cut;
        if id != root && (by_size || by_fanout) {
            cuts[id.index()] = true;
            residual[id.index()] = 1;
        } else {
            residual[id.index()] = weight;
        }
    }
    cuts
}

/// Epsilon-bounded frontier thinning at a cut node, then a spread-
/// preserving truncation to `cap`. The list is load-key sorted on
/// return. Returns how many solutions were dropped.
///
/// Thinning keeps the first (lowest-load) and last (best-RAT, by the
/// Pareto ordering keyed pruning maintains) entries unconditionally and
/// drops any interior entry within `epsilon × span` of the last kept
/// one on *both* key axes — so every dropped candidate has a kept
/// representative within the epsilon box, which is what bounds the
/// splice's objective error.
fn splice_compact(
    rule: &dyn PruningRule,
    sols: &mut Vec<StatSolution>,
    epsilon: f64,
    cap: usize,
) -> usize {
    let before = sols.len();
    if sols.len() > 2 && epsilon > 0.0 {
        sols.sort_by(|a, b| rule.load_key(a).total_cmp(&rule.load_key(b)));
        let load_span = (rule.load_key(&sols[sols.len() - 1]) - rule.load_key(&sols[0])).abs();
        let rat_span = sols
            .iter()
            .map(|s| rule.rat_key(s))
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), k| {
                (lo.min(k), hi.max(k))
            });
        let rat_span = rat_span.1 - rat_span.0;
        if load_span.is_finite() && rat_span.is_finite() {
            let gap_load = epsilon * load_span;
            let gap_rat = epsilon * rat_span;
            let last_idx = sols.len() - 1;
            let mut last_load = rule.load_key(&sols[0]);
            let mut last_rat = rule.rat_key(&sols[0]);
            let mut keep_idx = 0usize;
            sols.retain(|s| {
                let i = keep_idx;
                keep_idx += 1;
                if i == 0 || i == last_idx {
                    last_load = rule.load_key(s);
                    last_rat = rule.rat_key(s);
                    return true;
                }
                let load = rule.load_key(s);
                let rat = rule.rat_key(s);
                if (load - last_load).abs() <= gap_load && (rat - last_rat).abs() <= gap_rat {
                    return false;
                }
                last_load = load;
                last_rat = rat;
                true
            });
        }
    }
    truncate_spread(rule, sols, cap);
    before - sols.len()
}

/// Hierarchical governed optimization. With decomposition disabled (or
/// a tree the planner leaves uncut) this *is*
/// [`optimize_governed_detailed`] — same bytes out; with cuts, each
/// region is solved by the flat per-node engine and exports an
/// epsilon-spliced, capped frontier parked in budget-charged chunks.
///
/// # Errors
///
/// Same as [`optimize_governed_detailed`].
///
/// # Panics
///
/// Panics if `cascade` is empty.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn optimize_hier(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    cascade: Vec<Arc<dyn PruningRule>>,
    sizing: &WireSizing,
    options: &DpOptions,
    hier: &HierOptions,
    budget: &Budget,
    controls: RunControls<'_>,
) -> Result<HierResult, InsertionError> {
    let cuts = plan_cuts(tree, hier);
    let cut_count = cuts.iter().filter(|&&c| c).count();
    if cut_count == 0 {
        // Byte-identity contract: no decomposition means the flat
        // engine, not a reimplementation of it.
        let flat = optimize_governed_detailed(
            tree, model, mode, cascade, sizing, options, budget, controls,
        )?;
        return Ok(HierResult {
            result: flat.result,
            degradation: flat.degradation,
            hier: HierReport {
                final_frontier_cap: hier.frontier_cap,
                ..HierReport::default()
            },
        });
    }

    tree.validate()?;
    if tree.sink_count() == 0 {
        return Err(InsertionError::NoSinks);
    }

    let mut cascade = cascade;
    let guard = guard_cascade(tree, &mut cascade, options, budget);
    let mut governor = Governor::governed(*budget, cascade, options.sparsify_epsilon);
    if controls.cancel.is_some() || controls.watchdog.is_some() {
        governor = governor.with_cancellation(
            controls.cancel.clone().unwrap_or_default(),
            controls.watchdog,
        );
    }
    if let Some(c) = controls.clock {
        governor = governor.with_clock(c);
    }

    // Bounds stay off (flat-fixpoint anchor; see module docs). Li–Shi
    // is list-neutral and arms under the same condition as the flat
    // engine: only when the run cannot degrade.
    let mut ctx = RunCtx::new(tree, model, mode, sizing);
    ctx.lishi = options.use_lishi && !budget.constrains_run();
    // Lazy wire propagation arms under the same no-degradation condition
    // (pending-aware footprints would shift a degradation schedule);
    // this path never injects faults.
    ctx.lazy = options.use_lazy_wire && !budget.constrains_run();

    let ledger = Arc::new(ChunkLedger::new());
    let mut parked: Vec<Option<ChunkedList>> = Vec::new();
    parked.resize_with(tree.len(), || None);
    let mut lists: Vec<Vec<StatSolution>> = vec![Vec::new(); tree.len()];
    let mut pool = SolPool::default();
    let mut stats = DpStats::default();
    let mut spliced_dropped = 0usize;
    let mut live_cap = hier.frontier_cap.max(1);

    let walk = |sup: &mut GovSupervisor<'_, '_>,
                lists: &mut Vec<Vec<StatSolution>>,
                parked: &mut Vec<Option<ChunkedList>>,
                pool: &mut SolPool,
                stats: &mut DpStats,
                spliced_dropped: &mut usize,
                live_cap: &mut usize|
     -> Result<(), crate::dp::EngineInterrupt> {
        for id in tree.postorder() {
            let children: Vec<Vec<StatSolution>> = tree
                .node(id)
                .children
                .iter()
                .map(|&c| match parked[c.index()].take() {
                    Some(frontier) => frontier.into_vec(),
                    None => std::mem::take(&mut lists[c.index()]),
                })
                .collect();
            let mut sols = process_node(&ctx, sup, id, children, None, pool, stats)?;
            if cuts[id.index()] {
                // A parked frontier outlives its region's DP, so any
                // deferred wire coupling must land *before* the splice:
                // the epsilon thinning and the bytes charged to the
                // chunk ledger must both see settled solutions, not
                // pending ones whose RAT terms (and footprint) are
                // still about to grow.
                materialize_list(&mut sols, sup.epsilon(), stats);
                // Splice: thin the region's frontier, free the dropped
                // footprint from the governor's live estimate, park the
                // survivors in budget-charged chunks.
                let footprint_before: usize = sols.iter().map(solution_footprint).sum();
                let rh = sup.rule();
                *spliced_dropped +=
                    splice_compact(rh.get(), &mut sols, hier.splice_epsilon, *live_cap);
                let footprint_after: usize = sols.iter().map(solution_footprint).sum();
                sup.note_memory(&[], footprint_before - footprint_after);
                let mut frontier = ChunkedList::with_ledger(Arc::clone(&ledger));
                for s in sols.drain(..) {
                    let bytes = solution_footprint(&s);
                    frontier.push(s, bytes);
                }
                pool.put(sols);
                sup.governor.note_chunk_bytes(ledger.live());
                if ledger.live() > sup.governor.budget().soft_mem_bytes {
                    *live_cap = (*live_cap / 2).max(4);
                }
                parked[id.index()] = Some(frontier);
            } else {
                lists[id.index()] = sols;
            }
        }
        Ok(())
    };

    {
        let mut sup = GovSupervisor {
            static_rule: None,
            governor: &mut governor,
        };
        walk(
            &mut sup,
            &mut lists,
            &mut parked,
            &mut pool,
            &mut stats,
            &mut spliced_dropped,
            &mut live_cap,
        )
        .map_err(crate::dp::EngineInterrupt::into_error)?;
    }

    stats.runtime = governor.elapsed();
    stats.jobs_requested = options.jobs.max(1);
    stats.jobs_effective = 1;
    let mut result = select_winner(tree, options, &mut lists[tree.root().index()], stats);
    let mut degradation = governor.into_report();
    degradation.guard = guard;
    degradation.peak_chunk_bytes = degradation.peak_chunk_bytes.max(ledger.peak());
    result.stats.rule_fallbacks = degradation.rule_fallbacks();
    result.stats.epsilon_tightenings = degradation.epsilon_tightenings();
    result.stats.list_truncations = degradation.truncations();
    result.stats.poisoned_dropped = degradation.poisoned_dropped();
    result.stats.panic_completion = degradation.panic_completion;
    Ok(HierResult {
        result,
        degradation,
        hier: HierReport {
            cut_count,
            spliced_dropped,
            peak_chunk_bytes: ledger.peak(),
            final_frontier_cap: live_cap,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};

    #[test]
    fn plan_cuts_disabled_produces_none() {
        let tree = generate_benchmark(&BenchmarkSpec::random("cuts-off", 64, 1));
        let cuts = plan_cuts(&tree, &HierOptions::disabled());
        assert!(cuts.iter().all(|&c| !c));
    }

    #[test]
    fn plan_cuts_bounds_region_size() {
        let tree = generate_benchmark(&BenchmarkSpec::random("cuts", 256, 9));
        let hier = HierOptions {
            cut_nodes: 32,
            fanout_cut: 0,
            ..HierOptions::default()
        };
        let cuts = plan_cuts(&tree, &hier);
        assert!(cuts.iter().any(|&c| c), "a 256-sink tree must cut at 32");
        assert!(!cuts[tree.root().index()], "the root is never a cut");
        // Re-walk the residual accumulation: no region may exceed the
        // threshold plus one node per child boundary.
        let mut residual = vec![0usize; tree.len()];
        for id in tree.postorder() {
            let node = tree.node(id);
            let mut w = 1usize;
            for &c in &node.children {
                w += residual[c.index()];
            }
            residual[id.index()] = if cuts[id.index()] { 1 } else { w };
            if !cuts[id.index()] && id != tree.root() {
                assert!(w < hier.cut_nodes + node.children.len().max(1) * hier.cut_nodes);
            }
        }
    }

    #[test]
    fn splice_compact_keeps_best_rat_and_caps() {
        use crate::prune::TwoParam;
        use varbuf_stats::CanonicalForm;
        let rule = TwoParam::default();
        let mut sols: Vec<StatSolution> = (0..500)
            .map(|i| {
                StatSolution::new(
                    CanonicalForm::constant(f64::from(i)),
                    CanonicalForm::constant(-900.0 + f64::from(i)),
                )
            })
            .collect();
        let best_before = sols
            .iter()
            .map(StatSolution::rat_mean)
            .fold(f64::NEG_INFINITY, f64::max);
        let dropped = splice_compact(&rule, &mut sols, 1e-2, 32);
        assert!(sols.len() <= 32);
        assert_eq!(dropped, 500 - sols.len());
        let best_after = sols
            .iter()
            .map(StatSolution::rat_mean)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(best_before, best_after, "best-RAT survivor is mandatory");
    }
}
