//! Design-level (multi-net) optimization and joint timing yield.
//!
//! A die carries many nets, and they are *not* independent: every net's
//! buffers share the inter-die source `G` and, when physically close,
//! spatial region sources. The paper's single-net formulation extends
//! naturally — one [`ProcessModel`] spans the die, each net is optimized
//! on it, and the per-net root-RAT canonical forms stay expressed over
//! the **same** source space, so cross-net correlation falls out of the
//! representation for free.
//!
//! The interesting design-level question is the **joint** timing yield:
//! `P(every net meets its target)`. Independent-net math multiplies
//! per-net yields and gets it badly wrong when nets are correlated
//! (shared G means slow dice fail *together*, which *raises* the joint
//! yield relative to independence at equal margins). We compute the
//! joint yield by Monte Carlo over the shared source space — exact up to
//! sampling error, for any number of nets.

use crate::driver::{optimize_statistical, OptimizeResult, Options};
use crate::error::InsertionError;
use crate::yield_eval::YieldEvaluator;
use std::collections::BTreeSet;
use varbuf_rctree::RoutingTree;
use varbuf_stats::mc::{SampleVector, StandardNormal};
use varbuf_stats::rng::SplitMix64;
use varbuf_stats::CanonicalForm;
use varbuf_variation::{ProcessModel, VariationMode};

/// One net of a design, plus its optimization result and silicon RAT
/// form (over the design-shared source space).
#[derive(Debug, Clone)]
pub struct DesignNet {
    /// The net's name (from the routing tree).
    pub name: String,
    /// The optimization result.
    pub result: OptimizeResult,
    /// The net's root RAT under the full silicon model.
    pub silicon_rat: CanonicalForm,
}

/// A multi-net design sharing one process model.
#[derive(Debug)]
pub struct Design {
    nets: Vec<DesignNet>,
}

impl Design {
    /// Optimizes every net with the given mode on a shared model.
    ///
    /// All trees must live on the die `model` spans. Net `i` is given the
    /// model's `i`-th device-source block
    /// ([`ProcessModel::for_net`]) so that the nets' random device
    /// variation is independent while the inter-die and spatial sources
    /// remain shared — exactly the silicon situation.
    ///
    /// # Errors
    ///
    /// Propagates the first optimizer failure.
    ///
    /// # Panics
    ///
    /// Panics if more than 1022 nets are passed (device-id space).
    pub fn optimize(
        trees: &[RoutingTree],
        model: &ProcessModel,
        mode: VariationMode,
        options: &Options,
    ) -> Result<Self, InsertionError> {
        let mut nets = Vec::with_capacity(trees.len());
        for (i, tree) in trees.iter().enumerate() {
            let net_model = model.for_net(u32::try_from(i).expect("net count fits u32"));
            let result = optimize_statistical(tree, &net_model, mode, options)?;
            let silicon = YieldEvaluator::new(tree, &net_model, VariationMode::WithinDie);
            let silicon_rat = silicon.rat_form(&result.assignment);
            nets.push(DesignNet {
                name: tree.name().to_owned(),
                result,
                silicon_rat,
            });
        }
        Ok(Self { nets })
    }

    /// The per-net records.
    #[must_use]
    pub fn nets(&self) -> &[DesignNet] {
        &self.nets
    }

    /// Product of per-net yields — the (wrong under correlation)
    /// independence approximation, kept for comparison.
    #[must_use]
    pub fn independent_yield(&self, targets: &[f64]) -> f64 {
        assert_eq!(targets.len(), self.nets.len(), "one target per net");
        self.nets
            .iter()
            .zip(targets)
            .map(|(n, &t)| n.silicon_rat.prob_at_least(t))
            .product()
    }

    /// Joint yield `P(∀ i: RAT_i ≥ target_i)` by Monte Carlo over the
    /// shared source space — correlation-exact up to sampling error.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != self.nets().len()` or `samples == 0`.
    #[must_use]
    pub fn joint_yield(&self, targets: &[f64], samples: usize, seed: u64) -> f64 {
        assert_eq!(targets.len(), self.nets.len(), "one target per net");
        assert!(samples > 0, "need at least one sample");

        // Union of every source any net references.
        let mut sources = BTreeSet::new();
        for net in &self.nets {
            sources.extend(net.silicon_rat.term_ids().iter().copied());
        }
        let sources: Vec<_> = sources.into_iter().collect();

        let mut rng = SplitMix64::new(seed);
        let normal = StandardNormal;
        let mut pass = 0usize;
        for _ in 0..samples {
            let mut sample = SampleVector::new();
            for &id in &sources {
                sample.set(id, normal.sample(&mut rng));
            }
            let ok = self
                .nets
                .iter()
                .zip(targets)
                .all(|(n, &t)| sample.eval(&n.silicon_rat) >= t);
            if ok {
                pass += 1;
            }
        }
        pass as f64 / samples as f64
    }

    /// Per-net targets at a common margin: each net's mean RAT minus
    /// `margin_sigmas` of its own σ.
    #[must_use]
    pub fn targets_at_margin(&self, margin_sigmas: f64) -> Vec<f64> {
        self.nets
            .iter()
            .map(|n| n.silicon_rat.mean() - margin_sigmas * n.silicon_rat.std_dev())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
    use varbuf_rctree::geom::BoundingBox;
    use varbuf_variation::SpatialKind;

    fn design(nets: usize) -> (Vec<RoutingTree>, ProcessModel) {
        let trees: Vec<RoutingTree> = (0..nets)
            .map(|i| {
                generate_benchmark(&BenchmarkSpec::random(
                    &format!("net{i}"),
                    24,
                    100 + i as u64,
                ))
            })
            .collect();
        let die = trees
            .iter()
            .map(|t| t.bounding_box())
            .reduce(|a, b| BoundingBox {
                min: varbuf_rctree::Point::new(a.min.x.min(b.min.x), a.min.y.min(b.min.y)),
                max: varbuf_rctree::Point::new(a.max.x.max(b.max.x), a.max.y.max(b.max.y)),
            })
            .expect("non-empty");
        let model = ProcessModel::paper_defaults(die, SpatialKind::Homogeneous);
        (trees, model)
    }

    #[test]
    fn joint_yield_exceeds_independent_for_correlated_nets() {
        let (trees, model) = design(4);
        let d = Design::optimize(
            &trees,
            &model,
            VariationMode::WithinDie,
            &Options::default(),
        )
        .expect("optimize");
        assert_eq!(d.nets().len(), 4);

        // Nets share the inter-die source, so their RATs are positively
        // correlated: at a symmetric margin the joint yield must beat
        // the independence product.
        let targets = d.targets_at_margin(1.0);
        let indep = d.independent_yield(&targets);
        let joint = d.joint_yield(&targets, 20_000, 5);
        assert!(
            joint > indep,
            "joint {joint} should exceed independent {indep} under positive correlation"
        );
        // Sanity bounds: joint can never beat the weakest single net.
        let weakest = d
            .nets()
            .iter()
            .zip(&targets)
            .map(|(n, &t)| n.silicon_rat.prob_at_least(t))
            .fold(1.0_f64, f64::min);
        assert!(joint <= weakest + 0.02);
    }

    #[test]
    fn single_net_joint_equals_marginal() {
        let (trees, model) = design(1);
        let d = Design::optimize(
            &trees,
            &model,
            VariationMode::WithinDie,
            &Options::default(),
        )
        .expect("optimize");
        let targets = d.targets_at_margin(1.645);
        let marginal = d.nets()[0].silicon_rat.prob_at_least(targets[0]);
        let joint = d.joint_yield(&targets, 40_000, 9);
        assert!(
            (joint - marginal).abs() < 0.01,
            "joint {joint} vs marginal {marginal}"
        );
        assert!((d.independent_yield(&targets) - marginal).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one target per net")]
    fn mismatched_targets_rejected() {
        let (trees, model) = design(2);
        let d = Design::optimize(
            &trees,
            &model,
            VariationMode::WithinDie,
            &Options::default(),
        )
        .expect("optimize");
        let _ = d.joint_yield(&[0.0], 10, 1);
    }
}
