//! Candidate-solution types for the dynamic programs.

use crate::trace::Trace;
use std::sync::Arc;
use varbuf_stats::CanonicalForm;

/// A deterministic candidate: `(L, T)` plus its decision trace.
#[derive(Debug, Clone)]
pub struct DetSolution {
    /// Downstream loading capacitance `L`, fF.
    pub load: f64,
    /// Required arrival time `T`, ps.
    pub rat: f64,
    /// The buffer decisions that produced this candidate.
    pub trace: Arc<Trace>,
}

impl DetSolution {
    /// A fresh solution with no decisions.
    #[must_use]
    pub fn new(load: f64, rat: f64) -> Self {
        Self {
            load,
            rat,
            trace: Trace::empty(),
        }
    }
}

/// A statistical candidate: `(L, T)` as first-order canonical forms plus
/// the decision trace (eqs. (31)–(32) of the paper).
#[derive(Debug, Clone)]
pub struct StatSolution {
    /// Downstream loading capacitance `L` as a canonical form, fF.
    pub load: CanonicalForm,
    /// Required arrival time `T` as a canonical form, ps.
    pub rat: CanonicalForm,
    /// The buffer decisions that produced this candidate.
    pub trace: Arc<Trace>,
}

impl StatSolution {
    /// A fresh solution with no decisions.
    #[must_use]
    pub fn new(load: CanonicalForm, rat: CanonicalForm) -> Self {
        Self {
            load,
            rat,
            trace: Trace::empty(),
        }
    }

    /// Mean of the load form (the 2P rule's primary sort key).
    #[inline]
    #[must_use]
    pub fn load_mean(&self) -> f64 {
        self.load.mean()
    }

    /// Mean of the RAT form.
    #[inline]
    #[must_use]
    pub fn rat_mean(&self) -> f64 {
        self.rat.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_stats::SourceId;

    #[test]
    fn det_solution_starts_unbuffered() {
        let s = DetSolution::new(10.0, -5.0);
        assert_eq!(s.trace.buffer_count(), 0);
        assert_eq!(s.load, 10.0);
        assert_eq!(s.rat, -5.0);
    }

    #[test]
    fn stat_solution_means() {
        let s = StatSolution::new(
            CanonicalForm::with_terms(20.0, vec![(SourceId(0), 1.0)]),
            CanonicalForm::with_terms(-100.0, vec![(SourceId(0), 2.0)]),
        );
        assert_eq!(s.load_mean(), 20.0);
        assert_eq!(s.rat_mean(), -100.0);
        assert_eq!(s.trace.buffer_count(), 0);
    }
}
