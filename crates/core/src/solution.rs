//! Candidate-solution types for the dynamic programs, plus the chunked
//! streaming storage the hierarchical engine parks cut-node frontiers
//! in: a [`ChunkedList`] stores solutions in fixed-capacity
//! [`SolChunk`] blocks and charges its bytes to a shared
//! [`ChunkLedger`], so the peak resident footprint of all parked
//! frontiers is an observable the governor can budget against instead
//! of an accident of list sizes.

use crate::trace::Trace;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use varbuf_stats::CanonicalForm;

/// A deterministic candidate: `(L, T)` plus its decision trace.
#[derive(Debug, Clone)]
pub struct DetSolution {
    /// Downstream loading capacitance `L`, fF.
    pub load: f64,
    /// Required arrival time `T`, ps.
    pub rat: f64,
    /// The buffer decisions that produced this candidate.
    pub trace: Arc<Trace>,
}

impl DetSolution {
    /// A fresh solution with no decisions.
    #[must_use]
    pub fn new(load: f64, rat: f64) -> Self {
        Self {
            load,
            rat,
            trace: Trace::empty(),
        }
    }
}

/// A statistical candidate: `(L, T)` as first-order canonical forms plus
/// the decision trace (eqs. (31)–(32) of the paper).
#[derive(Debug, Clone)]
pub struct StatSolution {
    /// Downstream loading capacitance `L` as a canonical form, fF.
    pub load: CanonicalForm,
    /// Required arrival time `T` as a canonical form, ps.
    pub rat: CanonicalForm,
    /// Deferred wire-coupling resistance (lazy wire propagation): the
    /// summed `Σrᵢ` of wire segments whose mean effects have been folded
    /// into `rat` eagerly but whose term coupling
    /// `rat ← rat − (Σrᵢ)·load` (terms only) is still pending. `0.0`
    /// means the solution is fully materialized; every consumer of the
    /// RAT's *sensitivities* (merge, buffer, σ envelopes, winner
    /// selection) must materialize first. Load terms are invariant under
    /// wire extension, so one scalar captures the whole deferred chain
    /// exactly.
    pub wire_pending: f64,
    /// The buffer decisions that produced this candidate.
    pub trace: Arc<Trace>,
}

impl StatSolution {
    /// A fresh solution with no decisions.
    #[must_use]
    pub fn new(load: CanonicalForm, rat: CanonicalForm) -> Self {
        Self {
            load,
            rat,
            wire_pending: 0.0,
            trace: Trace::empty(),
        }
    }

    /// Mean of the load form (the 2P rule's primary sort key).
    #[inline]
    #[must_use]
    pub fn load_mean(&self) -> f64 {
        self.load.mean()
    }

    /// Mean of the RAT form.
    #[inline]
    #[must_use]
    pub fn rat_mean(&self) -> f64 {
        self.rat.mean()
    }
}

/// Solutions per [`SolChunk`] block. Chunks are append-only; a full
/// chunk is sealed and a fresh one started, so a parked frontier never
/// triggers a large reallocation-and-copy the way one `Vec` would.
pub const CHUNK_CAP: usize = 256;

/// One fixed-capacity block of a [`ChunkedList`].
#[derive(Debug, Default)]
pub struct SolChunk {
    sols: Vec<StatSolution>,
}

impl SolChunk {
    fn with_capacity() -> Self {
        Self {
            sols: Vec::with_capacity(CHUNK_CAP),
        }
    }

    /// Solutions stored in this chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sols.len()
    }

    /// Whether the chunk holds no solutions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sols.is_empty()
    }
}

/// Shared accounting for every [`ChunkedList`] of one run: live bytes
/// currently parked plus the run's high-water mark. Atomic so frontier
/// producers on worker threads and the consuming splice loop can share
/// one ledger without locks.
#[derive(Debug, Default)]
pub struct ChunkLedger {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl ChunkLedger {
    /// A fresh ledger with nothing charged.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `bytes` of newly parked solutions and bumps the peak.
    pub fn charge(&self, bytes: usize) {
        let now = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Releases `bytes` (a frontier was consumed or dropped).
    pub fn release(&self, bytes: usize) {
        // Saturating: a release can race a concurrent charge's peak
        // update, but live never goes below zero.
        let mut current = self.live.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.live.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Bytes currently parked across all lists charging this ledger.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`ChunkLedger::live`] over the ledger's life.
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

/// A chunked, append-only solution list with byte accounting.
///
/// The hierarchical engine parks each cut node's spliced frontier in
/// one of these until the cut's parent consumes it; every byte parked
/// is charged to the shared [`ChunkLedger`] on push and released when
/// the list is drained or dropped, so "how much frontier memory is
/// resident right now" is a single ledger read.
#[derive(Debug, Default)]
pub struct ChunkedList {
    chunks: Vec<SolChunk>,
    ledger: Option<Arc<ChunkLedger>>,
    charged: usize,
}

impl ChunkedList {
    /// An empty list charging nothing.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty list that charges its bytes to `ledger`.
    #[must_use]
    pub fn with_ledger(ledger: Arc<ChunkLedger>) -> Self {
        Self {
            chunks: Vec::new(),
            ledger: Some(ledger),
            charged: 0,
        }
    }

    /// Appends one solution whose estimated footprint is `bytes`.
    pub fn push(&mut self, sol: StatSolution, bytes: usize) {
        if self.chunks.last().is_none_or(|c| c.sols.len() >= CHUNK_CAP) {
            self.chunks.push(SolChunk::with_capacity());
        }
        self.chunks
            .last_mut()
            .expect("chunk just ensured")
            .sols
            .push(sol);
        self.charged += bytes;
        if let Some(ledger) = &self.ledger {
            ledger.charge(bytes);
        }
    }

    /// Total solutions across all chunks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chunks.iter().map(SolChunk::len).sum()
    }

    /// Whether no solutions are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chunks.iter().all(SolChunk::is_empty)
    }

    /// Bytes charged against the ledger for this list.
    #[must_use]
    pub fn charged_bytes(&self) -> usize {
        self.charged
    }

    /// Iterates the stored solutions in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &StatSolution> {
        self.chunks.iter().flat_map(|c| c.sols.iter())
    }

    /// Drains the list into a flat `Vec`, releasing its ledger charge.
    #[must_use]
    pub fn into_vec(mut self) -> Vec<StatSolution> {
        let mut out = Vec::with_capacity(self.len());
        for chunk in &mut self.chunks {
            out.append(&mut chunk.sols);
        }
        // Drop runs next and releases the charge (chunks are empty).
        out
    }
}

impl Drop for ChunkedList {
    fn drop(&mut self) {
        if let Some(ledger) = &self.ledger {
            ledger.release(self.charged);
        }
        self.charged = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_stats::SourceId;

    #[test]
    fn det_solution_starts_unbuffered() {
        let s = DetSolution::new(10.0, -5.0);
        assert_eq!(s.trace.buffer_count(), 0);
        assert_eq!(s.load, 10.0);
        assert_eq!(s.rat, -5.0);
    }

    #[test]
    fn stat_solution_means() {
        let s = StatSolution::new(
            CanonicalForm::with_terms(20.0, vec![(SourceId(0), 1.0)]),
            CanonicalForm::with_terms(-100.0, vec![(SourceId(0), 2.0)]),
        );
        assert_eq!(s.load_mean(), 20.0);
        assert_eq!(s.rat_mean(), -100.0);
        assert_eq!(s.trace.buffer_count(), 0);
    }

    fn dummy(i: usize) -> StatSolution {
        StatSolution::new(
            CanonicalForm::constant(i as f64),
            CanonicalForm::constant(-(i as f64)),
        )
    }

    #[test]
    fn chunked_list_spans_chunks_and_preserves_order() {
        let mut list = ChunkedList::new();
        let n = CHUNK_CAP * 2 + 17;
        for i in 0..n {
            list.push(dummy(i), 64);
        }
        assert_eq!(list.len(), n);
        assert_eq!(list.charged_bytes(), 64 * n);
        assert!(list.iter().count() == n);
        let flat = list.into_vec();
        for (i, s) in flat.iter().enumerate() {
            assert_eq!(s.load_mean(), i as f64);
        }
    }

    #[test]
    fn ledger_tracks_live_and_peak_across_lists() {
        let ledger = Arc::new(ChunkLedger::new());
        let mut a = ChunkedList::with_ledger(Arc::clone(&ledger));
        let mut b = ChunkedList::with_ledger(Arc::clone(&ledger));
        for i in 0..10 {
            a.push(dummy(i), 100);
        }
        for i in 0..5 {
            b.push(dummy(i), 100);
        }
        assert_eq!(ledger.live(), 1500);
        assert_eq!(ledger.peak(), 1500);
        drop(a);
        assert_eq!(ledger.live(), 500);
        assert_eq!(ledger.peak(), 1500, "peak is a high-water mark");
        let drained = b.into_vec();
        assert_eq!(drained.len(), 5);
        assert_eq!(ledger.live(), 0);
    }
}
