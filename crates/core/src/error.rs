//! Error type of the optimization layer.

use std::error::Error;
use std::fmt;
use std::time::Duration;
use varbuf_rctree::{NodeId, TreeError};

/// Why an optimization run could not complete.
#[derive(Debug)]
pub enum InsertionError {
    /// The routing tree failed validation.
    InvalidTree(TreeError),
    /// The tree has no sinks, so there is nothing to optimize.
    NoSinks,
    /// The candidate-solution set at some node exceeded the configured
    /// cap — the failure mode of the 4P rule on large benchmarks
    /// (the "-" entries of Table 2, where \[7\] exceeds 2 GB of memory).
    CapacityExceeded {
        /// The merge node where the cap was hit.
        node: NodeId,
        /// How many solutions the node would have needed.
        solutions: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The configured wall-clock limit was exceeded (the paper's 4-hour
    /// cutoff in Table 2).
    TimeLimitExceeded {
        /// Time spent before giving up.
        elapsed: Duration,
        /// The configured limit.
        limit: Duration,
    },
    /// Every candidate at some node carried non-finite statistics, so
    /// there is no valid state to recover to — raised by the governed
    /// engine's sanitizer (dropping *some* poisoned candidates is a
    /// recorded degradation, not an error).
    PoisonedSolutions {
        /// The node whose entire candidate list was invalid.
        node: NodeId,
    },
}

impl fmt::Display for InsertionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertionError::InvalidTree(e) => write!(f, "invalid routing tree: {e}"),
            InsertionError::NoSinks => write!(f, "routing tree has no sinks"),
            InsertionError::CapacityExceeded {
                node,
                solutions,
                limit,
            } => write!(
                f,
                "solution capacity exceeded at {node}: {solutions} candidates over the {limit} cap"
            ),
            InsertionError::TimeLimitExceeded { elapsed, limit } => write!(
                f,
                "time limit exceeded: {:.1}s elapsed over the {:.1}s cap",
                elapsed.as_secs_f64(),
                limit.as_secs_f64()
            ),
            InsertionError::PoisonedSolutions { node } => write!(
                f,
                "every candidate solution at {node} has non-finite statistics"
            ),
        }
    }
}

impl Error for InsertionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InsertionError::InvalidTree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TreeError> for InsertionError {
    fn from(e: TreeError) -> Self {
        InsertionError::InvalidTree(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(InsertionError::NoSinks.to_string().contains("no sinks"));
        let e = InsertionError::CapacityExceeded {
            node: NodeId(4),
            solutions: 1_000_001,
            limit: 1_000_000,
        };
        assert!(e.to_string().contains("n4"));
        let t = InsertionError::TimeLimitExceeded {
            elapsed: Duration::from_secs(5),
            limit: Duration::from_secs(4),
        };
        assert!(t.to_string().contains("time limit"));
        let i = InsertionError::from(TreeError::Empty);
        assert!(i.to_string().contains("invalid routing tree"));
        assert!(Error::source(&i).is_some());
        let p = InsertionError::PoisonedSolutions { node: NodeId(9) };
        assert!(p.to_string().contains("non-finite"));
        assert!(p.to_string().contains("n9"));
    }
}
