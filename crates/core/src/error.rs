//! Error type of the optimization layer.

use std::error::Error;
use std::fmt;
use std::time::Duration;
use varbuf_rctree::{NodeId, TreeError};

/// Why an optimization run could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertionError {
    /// The routing tree failed validation.
    InvalidTree(TreeError),
    /// The tree has no sinks, so there is nothing to optimize.
    NoSinks,
    /// The candidate-solution set at some node exceeded the configured
    /// cap — the failure mode of the 4P rule on large benchmarks
    /// (the "-" entries of Table 2, where \[7\] exceeds 2 GB of memory).
    CapacityExceeded {
        /// The merge node where the cap was hit.
        node: NodeId,
        /// How many solutions the node would have needed.
        solutions: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The configured wall-clock limit was exceeded (the paper's 4-hour
    /// cutoff in Table 2).
    TimeLimitExceeded {
        /// Time spent before giving up.
        elapsed: Duration,
        /// The configured limit.
        limit: Duration,
    },
    /// Every candidate at some node carried non-finite statistics, so
    /// there is no valid state to recover to — raised by the governed
    /// engine's sanitizer (dropping *some* poisoned candidates is a
    /// recorded degradation, not an error).
    PoisonedSolutions {
        /// The node whose entire candidate list was invalid.
        node: NodeId,
    },
    /// The run was cancelled cooperatively — a watchdog deadline fired or
    /// an external `CancelToken` was triggered. Raised in strict mode
    /// only; a governed run answers cancellation with best-so-far
    /// completion instead.
    Cancelled {
        /// Time spent before the cancellation was observed.
        elapsed: Duration,
    },
}

impl fmt::Display for InsertionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertionError::InvalidTree(e) => write!(f, "invalid routing tree: {e}"),
            InsertionError::NoSinks => write!(f, "routing tree has no sinks"),
            InsertionError::CapacityExceeded {
                node,
                solutions,
                limit,
            } => write!(
                f,
                "solution capacity exceeded at {node}: {solutions} candidates over the {limit} cap"
            ),
            InsertionError::TimeLimitExceeded { elapsed, limit } => write!(
                f,
                "time limit exceeded: {:.1}s elapsed over the {:.1}s cap",
                elapsed.as_secs_f64(),
                limit.as_secs_f64()
            ),
            InsertionError::PoisonedSolutions { node } => write!(
                f,
                "every candidate solution at {node} has non-finite statistics"
            ),
            InsertionError::Cancelled { elapsed } => {
                write!(f, "run cancelled after {:.3}s", elapsed.as_secs_f64())
            }
        }
    }
}

impl Error for InsertionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InsertionError::InvalidTree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TreeError> for InsertionError {
    fn from(e: TreeError) -> Self {
        InsertionError::InvalidTree(e)
    }
}

/// Why a *service request* failed — the request-level taxonomy wrapped
/// around [`InsertionError`] by [`crate::service`].
///
/// The split matters for the isolation contract: everything here is a
/// *per-request* outcome. A request that hits one of these leaves every
/// other session untouched; only [`RequestError::Internal`] (a contained
/// panic) additionally poisons the session it ran against.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The handle's slot was closed (and possibly reopened) since the
    /// handle was issued — its generation counter no longer matches.
    /// Stale handles are always a typed error, never a wrong answer
    /// against whatever net now occupies the slot.
    StaleHandle {
        /// The handle the client presented.
        handle: crate::service::SessionHandle,
    },
    /// The session was poisoned by a contained crash in an earlier
    /// request; it only accepts `close` until then.
    SessionPoisoned {
        /// The poisoned session's handle.
        handle: crate::service::SessionHandle,
    },
    /// The resident-session cap is reached; close a session first.
    SessionLimit {
        /// The configured cap.
        limit: usize,
    },
    /// Admission control shed the request: the queued work already
    /// exceeds the service's cost budget.
    Overloaded {
        /// Cost units (DP nodes) queued at rejection time.
        queued_cost: u64,
        /// The queue's hard cost budget.
        limit: u64,
        /// Deterministic retry hint derived from the queued cost.
        retry_after: Duration,
    },
    /// The request could not be parsed or carries invalid parameters.
    Malformed {
        /// What was wrong.
        message: String,
    },
    /// Request-scoped fault injection was asked for but the service was
    /// not started with it enabled.
    FaultsDisabled,
    /// A panic escaped the DP mid-request and was contained by the
    /// execution envelope; the session it ran against is poisoned.
    Internal {
        /// The contained panic's message.
        message: String,
    },
    /// The optimization itself failed with a typed engine error.
    Insertion(InsertionError),
}

impl RequestError {
    /// Stable one-token machine-readable kind, used by the line
    /// protocol's `err <kind> …` responses.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            RequestError::StaleHandle { .. } => "stale",
            RequestError::SessionPoisoned { .. } => "poisoned",
            RequestError::SessionLimit { .. } => "session-limit",
            RequestError::Overloaded { .. } => "overloaded",
            RequestError::Malformed { .. } => "malformed",
            RequestError::FaultsDisabled => "faults-disabled",
            RequestError::Internal { .. } => "internal",
            RequestError::Insertion(_) => "insertion",
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::StaleHandle { handle } => {
                write!(f, "stale session handle {handle}")
            }
            RequestError::SessionPoisoned { handle } => {
                write!(
                    f,
                    "session {handle} was poisoned by an earlier fault; close it"
                )
            }
            RequestError::SessionLimit { limit } => {
                write!(f, "session limit reached ({limit} resident sessions)")
            }
            RequestError::Overloaded {
                queued_cost,
                limit,
                retry_after,
            } => write!(
                f,
                "overloaded: {queued_cost} cost units queued over the {limit} budget, retry_after_ms={}",
                retry_after.as_millis()
            ),
            RequestError::Malformed { message } => write!(f, "malformed request: {message}"),
            RequestError::FaultsDisabled => {
                write!(f, "fault injection disabled (start serve with --faults)")
            }
            RequestError::Internal { message } => {
                write!(f, "contained panic: {message}")
            }
            RequestError::Insertion(e) => write!(f, "optimization failed: {e}"),
        }
    }
}

impl Error for RequestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RequestError::Insertion(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InsertionError> for RequestError {
    fn from(e: InsertionError) -> Self {
        RequestError::Insertion(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(InsertionError::NoSinks.to_string().contains("no sinks"));
        let e = InsertionError::CapacityExceeded {
            node: NodeId(4),
            solutions: 1_000_001,
            limit: 1_000_000,
        };
        assert!(e.to_string().contains("n4"));
        let t = InsertionError::TimeLimitExceeded {
            elapsed: Duration::from_secs(5),
            limit: Duration::from_secs(4),
        };
        assert!(t.to_string().contains("time limit"));
        let i = InsertionError::from(TreeError::Empty);
        assert!(i.to_string().contains("invalid routing tree"));
        assert!(Error::source(&i).is_some());
        let p = InsertionError::PoisonedSolutions { node: NodeId(9) };
        assert!(p.to_string().contains("non-finite"));
        assert!(p.to_string().contains("n9"));
        let c = InsertionError::Cancelled {
            elapsed: Duration::from_millis(1500),
        };
        assert!(c.to_string().contains("cancelled after 1.500s"));
    }
}
