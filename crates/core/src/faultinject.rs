//! Deterministic fault injection for exercising the degradation paths.
//!
//! Resource exhaustion is awkward to provoke honestly in a unit test: a
//! real wall-clock breach needs a slow machine or a huge tree, and a
//! real memory breach needs gigabytes. This module fakes the *signals*
//! instead of the load, so `tests/degradation.rs` can drive every branch
//! of the [`Governor`](crate::governor::Governor) ladder quickly and
//! reproducibly:
//!
//! * [`StepClock`] / [`SkewedClock`] replace the governor's time source,
//!   making "four hours elapsed" a function of how many times the DP
//!   asked, not of the machine;
//! * [`FaultInjector`] mutates candidate lists between DP steps — adding
//!   *poisoned* candidates (NaN means, infinite variance) to exercise
//!   the sanitizer, or padding lists with duplicates to create capacity
//!   pressure without a pathological tree.
//!
//! Injection only ever *adds* candidates (poison as clones, padding as
//! duplicates); it never corrupts or removes an existing valid one, so
//! an injected run always has a valid solution to recover to. The one
//! exception is the `panic_after` fault, which aborts the run mid-DP by
//! design — it exists to exercise the service layer's `catch_unwind`
//! containment, not the governor ladder.
//!
//! The service layer adds a second granularity on top: *request-scoped*
//! faults ([`RequestFault`] / [`RequestFaults`]) select one of these
//! primitives by request id, so a soak script can poison exactly request
//! `k` and prove requests `k − 1` and `k + 1` are unaffected.
//!
//! Negative variance deserves a note: a canonical form's variance is
//! `Σaᵢ²`, which is non-negative by construction, so a "negative
//! variance" fault is structurally unrepresentable here. The class it
//! belongs to — statistically meaningless candidates — is covered by the
//! non-finite poisons below, which the sanitizer catches with the same
//! check that would catch a negative variance.

use crate::governor::{Clock, MonotonicClock};
use crate::solution::StatSolution;
use std::cell::Cell;
use std::time::Duration;
use varbuf_rctree::NodeId;
use varbuf_stats::{CanonicalForm, SourceId};

/// A clock that advances by a fixed tick every time it is read.
///
/// Fully deterministic: after `n` reads, `elapsed()` is `n × tick`
/// regardless of machine speed — the standard way to script a wall-clock
/// breach at an exact point in the run.
#[derive(Debug)]
pub struct StepClock {
    tick: Duration,
    reads: Cell<u64>,
}

impl StepClock {
    /// A clock advancing `tick` per read.
    #[must_use]
    pub fn new(tick: Duration) -> Self {
        Self {
            tick,
            reads: Cell::new(0),
        }
    }

    /// How many times the clock has been read.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }
}

impl Clock for StepClock {
    fn elapsed(&self) -> Duration {
        let n = self.reads.get() + 1;
        self.reads.set(n);
        self.tick
            .saturating_mul(u32::try_from(n).unwrap_or(u32::MAX))
    }
}

/// A clock that scales and offsets a base clock: `elapsed = base × scale
/// + offset`.
///
/// `scale = 0` with a positive offset freezes time at the offset;
/// `scale = 3600` makes every real second look like an hour — the skew
/// fault of the injection harness.
#[derive(Debug)]
pub struct SkewedClock {
    base: MonotonicClock,
    scale: f64,
    offset: Duration,
}

impl SkewedClock {
    /// A skewed view of a fresh monotonic clock.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or non-finite.
    #[must_use]
    pub fn new(scale: f64, offset: Duration) -> Self {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "clock skew scale must be finite and non-negative"
        );
        Self {
            base: MonotonicClock::new(),
            scale,
            offset,
        }
    }

    /// A clock frozen at `at` — deterministic "we are already over/under
    /// budget" without sleeping.
    #[must_use]
    pub fn frozen(at: Duration) -> Self {
        Self::new(0.0, at)
    }
}

impl Clock for SkewedClock {
    fn elapsed(&self) -> Duration {
        self.base.elapsed().mul_f64(self.scale) + self.offset
    }
}

/// Which invalid-statistics fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoisonKind {
    /// RAT form with a NaN mean.
    NanRat,
    /// Load form with a NaN mean.
    NanLoad,
    /// RAT form with an infinite sensitivity coefficient (infinite
    /// variance — the stand-in for any meaningless-variance fault).
    InfiniteVariance,
}

/// What to inject, and how often.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Append one poisoned candidate at every `poison_every`-th node
    /// (`0` disables).
    pub poison_every: usize,
    /// Which poison to use.
    pub poison_kind: PoisonKind,
    /// Pad the list with duplicates at every `pad_every`-th node
    /// (`0` disables) — synthetic capacity pressure.
    pub pad_every: usize,
    /// How many duplicates each padding event adds.
    pub pad_count: usize,
    /// Panic (a genuine `panic!`, not a typed error) when the
    /// `panic_after`-th node is visited (`0` disables) — the crash fault
    /// the service layer's `catch_unwind` envelope must contain.
    pub panic_after: usize,
}

impl FaultPlan {
    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        Self {
            poison_every: 0,
            poison_kind: PoisonKind::NanRat,
            pad_every: 0,
            pad_count: 0,
            panic_after: 0,
        }
    }

    /// Poison every `every`-th node with `kind`.
    #[must_use]
    pub fn poison(every: usize, kind: PoisonKind) -> Self {
        Self {
            poison_every: every,
            poison_kind: kind,
            ..Self::none()
        }
    }

    /// Pad every `every`-th node with `count` duplicates.
    #[must_use]
    pub fn pad(every: usize, count: usize) -> Self {
        Self {
            pad_every: every,
            pad_count: count,
            ..Self::none()
        }
    }

    /// Panic when the `after`-th node is visited.
    #[must_use]
    pub fn panic_at(after: usize) -> Self {
        Self {
            panic_after: after,
            ..Self::none()
        }
    }
}

/// Applies a [`FaultPlan`] to candidate lists as the DP visits nodes.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    nodes_seen: usize,
    poisoned_injected: usize,
    padded_injected: usize,
}

impl FaultInjector {
    /// An injector executing `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            nodes_seen: 0,
            poisoned_injected: 0,
            padded_injected: 0,
        }
    }

    /// Total poisoned candidates injected so far.
    #[must_use]
    pub fn poisoned_injected(&self) -> usize {
        self.poisoned_injected
    }

    /// Total padding duplicates injected so far.
    #[must_use]
    pub fn padded_injected(&self) -> usize {
        self.padded_injected
    }

    /// Called by the engine after a node's list is built; mutates the
    /// list per the plan.
    ///
    /// # Panics
    ///
    /// Panics deliberately when the plan's `panic_after`-th node is
    /// reached — the injected-crash fault.
    pub fn on_node(&mut self, node: NodeId, sols: &mut Vec<StatSolution>) {
        self.nodes_seen += 1;
        assert!(
            !(self.plan.panic_after > 0 && self.nodes_seen >= self.plan.panic_after),
            "injected panic at {node} (fault injection, node visit {})",
            self.nodes_seen
        );
        if sols.is_empty() {
            return;
        }
        if self.plan.poison_every > 0 && self.nodes_seen.is_multiple_of(self.plan.poison_every) {
            let mut bad = sols[0].clone();
            match self.plan.poison_kind {
                PoisonKind::NanRat => bad.rat = CanonicalForm::constant(f64::NAN),
                PoisonKind::NanLoad => bad.load = CanonicalForm::constant(f64::NAN),
                PoisonKind::InfiniteVariance => {
                    bad.rat = CanonicalForm::with_terms(
                        bad.rat.mean(),
                        vec![(SourceId(0), f64::INFINITY)],
                    );
                }
            }
            sols.push(bad);
            self.poisoned_injected += 1;
        }
        if self.plan.pad_every > 0
            && self.plan.pad_count > 0
            && self.nodes_seen.is_multiple_of(self.plan.pad_every)
        {
            let template = sols[0].clone();
            sols.extend(std::iter::repeat_with(|| template.clone()).take(self.plan.pad_count));
            self.padded_injected += self.plan.pad_count;
        }
    }
}

/// A fault scoped to one service request, selected by request id.
///
/// Each variant maps onto one of the harness primitives above:
///
/// * `Panic` — a [`FaultPlan::panic_at`] injector crashes the DP on its
///   first node; the service envelope must contain it.
/// * `Delay` — the request runs on a [`SkewedClock`] pre-aged by the
///   given duration, so a per-request watchdog deadline shorter than it
///   trips deterministically (no sleeping).
/// * `AllocSpike` — a [`FaultPlan::pad`] injector pads every node's
///   candidate list, spiking allocations and capacity pressure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestFault {
    /// Crash the DP mid-run.
    Panic,
    /// Pre-age the request's clock by this much.
    Delay(Duration),
    /// Pad every node with this many duplicate candidates.
    AllocSpike(usize),
}

/// Request-id–keyed fault schedule for a service run.
///
/// Faults are *one-shot*: [`RequestFaults::take`] removes the
/// entry, so a retried request id runs clean.
#[derive(Debug, Default)]
pub struct RequestFaults {
    by_id: std::collections::BTreeMap<u64, RequestFault>,
}

impl RequestFaults {
    /// An empty schedule.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `fault` for the request with id `id` (replacing any earlier
    /// entry for the same id).
    pub fn arm(&mut self, id: u64, fault: RequestFault) {
        self.by_id.insert(id, fault);
    }

    /// Removes and returns the fault armed for `id`, if any.
    pub fn take(&mut self, id: u64) -> Option<RequestFault> {
        self.by_id.remove(&id)
    }

    /// How many faults are still armed.
    #[must_use]
    pub fn armed(&self) -> usize {
        self.by_id.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol(load: f64, rat: f64) -> StatSolution {
        StatSolution::new(CanonicalForm::constant(load), CanonicalForm::constant(rat))
    }

    #[test]
    fn step_clock_is_deterministic() {
        let c = StepClock::new(Duration::from_secs(10));
        assert_eq!(c.elapsed(), Duration::from_secs(10));
        assert_eq!(c.elapsed(), Duration::from_secs(20));
        assert_eq!(c.reads(), 2);
    }

    #[test]
    fn frozen_clock_never_moves() {
        let c = SkewedClock::frozen(Duration::from_secs(5));
        assert_eq!(c.elapsed(), Duration::from_secs(5));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(c.elapsed(), Duration::from_secs(5));
    }

    #[test]
    fn skewed_clock_scales() {
        let c = SkewedClock::new(1000.0, Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(c.elapsed() >= Duration::from_secs(1));
    }

    #[test]
    fn poison_injection_appends_invalid_clone() {
        let mut inj = FaultInjector::new(FaultPlan::poison(1, PoisonKind::NanRat));
        let mut sols = vec![sol(1.0, -10.0)];
        inj.on_node(NodeId(0), &mut sols);
        assert_eq!(sols.len(), 2);
        assert!(sols[1].rat.mean().is_nan());
        assert!(sols[0].rat.mean().is_finite(), "original untouched");
        assert_eq!(inj.poisoned_injected(), 1);
    }

    #[test]
    fn infinite_variance_poison_has_infinite_variance() {
        let mut inj = FaultInjector::new(FaultPlan::poison(1, PoisonKind::InfiniteVariance));
        let mut sols = vec![sol(1.0, -10.0)];
        inj.on_node(NodeId(0), &mut sols);
        assert!(sols[1].rat.variance().is_infinite());
    }

    #[test]
    fn padding_respects_cadence() {
        let mut inj = FaultInjector::new(FaultPlan::pad(2, 5));
        let mut sols = vec![sol(1.0, -10.0)];
        inj.on_node(NodeId(0), &mut sols);
        assert_eq!(sols.len(), 1, "node 1: no padding");
        inj.on_node(NodeId(1), &mut sols);
        assert_eq!(sols.len(), 6, "node 2: padded");
        assert_eq!(inj.padded_injected(), 5);
    }

    #[test]
    fn panic_plan_panics_at_the_scheduled_node() {
        let mut inj = FaultInjector::new(FaultPlan::panic_at(2));
        let mut sols = vec![sol(1.0, -10.0)];
        inj.on_node(NodeId(0), &mut sols);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.on_node(NodeId(1), &mut sols);
        }));
        let payload = r.expect_err("second visit must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("injected panic"), "{msg}");
    }

    #[test]
    fn request_faults_are_one_shot_and_id_scoped() {
        let mut rf = RequestFaults::new();
        rf.arm(3, RequestFault::Panic);
        rf.arm(5, RequestFault::Delay(Duration::from_secs(60)));
        assert_eq!(rf.armed(), 2);
        assert_eq!(rf.take(4), None);
        assert_eq!(rf.take(3), Some(RequestFault::Panic));
        assert_eq!(rf.take(3), None, "one-shot");
        assert_eq!(
            rf.take(5),
            Some(RequestFault::Delay(Duration::from_secs(60)))
        );
        assert_eq!(rf.armed(), 0);
    }

    #[test]
    fn empty_list_is_left_alone() {
        let mut inj = FaultInjector::new(FaultPlan::poison(1, PoisonKind::NanLoad));
        let mut sols = Vec::new();
        inj.on_node(NodeId(0), &mut sols);
        assert!(sols.is_empty());
    }
}
