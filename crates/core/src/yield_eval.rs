//! Timing-yield analysis of a fixed buffered tree (Section 5.3).
//!
//! Once an optimizer has committed to a buffer placement, the question the
//! paper asks is: *what RAT distribution does that design actually achieve
//! on variable silicon?* [`YieldEvaluator`] answers it two ways:
//!
//! * **analytically** — propagate canonical forms through the fixed tree
//!   with the key operations of Section 4.2 (no optimization choices, one
//!   solution per node) and read off the mean/σ/percentiles;
//! * **by Monte Carlo** — sample every variation source, instantiate
//!   concrete buffer values, and re-run the deterministic Elmore
//!   evaluator per sample (Figure 6's validation).
//!
//! This is how the NOM and D2D designs get scored *under the full WID
//! variation model* in Tables 3–5: they chose their buffers while blind to
//! some variation categories, but the silicon varies anyway.

use crate::ops::{buffer_extend_stat, driver_rat_stat, merge_pair_stat, wire_extend_stat};
use crate::solution::StatSolution;
use std::collections::HashMap;
use varbuf_rctree::elmore::{BufferAssignment, EdgeWidths, ElmoreEvaluator};
use varbuf_rctree::tree::NodeKind;
use varbuf_rctree::{NodeId, RoutingTree};
use varbuf_stats::mc::MonteCarlo;
use varbuf_stats::CanonicalForm;
use varbuf_variation::{BufferTypeId, ProcessModel, VariationMode};

/// The analytic yield summary of one design.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldAnalysis {
    /// The root RAT as a canonical form.
    pub rat: CanonicalForm,
    /// The 95%-timing-yield RAT — the 5th percentile of the RAT
    /// distribution (the design beats this RAT with 95% probability).
    pub rat_at_95_yield: f64,
}

impl YieldAnalysis {
    /// Timing yield at a required RAT: `P(RAT ≥ target)`.
    #[must_use]
    pub fn yield_at(&self, target: f64) -> f64 {
        self.rat.prob_at_least(target)
    }
}

/// Evaluates fixed buffer placements on one tree under one variation
/// model/mode.
#[derive(Debug)]
pub struct YieldEvaluator<'a> {
    tree: &'a RoutingTree,
    model: &'a ProcessModel,
    mode: VariationMode,
}

impl<'a> YieldEvaluator<'a> {
    /// Creates an evaluator; `mode` is the variation the *silicon* has
    /// (normally [`VariationMode::WithinDie`], regardless of what the
    /// optimizer believed).
    #[must_use]
    pub fn new(tree: &'a RoutingTree, model: &'a ProcessModel, mode: VariationMode) -> Self {
        Self { tree, model, mode }
    }

    /// The canonical form of the root RAT for `assignment` (all wires at
    /// default width).
    ///
    /// # Panics
    ///
    /// Panics if the tree is structurally invalid or has no sinks.
    #[must_use]
    pub fn rat_form(&self, assignment: &[(NodeId, BufferTypeId)]) -> CanonicalForm {
        self.rat_form_sized(assignment, &EdgeWidths::new())
    }

    /// The canonical form of the root RAT for `assignment` with per-edge
    /// wire widths (for designs produced by
    /// [`optimize_with_sizing`](crate::dp::optimize_with_sizing)).
    ///
    /// # Panics
    ///
    /// Panics if the tree is structurally invalid or has no sinks.
    #[must_use]
    pub fn rat_form_sized(
        &self,
        assignment: &[(NodeId, BufferTypeId)],
        widths: &EdgeWidths,
    ) -> CanonicalForm {
        let buffers: HashMap<NodeId, BufferTypeId> = assignment.iter().copied().collect();
        let wire = self.tree.wire();
        let mut forms: Vec<Option<StatSolution>> = vec![None; self.tree.len()];

        for id in self.tree.postorder() {
            let node = self.tree.node(id);
            let mut sol = match node.kind {
                NodeKind::Sink {
                    capacitance,
                    required_arrival,
                } => StatSolution::new(
                    CanonicalForm::constant(capacitance),
                    CanonicalForm::constant(required_arrival),
                ),
                NodeKind::Internal | NodeKind::Source { .. } => {
                    let mut acc: Option<StatSolution> = None;
                    for &c in &node.children {
                        let w = widths.get(c);
                        let mut seg = wire.segment(self.tree.node(c).edge_length);
                        seg.resistance /= w;
                        seg.capacitance *= w;
                        let lifted =
                            wire_extend_stat(forms[c.index()].as_ref().expect("post-order"), &seg);
                        acc = Some(match acc {
                            None => lifted,
                            Some(prev) => merge_pair_stat(&prev, &lifted),
                        });
                    }
                    acc.expect("validated internal nodes have children")
                }
            };
            if let Some(&ty) = buffers.get(&id) {
                let cap = self.model.buffer_cap_form(ty, id, node.location, self.mode);
                let delay = self
                    .model
                    .buffer_delay_form(ty, id, node.location, self.mode);
                sol = buffer_extend_stat(
                    &sol,
                    &cap,
                    &delay,
                    self.model.buffer_resistance(ty),
                    id,
                    ty,
                );
            }
            forms[id.index()] = Some(sol);
        }

        let root = self.tree.root();
        let driver_res = match self.tree.node(root).kind {
            NodeKind::Source { driver_resistance } => driver_resistance,
            _ => panic!("root must be a source"),
        };
        driver_rat_stat(forms[root.index()].as_ref().expect("root"), driver_res)
    }

    /// Full analytic summary for `assignment`.
    #[must_use]
    pub fn analyze(&self, assignment: &[(NodeId, BufferTypeId)]) -> YieldAnalysis {
        let rat = self.rat_form(assignment);
        let rat_at_95_yield = if rat.std_dev() > 0.0 {
            rat.percentile(0.05)
        } else {
            rat.mean()
        };
        YieldAnalysis {
            rat,
            rat_at_95_yield,
        }
    }

    /// Parallel [`Self::monte_carlo`]: splits the draws across `threads`
    /// OS threads with decorrelated seeds. The sample set differs from
    /// the sequential method's (different RNG streams) but is
    /// statistically equivalent; the same `(seed, threads)` pair is
    /// reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn monte_carlo_parallel(
        &self,
        assignment: &[(NodeId, BufferTypeId)],
        samples: usize,
        seed: u64,
        threads: usize,
    ) -> Vec<f64> {
        assert!(threads > 0, "need at least one thread");
        let chunk = samples.div_ceil(threads);
        let mut out = Vec::with_capacity(samples);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let count = chunk.min(samples.saturating_sub(t * chunk));
                    scope.spawn(move || {
                        // Decorrelate thread streams by a large odd stride.
                        self.monte_carlo(
                            assignment,
                            count,
                            seed.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(t as u64 + 1)),
                        )
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("worker thread panicked"));
            }
        });
        out
    }

    /// Classic corner analysis: the root RAT with **every** variation
    /// source pinned at `z` standard deviations (e.g. `z = 3.0` for the
    /// slow corner, `-3.0` for the fast corner, `0.0` for typical).
    ///
    /// Corners ignore the correlation structure entirely — comparing the
    /// slow corner against the statistical 95%-yield RAT shows how much
    /// pessimism the statistical treatment removes.
    #[must_use]
    pub fn corner(&self, assignment: &[(NodeId, BufferTypeId)], z: f64) -> f64 {
        let rat = self.rat_form(assignment);
        // Pinning all sources at +z lowers the RAT by z·Σ|aᵢ| when the
        // worst sign is taken per source; the conventional corner instead
        // moves every source in its locally-worst direction:
        let l1: f64 = rat.term_coeffs().iter().map(|&a| a.abs()).sum();
        rat.mean() - z * l1
    }

    /// Monte Carlo RAT samples: each draw samples every variation source,
    /// instantiates the placed buffers, and runs the deterministic Elmore
    /// evaluator.
    #[must_use]
    pub fn monte_carlo(
        &self,
        assignment: &[(NodeId, BufferTypeId)],
        samples: usize,
        seed: u64,
    ) -> Vec<f64> {
        // Only the sources the placed buffers actually reference need
        // sampling — unused device sources would just be multiplied by
        // zero coefficients. This keeps each draw proportional to the
        // design, not the candidate space.
        let mut used = std::collections::BTreeSet::new();
        for &(node, ty) in assignment {
            let loc = self.tree.node(node).location;
            for form in [
                self.model.buffer_cap_form(ty, node, loc, self.mode),
                self.model.buffer_delay_form(ty, node, loc, self.mode),
            ] {
                used.extend(form.term_ids().iter().copied());
            }
        }
        let mut mc = MonteCarlo::new(seed, used.into_iter().collect());
        let eval = ElmoreEvaluator::new(self.tree);

        // Precompute each placed buffer's forms once; per sample only the
        // cheap form evaluation and the Elmore pass remain.
        let prepared: Vec<_> = assignment
            .iter()
            .map(|&(node, ty)| {
                let loc = self.tree.node(node).location;
                (
                    node,
                    self.model.buffer_cap_form(ty, node, loc, self.mode),
                    self.model.buffer_delay_form(ty, node, loc, self.mode),
                    self.model.buffer_resistance(ty),
                )
            })
            .collect();

        (0..samples)
            .map(|_| {
                let sample = mc.draw();
                let mut placed = BufferAssignment::new();
                for (node, cap, delay, resistance) in &prepared {
                    placed.insert(
                        *node,
                        varbuf_rctree::elmore::BufferValues {
                            capacitance: sample.eval(cap),
                            intrinsic_delay: sample.eval(delay),
                            resistance: *resistance,
                        },
                    );
                }
                eval.evaluate(&placed).root_rat
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det::{assignment_with_nominal_values, optimize_deterministic};
    use crate::dp::{optimize_with_rule, DpOptions};
    use crate::prune::TwoParam;
    use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
    use varbuf_stats::mc::sample_moments;
    use varbuf_variation::SpatialKind;

    fn setup(sinks: usize, seed: u64) -> (RoutingTree, ProcessModel) {
        let tree = generate_benchmark(&BenchmarkSpec::random("ye", sinks, seed));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        (tree, model)
    }

    #[test]
    fn nominal_mode_matches_elmore_exactly() {
        let (tree, model) = setup(30, 3);
        let det = optimize_deterministic(&tree, model.library()).expect("det");
        let ye = YieldEvaluator::new(&tree, &model, VariationMode::Nominal);
        let rat = ye.rat_form(&det.assignment);
        assert!(rat.std_dev() < 1e-12);
        let eval = ElmoreEvaluator::new(&tree);
        let rep = eval.evaluate(
            &assignment_with_nominal_values(&det.assignment, model.library())
                .expect("ids from this library"),
        );
        assert!(
            (rat.mean() - rep.root_rat).abs() < 1e-6 * rep.root_rat.abs(),
            "{} vs {}",
            rat.mean(),
            rep.root_rat
        );
    }

    #[test]
    fn wid_form_matches_dp_winner_form() {
        // The DP and the fixed-assignment evaluator walk the same key
        // operations, so re-evaluating the winning assignment must give
        // back (nearly) the same canonical form.
        let (tree, model) = setup(40, 9);
        let r = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("opt");
        let ye = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
        let rat = ye.rat_form(&r.assignment);
        assert!(
            (rat.mean() - r.root_rat.mean()).abs() < 1e-6 * r.root_rat.mean().abs(),
            "mean {} vs {}",
            rat.mean(),
            r.root_rat.mean()
        );
        assert!(
            (rat.std_dev() - r.root_rat.std_dev()).abs() < 0.02 * r.root_rat.std_dev().max(1e-12),
            "std {} vs {}",
            rat.std_dev(),
            r.root_rat.std_dev()
        );
    }

    #[test]
    fn monte_carlo_confirms_analytic_moments() {
        // Figure 6: the first-order model predicts the MC distribution.
        let (tree, model) = setup(25, 5);
        let r = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("opt");
        let ye = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
        let analysis = ye.analyze(&r.assignment);
        let samples = ye.monte_carlo(&r.assignment, 4000, 42);
        let (mc_mean, mc_var) = sample_moments(&samples);
        let rel_mean = (mc_mean - analysis.rat.mean()).abs() / analysis.rat.mean().abs().max(1.0);
        assert!(
            rel_mean < 0.01,
            "MC mean {} vs model {}",
            mc_mean,
            analysis.rat.mean()
        );
        let model_sigma = analysis.rat.std_dev();
        let rel_sigma = (mc_var.sqrt() - model_sigma).abs() / model_sigma.max(1e-12);
        assert!(
            rel_sigma < 0.15,
            "MC σ {} vs model σ {}",
            mc_var.sqrt(),
            model_sigma
        );
    }

    #[test]
    fn parallel_mc_matches_sequential_statistics() {
        let (tree, model) = setup(20, 8);
        let r = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("opt");
        let ye = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
        let seq = ye.monte_carlo(&r.assignment, 3000, 7);
        let par = ye.monte_carlo_parallel(&r.assignment, 3000, 7, 4);
        assert_eq!(par.len(), 3000);
        let (ms, vs) = sample_moments(&seq);
        let (mp, vp) = sample_moments(&par);
        assert!(
            (ms - mp).abs() < 3.0 * (vs / 3000.0).sqrt() + 1.0,
            "{ms} vs {mp}"
        );
        assert!((vs.sqrt() - vp.sqrt()).abs() / vs.sqrt() < 0.1);
        // Reproducibility of the parallel variant.
        let par2 = ye.monte_carlo_parallel(&r.assignment, 3000, 7, 4);
        assert_eq!(par, par2);
    }

    #[test]
    fn corner_analysis_is_more_pessimistic_than_statistics() {
        let (tree, model) = setup(30, 13);
        let r = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("opt");
        let ye = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
        let a = ye.analyze(&r.assignment);
        let slow = ye.corner(&r.assignment, 3.0);
        let typical = ye.corner(&r.assignment, 0.0);
        let fast = ye.corner(&r.assignment, -3.0);
        // Corner ordering, and the classic result: the all-worst corner
        // is far more pessimistic than the statistical 5th percentile
        // because it ignores that sources won't all conspire.
        assert!(slow < a.rat_at_95_yield);
        assert!((typical - a.rat.mean()).abs() < 1e-9);
        assert!(fast > typical);
    }

    #[test]
    fn yield_semantics() {
        let (tree, model) = setup(20, 7);
        let r = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("opt");
        let ye = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
        let a = ye.analyze(&r.assignment);
        // The 95%-yield RAT sits below the mean; yield at it is 95%.
        assert!(a.rat_at_95_yield < a.rat.mean());
        assert!((a.yield_at(a.rat_at_95_yield) - 0.95).abs() < 1e-6);
        // An easy target yields ~100%, an impossible one ~0%.
        assert!(a.yield_at(a.rat.mean() - 10.0 * a.rat.std_dev()) > 0.999999);
        assert!(a.yield_at(a.rat.mean() + 10.0 * a.rat.std_dev()) < 1e-6);
    }

    #[test]
    fn blind_design_scores_worse_under_full_variation() {
        // The heart of Tables 3-4: a deterministic (NOM) design evaluated
        // under the full WID model has a wider RAT distribution than the
        // WID-aware design, hence a worse 95%-yield RAT.
        let tree = generate_benchmark(&BenchmarkSpec::random("blind", 60, 21));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
        let nom = optimize_deterministic(&tree, model.library()).expect("nom");
        let wid = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("wid");
        let ye = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
        let nom_a = ye.analyze(&nom.assignment);
        let wid_a = ye.analyze(&wid.assignment);
        // WID optimizes the statistical objective, so its 95%-yield RAT is
        // at least as good (small slack for mean-vs-percentile selection).
        assert!(
            wid_a.rat_at_95_yield >= nom_a.rat_at_95_yield - 1.0,
            "WID {} vs NOM {}",
            wid_a.rat_at_95_yield,
            nom_a.rat_at_95_yield
        );
    }
}
