//! The variation-aware dynamic program (Section 4 of the paper).
//!
//! Structurally identical to the deterministic van Ginneken DP in
//! [`crate::det`], but every solution is a pair of first-order canonical
//! forms and dominance is delegated to a [`PruningRule`]:
//!
//! * rules with [`MergeStrategy::SortedLinear`] (2P, 1P) keep lists sorted
//!   by the rule's scalar key; lifting, buffering, merging and pruning are
//!   all linear walks — Theorem 1's `O(B·N²)`;
//! * rules with [`MergeStrategy::CrossProduct`] (4P) must form all `n·m`
//!   pair combinations at merges and prune pairwise in `O(N²)`; the
//!   engine enforces a per-node solution cap and a wall-clock limit so
//!   that the blow-up surfaces as a typed error (the "-" rows of
//!   Table 2) rather than an OOM kill.
//!
//! Every run is mediated by a [`Governor`](crate::governor::Governor):
//! the legacy entry points ([`optimize_with_rule`],
//! [`optimize_with_sizing`]) use a *strict* governor that turns the
//! first budget breach into a typed error, while [`optimize_governed`]
//! uses a degrading governor that walks a pruning-rule fallback cascade,
//! tightens epsilon, truncates candidate lists, and — past a hard limit —
//! finishes in panic-completion mode so the caller still gets a valid
//! best-so-far design plus a [`Degradation`] report.

use crate::error::InsertionError;
use crate::faultinject::FaultInjector;
use crate::governor::{
    keep_best, solution_footprint, truncate_spread, Admission, Budget, CancelToken, Clock,
    Degradation, Governor, GuardedFallback,
};
use crate::metrics::DpStats;
use crate::ops::{
    buffer_extend_stat_into, driver_rat_stat, materialize_wire_stat, merge_pair_stat_into,
    wire_defer_stat_in_place, wire_defer_stat_into, wire_extend_stat_in_place,
    wire_extend_stat_into,
};
use crate::prune::{prune_solutions_keyed, MergeStrategy, PruneScratch, PruningRule, TwoParam};
use crate::solution::StatSolution;
use std::sync::Arc;
use std::time::{Duration, Instant};
use varbuf_rctree::tree::NodeKind;
use varbuf_rctree::wire::WireSegment;
use varbuf_rctree::{NodeId, RoutingTree};
use varbuf_stats::CanonicalForm;
use varbuf_variation::{BufferTypeId, ProcessModel, VariationMode};

/// How the winning solution is chosen among the root's survivors.
///
/// Pruning keeps the rule's Pareto front; this criterion picks the single
/// design reported to the caller. The paper's figure of merit is the RAT
/// at 95% timing yield (Section 5.3), so the default maximizes the 5th
/// percentile `μ − z₀.₉₅·σ`, trading a little mean for less variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RootSelection {
    /// Maximize the mean RAT.
    MeanRat,
    /// Maximize the RAT achieved with the given timing yield (e.g. `0.95`
    /// maximizes the 5th-percentile RAT).
    YieldRat(f64),
}

impl RootSelection {
    pub(crate) fn key(self, rat: &CanonicalForm) -> f64 {
        match self {
            RootSelection::MeanRat => rat.mean(),
            RootSelection::YieldRat(y) => {
                if rat.std_dev() > 0.0 {
                    rat.percentile(1.0 - y)
                } else {
                    rat.mean()
                }
            }
        }
    }
}

/// Engine limits and knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpOptions {
    /// Abort with [`InsertionError::CapacityExceeded`] when a node would
    /// hold more candidates than this (the paper's 2 GB memory cap, in
    /// solution-count form). Governed runs degrade instead of aborting —
    /// see [`optimize_governed`].
    pub max_solutions_per_node: usize,
    /// Abort with [`InsertionError::TimeLimitExceeded`] past this
    /// wall-clock budget (the paper's 4-hour cutoff).
    pub time_limit: Duration,
    /// Drop canonical-form terms below this fraction of the form's σ
    /// after each operation (`0.0` keeps everything).
    pub sparsify_epsilon: f64,
    /// Winner criterion at the root.
    pub root_selection: RootSelection,
    /// Worker threads for intra-tree parallelism (`1` = sequential).
    /// Independent sibling subtrees are solved concurrently and joined
    /// at branch nodes in fixed child order; results are bit-identical
    /// to the sequential engine (see `pool` module docs for the
    /// determinism contract and when the engine falls back to one
    /// thread).
    pub jobs: usize,
    /// Bound-guided predictive pruning: run the deterministic engine at
    /// the process mean and a conservative corner before the statistical
    /// DP, and retire candidates whose optimistic `±bound_k·σ` envelope
    /// provably cannot reach the root winner's selection key. Pure
    /// speedup — the result is bit-identical either way (asserted by the
    /// bounds oracle). Automatically disarmed under a governed run with
    /// finite budgets, where shrinking lists would shift *when*
    /// degradation triggers.
    pub use_bounds: bool,
    /// Envelope half-width, in σ, for the bound test. The retirement
    /// chain is sound on the means alone (the anchor is a reachable
    /// candidate's key, the per-node charges lower-bound every upstream
    /// completion), so this is a pure guard band: larger keeps more
    /// candidates, the result never depends on it.
    pub bound_k: f64,
    /// Li–Shi candidate pruning (arXiv:0710.4691): skip generating a
    /// buffered candidate whose keys are already dominated by a list
    /// entry — the keyed dominance sweep would remove it in the same
    /// pass, so the surviving list (and every output bit) is unchanged;
    /// only the generated/pruned counters differ. Armed only for rules
    /// whose keys are plain means ([`PruningRule::mean_keys`], where the
    /// skipped candidate's keys are computable without building its
    /// forms) and, like bounding, disarmed under a governed run with
    /// finite budgets (list sizes feed the degradation schedule).
    /// `--no-lishi` on the CLI.
    pub use_lishi: bool,
    /// Lazy list-level wire propagation: the wire lift updates only the
    /// *means* per segment (two scalar adds, bit-identical to the eager
    /// kernel's nominal path) and defers the O(terms) coupling
    /// `rat ← rat − r·load` by accumulating the segment resistances in
    /// [`StatSolution::wire_pending`]; the whole deferred chain is paid
    /// off with one term update at the points that read RAT
    /// sensitivities (merges, buffering, σ envelopes, winner selection).
    /// Mean-keyed pruning runs pre-materialization — dominance order is
    /// preserved under the shared transform (see DESIGN.md) — while
    /// non-mean-keyed rules materialize before every prune, which
    /// degenerates to the eager kernel bit for bit. Equal-objective for
    /// mean-keyed rules on subdivided chains (root RAT within 1e-9
    /// relative; the lazy-wire oracle pins this plus solution-count
    /// identity), byte-identical everywhere chains have unit length.
    /// Disarmed under a degradable governor (pending-aware footprints
    /// would shift *when* degradation triggers) and under fault
    /// injection. `--no-lazy-wire` on the CLI.
    pub use_lazy_wire: bool,
    /// Honor `jobs` literally even when it exceeds the host's available
    /// parallelism. By default a request for more workers than the
    /// machine has hardware threads is clamped (oversubscribed pools
    /// only add contention — on a single-thread host `jobs = 4` measured
    /// ~0.8× of sequential), but benchmarks probing the pool machinery
    /// itself can force the fan-out with `--jobs-force`.
    pub jobs_force: bool,
    /// Combinatorial-blowup guard for governed runs: when the requested
    /// primary rule merges by cross product (4P), the budget puts no
    /// ceiling on solutions or memory, and the tree has more sinks than
    /// this threshold, the run starts directly under the cascade's first
    /// linear-merge rule instead of discovering the `n·m` blowup nodes
    /// deep into the run. Recorded as [`Degradation::guard`] — a typed
    /// planning note, not a degradation event, since the substituted run
    /// completes at full fidelity. `0` disables the guard. Strict runs
    /// are never guarded (they own their rule and abort by contract),
    /// and neither are runs whose budget constrains solutions or memory
    /// (the governor's ladder handles those, with full event reporting).
    pub guard_4p_sinks: usize,
}

impl DpOptions {
    /// The worker count the engine will actually use: `jobs` clamped to
    /// the host's available parallelism unless [`jobs_force`]
    /// (`Self::jobs_force`) is set. Recorded as
    /// `DpStats::jobs_effective` alongside the raw request.
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        let jobs = self.jobs.max(1);
        if self.jobs_force {
            jobs
        } else {
            jobs.min(crate::pool::default_jobs())
        }
    }
}

impl Default for DpOptions {
    fn default() -> Self {
        Self {
            max_solutions_per_node: 2_000_000,
            time_limit: Duration::from_secs(4 * 3600),
            sparsify_epsilon: 0.0,
            root_selection: RootSelection::YieldRat(0.95),
            jobs: 1,
            use_bounds: true,
            bound_k: 1.0,
            use_lishi: true,
            use_lazy_wire: true,
            jobs_force: false,
            guard_4p_sinks: 12,
        }
    }
}

/// The wire-width choice set for simultaneous buffer insertion and wire
/// sizing (the extension of \[8\]). Width `w` scales an edge's
/// resistance by `1/w` and capacitance by `w`.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSizing {
    widths: Vec<f64>,
}

impl WireSizing {
    /// Buffer insertion only: every wire at default width.
    #[must_use]
    pub fn single() -> Self {
        Self { widths: vec![1.0] }
    }

    /// A custom width table; index 0 should be the default (`1.0`) so
    /// unsized evaluation remains meaningful.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, exceeds 256 entries, or contains a
    /// non-positive or non-finite width.
    #[must_use]
    pub fn new(widths: Vec<f64>) -> Self {
        assert!(
            !widths.is_empty() && widths.len() <= 256,
            "width table must have 1..=256 entries"
        );
        assert!(
            widths.iter().all(|&w| w.is_finite() && w > 0.0),
            "wire widths must be positive and finite"
        );
        Self { widths }
    }

    /// A typical three-width table: default, 2× and 4× wide.
    #[must_use]
    pub fn default_three() -> Self {
        Self::new(vec![1.0, 2.0, 4.0])
    }

    /// The width table.
    #[must_use]
    pub fn widths(&self) -> &[f64] {
        &self.widths
    }

    /// Converts a result's `(node, width index)` choices into the
    /// [`EdgeWidths`] map the evaluators consume.
    ///
    /// # Panics
    ///
    /// Panics if a width index is out of the table's range.
    ///
    /// [`EdgeWidths`]: varbuf_rctree::elmore::EdgeWidths
    #[must_use]
    pub fn edge_widths(&self, choices: &[(NodeId, u8)]) -> varbuf_rctree::elmore::EdgeWidths {
        let mut out = varbuf_rctree::elmore::EdgeWidths::new();
        for &(node, wi) in choices {
            out.set(node, self.widths[wi as usize]);
        }
        out
    }
}

impl Default for WireSizing {
    fn default() -> Self {
        Self::single()
    }
}

/// Result of a statistical optimization.
#[derive(Debug, Clone)]
pub struct StatResult {
    /// The canonical form of the RAT at the source (driver delay
    /// included), ps.
    pub root_rat: CanonicalForm,
    /// The winning buffer placement.
    pub assignment: Vec<(NodeId, BufferTypeId)>,
    /// The winning non-default wire widths as `(edge's downstream node,
    /// width-table index)` — empty unless wire sizing was enabled.
    pub wire_widths: Vec<(NodeId, u8)>,
    /// Run instrumentation.
    pub stats: DpStats,
}

/// A governed run's outcome: the (possibly degraded) result plus the
/// structured report of every budget-driven relaxation.
#[derive(Debug, Clone)]
pub struct GovernedResult {
    /// The winning design — valid even when the run degraded.
    pub result: StatResult,
    /// What was relaxed to get there; `degraded() == false` means the
    /// run finished at full fidelity.
    pub degradation: Degradation,
}

/// Runs variation-aware buffer insertion with an explicit pruning rule.
///
/// `mode` selects which variation categories the solution forms carry
/// (D2D = random + inter-die, WID = + spatial).
///
/// # Errors
///
/// * [`InsertionError::InvalidTree`] / [`InsertionError::NoSinks`] for bad
///   inputs;
/// * [`InsertionError::CapacityExceeded`] /
///   [`InsertionError::TimeLimitExceeded`] when a quadratic rule (4P)
///   blows past the configured caps.
///
/// ```
/// use varbuf_core::dp::{optimize_with_rule, DpOptions};
/// use varbuf_core::prune::TwoParam;
/// use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
/// use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};
///
/// # fn main() -> Result<(), varbuf_core::InsertionError> {
/// let tree = generate_benchmark(&BenchmarkSpec::random("demo", 24, 5));
/// let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
/// let result = optimize_with_rule(
///     &tree, &model, VariationMode::WithinDie, &TwoParam::default(), &DpOptions::default())?;
/// assert!(result.root_rat.std_dev() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn optimize_with_rule(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    rule: &dyn PruningRule,
    options: &DpOptions,
) -> Result<StatResult, InsertionError> {
    optimize_with_sizing(tree, model, mode, rule, &WireSizing::single(), options)
}

/// [`optimize_with_rule`] extended with simultaneous wire sizing: every
/// edge additionally chooses a width from `sizing`'s table, recorded in
/// [`StatResult::wire_widths`].
///
/// # Errors
///
/// Same as [`optimize_with_rule`]; the enlarged decision space multiplies
/// candidate counts by at most the width-table size per edge.
pub fn optimize_with_sizing(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    rule: &dyn PruningRule,
    sizing: &WireSizing,
    options: &DpOptions,
) -> Result<StatResult, InsertionError> {
    let mut governor = Governor::strict(
        Budget::strict(options.max_solutions_per_node, options.time_limit),
        options.sparsify_epsilon,
    );
    run_engine(
        tree,
        model,
        mode,
        Some(rule),
        sizing,
        options,
        &mut governor,
        None,
    )
}

/// The degradation cascade started from `primary`: the primary rule,
/// then (unless the primary is already a 2P variant) a thresholded 2P
/// rule, then plain mean dominance — each strictly cheaper than the
/// last.
#[must_use]
pub fn fallback_cascade(primary: Arc<dyn PruningRule>) -> Vec<Arc<dyn PruningRule>> {
    let primary_is_two_param = primary.name() == "2P";
    let mut cascade = vec![primary];
    if !primary_is_two_param {
        cascade.push(Arc::new(TwoParam::new(0.9, 0.9)) as Arc<dyn PruningRule>);
    }
    cascade.push(Arc::new(TwoParam::default()) as Arc<dyn PruningRule>);
    cascade
}

/// The pre-run combinatorial-blowup guard (see
/// [`DpOptions::guard_4p_sinks`]): rewrites `cascade` so a governed run
/// that would start under a cross-product rule on a known-intractable
/// tree starts under the first linear-merge fallback instead. Returns
/// the [`GuardedFallback`] note to attach to the run's report, or
/// `None` when the guard does not apply. Deterministic in the inputs,
/// so the incremental and cold paths substitute identically.
pub(crate) fn guard_cascade(
    tree: &RoutingTree,
    cascade: &mut Vec<Arc<dyn PruningRule>>,
    options: &DpOptions,
    budget: &Budget,
) -> Option<GuardedFallback> {
    let threshold = options.guard_4p_sinks;
    if threshold == 0 || cascade.is_empty() {
        return None;
    }
    if cascade[0].strategy() != MergeStrategy::CrossProduct {
        return None;
    }
    let sinks = tree.sink_count();
    if sinks <= threshold {
        return None;
    }
    // A finite solution or memory ceiling means the governor's own
    // ladder will catch the blowup (with full event reporting, which
    // the degradation suite pins down) — only the unconstrained case
    // has nothing between the caller and an `n·m` explosion.
    let unconstrained = budget.soft_solutions == usize::MAX
        && budget.hard_solutions == usize::MAX
        && budget.soft_mem_bytes == usize::MAX
        && budget.hard_mem_bytes == usize::MAX;
    if !unconstrained {
        return None;
    }
    let from = cascade[0].name().to_owned();
    while cascade.len() > 1 && cascade[0].strategy() == MergeStrategy::CrossProduct {
        cascade.remove(0);
    }
    if cascade[0].strategy() == MergeStrategy::CrossProduct {
        cascade[0] = Arc::new(TwoParam::default());
    }
    Some(GuardedFallback {
        from,
        to: cascade[0].name().to_owned(),
        sinks,
        threshold,
    })
}

/// Runs the DP under a degrading [`Governor`]: budget breaches relax the
/// run (rule fallback, epsilon tightening, list truncation, panic
/// completion) instead of aborting it, so even a pathological 4P run
/// returns a valid buffered design plus a [`Degradation`] report.
///
/// # Errors
///
/// Only [`InsertionError::InvalidTree`], [`InsertionError::NoSinks`], or
/// [`InsertionError::PoisonedSolutions`] (every candidate at some node
/// invalid — nothing valid to recover to). Resource pressure never errors.
pub fn optimize_governed(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    primary: Arc<dyn PruningRule>,
    options: &DpOptions,
    budget: &Budget,
) -> Result<GovernedResult, InsertionError> {
    optimize_governed_detailed(
        tree,
        model,
        mode,
        fallback_cascade(primary),
        &WireSizing::single(),
        options,
        budget,
        RunControls::default(),
    )
}

/// Per-run execution controls orthogonal to the optimization problem
/// itself: a replacement clock (fault injection skews it), a fault
/// injector mutating candidate lists, and the cooperative-cancellation
/// pair the service layer arms for every request — an external
/// [`CancelToken`] plus an optional watchdog deadline measured on the
/// governor's clock.
///
/// `RunControls::default()` is the plain batch run: real clock, no
/// faults, no cancellation.
#[derive(Default)]
pub struct RunControls<'a> {
    /// Replacement wall-clock source (`None` = real monotonic clock).
    pub clock: Option<Box<dyn Clock>>,
    /// Deterministic fault injector mutating candidate lists.
    pub faults: Option<&'a mut FaultInjector>,
    /// External cancellation token, polled at every time check.
    pub cancel: Option<CancelToken>,
    /// Watchdog deadline on the governor's clock; overrun cancels the
    /// run into best-so-far completion.
    pub watchdog: Option<Duration>,
}

impl RunControls<'_> {
    fn has_cancellation(&self) -> bool {
        self.cancel.is_some() || self.watchdog.is_some()
    }
}

/// [`optimize_governed`] with every knob exposed: an explicit fallback
/// cascade, wire sizing, and the [`RunControls`] for clock replacement,
/// fault injection, and cooperative cancellation.
///
/// # Errors
///
/// Same as [`optimize_governed`].
///
/// # Panics
///
/// Panics if `cascade` is empty.
#[allow(clippy::too_many_arguments)]
pub fn optimize_governed_detailed(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    cascade: Vec<Arc<dyn PruningRule>>,
    sizing: &WireSizing,
    options: &DpOptions,
    budget: &Budget,
    controls: RunControls<'_>,
) -> Result<GovernedResult, InsertionError> {
    let mut cascade = cascade;
    let guard = guard_cascade(tree, &mut cascade, options, budget);
    let mut governor = Governor::governed(*budget, cascade, options.sparsify_epsilon);
    if controls.has_cancellation() {
        governor = governor.with_cancellation(
            controls.cancel.clone().unwrap_or_default(),
            controls.watchdog,
        );
    }
    if let Some(c) = controls.clock {
        governor = governor.with_clock(c);
    }
    let mut result = run_engine(
        tree,
        model,
        mode,
        None,
        sizing,
        options,
        &mut governor,
        controls.faults,
    )?;
    let mut degradation = governor.into_report();
    degradation.guard = guard;
    result.stats.rule_fallbacks = degradation.rule_fallbacks();
    result.stats.epsilon_tightenings = degradation.epsilon_tightenings();
    result.stats.list_truncations = degradation.truncations();
    result.stats.poisoned_dropped = degradation.poisoned_dropped();
    result.stats.panic_completion = degradation.panic_completion;
    Ok(GovernedResult {
        result,
        degradation,
    })
}

/// [`optimize_governed_detailed`] with an epoch-scoped solution cache:
/// nodes whose content signature still matches a cached entry replay
/// their pruned list (a clone, re-admitted through the governor so
/// budget accounting stays coherent) and their subtrees are never
/// visited; only dirty nodes — the root path of the session's edits —
/// run the DP. Fresh lists are stored back under the node's signature.
///
/// Two soundness rules keep cached replay byte-identical to a cold run:
///
/// * the incremental path never arms the deterministic bound pass —
///   cached lists are the bounds-off fixpoint, and the bounds oracle
///   guarantees the *final* result matches a bounds-on cold run;
/// * the cache only feeds (and is only fed by) full-fidelity runs. A
///   constraining budget or a fault injector falls back to the plain
///   governed engine without touching the cache, and a run that
///   degraded, was cancelled, or errored flushes the cache — its lists
///   may be truncated best-so-far artifacts.
///
/// `sigs` must be current for `tree` (see [`NodeSigs::update_path`]);
/// `run_sig` is the [`crate::cache::run_signature`] of the run-wide
/// inputs. `stats.cache_hits` counts the nodes covered by replayed
/// lists (whole clean subtrees); `stats.cache_misses` the recomputed
/// dirty nodes.
///
/// # Errors
///
/// Same as [`optimize_governed`].
///
/// # Panics
///
/// Panics if `cascade` is empty.
#[allow(clippy::too_many_arguments)]
pub fn optimize_incremental(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    cascade: Vec<Arc<dyn PruningRule>>,
    sizing: &WireSizing,
    options: &DpOptions,
    budget: &Budget,
    controls: RunControls<'_>,
    sigs: &crate::cache::NodeSigs,
    cache: &mut crate::cache::SolutionCache,
    run_sig: u64,
) -> Result<GovernedResult, InsertionError> {
    // Degradable or fault-injected runs take the cold path: their lists
    // are not the unconstrained fixpoint, so they must neither consume
    // nor produce cache entries.
    if controls.faults.is_some() || budget.constrains_run() {
        return optimize_governed_detailed(
            tree, model, mode, cascade, sizing, options, budget, controls,
        );
    }
    tree.validate()?;
    if tree.sink_count() == 0 {
        return Err(InsertionError::NoSinks);
    }
    if sigs.len() != tree.len() {
        return Err(InsertionError::InvalidTree(
            varbuf_rctree::TreeError::Unreachable(tree.root()),
        ));
    }

    // The same deterministic guard substitution the cold path applies,
    // so replayed and cold lists stay byte-identical.
    let mut cascade = cascade;
    let guard = guard_cascade(tree, &mut cascade, options, budget);
    let mut governor = Governor::governed(*budget, cascade, options.sparsify_epsilon);
    if controls.has_cancellation() {
        governor = governor.with_cancellation(
            controls.cancel.clone().unwrap_or_default(),
            controls.watchdog,
        );
    }
    if let Some(c) = controls.clock {
        governor = governor.with_clock(c);
    }

    // Bounds stay off (see the soundness rules above); Li–Shi is list-
    // neutral and arms exactly as it would on this run's cold path, and
    // so does lazy wire propagation (this path already excludes faults
    // and constraining budgets — the cold path's disarm conditions).
    let mut ctx = RunCtx::new(tree, model, mode, sizing);
    ctx.lishi = options.use_lishi;
    ctx.lazy = options.use_lazy_wire;

    cache.begin_run(run_sig, tree.len());

    let mut stats = DpStats::default();
    let mut lists: Vec<Vec<StatSolution>> = vec![Vec::new(); tree.len()];
    let mut pool = SolPool::default();
    let mut sup = GovSupervisor {
        static_rule: None,
        governor: &mut governor,
    };

    // Explicit enter/exit walk from the root. A signature hit at entry
    // replays the cached list and prunes the whole subtree from the
    // walk; a miss defers the node behind its children (postorder) and
    // recomputes it. Only the clean-top frontier is ever cloned, so the
    // replay cost is proportional to the dirty path, not the tree.
    enum Step {
        Enter(NodeId),
        Exit(NodeId),
    }
    let mut stack = vec![Step::Enter(tree.root())];
    let walk = (|| -> Result<(), EngineInterrupt> {
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(id) => {
                    let sig = sigs.get(id);
                    if let Some(cached) = cache.lookup(id, sig) {
                        sup.check_time()?;
                        let mut list = pool.take(cached.len());
                        list.extend(cached.iter().cloned());
                        admit_list(&mut sup, id, &mut list, &mut pool, &mut stats)?;
                        sup.note_memory(&list, 0);
                        stats.max_solutions_per_node = stats.max_solutions_per_node.max(list.len());
                        lists[id.index()] = list;
                    } else {
                        stack.push(Step::Exit(id));
                        for &c in tree.node(id).children.iter().rev() {
                            stack.push(Step::Enter(c));
                        }
                    }
                }
                Step::Exit(id) => {
                    let children: Vec<Vec<StatSolution>> = tree
                        .node(id)
                        .children
                        .iter()
                        .map(|c| std::mem::take(&mut lists[c.index()]))
                        .collect();
                    let sols =
                        process_node(&ctx, &mut sup, id, children, None, &mut pool, &mut stats)?;
                    cache.store(id, sigs.get(id), &sols);
                    lists[id.index()] = sols;
                }
            }
        }
        Ok(())
    })();
    if let Err(interrupt) = walk {
        cache.clear();
        return Err(interrupt.into_error());
    }

    stats.cache_misses = stats.nodes_processed;
    stats.cache_hits = tree.len() - stats.nodes_processed;
    stats.runtime = governor.elapsed();
    stats.jobs_requested = options.jobs.max(1);
    stats.jobs_effective = 1;
    let mut result = select_winner(tree, options, &mut lists[tree.root().index()], stats);
    let mut degradation = governor.into_report();
    degradation.guard = guard;
    result.stats.rule_fallbacks = degradation.rule_fallbacks();
    result.stats.epsilon_tightenings = degradation.epsilon_tightenings();
    result.stats.list_truncations = degradation.truncations();
    result.stats.poisoned_dropped = degradation.poisoned_dropped();
    result.stats.panic_completion = degradation.panic_completion;
    if degradation.degraded() {
        // A cancelled/degraded run may have stored best-so-far lists;
        // they are not the fixpoint, so nothing of this run survives.
        cache.clear();
    }
    Ok(GovernedResult {
        result,
        degradation,
    })
}

/// The rule in force right now: the caller's fixed rule on the legacy
/// path, or the governor's current cascade entry on the governed path.
pub(crate) enum RuleHandle<'a> {
    /// A caller-owned rule borrowed for the whole run.
    Static(&'a dyn PruningRule),
    /// A shared handle to the governor's active cascade entry.
    Shared(Arc<dyn PruningRule>),
}

impl RuleHandle<'_> {
    pub(crate) fn get(&self) -> &dyn PruningRule {
        match self {
            RuleHandle::Static(r) => *r,
            RuleHandle::Shared(rc) => rc.as_ref(),
        }
    }
}

impl Clone for RuleHandle<'_> {
    fn clone(&self) -> Self {
        match self {
            RuleHandle::Static(r) => RuleHandle::Static(*r),
            RuleHandle::Shared(a) => RuleHandle::Shared(Arc::clone(a)),
        }
    }
}

/// Control-flow signal inside the engine: a typed error to surface to
/// the caller, or *pressure* — the speculative parallel phase detected
/// that the governor would have to degrade, so the whole run must be
/// redone sequentially under the real governor (see [`crate::pool`]).
pub(crate) enum EngineInterrupt {
    /// A hard failure the caller sees as-is.
    Error(InsertionError),
    /// Raised only by the parallel probe; never escapes `run_engine`.
    Pressure,
}

impl From<InsertionError> for EngineInterrupt {
    fn from(e: InsertionError) -> Self {
        EngineInterrupt::Error(e)
    }
}

impl EngineInterrupt {
    pub(crate) fn into_error(self) -> InsertionError {
        match self {
            EngineInterrupt::Error(e) => e,
            EngineInterrupt::Pressure => {
                unreachable!("pressure is raised only by the parallel probe")
            }
        }
    }
}

/// The DP's resource-policy interface. The sequential engine wires it
/// straight to the [`Governor`]; the parallel engine substitutes a
/// frozen probe that never mutates the caller's governor and raises
/// [`EngineInterrupt::Pressure`] the moment a degradation *would*
/// happen ([`crate::pool`]).
///
/// `'r` is the lifetime of a caller-supplied static rule, deliberately
/// independent of `&self` so a fetched [`RuleHandle`] does not freeze
/// the supervisor against later `&mut` calls.
pub(crate) trait Supervisor<'r> {
    /// The active pruning rule. Cheap; fetch again after any call that
    /// may have advanced the fallback cascade.
    fn rule(&self) -> RuleHandle<'r>;
    /// Current epsilon-sparsification level.
    fn epsilon(&self) -> f64;
    /// Whether integrity screening (sanitize + re-admission) applies.
    fn is_governed(&self) -> bool;
    /// Whether panic completion is engaged.
    fn panicking(&self) -> bool;
    /// Wall-clock policy check.
    fn check_time(&mut self) -> Result<(), EngineInterrupt>;
    /// Offers a candidate count (materialized or about to be).
    fn admit(&mut self, node: NodeId, solutions: usize) -> Result<Admission, EngineInterrupt>;
    /// Drops non-finite candidates per the governor's integrity policy.
    fn sanitize(
        &mut self,
        node: NodeId,
        sols: &mut Vec<StatSolution>,
    ) -> Result<(), EngineInterrupt>;
    /// Live-memory accounting after a list is stored/freed.
    fn note_memory(&mut self, stored: &[StatSolution], freed: usize);
}

/// The sequential supervisor: a thin veneer over the caller's governor,
/// preserving the exact call sequence the degradation tests pin down.
pub(crate) struct GovSupervisor<'r, 'g> {
    pub(crate) static_rule: Option<&'r dyn PruningRule>,
    pub(crate) governor: &'g mut Governor,
}

impl<'r> Supervisor<'r> for GovSupervisor<'r, '_> {
    fn rule(&self) -> RuleHandle<'r> {
        match self.static_rule {
            Some(r) => RuleHandle::Static(r),
            None => RuleHandle::Shared(self.governor.active_rule()),
        }
    }

    fn epsilon(&self) -> f64 {
        self.governor.epsilon()
    }

    fn is_governed(&self) -> bool {
        self.governor.is_governed()
    }

    fn panicking(&self) -> bool {
        self.governor.panicking()
    }

    fn check_time(&mut self) -> Result<(), EngineInterrupt> {
        self.governor.check_time().map_err(Into::into)
    }

    fn admit(&mut self, node: NodeId, solutions: usize) -> Result<Admission, EngineInterrupt> {
        self.governor.admit(node, solutions).map_err(Into::into)
    }

    fn sanitize(
        &mut self,
        node: NodeId,
        sols: &mut Vec<StatSolution>,
    ) -> Result<(), EngineInterrupt> {
        self.governor.sanitize(node, sols).map_err(Into::into)
    }

    fn note_memory(&mut self, stored: &[StatSolution], freed: usize) {
        self.governor.note_memory(stored, freed);
    }
}

/// Immutable per-run context: the run's inputs plus every node-indexed
/// table the DP would otherwise recompute at each visit. Built once in
/// `run_engine` *before* the speculative parallel phase, then shared
/// read-only by the sequential loop and every pool worker:
///
/// * **device forms** — the `(C_b, T_b)` canonical-form pair of every
///   `(candidate node, buffer type)` combination, computed by one
///   [`ProcessModel::precompute_device_forms`] sweep. This evaluates the
///   spatial-correlation weights once per location instead of `2·B`
///   times per node visit, and removes the per-call term-vector
///   allocations from the buffering step entirely;
/// * **wire segments** — the width-scaled RC segment of every
///   `(edge, width index)` pair; segments depend on nothing else, so the
///   lift step becomes a pure table lookup.
///
/// Both tables hold bitwise the values the per-call paths produce
/// (pinned by `precomputed_device_forms_match_per_call_path_bitwise` in
/// `varbuf-variation` and by this module's golden regressions), so
/// cached and uncached runs are indistinguishable.
pub(crate) struct RunCtx<'a> {
    pub(crate) tree: &'a RoutingTree,
    pub(crate) model: &'a ProcessModel,
    pub(crate) sizing: &'a WireSizing,
    /// `node.index()` → row of `device_forms` (`u32::MAX` for nodes that
    /// are not buffer candidates).
    device_rows: Vec<u32>,
    /// Per candidate node: `(cap_form, delay_form)` indexed by buffer
    /// type id. Shared through the model's per-net memo, so repeat runs
    /// on one net (governed retries, yield re-evaluation) skip the
    /// spatial taper scan and hand out the *same* table.
    device_forms: std::sync::Arc<varbuf_variation::DeviceFormTable>,
    /// `node.index() * widths + wi` → the edge segment above `node`
    /// scaled to width `wi`.
    segments: Vec<WireSegment>,
    /// Deterministic upstream bounds for predictive pruning; `None` when
    /// bounding is disabled or disarmed for this run. Shared read-only by
    /// the parallel workers, so every engine path applies the same
    /// filter.
    pub(crate) bounds: Option<std::sync::Arc<crate::bounds::DetBounds>>,
    /// Whether the Li–Shi generation skip is armed for this run (see
    /// [`DpOptions::use_lishi`] for the arming conditions). Shared by the
    /// parallel workers and the sequential engine.
    pub(crate) lishi: bool,
    /// Whether lazy wire propagation is armed for this run (see
    /// [`DpOptions::use_lazy_wire`] for the arming conditions). Shared by
    /// the parallel workers and the sequential engine.
    pub(crate) lazy: bool,
    /// Per-node bound-pass probe aggregates, packed as
    /// `invocations << 32 | retired` over the node's whole subtree.
    /// Sized `tree.len()` only when bounds arm; the aggregates drive the
    /// auto-disarm gate in `process_node` (see `BOUND_PROBE_ANCHOR`).
    /// A node's value is a pure function of its subtree, and children
    /// complete before their parent in both engines, so the disarm
    /// decision is identical sequentially and in parallel — and the
    /// stores are idempotent, so a pressure-abort rerun is safe.
    bound_probe: Vec<std::sync::atomic::AtomicU64>,
}

/// Subtree probe invocations (lists of at least [`BOUND_PROBE_MIN`]
/// candidates offered to `bound_filter`) after which, if *nothing* was
/// retired anywhere below, the bound pass disarms for the rest of the
/// node's ancestors: the anchor is evidently too loose on this net to
/// ever fire, and the per-candidate envelope scans are pure overhead.
const BOUND_PROBE_ANCHOR: u64 = 48;

/// Minimum list length for a `bound_filter` call to count as a probe
/// invocation — tiny lists say nothing about whether the bound can fire.
const BOUND_PROBE_MIN: usize = 4;

impl<'a> RunCtx<'a> {
    pub(crate) fn new(
        tree: &'a RoutingTree,
        model: &'a ProcessModel,
        mode: VariationMode,
        sizing: &'a WireSizing,
    ) -> Self {
        let mut device_rows = vec![u32::MAX; tree.len()];
        let mut locations = Vec::new();
        for (i, row) in device_rows.iter_mut().enumerate() {
            let id = NodeId(u32::try_from(i).expect("node count fits u32"));
            let node = tree.node(id);
            if node.is_candidate {
                *row = u32::try_from(locations.len()).expect("node count fits u32");
                locations.push((id, node.location));
            }
        }
        let device_forms = model.device_forms_cached(&locations, mode);
        let wire = tree.wire();
        let widths = sizing.widths();
        let mut segments = Vec::with_capacity(tree.len() * widths.len());
        for i in 0..tree.len() {
            let length = tree.node(NodeId(i as u32)).edge_length;
            for &w in widths {
                let mut seg = wire.segment(length);
                seg.resistance /= w;
                seg.capacitance *= w;
                segments.push(seg);
            }
        }
        Self {
            tree,
            model,
            sizing,
            device_rows,
            device_forms,
            segments,
            bounds: None,
            lishi: false,
            lazy: false,
            bound_probe: Vec::new(),
        }
    }

    /// Sizes the bound-probe table for an armed bound pass. Must be
    /// called before the first `process_node` when `bounds` is set.
    pub(crate) fn arm_bound_probe(&mut self) {
        self.bound_probe = std::iter::repeat_with(|| std::sync::atomic::AtomicU64::new(0))
            .take(self.tree.len())
            .collect();
    }

    /// Sum of the children's probe aggregates as `(invocations, retired)`.
    /// An unsized table (bounds armed without [`Self::arm_bound_probe`],
    /// e.g. driving `process_node` directly) reads as "no evidence yet",
    /// which keeps the filter armed — the pre-gate behavior.
    fn probe_children(&self, id: NodeId) -> (u64, u64) {
        if self.bound_probe.is_empty() {
            return (0, 0);
        }
        let mut inv = 0u64;
        let mut ret = 0u64;
        for &c in &self.tree.node(id).children {
            let packed = self.bound_probe[c.index()].load(std::sync::atomic::Ordering::Acquire);
            inv = inv.saturating_add(packed >> 32);
            ret = ret.saturating_add(packed & 0xffff_ffff);
        }
        (inv.min(u64::from(u32::MAX)), ret.min(u64::from(u32::MAX)))
    }

    /// Publishes a node's subtree aggregate (clamped into the packing).
    /// No-op when the table is unsized (see [`Self::probe_children`]).
    fn store_probe(&self, id: NodeId, inv: u64, ret: u64) {
        if self.bound_probe.is_empty() {
            return;
        }
        let packed = (inv.min(u64::from(u32::MAX)) << 32) | ret.min(u64::from(u32::MAX));
        self.bound_probe[id.index()].store(packed, std::sync::atomic::Ordering::Release);
    }

    /// The pre-scaled RC segment of the edge above `node` at width `wi`.
    pub(crate) fn segment(&self, node: NodeId, wi: usize) -> &WireSegment {
        &self.segments[node.index() * self.sizing.widths().len() + wi]
    }

    /// The cached `(cap_form, delay_form)` pairs of a candidate node,
    /// indexed by buffer-type id.
    pub(crate) fn device_forms(&self, node: NodeId) -> &[(CanonicalForm, CanonicalForm)] {
        &self.device_forms[self.device_rows[node.index()] as usize]
    }
}

/// Recycles the engine's transient allocations: candidate-list `Vec`s,
/// the solution carcasses inside them (term vectors keep their
/// capacity), the batched-key prune scratch, the sorted-merge key
/// buffers, and the dominance-flag scratch of the quadratic prune. One
/// pool per worker — never shared.
#[derive(Default)]
pub(crate) struct SolPool {
    lists: Vec<Vec<StatSolution>>,
    sols: Vec<StatSolution>,
    pub(crate) scratch: PruneScratch,
    merge_keys: (Vec<f64>, Vec<f64>),
    flags: Vec<bool>,
}

impl SolPool {
    /// Spare list allocations to hold; beyond this, freed lists really
    /// are freed so the pool cannot turn into a leak.
    const KEEP: usize = 8;
    /// Spare solution carcasses to hold. A recycled carcass keeps its
    /// two term buffers and — until its next reuse overwrites it — a
    /// stale trace `Arc`; both are bounded by this constant, so the
    /// pool pins at most a few hundred retired traces while turning the
    /// steady-state node visit allocation-free.
    const KEEP_SOLS: usize = 256;

    fn take(&mut self, capacity: usize) -> Vec<StatSolution> {
        match self.lists.pop() {
            Some(mut v) => {
                v.reserve(capacity);
                v
            }
            None => Vec::with_capacity(capacity),
        }
    }

    pub(crate) fn put(&mut self, mut v: Vec<StatSolution>) {
        if self.sols.len() < Self::KEEP_SOLS {
            let room = Self::KEEP_SOLS - self.sols.len();
            let keep = v.len().min(room);
            self.sols.extend(v.drain(..keep));
        }
        v.clear();
        if self.lists.len() < Self::KEEP && v.capacity() > 0 {
            self.lists.push(v);
        }
    }

    /// A recycled solution carcass (or a fresh empty one): the caller
    /// must overwrite load, RAT, trace *and* `wire_pending` before the
    /// solution is read — every `_into` kernel writes all four, so a
    /// carcass retiring with deferred wire coupling still pending cannot
    /// leak it into its next life.
    fn take_sol(&mut self) -> StatSolution {
        self.sols.pop().unwrap_or_else(|| {
            StatSolution::new(CanonicalForm::constant(0.0), CanonicalForm::constant(0.0))
        })
    }

    /// Reclaims the carcasses the last keyed prune eliminated (up to
    /// [`Self::KEEP_SOLS`]; the surplus is freed). Called after every
    /// prune so dominated solutions feed the next node's `take_sol`
    /// instead of round-tripping through the allocator.
    fn reclaim_pruned(&mut self) {
        let room = Self::KEEP_SOLS.saturating_sub(self.sols.len());
        self.sols.extend(self.scratch.drain_retired().take(room));
    }
}

/// The shared DP engine behind both the strict and the governed entry
/// points. Every resource decision is delegated to `governor`; when
/// [`DpOptions::jobs`] > 1 and the run is eligible, a speculative
/// parallel phase runs first (see [`crate::pool`]) and the sequential
/// loop below is the authoritative fallback.
#[allow(clippy::too_many_arguments)]
fn run_engine(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    static_rule: Option<&dyn PruningRule>,
    sizing: &WireSizing,
    options: &DpOptions,
    governor: &mut Governor,
    mut faults: Option<&mut FaultInjector>,
) -> Result<StatResult, InsertionError> {
    tree.validate()?;
    if tree.sink_count() == 0 {
        return Err(InsertionError::NoSinks);
    }

    // All node-indexed tables (device forms, wire segments) are built
    // once here, before the speculative phase, so the parallel workers
    // and the sequential fallback read the exact same cached values.
    let mut ctx = RunCtx::new(tree, model, mode, sizing);

    // Bound-guided pruning arms only when the run cannot degrade:
    // retiring candidates early changes list sizes, and a governed run
    // with finite budgets keys its degradation schedule off exactly
    // those sizes. (Strict runs abort rather than adapt, so the filter
    // cannot change their output — see the bounds-oracle suite.)
    let mut bound_setup = Duration::ZERO;
    let degradable = governor.is_governed() && governor.budget().constrains_run();
    if options.use_bounds && !degradable {
        let t = Instant::now();
        let bounds = crate::bounds::det_bounds(&ctx, mode, options.bound_k, options.root_selection);
        ctx.bounds = bounds;
        if ctx.bounds.is_some() {
            ctx.arm_bound_probe();
        }
        bound_setup = t.elapsed();
    }
    // The Li–Shi generation skip shares the bounding arm condition: it
    // never changes the post-prune list, but it does shrink the
    // *pre*-prune list a governed degradation schedule keys off.
    ctx.lishi = options.use_lishi && !degradable;
    // Lazy wire propagation shares it too (pending-aware footprints
    // would shift the degradation schedule's memory estimates), and
    // additionally disarms under fault injection so injected lists keep
    // their legacy eager shape.
    ctx.lazy = options.use_lazy_wire && !degradable && faults.is_none();

    // Speculative parallel phase: `None` means ineligible or aborted on
    // pressure — fall through to the sequential engine with the
    // governor untouched, so results stay bit-identical.
    if faults.is_none() {
        if let Some(outcome) = crate::pool::try_parallel_tree(&ctx, static_rule, options, governor)
        {
            return match outcome {
                Ok((mut root_list, mut stats)) => {
                    stats.runtime = governor.elapsed();
                    stats.bound_time += bound_setup;
                    stats.jobs_requested = options.jobs.max(1);
                    stats.jobs_effective = options.effective_jobs();
                    Ok(select_winner(tree, options, &mut root_list, stats))
                }
                Err(e) => Err(e),
            };
        }
    }

    let mut stats = DpStats::default();
    let mut lists: Vec<Vec<StatSolution>> = vec![Vec::new(); tree.len()];
    let mut pool = SolPool::default();
    let mut sup = GovSupervisor {
        static_rule,
        governor,
    };

    for id in tree.postorder() {
        let children: Vec<Vec<StatSolution>> = tree
            .node(id)
            .children
            .iter()
            .map(|c| std::mem::take(&mut lists[c.index()]))
            .collect();
        let sols = process_node(
            &ctx,
            &mut sup,
            id,
            children,
            faults.as_deref_mut(),
            &mut pool,
            &mut stats,
        )
        .map_err(EngineInterrupt::into_error)?;
        lists[id.index()] = sols;
    }

    stats.runtime = governor.elapsed();
    stats.bound_time += bound_setup;
    stats.jobs_requested = options.jobs.max(1);
    stats.jobs_effective = 1;
    Ok(select_winner(
        tree,
        options,
        &mut lists[tree.root().index()],
        stats,
    ))
}

/// One node of the DP, shared verbatim by the sequential and parallel
/// engines: builds the node's base list from its children (taken as
/// owned lists in fixed child order), offers buffers, and applies the
/// supervisor's admission/integrity policy. Returns the node's
/// surviving candidate list.
///
/// The hot path is allocation-free in steady state: wire segments and
/// device forms come from [`RunCtx`]'s tables, new solutions are
/// recycled carcasses from the worker's [`SolPool`], and pruning runs
/// over the pool's batched-key scratch.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub(crate) fn process_node<'r, S: Supervisor<'r>>(
    ctx: &RunCtx<'_>,
    sup: &mut S,
    id: NodeId,
    mut children: Vec<Vec<StatSolution>>,
    faults: Option<&mut FaultInjector>,
    pool: &mut SolPool,
    stats: &mut DpStats,
) -> Result<Vec<StatSolution>, EngineInterrupt> {
    sup.check_time()?;
    let node = ctx.tree.node(id);
    stats.nodes_processed += 1;

    // 1. Base list for the subtree seen at this node.
    let mut sols: Vec<StatSolution> = match node.kind {
        NodeKind::Sink {
            capacitance,
            required_arrival,
        } => vec![StatSolution::new(
            CanonicalForm::constant(capacitance),
            CanonicalForm::constant(required_arrival),
        )],
        NodeKind::Internal | NodeKind::Source { .. } => {
            let mut acc: Option<Vec<StatSolution>> = None;
            for (slot, &c) in node.children.iter().enumerate() {
                let child_list = std::mem::take(&mut children[slot]);
                let widths = ctx.sizing.widths().len();
                let record_width = widths > 1;
                let t_lift = Instant::now();
                let mut lifted = if widths == 1 {
                    // Single-width lift: the child list is consumed by this
                    // edge, so each solution is extended where it sits —
                    // the in-place kernel is bitwise identical to the
                    // copying one, and the trace Arc stays untouched. The
                    // freed estimate is taken before the extension so the
                    // governor sees the same numbers as the copying path.
                    let freed: usize = child_list.iter().map(solution_footprint).sum();
                    let mut lifted = child_list;
                    let seg = ctx.segment(c, 0);
                    if ctx.lazy {
                        // Deferred: fold the segment's mean effects in
                        // eagerly (bitwise the eager kernel's nominal
                        // path) and bank its resistance; the O(terms)
                        // coupling and the epsilon pass run once at the
                        // next materialization point.
                        for s in &mut lifted {
                            wire_defer_stat_in_place(s, seg);
                        }
                    } else {
                        for s in &mut lifted {
                            wire_extend_stat_in_place(s, seg);
                            sparsify(s, sup.epsilon());
                        }
                    }
                    stats.wire_time += t_lift.elapsed();
                    sup.note_memory(&[], freed);
                    lifted
                } else {
                    let mut lifted = pool.take(child_list.len() * widths);
                    for s in &child_list {
                        for wi in 0..widths {
                            let mut out = pool.take_sol();
                            if ctx.lazy {
                                wire_defer_stat_into(&mut out, s, ctx.segment(c, wi));
                            } else {
                                wire_extend_stat_into(&mut out, s, ctx.segment(c, wi));
                                sparsify(&mut out, sup.epsilon());
                            }
                            if record_width {
                                out.trace = crate::trace::Trace::wire(c, wi as u8, out.trace);
                            }
                            lifted.push(out);
                        }
                    }
                    stats.wire_time += t_lift.elapsed();
                    let freed: usize = child_list.iter().map(solution_footprint).sum();
                    pool.put(child_list);
                    sup.note_memory(&[], freed);
                    lifted
                };
                stats.solutions_generated += lifted.len();
                // Mean-keyed rules prune on nominals alone, which lazy
                // extension keeps bit-identical to eager (deferral only
                // touches the RAT's sensitivity terms) — so their keyed
                // sweep runs on pending solutions as-is. Any rule whose
                // keys read the terms (percentile keys, and every
                // CrossProduct dominance check) gets the list
                // materialized first, which also makes those rules'
                // whole runs byte-identical to eager.
                if ctx.lazy {
                    let term_keyed = {
                        let rh = sup.rule();
                        let rule = rh.get();
                        !rule.mean_keys() || rule.strategy() == MergeStrategy::CrossProduct
                    };
                    if term_keyed {
                        materialize_list(&mut lifted, sup.epsilon(), stats);
                    }
                }
                let before = lifted.len();
                let t_prune = Instant::now();
                prune_solutions_keyed(sup.rule().get(), &mut lifted, &mut pool.scratch);
                pool.reclaim_pruned();
                stats.prune_time += t_prune.elapsed();
                stats.solutions_pruned += before - lifted.len();
                stats.pruned_by_dominance += before - lifted.len();

                acc = Some(match acc {
                    None => lifted,
                    Some(prev) => merge_lists(ctx, sup, prev, lifted, id, pool, stats)?,
                });
                if let Some(list) = acc.as_mut() {
                    admit_list(sup, id, list, pool, stats)?;
                }
            }
            acc.expect("validated internal nodes have children")
        }
    };

    // 2. Offer a buffer at legal positions.
    if node.is_candidate {
        sup.check_time()?;
        let t_buf = Instant::now();
        let mut buffered = pool.take(0);
        {
            let rh = sup.rule();
            let rule = rh.get();
            let forms = ctx.device_forms(id);
            for (ty, bt) in ctx.model.library().iter() {
                let (cap_form, delay_form) = &forms[ty.0];
                let resistance = bt.resistance;
                let max_load = bt.max_load;
                let drivable = |s: &&StatSolution| max_load.is_none_or(|m| s.load_mean() <= m);
                match rule.strategy() {
                    MergeStrategy::SortedLinear => {
                        // All buffered options share the load form, so only
                        // the best RAT (by the rule's scalar key) survives:
                        // generate just that one. Index-based so the winner
                        // can be materialized in place below; the keys are
                        // means, which deferral never perturbs.
                        let best_idx = sols
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| drivable(s))
                            .max_by(|(_, a), (_, b)| {
                                let ka = a.rat_mean() - resistance * a.load_mean();
                                let kb = b.rat_mean() - resistance * b.load_mean();
                                ka.total_cmp(&kb)
                            })
                            .map(|(i, _)| i);
                        if let Some(bi) = best_idx {
                            let best = &sols[bi];
                            // Li–Shi predecessor dominance: predict the
                            // candidate's scalar keys without building its
                            // forms and skip the (expensive) generation when
                            // a listed solution already shadows it — i.e.
                            // the keyed sweep in `prune_full` would sort
                            // that solution before the appended candidate
                            // and then discard the candidate as dominated.
                            // Only exact for mean-keyed rules: the key
                            // arithmetic below replicates the kernel's
                            // nominal path bit for bit (`1.0·x = x`,
                            // `x + (−1.0)·d = x − d`, and `copy_from`
                            // preserves the cap form's mean), so the
                            // surviving list is bitwise identical — only
                            // generation counters differ.
                            if ctx.lishi && rule.mean_keys() {
                                let cand_load = cap_form.mean();
                                // Written to mirror the kernel's grouping
                                // `(1·T + (−R)·L) + (−1)·T_b` term-for-term;
                                // the lint's rewrite is bit-identical but
                                // hides the correspondence.
                                #[allow(clippy::neg_multiply)]
                                let cand_rat = (1.0 * best.rat_mean()
                                    + (-resistance) * best.load_mean())
                                    + (-1.0) * delay_form.mean();
                                let shadows = |e: &StatSolution| {
                                    use std::cmp::Ordering::{Equal, Greater, Less};
                                    let (el, er) = (e.load_mean(), e.rat_mean());
                                    // `e` sorts before the appended candidate
                                    // (load asc, rat desc, stable tie → `e`
                                    // first) under the sweep's `total_cmp`
                                    // order…
                                    let before = match el.total_cmp(&cand_load) {
                                        Less => true,
                                        Equal => cand_rat.total_cmp(&er) != Greater,
                                        Greater => false,
                                    };
                                    // …and carries at least the candidate's
                                    // RAT key, so the sweep's last-kept
                                    // entry (the running max-RAT) discards
                                    // the candidate.
                                    before && er >= cand_rat
                                };
                                if sols.iter().any(&shadows) || buffered.iter().any(shadows) {
                                    stats.lishi_skipped += 1;
                                    continue;
                                }
                            }
                            if ctx.lazy {
                                // The buffer kernel reads the partner's RAT
                                // terms: land its deferred coupling first.
                                // The argmax and Li–Shi keys above are
                                // means, so neither decision moves; the
                                // cost stays inside this arm's
                                // `buffer_time` window.
                                materialize_solution(&mut sols[bi], sup.epsilon());
                            }
                            let mut s = pool.take_sol();
                            buffer_extend_stat_into(
                                &mut s, &sols[bi], cap_form, delay_form, resistance, id, ty,
                            );
                            sparsify(&mut s, sup.epsilon());
                            buffered.push(s);
                            stats.solutions_generated += 1;
                        }
                    }
                    MergeStrategy::CrossProduct => {
                        // A partial order may keep several incomparable
                        // buffered options alive: generate them all.
                        for s in sols.iter().filter(drivable) {
                            let mut b = pool.take_sol();
                            buffer_extend_stat_into(
                                &mut b, s, cap_form, delay_form, resistance, id, ty,
                            );
                            sparsify(&mut b, sup.epsilon());
                            buffered.push(b);
                            stats.solutions_generated += 1;
                        }
                    }
                }
            }
        }
        sols.append(&mut buffered);
        pool.put(buffered);
        stats.buffer_time += t_buf.elapsed();
        admit_list(sup, id, &mut sols, pool, stats)?;
        let before = sols.len();
        prune_full(sup, &mut sols, pool, stats)?;
        stats.solutions_pruned += before - sols.len();
        stats.pruned_by_dominance += before - sols.len();
    }

    // 3. Fault-injection hook, then integrity screening.
    if let Some(inj) = faults {
        inj.on_node(id, &mut sols);
    }
    if sup.is_governed() {
        sup.sanitize(id, &mut sols)?;
        admit_list(sup, id, &mut sols, pool, stats)?;
    }
    if sup.panicking() {
        keep_best(sup.rule().get(), &mut sols);
    }

    // 4. Predictive retirement: candidates whose optimistic envelope
    // cannot reach the deterministic anchor leave the DP here, before
    // the parent's lift, merge and dominance sweeps ever see them.
    // The subtree probe disarms the pass once the anchor has evidently
    // gone cold: enough meaningful invocations below this node with zero
    // retirements anywhere means the envelope test is pure overhead.
    // Both the decision and the published aggregate depend only on the
    // node's subtree, so sequential and parallel runs agree bit for bit.
    if let Some(bounds) = ctx.bounds.as_deref() {
        let (sub_inv, sub_ret) = ctx.probe_children(id);
        if sub_ret == 0 && sub_inv >= BOUND_PROBE_ANCHOR {
            stats.bound_skipped += 1;
            ctx.store_probe(id, sub_inv, sub_ret);
        } else {
            let own_inv = u64::from(sols.len() >= BOUND_PROBE_MIN);
            // Clock the pass only on lists big enough for the filter to
            // cost anything; on tiny lists the two `Instant::now` calls
            // would outweigh the work they measure.
            let retired = if sols.len() >= 16 {
                let t_bound = Instant::now();
                let retired = bound_filter(bounds, id, &mut sols, pool);
                stats.bound_time += t_bound.elapsed();
                retired
            } else {
                bound_filter(bounds, id, &mut sols, pool)
            };
            stats.pruned_by_bound += retired;
            stats.solutions_pruned += retired;
            ctx.store_probe(id, sub_inv + own_inv, sub_ret + retired as u64);
        }
    }

    sup.note_memory(&sols, 0);
    stats.max_solutions_per_node = stats.max_solutions_per_node.max(sols.len());
    Ok(sols)
}

/// Driver step and winner selection at the root (by the configured
/// root-selection key).
///
/// Takes the list mutably: any deferred wire transforms still pending on
/// root candidates are materialized (and epsilon-sparsified) here, since
/// both the selection key's σ and the reported root RAT read the terms.
pub(crate) fn select_winner(
    tree: &RoutingTree,
    options: &DpOptions,
    root_list: &mut [StatSolution],
    mut stats: DpStats,
) -> StatResult {
    materialize_list(root_list, options.sparsify_epsilon, &mut stats);
    let root = tree.root();
    let driver_res = match tree.node(root).kind {
        NodeKind::Source { driver_resistance } => driver_resistance,
        _ => unreachable!("validated root is a source"),
    };
    let winner = root_list
        .iter()
        .max_by(|a, b| {
            let ka = options.root_selection.key(&driver_rat_stat(a, driver_res));
            let kb = options.root_selection.key(&driver_rat_stat(b, driver_res));
            ka.total_cmp(&kb)
        })
        .expect("at least one candidate always survives");
    StatResult {
        root_rat: driver_rat_stat(winner, driver_res),
        assignment: winner.trace.collect(),
        wire_widths: winner.trace.collect_wires(),
        stats,
    }
}

fn sparsify(s: &mut StatSolution, epsilon: f64) {
    if epsilon > 0.0 {
        s.load.sparsify(epsilon);
        s.rat.sparsify(epsilon);
    }
}

/// Lands one solution's deferred wire coupling and runs the single
/// deferred epsilon pass over the result. No-op when nothing is pending,
/// so mixed lists (some entries already consumed by a merge or buffer)
/// cost one float compare per settled entry.
fn materialize_solution(s: &mut StatSolution, epsilon: f64) {
    if s.wire_pending != 0.0 {
        materialize_wire_stat(s);
        sparsify(s, epsilon);
    }
}

/// Materializes a whole list, charging the pass to
/// [`DpStats::wire_time`] — it is wire work that lazy extension moved
/// out of the lift loop, not merge or prune work.
pub(crate) fn materialize_list(sols: &mut [StatSolution], epsilon: f64, stats: &mut DpStats) {
    if sols.iter().any(|s| s.wire_pending != 0.0) {
        let t = Instant::now();
        for s in sols.iter_mut() {
            materialize_solution(s, epsilon);
        }
        stats.wire_time += t.elapsed();
    }
}

/// Offers a node's candidate list to the supervisor, applying whatever
/// the verdict requires (re-prune under a fallback rule, spread-
/// preserving truncation) until the list is admitted.
pub(crate) fn admit_list<'r, S: Supervisor<'r>>(
    sup: &mut S,
    node: NodeId,
    sols: &mut Vec<StatSolution>,
    pool: &mut SolPool,
    stats: &mut DpStats,
) -> Result<(), EngineInterrupt> {
    loop {
        match sup.admit(node, sols.len())? {
            Admission::Ok => return Ok(()),
            Admission::Reprune => {
                let before = sols.len();
                let t = Instant::now();
                prune_solutions_keyed(sup.rule().get(), sols, &mut pool.scratch);
                pool.reclaim_pruned();
                stats.prune_time += t.elapsed();
                stats.solutions_pruned += before - sols.len();
                stats.pruned_by_dominance += before - sols.len();
            }
            Admission::Truncate(n) => {
                if sols.len() <= n {
                    // Nothing left to cut; accept as-is rather than spin.
                    return Ok(());
                }
                let before = sols.len();
                let t = Instant::now();
                truncate_spread(sup.rule().get(), sols, n);
                stats.prune_time += t.elapsed();
                stats.solutions_pruned += before - sols.len();
            }
        }
    }
}

/// Merges two candidate lists at a branch node.
#[allow(clippy::too_many_arguments)]
fn merge_lists<'r, S: Supervisor<'r>>(
    ctx: &RunCtx<'_>,
    sup: &mut S,
    mut a: Vec<StatSolution>,
    mut b: Vec<StatSolution>,
    node: NodeId,
    pool: &mut SolPool,
    stats: &mut DpStats,
) -> Result<Vec<StatSolution>, EngineInterrupt> {
    if a.is_empty() || b.is_empty() {
        // The surviving list keeps its pending transforms; they ride on
        // to the next materialization point untouched.
        return Ok(if a.is_empty() { b } else { a });
    }
    // A merge adds the operands' RAT *forms* (terms included), so any
    // deferred wire coupling must land first. This is one of the three
    // places lazy runs pay the O(terms) wire cost — the others are the
    // buffering arm and winner selection.
    if ctx.lazy {
        materialize_list(&mut a, sup.epsilon(), stats);
        materialize_list(&mut b, sup.epsilon(), stats);
    }
    // Admission may switch the rule (re-prune and retry with a linear
    // merge) or shrink the operands; `forced` breaks the loop if a
    // truncation could not shrink them further.
    let mut forced = false;
    let mut merged = loop {
        let rh = sup.rule();
        let rule = rh.get();
        match rule.strategy() {
            MergeStrategy::SortedLinear => {
                // Figure 1: both lists sorted ascending in (load key, RAT key);
                // walk both, advancing the side whose RAT constrains the min.
                // Each side's RAT keys are computed once up front (the same
                // deterministic values `rat_key` returns per comparison, so
                // the walk is bit-identical) into recycled buffers.
                let t = Instant::now();
                let (mut ka, mut kb) = std::mem::take(&mut pool.merge_keys);
                ka.clear();
                ka.extend(a.iter().map(|s| rule.rat_key(s)));
                kb.clear();
                kb.extend(b.iter().map(|s| rule.rat_key(s)));
                let mut out = pool.take(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                loop {
                    let mut m = pool.take_sol();
                    merge_pair_stat_into(&mut m, &a[i], &b[j]);
                    out.push(m);
                    stats.solutions_generated += 1;
                    match ka[i].total_cmp(&kb[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            i += 1;
                            j += 1;
                        }
                    }
                    if i >= a.len() || j >= b.len() {
                        break;
                    }
                }
                pool.merge_keys = (ka, kb);
                stats.merge_time += t.elapsed();
                break out;
            }
            MergeStrategy::CrossProduct => {
                // The 4P price: all n·m combinations — ask before paying.
                let needed = a.len().saturating_mul(b.len());
                let admission = if forced {
                    Admission::Ok
                } else {
                    sup.admit(node, needed)?
                };
                match admission {
                    Admission::Ok => {
                        let t = Instant::now();
                        let mut out = pool.take(0);
                        'rows: for sa in &a {
                            sup.check_time()?;
                            if sup.panicking() {
                                // A hard breach mid-merge: the pairs formed so
                                // far are valid candidates; stop generating.
                                break 'rows;
                            }
                            // Grow one row at a time (amortized) instead of
                            // reserving the full n·m up front, so a panic-
                            // completion bail doesn't pay for rows it never
                            // materializes.
                            out.reserve(b.len());
                            for sb in &b {
                                let mut m = pool.take_sol();
                                merge_pair_stat_into(&mut m, sa, sb);
                                out.push(m);
                            }
                        }
                        stats.solutions_generated += out.len();
                        stats.merge_time += t.elapsed();
                        break out;
                    }
                    Admission::Reprune => {
                        let before = a.len() + b.len();
                        let t = Instant::now();
                        let rh = sup.rule();
                        prune_solutions_keyed(rh.get(), &mut a, &mut pool.scratch);
                        pool.reclaim_pruned();
                        prune_solutions_keyed(rh.get(), &mut b, &mut pool.scratch);
                        pool.reclaim_pruned();
                        stats.prune_time += t.elapsed();
                        stats.solutions_pruned += before - a.len() - b.len();
                        stats.pruned_by_dominance += before - a.len() - b.len();
                    }
                    Admission::Truncate(n) => {
                        // Shrink both operands toward √n each.
                        let keep = ((n as f64).sqrt().floor() as usize).max(1);
                        if a.len() <= keep && b.len() <= keep {
                            forced = true;
                            continue;
                        }
                        let before = a.len() + b.len();
                        let t = Instant::now();
                        truncate_spread(rule, &mut a, keep);
                        truncate_spread(rule, &mut b, keep);
                        stats.prune_time += t.elapsed();
                        stats.solutions_pruned += before - a.len() - b.len();
                    }
                }
            }
        }
    };
    pool.put(a);
    pool.put(b);
    let before = merged.len();
    prune_full(sup, &mut merged, pool, stats)?;
    stats.solutions_pruned += before - merged.len();
    stats.pruned_by_dominance += before - merged.len();
    Ok(merged)
}

/// Pruning with the engine's wall-clock limit enforced *inside* the
/// quadratic cross-product sweep — an `O(N²)` prune on a six-figure
/// candidate list can otherwise outlive any between-node time check.
/// Under panic completion the sweep bails early: a superset of the
/// non-dominated set is still valid, and the node-level reduction keeps
/// one candidate anyway. In-place; the dominance flags live in the
/// worker's [`SolPool`] scratch.
fn prune_full<'r, S: Supervisor<'r>>(
    sup: &mut S,
    sols: &mut Vec<StatSolution>,
    pool: &mut SolPool,
    stats: &mut DpStats,
) -> Result<(), EngineInterrupt> {
    let rh = sup.rule();
    let rule = rh.get();
    let t = Instant::now();
    if rule.strategy() == MergeStrategy::SortedLinear {
        prune_solutions_keyed(rule, sols, &mut pool.scratch);
        pool.reclaim_pruned();
        stats.prune_time += t.elapsed();
        return Ok(());
    }
    // CrossProduct: the same batched-key sweep `prune_solutions_keyed`
    // runs, but with the engine's wall-clock check and the panic-
    // completion bail threaded through the quadratic loop. Keys are
    // computed once per solution (4P's four percentiles) instead of
    // per pairwise comparison.
    rule.batch_keys(sols, &mut pool.scratch.keys);
    let keys = &pool.scratch.keys;
    let dominated = &mut pool.flags;
    dominated.clear();
    dominated.resize(sols.len(), false);
    'outer: for i in 0..sols.len() {
        if i % 256 == 0 {
            sup.check_time()?;
            if sup.panicking() {
                break 'outer;
            }
        }
        if dominated[i] {
            continue;
        }
        // Index loop: `j` feeds the keyed dominance check while
        // `dominated[j]` is written under an active read of
        // `dominated[i]` — an iterator form would fight the borrow.
        #[allow(clippy::needless_range_loop)]
        for j in 0..sols.len() {
            if i == j || dominated[j] {
                continue;
            }
            if rule.dominates_keyed(keys, i, j, sols) {
                dominated[j] = true;
            }
        }
    }
    // Order-preserving compaction (what `retain` does), keeping the
    // dominated carcasses in the tail so the pool can reclaim them.
    let mut w = 0usize;
    for (r, &dom) in dominated.iter().enumerate() {
        if !dom {
            sols.swap(w, r);
            w += 1;
        }
    }
    let room = SolPool::KEEP_SOLS.saturating_sub(pool.sols.len());
    pool.sols.extend(sols.drain(w..).take(room));
    sols.sort_by(|a, b| rule.load_key(a).total_cmp(&rule.load_key(b)));
    stats.prune_time += t.elapsed();
    Ok(())
}

/// Retires every candidate whose optimistic `±k·σ` envelope provably
/// cannot reach the deterministic anchor (see the `bounds` module for
/// the soundness argument). Order-preserving in-place compaction;
/// retired carcasses feed the pool's recycler. Returns how many were
/// retired.
///
/// Never empties a list: if the bound would reject everything (the
/// anchor heuristic can only be beaten collectively, e.g. after fault
/// injection poisons the whole list), the sweep backs off and keeps the
/// list untouched so downstream invariants ("at least one candidate
/// survives") hold unconditionally.
fn bound_filter(
    bounds: &crate::bounds::DetBounds,
    node: NodeId,
    sols: &mut Vec<StatSolution>,
    pool: &mut SolPool,
) -> usize {
    let k = bounds.k();
    pool.flags.clear();
    let mut kept = 0usize;
    for s in sols.iter() {
        // The mean test implies the envelope test (lower load and higher
        // RAT both widen the margin), so the O(terms) σ scans are only
        // paid by candidates already failing on their means.
        let keep = bounds.keeps_envelope(node, s.load.mean(), s.rat.mean()) || {
            let (load_lo, _) = s.load.envelope(k);
            // A pending lazy-wire transform changes the RAT's σ, so the
            // envelope is taken on a scratch materialization. The stored
            // solution is left untouched: mutating it here would make
            // the downstream materialize-and-sparsify points see
            // different inputs with bounding on vs. off, breaking the
            // bounds oracle's bit-identity contract.
            let rat_hi = if s.wire_pending != 0.0 {
                let mut rat = s.rat.clone();
                rat.add_scaled_terms_assign(&s.load, -s.wire_pending);
                rat.envelope(k).1
            } else {
                s.rat.envelope(k).1
            };
            bounds.keeps_envelope(node, load_lo, rat_hi)
        };
        kept += usize::from(keep);
        pool.flags.push(keep);
    }
    if kept == sols.len() || kept == 0 {
        return 0;
    }
    let mut write = 0;
    for read in 0..sols.len() {
        if pool.flags[read] {
            sols.swap(write, read);
            write += 1;
        }
    }
    let retired = sols.len() - write;
    let room = SolPool::KEEP_SOLS.saturating_sub(pool.sols.len());
    pool.sols.extend(sols.drain(write..).take(room));
    retired
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det::optimize_deterministic;
    use crate::prune::{FourParam, OneParam, TwoParam};
    use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
    use varbuf_variation::{BufferLibrary, SpatialKind, VariationBudgets};

    fn model_for(tree: &RoutingTree) -> ProcessModel {
        ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous)
    }

    #[test]
    fn two_param_runs_and_carries_variance() {
        let tree = generate_benchmark(&BenchmarkSpec::random("dp", 48, 3));
        let model = model_for(&tree);
        let r = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("optimize");
        assert!(r.root_rat.std_dev() > 0.0, "WID RAT must be random");
        assert!(!r.assignment.is_empty());
        assert_eq!(r.stats.nodes_processed, tree.len());
    }

    #[test]
    fn zero_budget_statistical_matches_deterministic() {
        // With all budgets at zero the statistical DP must reproduce the
        // deterministic optimum exactly.
        let tree = generate_benchmark(&BenchmarkSpec::random("dp0", 40, 8));
        let library = BufferLibrary::default_65nm();
        let zero = ProcessModel::new(
            tree.bounding_box(),
            SpatialKind::Homogeneous,
            VariationBudgets::zero(),
            library.clone(),
        );
        let stat = optimize_with_rule(
            &tree,
            &zero,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("stat");
        let det = optimize_deterministic(&tree, &library).expect("det");
        assert!(
            (stat.root_rat.mean() - det.root_rat).abs() < 1e-6 * det.root_rat.abs(),
            "stat {} vs det {}",
            stat.root_rat.mean(),
            det.root_rat
        );
        assert!(stat.root_rat.std_dev() < 1e-9);
    }

    #[test]
    fn d2d_mode_has_no_region_terms() {
        let tree = generate_benchmark(&BenchmarkSpec::random("dpd", 30, 1));
        let model = model_for(&tree);
        let r = optimize_with_rule(
            &tree,
            &model,
            VariationMode::DieToDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("optimize");
        let layout = model.layout();
        for &id in r.root_rat.term_ids() {
            assert!(
                !layout.is_region(id),
                "D2D form must not reference spatial regions"
            );
        }
    }

    #[test]
    fn one_param_also_linear_and_close() {
        let tree = generate_benchmark(&BenchmarkSpec::random("dp1", 40, 5));
        let model = model_for(&tree);
        let two = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("2P");
        let one = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &OneParam::default(),
            &DpOptions::default(),
        )
        .expect("1P");
        // Different rules, same ballpark (within a few percent).
        let rel = (two.root_rat.mean() - one.root_rat.mean()).abs() / two.root_rat.mean().abs();
        assert!(
            rel < 0.05,
            "2P {} vs 1P {}",
            two.root_rat.mean(),
            one.root_rat.mean()
        );
    }

    #[test]
    fn four_param_works_on_small_trees() {
        // Kept tiny on purpose: the 4P cross-product blows up fast — the
        // paper's own 4P implementation topped out at 9 sinks.
        let tree = generate_benchmark(&BenchmarkSpec::random("dp4", 6, 2));
        let model = model_for(&tree);
        let four = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &FourParam::default(),
            &DpOptions::default(),
        )
        .expect("4P");
        let two = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("2P");
        // 4P keeps a superset of solutions, so its winner can't be worse
        // by much; means should be very close on a small tree.
        let rel =
            (four.root_rat.mean() - two.root_rat.mean()).abs() / two.root_rat.mean().abs().max(1.0);
        assert!(
            rel < 0.05,
            "4P {} vs 2P {}",
            four.root_rat.mean(),
            two.root_rat.mean()
        );
    }

    #[test]
    fn four_param_hits_capacity_cap() {
        let tree = generate_benchmark(&BenchmarkSpec::random("cap", 120, 6));
        let model = model_for(&tree);
        let tight = DpOptions {
            max_solutions_per_node: 200,
            ..DpOptions::default()
        };
        let err = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &FourParam::default(),
            &tight,
        )
        .unwrap_err();
        assert!(
            matches!(err, InsertionError::CapacityExceeded { .. }),
            "expected capacity error, got {err}"
        );
    }

    #[test]
    fn time_limit_enforced() {
        let tree = generate_benchmark(&BenchmarkSpec::random("time", 200, 6));
        let model = model_for(&tree);
        let opts = DpOptions {
            time_limit: Duration::from_nanos(1),
            ..DpOptions::default()
        };
        let err = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, InsertionError::TimeLimitExceeded { .. }));
    }

    #[test]
    fn sparsify_keeps_results_close() {
        let tree = generate_benchmark(&BenchmarkSpec::random("sp", 60, 13));
        let model = model_for(&tree);
        let exact = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("exact");
        let sparse = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions {
                sparsify_epsilon: 1e-3,
                ..DpOptions::default()
            },
        )
        .expect("sparse");
        let rel_mean =
            (exact.root_rat.mean() - sparse.root_rat.mean()).abs() / exact.root_rat.mean().abs();
        let rel_std = (exact.root_rat.std_dev() - sparse.root_rat.std_dev()).abs()
            / exact.root_rat.std_dev().max(1e-12);
        assert!(rel_mean < 1e-3, "means diverged: {rel_mean}");
        assert!(rel_std < 0.05, "sigmas diverged: {rel_std}");
    }

    #[test]
    fn wire_sizing_never_hurts_and_records_choices() {
        use crate::dp::{optimize_with_sizing, WireSizing};
        let tree = generate_benchmark(&BenchmarkSpec::random("ws", 30, 4));
        let model = model_for(&tree);
        let plain = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("plain");
        assert!(plain.wire_widths.is_empty());

        let sizing = WireSizing::default_three();
        let sized = optimize_with_sizing(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &sizing,
            &DpOptions::default(),
        )
        .expect("sized");
        // The sized design space is a superset, so the result should not
        // be meaningfully worse. (The statistical DP prunes on mean and
        // selects on the yield percentile, so it is not exactly optimal
        // for the percentile; allow sub-0.1% inversions from that gap.)
        let y = |r: &StatResult| r.root_rat.percentile(0.05);
        assert!(
            y(&sized) >= y(&plain) - 1e-3 * y(&plain).abs(),
            "sized {} vs plain {}",
            y(&sized),
            y(&plain)
        );
        // Every edge got a recorded width choice.
        assert!(!sized.wire_widths.is_empty());
        assert!(sized
            .wire_widths
            .iter()
            .all(|&(_, wi)| (wi as usize) < sizing.widths().len()));
        // The edge_widths conversion produces a consistent map.
        let map = sizing.edge_widths(&sized.wire_widths);
        assert!(map.len() <= sized.wire_widths.len());
    }

    #[test]
    fn sized_result_matches_sized_yield_evaluator() {
        use crate::dp::{optimize_with_sizing, WireSizing};
        use crate::yield_eval::YieldEvaluator;
        let tree = generate_benchmark(&BenchmarkSpec::random("ws2", 24, 6));
        let model = model_for(&tree);
        let sizing = WireSizing::new(vec![1.0, 2.0]);
        let sized = optimize_with_sizing(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &sizing,
            &DpOptions::default(),
        )
        .expect("sized");
        let ye = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
        let rat = ye.rat_form_sized(&sized.assignment, &sizing.edge_widths(&sized.wire_widths));
        assert!(
            (rat.mean() - sized.root_rat.mean()).abs() < 1e-6 * sized.root_rat.mean().abs(),
            "evaluator {} vs DP {}",
            rat.mean(),
            sized.root_rat.mean()
        );
    }

    #[test]
    fn threshold_sweep_changes_little() {
        // The paper's Section 5.3 finding: p̄ in [0.5, 0.95] moves the
        // optimal RAT by well under 0.1%.
        let tree = generate_benchmark(&BenchmarkSpec::random("sweep", 50, 17));
        let model = model_for(&tree);
        let base = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("base");
        for p in [0.6, 0.75, 0.9, 0.95] {
            let r = optimize_with_rule(
                &tree,
                &model,
                VariationMode::WithinDie,
                &TwoParam::new(p, p),
                &DpOptions::default(),
            )
            .expect("sweep");
            let rel = (r.root_rat.mean() - base.root_rat.mean()).abs() / base.root_rat.mean().abs();
            assert!(rel < 0.01, "p={p}: relative change {rel}");
        }
    }

    #[test]
    fn governed_run_without_pressure_matches_strict() {
        let tree = generate_benchmark(&BenchmarkSpec::random("gv", 40, 9));
        let model = model_for(&tree);
        let strict = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("strict");
        let governed = optimize_governed(
            &tree,
            &model,
            VariationMode::WithinDie,
            Arc::new(TwoParam::default()),
            &DpOptions::default(),
            &Budget::unlimited(),
        )
        .expect("governed");
        assert!(!governed.degradation.degraded());
        assert_eq!(
            governed.result.root_rat.mean(),
            strict.root_rat.mean(),
            "an unpressured governed run must be bit-identical"
        );
        assert_eq!(governed.result.assignment, strict.assignment);
        assert!(!governed.result.stats.panic_completion);
    }

    #[test]
    fn fallback_cascade_shapes() {
        let from_four = fallback_cascade(Arc::new(FourParam::default()));
        assert_eq!(from_four.len(), 3);
        assert_eq!(from_four[0].name(), "4P");
        assert_eq!(from_four[2].name(), "2P");
        let from_two = fallback_cascade(Arc::new(TwoParam::new(0.75, 0.75)));
        assert_eq!(from_two.len(), 2);
        let from_one = fallback_cascade(Arc::new(OneParam::default()));
        assert_eq!(from_one.len(), 3);
        assert_eq!(from_one[0].name(), "1P");
    }

    /// The invariant the presorted fast path in `prune_solutions_keyed`
    /// banks on: under the 2P rule every list `process_node` emits —
    /// sink bases, merged branches, buffered candidate nodes, with and
    /// without the bound filter — is mean-ordered: load means
    /// non-decreasing and RAT means non-decreasing (the pruned
    /// staircase). Property-tested over 3 seeds × 64 random trees by
    /// driving the engine loop node by node.
    #[test]
    fn two_param_node_lists_stay_mean_ordered() {
        let rule = TwoParam::default();
        let sizing = WireSizing::single();
        for seed in [0x9E37_79B9u64, 0x85EB_CA6B, 0xC2B2_AE35] {
            for t in 0..64u64 {
                let sinks = 4 + (t as usize % 13);
                let tree = generate_benchmark(&BenchmarkSpec::random(
                    "order",
                    sinks,
                    seed.wrapping_add(t.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ));
                let model = model_for(&tree);
                let mode = VariationMode::WithinDie;
                let mut ctx = RunCtx::new(&tree, &model, mode, &sizing);
                if t % 2 == 1 {
                    // Half the trees run with the bound filter armed, so
                    // the property also covers its order preservation.
                    let bounds =
                        crate::bounds::det_bounds(&ctx, mode, 3.0, RootSelection::YieldRat(0.95));
                    ctx.bounds = bounds;
                }
                let mut governor =
                    Governor::strict(Budget::strict(2_000_000, Duration::from_secs(3600)), 0.0);
                let mut sup = GovSupervisor {
                    static_rule: Some(&rule),
                    governor: &mut governor,
                };
                let mut lists: Vec<Vec<StatSolution>> = vec![Vec::new(); tree.len()];
                let mut pool = SolPool::default();
                let mut stats = DpStats::default();
                for id in tree.postorder() {
                    let children: Vec<Vec<StatSolution>> = tree
                        .node(id)
                        .children
                        .iter()
                        .map(|c| std::mem::take(&mut lists[c.index()]))
                        .collect();
                    let sols =
                        process_node(&ctx, &mut sup, id, children, None, &mut pool, &mut stats)
                            .unwrap_or_else(|_| panic!("strict node interrupted"));
                    for w in sols.windows(2) {
                        assert!(
                            w[0].load_mean() <= w[1].load_mean(),
                            "seed{seed:x}/tree{t}/node{}: load means out of order",
                            id.index()
                        );
                        assert!(
                            w[0].rat_mean() <= w[1].rat_mean(),
                            "seed{seed:x}/tree{t}/node{}: RAT means out of order",
                            id.index()
                        );
                    }
                    lists[id.index()] = sols;
                }
            }
        }
    }

    /// Diagnostic for tuning the bound layer (run with `--ignored`,
    /// `BOUND_K=<k>` to vary the envelope): prints the margin
    /// distribution of the bench workload's candidates against the
    /// bound cutoff — how far the typical candidate sits from being
    /// retired, and how many actually are.
    #[test]
    #[ignore]
    fn bound_margin_diagnostic() {
        let rule = TwoParam::default();
        let sizing = WireSizing::single();
        let tree = generate_benchmark(&BenchmarkSpec::random("scale", 64, 77)).subdivided(500.0);
        let model = ProcessModel::paper_defaults(
            tree.bounding_box(),
            varbuf_variation::SpatialKind::Heterogeneous,
        );
        let mode = VariationMode::WithinDie;
        let k_env: f64 = std::env::var("BOUND_K")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3.0);
        let mut ctx = RunCtx::new(&tree, &model, mode, &sizing);
        let bounds =
            crate::bounds::det_bounds(&ctx, mode, k_env, RootSelection::YieldRat(0.95)).unwrap();
        ctx.bounds = Some(std::sync::Arc::clone(&bounds));
        let mut governor =
            Governor::strict(Budget::strict(2_000_000, Duration::from_secs(3600)), 0.0);
        let mut sup = GovSupervisor {
            static_rule: Some(&rule),
            governor: &mut governor,
        };
        let mut lists: Vec<Vec<StatSolution>> = vec![Vec::new(); tree.len()];
        let mut pool = SolPool::default();
        let mut stats = DpStats::default();
        let mut margins: Vec<f64> = Vec::new();
        for id in tree.postorder() {
            let children: Vec<Vec<StatSolution>> = tree
                .node(id)
                .children
                .iter()
                .map(|c| std::mem::take(&mut lists[c.index()]))
                .collect();
            let sols = process_node(&ctx, &mut sup, id, children, None, &mut pool, &mut stats)
                .unwrap_or_else(|_| panic!("strict node interrupted"));
            for s in &sols {
                let (lo, _) = s.load.envelope(k_env);
                let (_, hi) = s.rat.envelope(k_env);
                margins.push(bounds.margin(id, lo, hi));
            }
            lists[id.index()] = sols;
        }
        margins.sort_by(f64::total_cmp);
        let pct = |p: f64| margins[((margins.len() - 1) as f64 * p) as usize];
        eprintln!(
            "candidates={} retired={} min={:.3} p10={:.3} p50={:.3} p90={:.3} max={:.3}",
            margins.len(),
            stats.pruned_by_bound,
            pct(0.0),
            pct(0.1),
            pct(0.5),
            pct(0.9),
            pct(1.0)
        );
    }
}
