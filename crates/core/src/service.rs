//! Resident optimization service: session store, hardened per-request
//! execution envelope, and admission control.
//!
//! The batch binary answers one net per process; the service keeps nets
//! *resident* — a [`Service`] owns a generational-arena [`SessionStore`]
//! whose [`SessionHandle`]s carry generation counters, so a handle that
//! outlives its session is a typed [`RequestError::StaleHandle`], never
//! a wrong answer against whatever net now occupies the slot. Residency
//! is what makes the service worth having: a session's `ProcessModel`
//! keeps its device-characterization memo warm across requests.
//!
//! A resident process is only as good as its worst request, so every
//! optimize request runs inside a hardened envelope:
//!
//! * **Crash isolation** — the DP runs under `catch_unwind`; a panic
//!   mid-request becomes a structured [`RequestError::Internal`]
//!   response and poisons *only* the session it ran against (the crash
//!   may have observed that session's state mid-mutation; nothing else).
//! * **Watchdog deadline** — each request's governor is armed with a
//!   [`CancelToken`] plus the service watchdog; a `Budget` hard
//!   wall-clock breach completes best-so-far as before, and a watchdog
//!   overrun comes back `cancelled` with its partial
//!   [`Degradation`](crate::governor::Degradation) report.
//! * **Admission control** — queued work is costed (DP nodes); past the
//!   hard queue budget requests are shed with a deterministic
//!   retry-after ([`RequestError::Overloaded`]), and between the soft
//!   and hard budgets requests are *admitted but tightened* — their
//!   budgets halved so they degrade earlier (degrade-before-drop).
//!
//! Requests are submitted in order and drained through the same
//! order-preserving worker pool as [`crate::pool::optimize_batch`], so a
//! drain at any `jobs` is bit-identical to a serial drain.
//!
//! The line protocol (`varbuf serve`) is a thin rendering of this
//! module: [`parse_line`] turns a protocol line into a [`Command`], and
//! every [`Response`] renders as a single deterministic line (no
//! wall-clock values), which is what makes the isolation suite's
//! byte-compare meaningful.

use crate::cache::{run_signature, NodeSigs, SolutionCache};
use crate::dp::{
    fallback_cascade, optimize_governed_detailed, optimize_incremental, DpOptions, RunControls,
    WireSizing,
};
use crate::error::{InsertionError, RequestError};
use crate::faultinject::{FaultInjector, FaultPlan, RequestFault, RequestFaults, SkewedClock};
use crate::governor::{Budget, CancelToken};
use crate::hier::{optimize_hier, HierOptions, HierResult};
use crate::prune::{FourParam, OneParam, PruningRule, TwoParam};
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;
use varbuf_rctree::generate::{generate_benchmark, generate_htree, BenchmarkSpec, HTreeSpec};
use varbuf_rctree::tree::NodeKind;
use varbuf_rctree::{NodeId, RoutingTree};
use varbuf_variation::{BufferLibrary, ProcessModel, SpatialKind, VariationBudgets, VariationMode};

/// Largest net accepted through the protocol's `open` spec — a parse
/// guard, not a resource policy (that is the queue budget's job).
const MAX_SPEC_SINKS: usize = 65_536;

/// Service-wide policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Resident-session cap; `open` past it is a typed error.
    pub max_sessions: usize,
    /// Queued-cost level (DP nodes) above which newly admitted requests
    /// get tightened budgets (degrade-before-drop).
    pub queue_soft_cost: u64,
    /// Queued-cost level above which new optimize requests are shed
    /// with [`RequestError::Overloaded`].
    pub queue_hard_cost: u64,
    /// Baseline per-request budget (a request may override it).
    pub budget: Budget,
    /// Per-request watchdog deadline on the governor's clock.
    pub watchdog: Option<Duration>,
    /// Whether `inject` commands are honored.
    pub allow_faults: bool,
    /// Whether sessions keep their epoch-scoped solution cache armed
    /// (the incremental re-optimization path). Off (`--no-cache`),
    /// every optimize runs cold.
    pub use_cache: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_sessions: 256,
            queue_soft_cost: 4_096,
            queue_hard_cost: 16_384,
            budget: Budget::unlimited(),
            watchdog: None,
            allow_faults: false,
            use_cache: true,
        }
    }
}

/// A client's reference to a resident session: arena index plus the
/// generation the slot had when the session was opened. Renders as
/// `s<index>.<generation>` in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionHandle {
    /// Arena slot index.
    pub index: u32,
    /// Slot generation at open time.
    pub generation: u32,
}

impl fmt::Display for SessionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}.{}", self.index, self.generation)
    }
}

impl FromStr for SessionHandle {
    type Err = RequestError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || RequestError::Malformed {
            message: format!("bad session handle `{s}` (expected s<index>.<generation>)"),
        };
        let rest = s.strip_prefix('s').ok_or_else(bad)?;
        let (idx, generation) = rest.split_once('.').ok_or_else(bad)?;
        Ok(SessionHandle {
            index: idx.parse().map_err(|_| bad())?,
            generation: generation.parse().map_err(|_| bad())?,
        })
    }
}

/// One resident net: the routing tree plus its process model (whose
/// device-form memo amortizes across this session's requests), the
/// per-node content signatures that detect what an `edit` dirtied, and
/// the epoch-scoped solution cache the incremental engine replays.
#[derive(Debug)]
pub struct Session {
    tree: RoutingTree,
    model: ProcessModel,
    poisoned: bool,
    /// Spatial structure the model was built with — needed to rebuild
    /// it on `edit lib` without re-asking the client.
    spatial: SpatialKind,
    /// Bumped by every `edit`; purely observational (rendered in the
    /// `ok edit` line so scripts can assert mutation ordering).
    epoch: u64,
    /// Bumped only by model-wide edits (`edit lib`); folded into the
    /// run signature so stale entries can never replay across a
    /// library swap.
    model_epoch: u64,
    sigs: NodeSigs,
    /// `drain` holds `&Session` across the worker pool, so the cache
    /// sits behind a mutex; runs against the same session serialize on
    /// it (distinct sessions still parallelize).
    cache: Mutex<SolutionCache>,
}

impl Session {
    /// The session's routing tree.
    #[must_use]
    pub fn tree(&self) -> &RoutingTree {
        &self.tree
    }

    /// Whether a contained crash has poisoned this session.
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Mutation epoch: 0 at open, +1 per applied `edit`.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Nodes with a live (replayable) cache entry right now.
    #[must_use]
    pub fn cached_nodes(&self) -> usize {
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .live_entries()
    }
}

#[derive(Debug)]
struct Slot {
    generation: u32,
    session: Option<Session>,
}

/// Generational-arena store of resident sessions.
///
/// Slots are reused through a free list; each `close` bumps the slot's
/// generation, so handles issued against the old occupant can never
/// resolve to the new one. Generations are monotone per slot.
#[derive(Debug)]
pub struct SessionStore {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    max_sessions: usize,
}

impl SessionStore {
    fn new(max_sessions: usize) -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            max_sessions,
        }
    }

    /// Number of live (open) sessions.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Number of arena slots ever allocated.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Current generation of a slot (`None` if never allocated) —
    /// monotone over the slot's lifetime.
    #[must_use]
    pub fn generation(&self, index: u32) -> Option<u32> {
        self.slots.get(index as usize).map(|s| s.generation)
    }

    fn open(
        &mut self,
        tree: RoutingTree,
        spatial: SpatialKind,
    ) -> Result<SessionHandle, RequestError> {
        if self.live >= self.max_sessions {
            return Err(RequestError::SessionLimit {
                limit: self.max_sessions,
            });
        }
        tree.validate().map_err(InsertionError::from)?;
        if tree.sink_count() == 0 {
            return Err(InsertionError::NoSinks.into());
        }
        let model = ProcessModel::paper_defaults(tree.bounding_box(), spatial);
        let sigs = NodeSigs::build(&tree);
        let session = Session {
            tree,
            model,
            poisoned: false,
            spatial,
            epoch: 0,
            model_epoch: 0,
            sigs,
            cache: Mutex::new(SolutionCache::new()),
        };
        let index = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize].session = Some(session);
                i
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    session: Some(session),
                });
                u32::try_from(self.slots.len() - 1).expect("slot index fits u32")
            }
        };
        self.live += 1;
        Ok(SessionHandle {
            index,
            generation: self.slots[index as usize].generation,
        })
    }

    /// The live session behind `handle`, poisoned or not; `None` on any
    /// index/generation mismatch.
    fn slot(&self, handle: SessionHandle) -> Option<&Session> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.session.as_ref()
    }

    /// Resolves a handle to its session, rejecting stale handles and
    /// poisoned sessions with typed errors.
    pub fn resolve(&self, handle: SessionHandle) -> Result<&Session, RequestError> {
        let session = self
            .slot(handle)
            .ok_or(RequestError::StaleHandle { handle })?;
        if session.poisoned {
            return Err(RequestError::SessionPoisoned { handle });
        }
        Ok(session)
    }

    /// Mutable variant of [`resolve`](Self::resolve) — the edit path.
    fn resolve_mut(&mut self, handle: SessionHandle) -> Result<&mut Session, RequestError> {
        let slot = self
            .slots
            .get_mut(handle.index as usize)
            .filter(|s| s.generation == handle.generation);
        let session = slot
            .and_then(|s| s.session.as_mut())
            .ok_or(RequestError::StaleHandle { handle })?;
        if session.poisoned {
            return Err(RequestError::SessionPoisoned { handle });
        }
        Ok(session)
    }

    fn close(&mut self, handle: SessionHandle) -> Result<(), RequestError> {
        // Close works on poisoned sessions too — it is the only way out.
        if self.slot(handle).is_none() {
            return Err(RequestError::StaleHandle { handle });
        }
        let slot = &mut self.slots[handle.index as usize];
        slot.session = None;
        slot.generation += 1;
        self.free.push(handle.index);
        self.live -= 1;
        Ok(())
    }

    fn poison(&mut self, handle: SessionHandle) {
        if let Some(slot) = self.slots.get_mut(handle.index as usize) {
            if slot.generation == handle.generation {
                if let Some(s) = slot.session.as_mut() {
                    s.poisoned = true;
                }
            }
        }
    }
}

/// Which pruning rule an optimize request starts its cascade from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuleChoice {
    /// The paper's two-parameter rule (the default).
    #[default]
    TwoP,
    /// The four-parameter rule.
    FourP,
    /// The one-parameter percentile rule.
    OneP,
}

impl RuleChoice {
    fn build(self) -> Arc<dyn PruningRule> {
        match self {
            RuleChoice::TwoP => Arc::new(TwoParam::default()),
            RuleChoice::FourP => Arc::new(FourParam::default()),
            RuleChoice::OneP => Arc::new(OneParam::default()),
        }
    }
}

/// Parameters of one optimize request.
#[derive(Debug, Clone, Copy)]
pub struct OptimizeParams {
    /// Variation mode (statistical only: D2D or WID).
    pub mode: VariationMode,
    /// Primary pruning rule.
    pub rule: RuleChoice,
    /// Per-request budget override (`None` = the service baseline).
    pub budget: Option<Budget>,
    /// When set, the request runs through the hierarchical engine
    /// (the `cts` verb; large resident clock trees). Hierarchical
    /// requests bypass the session solution cache.
    pub hier: Option<HierOptions>,
}

impl Default for OptimizeParams {
    fn default() -> Self {
        Self {
            mode: VariationMode::WithinDie,
            rule: RuleChoice::TwoP,
            budget: None,
            hier: None,
        }
    }
}

/// Which buffer library an `edit lib` swaps the session's model to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibChoice {
    /// The full 65 nm library (the open-time default).
    Full,
    /// The single-buffer 65 nm library.
    Single,
}

/// One in-place mutation of a resident session's net or model.
///
/// Structural edits dirty exactly the edited node's root path (those
/// cache entries are invalidated; the rest of the tree replays);
/// `Lib` is model-wide, so it flushes the whole cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EditOp {
    /// Replace a sink's load capacitance (fF).
    SinkCap {
        /// Target node index.
        node: u32,
        /// New load capacitance, fF (finite, non-negative).
        capacitance: f64,
    },
    /// Replace a sink's required arrival time (ps).
    SinkRat {
        /// Target node index.
        node: u32,
        /// New required arrival time, ps (finite).
        required_arrival: f64,
    },
    /// Replace the wire length of a node's parent edge (µm).
    Wire {
        /// Target node index (not the root — it has no parent edge).
        node: u32,
        /// New edge length, µm (finite, non-negative).
        length: f64,
    },
    /// Swap the session's buffer library, rebuilding the model.
    Lib(LibChoice),
}

/// One service request, in submission order.
#[derive(Debug)]
pub enum Request {
    /// Open a session over a net (the tree is validated here, so
    /// optimize never sees an invalid one).
    Open {
        /// The net to make resident.
        tree: Box<RoutingTree>,
        /// Spatial-correlation structure of the session's model.
        spatial: SpatialKind,
    },
    /// Close a session (works on poisoned sessions; frees the slot and
    /// bumps its generation).
    Close {
        /// The session to close.
        handle: SessionHandle,
    },
    /// Run the variation-aware DP against a resident session.
    Optimize {
        /// The session to optimize.
        handle: SessionHandle,
        /// Run parameters.
        params: OptimizeParams,
    },
    /// Mutate a resident session in place (epoch bump + targeted cache
    /// invalidation; the next optimize replays clean subtrees).
    Edit {
        /// The session to mutate.
        handle: SessionHandle,
        /// The mutation.
        op: EditOp,
    },
    /// Structural summary of a session's net.
    Info {
        /// The session to describe.
        handle: SessionHandle,
    },
    /// Service counters.
    Stats,
    /// Liveness probe.
    Ping,
}

/// Service counters, rendered by the protocol's `stats` command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Optimize requests executed (envelope entered), including ones
    /// that returned a typed error.
    pub served: u64,
    /// Optimize requests shed by admission control.
    pub shed: u64,
    /// Requests admitted with tightened budgets under queue pressure.
    pub tightened: u64,
    /// Panics contained by the execution envelope.
    pub panics_contained: u64,
    /// Requests cancelled by watchdog or token (best-so-far completion).
    pub cancelled: u64,
    /// Requests that completed with a degradation report.
    pub degraded: u64,
    /// Live sessions right now.
    pub open_sessions: usize,
    /// High-water mark of queued cost units.
    pub peak_queue_cost: u64,
    /// Nodes replayed from session solution caches across all served
    /// optimize requests.
    pub cache_hits: u64,
    /// Nodes the incremental engine recomputed (the dirty sets).
    pub cache_misses: u64,
    /// Cache entries invalidated by edits, flushes, and armed runs
    /// that degraded or crashed.
    pub cache_invalidations: u64,
}

/// One service response; renders as a single deterministic protocol
/// line (never any wall-clock value, so identical runs byte-compare).
#[derive(Debug)]
pub enum Response {
    /// Session opened.
    Opened {
        /// The new session's handle.
        handle: SessionHandle,
        /// Node count of the resident net.
        nodes: usize,
        /// Sink count of the resident net.
        sinks: usize,
    },
    /// Session closed.
    Closed {
        /// The handle that was closed.
        handle: SessionHandle,
    },
    /// Optimize result.
    Optimized {
        /// The request's id (assigned at submission, in order).
        id: u64,
        /// Session it ran against.
        handle: SessionHandle,
        /// Buffers inserted.
        buffers: usize,
        /// Root RAT mean, ps.
        rat_mean: f64,
        /// Root RAT standard deviation, ps.
        rat_sigma: f64,
        /// Whether the governor degraded the run.
        degraded: bool,
        /// Whether the run was cancelled (watchdog) and completed
        /// best-so-far.
        cancelled: bool,
        /// Whether admission control tightened this request's budget.
        tightened: bool,
        /// Rule fallbacks recorded.
        fallbacks: usize,
        /// List truncations recorded.
        truncations: usize,
    },
    /// Session mutated in place.
    Edited {
        /// The mutated session.
        handle: SessionHandle,
        /// The session's mutation epoch after this edit.
        epoch: u64,
        /// Nodes this edit dirtied: the edited node's root path for
        /// structural edits, the whole net for `edit lib`.
        dirty: u64,
    },
    /// Net summary.
    Info {
        /// The described session.
        handle: SessionHandle,
        /// Net name.
        name: String,
        /// Node count.
        nodes: usize,
        /// Sink count.
        sinks: usize,
        /// Candidate-site count.
        candidates: usize,
    },
    /// Service counters.
    Stats(ServiceStats),
    /// A fault was armed for a request id.
    Injected {
        /// The armed request id.
        id: u64,
    },
    /// Liveness answer.
    Pong,
    /// The request failed with a typed error.
    Error(RequestError),
}

impl Response {
    /// Whether this is an error response.
    #[must_use]
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error(_))
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = u8::from;
        match self {
            Response::Opened {
                handle,
                nodes,
                sinks,
            } => write!(f, "ok open session={handle} nodes={nodes} sinks={sinks}"),
            Response::Closed { handle } => write!(f, "ok close session={handle}"),
            Response::Optimized {
                id,
                handle,
                buffers,
                rat_mean,
                rat_sigma,
                degraded,
                cancelled,
                tightened,
                fallbacks,
                truncations,
            } => write!(
                f,
                "ok opt id={id} session={handle} buffers={buffers} rat={rat_mean:.6} \
                 sigma={rat_sigma:.6} degraded={} cancelled={} tightened={} \
                 fallbacks={fallbacks} truncations={truncations}",
                b(*degraded),
                b(*cancelled),
                b(*tightened),
            ),
            Response::Edited {
                handle,
                epoch,
                dirty,
            } => write!(f, "ok edit session={handle} epoch={epoch} dirty={dirty}"),
            Response::Info {
                handle,
                name,
                nodes,
                sinks,
                candidates,
            } => write!(
                f,
                "ok info session={handle} name={name} nodes={nodes} sinks={sinks} \
                 candidates={candidates}"
            ),
            Response::Stats(s) => write!(
                f,
                "ok stats sessions={} served={} shed={} tightened={} panics={} cancelled={} \
                 degraded={} peak_queue={} cache_hits={} cache_misses={} cache_inval={}",
                s.open_sessions,
                s.served,
                s.shed,
                s.tightened,
                s.panics_contained,
                s.cancelled,
                s.degraded,
                s.peak_queue_cost,
                s.cache_hits,
                s.cache_misses,
                s.cache_invalidations,
            ),
            Response::Injected { id } => write!(f, "ok inject id={id}"),
            Response::Pong => write!(f, "ok pong"),
            Response::Error(e) => write!(f, "err {} {e}", e.kind()),
        }
    }
}

/// A queued submission: either a request still to execute, or a
/// response admission control already settled (a shed).
#[derive(Debug)]
enum Queued {
    Run {
        request: Request,
        /// Optimize-request id (`None` for control-plane requests).
        id: Option<u64>,
        tightened: bool,
    },
    Ready(Box<Response>),
}

/// What one optimize envelope produced, owned so the store borrow can
/// end before poisons and counters are applied.
struct OptOutcome {
    handle: SessionHandle,
    response: Response,
    poison: bool,
    /// Solution-cache deltas this envelope produced (0 on cold runs).
    cache_hits: u64,
    cache_misses: u64,
    cache_invalidations: u64,
}

/// The long-lived optimization service.
#[derive(Debug)]
pub struct Service {
    config: ServiceConfig,
    store: SessionStore,
    queue: VecDeque<Queued>,
    queued_cost: u64,
    next_id: u64,
    faults: RequestFaults,
    stats: ServiceStats,
}

impl Service {
    /// A service with the given policy.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        Self {
            store: SessionStore::new(config.max_sessions),
            config,
            queue: VecDeque::new(),
            queued_cost: 0,
            next_id: 0,
            faults: RequestFaults::new(),
            stats: ServiceStats::default(),
        }
    }

    /// The service's policy.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The session store (read-only; tests assert leak-freedom and
    /// generation monotonicity through it).
    #[must_use]
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.stats;
        s.open_sessions = self.store.live();
        s
    }

    /// Queued (not yet drained) submissions.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Cost units currently queued.
    #[must_use]
    pub fn queued_cost(&self) -> u64 {
        self.queued_cost
    }

    /// Arms a request-scoped fault for the optimize request with id
    /// `id` (ids are assigned in submission order, starting at 1).
    pub fn inject(&mut self, id: u64, fault: RequestFault) -> Response {
        if !self.config.allow_faults {
            return Response::Error(RequestError::FaultsDisabled);
        }
        self.faults.arm(id, fault);
        Response::Injected { id }
    }

    /// Cost of an optimize request in queue-budget units: the DP's work
    /// scales with the resident net's node count. Unresolvable handles
    /// cost nothing — their typed error is settled at execution.
    fn cost_of(&self, handle: SessionHandle) -> u64 {
        self.store.slot(handle).map_or(0, |s| s.tree.len() as u64)
    }

    /// Submits a request to the queue. Control-plane requests (open,
    /// close, info, stats, ping) are always admitted at zero cost;
    /// optimize requests pass admission control and may be shed.
    /// Returns the optimize-request id, if one was assigned.
    pub fn submit(&mut self, request: Request) -> Option<u64> {
        let Request::Optimize { handle, .. } = &request else {
            self.queue.push_back(Queued::Run {
                request,
                id: None,
                tightened: false,
            });
            return None;
        };
        self.next_id += 1;
        let id = self.next_id;
        let cost = self.cost_of(*handle);
        if self.queued_cost.saturating_add(cost) > self.config.queue_hard_cost {
            self.stats.shed += 1;
            let retry_after = Duration::from_millis(self.queued_cost / 100 + 1);
            self.queue.push_back(Queued::Ready(Box::new(Response::Error(
                RequestError::Overloaded {
                    queued_cost: self.queued_cost,
                    limit: self.config.queue_hard_cost,
                    retry_after,
                },
            ))));
            return Some(id);
        }
        let tightened = self.queued_cost > self.config.queue_soft_cost;
        if tightened {
            self.stats.tightened += 1;
        }
        self.queued_cost += cost;
        self.stats.peak_queue_cost = self.stats.peak_queue_cost.max(self.queued_cost);
        self.queue.push_back(Queued::Run {
            request,
            id: Some(id),
            tightened,
        });
        Some(id)
    }

    /// Submits one request and drains immediately — the interactive
    /// (non-pipelined) path.
    pub fn execute(&mut self, request: Request) -> Response {
        self.submit(request);
        self.drain(1)
            .pop()
            .expect("one submission yields one response")
    }

    /// Executes every queued submission, in submission order, and
    /// returns their responses in the same order.
    ///
    /// Runs of consecutive optimize requests are fanned across `jobs`
    /// workers (each request sequential inside); requests are
    /// independent, so the result is bit-identical to `jobs = 1`.
    pub fn drain(&mut self, jobs: usize) -> Vec<Response> {
        let mut items: Vec<Queued> = self.queue.drain(..).collect();
        self.queued_cost = 0;
        let mut out = Vec::with_capacity(items.len());
        let mut batch: Vec<(u64, SessionHandle, OptimizeParams, bool)> = Vec::new();
        for q in items.drain(..) {
            match q {
                Queued::Run {
                    request: Request::Optimize { handle, params },
                    id,
                    tightened,
                } => {
                    batch.push((
                        id.expect("optimize always has an id"),
                        handle,
                        params,
                        tightened,
                    ));
                }
                other => {
                    if !batch.is_empty() {
                        out.extend(self.run_optimize_batch(std::mem::take(&mut batch), jobs));
                    }
                    match other {
                        Queued::Ready(r) => out.push(*r),
                        Queued::Run { request, .. } => out.push(self.run_control(request)),
                    }
                }
            }
        }
        if !batch.is_empty() {
            out.extend(self.run_optimize_batch(batch, jobs));
        }
        out
    }

    /// Executes a control-plane request inline.
    fn run_control(&mut self, request: Request) -> Response {
        match request {
            Request::Open { tree, spatial } => {
                let (nodes, sinks) = (tree.len(), tree.sink_count());
                match self.store.open(*tree, spatial) {
                    Ok(handle) => Response::Opened {
                        handle,
                        nodes,
                        sinks,
                    },
                    Err(e) => Response::Error(e),
                }
            }
            Request::Close { handle } => match self.store.close(handle) {
                Ok(()) => Response::Closed { handle },
                Err(e) => Response::Error(e),
            },
            Request::Edit { handle, op } => self.apply_edit(handle, op),
            Request::Info { handle } => match self.store.resolve(handle) {
                Ok(session) => {
                    let t = session.tree();
                    Response::Info {
                        handle,
                        name: t.name().to_owned(),
                        nodes: t.len(),
                        sinks: t.sink_count(),
                        candidates: t.candidate_count(),
                    }
                }
                Err(e) => Response::Error(e),
            },
            Request::Stats => Response::Stats(self.stats()),
            Request::Ping => Response::Pong,
            Request::Optimize { .. } => unreachable!("optimize is batched, not control-plane"),
        }
    }

    /// Applies one in-place mutation: validate → mutate → resign the
    /// root path (or rebuild the model) → invalidate exactly the
    /// dirtied cache entries → bump the epoch.
    fn apply_edit(&mut self, handle: SessionHandle, op: EditOp) -> Response {
        let session = match self.store.resolve_mut(handle) {
            Ok(s) => s,
            Err(e) => return Response::Error(e),
        };
        // Pre-validate against this session's net so every bad edit is
        // a typed `Malformed`, never a tree-mutator assert.
        let check_node = |node: u32, len: usize| -> Result<NodeId, RequestError> {
            if (node as usize) < len {
                Ok(NodeId(node))
            } else {
                Err(malformed(format!(
                    "node {node} out of range (net has {len} nodes)"
                )))
            }
        };
        let len = session.tree.len();
        let dirtied = match op {
            EditOp::SinkCap { node, capacitance } => {
                let id = match check_node(node, len) {
                    Ok(id) => id,
                    Err(e) => return Response::Error(e),
                };
                let NodeKind::Sink {
                    required_arrival, ..
                } = session.tree.node(id).kind
                else {
                    return Response::Error(malformed(format!("node {node} is not a sink")));
                };
                if !(capacitance.is_finite() && capacitance >= 0.0) {
                    return Response::Error(malformed(
                        "sink capacitance must be finite and non-negative",
                    ));
                }
                session.tree.set_sink(id, capacitance, required_arrival);
                session.sigs.update_path(&session.tree, id)
            }
            EditOp::SinkRat {
                node,
                required_arrival,
            } => {
                let id = match check_node(node, len) {
                    Ok(id) => id,
                    Err(e) => return Response::Error(e),
                };
                let NodeKind::Sink { capacitance, .. } = session.tree.node(id).kind else {
                    return Response::Error(malformed(format!("node {node} is not a sink")));
                };
                if !required_arrival.is_finite() {
                    return Response::Error(malformed("sink RAT must be finite"));
                }
                session.tree.set_sink(id, capacitance, required_arrival);
                session.sigs.update_path(&session.tree, id)
            }
            EditOp::Wire { node, length } => {
                let id = match check_node(node, len) {
                    Ok(id) => id,
                    Err(e) => return Response::Error(e),
                };
                if id == session.tree.root() {
                    return Response::Error(malformed("the root has no parent edge"));
                }
                if !(length.is_finite() && length >= 0.0) {
                    return Response::Error(malformed(
                        "wire length must be finite and non-negative",
                    ));
                }
                session.tree.set_edge_length(id, length);
                session.sigs.update_path(&session.tree, id)
            }
            EditOp::Lib(choice) => {
                let library = match choice {
                    LibChoice::Full => BufferLibrary::default_65nm(),
                    LibChoice::Single => BufferLibrary::single_65nm(),
                };
                session.model = ProcessModel::new(
                    session.tree.bounding_box(),
                    session.spatial,
                    VariationBudgets::paper_5pct(),
                    library,
                );
                session.model_epoch += 1;
                Vec::new()
            }
        };
        let mut cache = session.cache.lock().unwrap_or_else(PoisonError::into_inner);
        let before = cache.invalidations();
        let dirty = if matches!(op, EditOp::Lib(_)) {
            cache.clear();
            len as u64
        } else {
            for &id in &dirtied {
                cache.invalidate(id);
            }
            dirtied.len() as u64
        };
        let invalidated = cache.invalidations() - before;
        drop(cache);
        session.epoch += 1;
        let epoch = session.epoch;
        self.stats.cache_invalidations += invalidated;
        Response::Edited {
            handle,
            epoch,
            dirty,
        }
    }

    /// Executes a contiguous run of optimize requests across `jobs`
    /// workers, then applies poisons and counters.
    fn run_optimize_batch(
        &mut self,
        batch: Vec<(u64, SessionHandle, OptimizeParams, bool)>,
        jobs: usize,
    ) -> Vec<Response> {
        // One-shot fault consumption needs `&mut self.faults`; do it
        // before the store borrow so the parallel region is read-only.
        let faults: Vec<Option<RequestFault>> =
            batch.iter().map(|&(id, ..)| self.faults.take(id)).collect();
        let config = self.config;
        let outcomes: Vec<OptOutcome> = {
            let store = &self.store;
            let prepared: Vec<_> = batch
                .iter()
                .zip(faults)
                .map(|(&(id, handle, params, tightened), fault)| {
                    let resolved = store.resolve(handle);
                    (id, handle, params, tightened, resolved, fault)
                })
                .collect();
            crate::pool::run_indexed(prepared.len(), jobs, |i| {
                let (id, handle, params, tightened, ref resolved, fault) = prepared[i];
                run_envelope(
                    &config,
                    id,
                    handle,
                    params,
                    tightened,
                    resolved.clone(),
                    fault,
                )
            })
        };
        let mut out = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            self.stats.served += 1;
            self.stats.cache_hits += outcome.cache_hits;
            self.stats.cache_misses += outcome.cache_misses;
            self.stats.cache_invalidations += outcome.cache_invalidations;
            if outcome.poison {
                self.store.poison(outcome.handle);
                self.stats.panics_contained += 1;
            }
            if let Response::Optimized {
                cancelled,
                degraded,
                ..
            } = &outcome.response
            {
                if *cancelled {
                    self.stats.cancelled += 1;
                }
                if *degraded {
                    self.stats.degraded += 1;
                }
            }
            out.push(outcome.response);
        }
        out
    }
}

/// Halves every finite soft limit — how admission control makes a
/// request admitted under queue pressure degrade earlier instead of
/// being dropped.
fn tighten(budget: Budget) -> Budget {
    let mut b = budget;
    if b.soft_solutions != usize::MAX {
        b.soft_solutions /= 2;
    }
    if b.soft_time != Duration::MAX {
        b.soft_time /= 2;
    }
    if b.soft_mem_bytes != usize::MAX {
        b.soft_mem_bytes /= 2;
    }
    b.normalized()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// The hardened per-request execution envelope: resolve, arm the
/// watchdog and any injected fault, run the governed DP under
/// `catch_unwind`, and map the outcome to a structured response.
///
/// When the session cache is armed (service-enabled, no fault, an
/// unconstraining budget), the DP runs through
/// [`optimize_incremental`], replaying clean subtrees from the cache.
/// The cache mutex is locked *outside* `catch_unwind` and the closure
/// only borrows the guard, so a contained panic can neither poison the
/// mutex nor leave half-written entries live — the still-held guard
/// flushes them on the way out.
fn run_envelope(
    config: &ServiceConfig,
    id: u64,
    handle: SessionHandle,
    params: OptimizeParams,
    tightened: bool,
    resolved: Result<&Session, RequestError>,
    fault: Option<RequestFault>,
) -> OptOutcome {
    let session = match resolved {
        Ok(s) => s,
        Err(e) => {
            return OptOutcome {
                handle,
                response: Response::Error(e),
                poison: false,
                cache_hits: 0,
                cache_misses: 0,
                cache_invalidations: 0,
            }
        }
    };
    let (tree, model) = (&session.tree, &session.model);
    let mut budget = params.budget.unwrap_or(config.budget);
    if tightened {
        budget = tighten(budget);
    }
    // Service-level parallelism is across requests; each request's DP
    // stays sequential (cancellable runs skip the parallel probe
    // anyway — it never polls the token).
    let options = DpOptions {
        jobs: 1,
        ..DpOptions::default()
    };
    let cascade = fallback_cascade(params.rule.build());
    let sizing = WireSizing::single();
    let mut injector = match fault {
        // The injected panic fires on the first node the DP visits.
        Some(RequestFault::Panic) => Some(FaultInjector::new(FaultPlan::panic_at(1))),
        // Synthetic capacity pressure: pad every node's list.
        Some(RequestFault::AllocSpike(count)) => Some(FaultInjector::new(FaultPlan::pad(1, count))),
        _ => None,
    };
    // Arm the session cache only for runs whose lists are the
    // unconstrained fixpoint: a fault-injected or budget-constrained
    // run may produce (or want to consume) lists that differ from the
    // cold result, so it takes the cold path untouched. Hierarchical
    // runs splice cut-node frontiers, so their lists are not the flat
    // fixpoint either — they bypass the cache the same way.
    let armed =
        config.use_cache && fault.is_none() && !budget.constrains_run() && params.hier.is_none();
    let mut cache_guard =
        armed.then(|| session.cache.lock().unwrap_or_else(PoisonError::into_inner));
    let inv_before = cache_guard.as_ref().map_or(0, |c| c.invalidations());
    let run_sig = run_signature(
        match params.rule {
            RuleChoice::TwoP => 2,
            RuleChoice::FourP => 4,
            RuleChoice::OneP => 1,
        },
        match params.mode {
            VariationMode::Nominal => 0,
            VariationMode::DieToDie => 1,
            VariationMode::WithinDie => 2,
        },
        options.sparsify_epsilon,
        sizing.widths().len(),
        options.use_lazy_wire,
        session.model_epoch,
    );
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let controls = RunControls {
            // A delay fault pre-ages the run's clock, so the watchdog
            // deadline trips deterministically on the first check.
            clock: match fault {
                Some(RequestFault::Delay(d)) => Some(Box::new(SkewedClock::new(1.0, d)) as _),
                _ => None,
            },
            faults: injector.as_mut(),
            cancel: Some(CancelToken::new()),
            watchdog: config.watchdog,
        };
        match (params.hier, cache_guard.as_mut()) {
            (Some(hier), _) => optimize_hier(
                tree,
                model,
                params.mode,
                cascade,
                &sizing,
                &options,
                &hier,
                &budget,
                controls,
            )
            .map(HierResult::into_governed),
            (None, Some(cache)) => optimize_incremental(
                tree,
                model,
                params.mode,
                cascade,
                &sizing,
                &options,
                &budget,
                controls,
                &session.sigs,
                cache,
                run_sig,
            ),
            (None, None) => optimize_governed_detailed(
                tree,
                model,
                params.mode,
                cascade,
                &sizing,
                &options,
                &budget,
                controls,
            ),
        }
    }));
    // Any outcome other than a clean completion flushes the cache: a
    // typed error or contained panic may have stored partial entries,
    // and `optimize_incremental` already cleared on degradation.
    if let Some(cache) = cache_guard.as_mut() {
        match &outcome {
            Ok(Ok(_)) => {}
            _ => cache.clear(),
        }
    }
    let cache_invalidations = cache_guard
        .as_ref()
        .map_or(0, |c| c.invalidations() - inv_before);
    drop(cache_guard);
    match outcome {
        Ok(Ok(governed)) => OptOutcome {
            handle,
            response: Response::Optimized {
                id,
                handle,
                buffers: governed.result.assignment.len(),
                rat_mean: governed.result.root_rat.mean(),
                // sqrt(-0.0) is -0.0; abs() keeps the rendered sigma at
                // a plain 0.000000.
                rat_sigma: governed.result.root_rat.std_dev().abs(),
                degraded: governed.degradation.degraded(),
                cancelled: governed.degradation.cancelled,
                tightened,
                fallbacks: governed.degradation.rule_fallbacks(),
                truncations: governed.degradation.truncations(),
            },
            poison: false,
            cache_hits: governed.result.stats.cache_hits as u64,
            cache_misses: governed.result.stats.cache_misses as u64,
            cache_invalidations,
        },
        Ok(Err(e)) => OptOutcome {
            handle,
            response: Response::Error(RequestError::Insertion(e)),
            poison: false,
            cache_hits: 0,
            cache_misses: 0,
            cache_invalidations,
        },
        Err(payload) => OptOutcome {
            handle,
            response: Response::Error(RequestError::Internal {
                message: panic_message(payload.as_ref()),
            }),
            poison: true,
            cache_hits: 0,
            cache_misses: 0,
            cache_invalidations,
        },
    }
}

// ---------------------------------------------------------------------------
// Line protocol
// ---------------------------------------------------------------------------

/// One parsed protocol line.
#[derive(Debug)]
pub enum Command {
    /// A service request to submit.
    Req(Request),
    /// Arm a request-scoped fault.
    Inject {
        /// Target optimize-request id.
        id: u64,
        /// The fault to arm.
        fault: RequestFault,
    },
    /// Start batching: subsequent requests queue until `commit`.
    Begin,
    /// Drain the batch and print every response, in order.
    Commit,
    /// Shut the service down cleanly.
    Quit,
    /// Print the protocol summary.
    Help,
    /// Open a session over an inline tree: the serve loop collects
    /// subsequent lines until `end` and parses them as `varbuf-tree v1`.
    LoadTree {
        /// Spatial-correlation structure for the session's model.
        spatial: SpatialKind,
    },
}

fn malformed(message: impl Into<String>) -> RequestError {
    RequestError::Malformed {
        message: message.into(),
    }
}

fn parse_spatial(token: Option<&str>) -> Result<SpatialKind, RequestError> {
    match token {
        None | Some("hetero") => Ok(SpatialKind::Heterogeneous),
        Some("homog") => Ok(SpatialKind::Homogeneous),
        Some(other) => Err(malformed(format!(
            "unknown spatial kind `{other}` (expected homog|hetero)"
        ))),
    }
}

/// Parses an `open` net spec: `random:SINKS[:SEED]` or `htree:LEVELS`.
///
/// # Errors
///
/// [`RequestError::Malformed`] for unknown forms or out-of-range sizes
/// (sinks `1..=65536`, levels `1..=24`) — the same inputs that would
/// trip generator asserts are typed errors here.
pub fn parse_open_spec(spec: &str) -> Result<RoutingTree, RequestError> {
    if let Some(rest) = spec.strip_prefix("random:") {
        let mut parts = rest.split(':');
        let sinks: usize = parts
            .next()
            .unwrap_or_default()
            .parse()
            .map_err(|_| malformed(format!("bad sink count in `{spec}`")))?;
        if sinks == 0 || sinks > MAX_SPEC_SINKS {
            return Err(malformed(format!(
                "sink count must be in 1..={MAX_SPEC_SINKS}, got {sinks}"
            )));
        }
        let seed: u64 = match parts.next() {
            Some(s) => s
                .parse()
                .map_err(|_| malformed(format!("bad seed in `{spec}`")))?,
            None => 42,
        };
        if parts.next().is_some() {
            return Err(malformed(format!("trailing fields in `{spec}`")));
        }
        return Ok(generate_benchmark(&BenchmarkSpec::random(
            "served", sinks, seed,
        )));
    }
    if let Some(rest) = spec.strip_prefix("htree:") {
        let levels: u32 = rest
            .parse()
            .map_err(|_| malformed(format!("bad level count in `{spec}`")))?;
        if !(1..=24).contains(&levels) {
            return Err(malformed(format!(
                "H-tree levels must be in 1..=24, got {levels}"
            )));
        }
        return Ok(generate_htree(&HTreeSpec::with_levels(levels)));
    }
    Err(malformed(format!(
        "unknown net spec `{spec}` (expected random:SINKS[:SEED] or htree:LEVELS)"
    )))
}

fn parse_handle(token: Option<&str>, cmd: &str) -> Result<SessionHandle, RequestError> {
    token
        .ok_or_else(|| malformed(format!("`{cmd}` needs a session handle")))?
        .parse()
}

fn parse_opt_params(tokens: &[&str]) -> Result<OptimizeParams, RequestError> {
    let mut params = OptimizeParams::default();
    let mut budget: Option<Budget> = None;
    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| malformed(format!("expected key=value, got `{token}`")))?;
        match key {
            "mode" => {
                params.mode = match value {
                    "d2d" => VariationMode::DieToDie,
                    "wid" => VariationMode::WithinDie,
                    other => {
                        return Err(malformed(format!(
                            "unknown mode `{other}` (expected d2d|wid)"
                        )))
                    }
                };
            }
            "rule" => {
                params.rule = match value {
                    "2p" => RuleChoice::TwoP,
                    "4p" => RuleChoice::FourP,
                    "1p" => RuleChoice::OneP,
                    other => {
                        return Err(malformed(format!(
                            "unknown rule `{other}` (expected 2p|4p|1p)"
                        )))
                    }
                };
            }
            "budget-solutions" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| malformed(format!("bad budget-solutions `{value}`")))?;
                if n == 0 {
                    return Err(malformed("budget-solutions must be positive"));
                }
                let b = budget.get_or_insert_with(Budget::unlimited);
                b.soft_solutions = n;
                b.hard_solutions = n.saturating_mul(2);
            }
            "budget-time" => {
                let secs: f64 = value
                    .parse()
                    .map_err(|_| malformed(format!("bad budget-time `{value}`")))?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(malformed("budget-time must be positive seconds"));
                }
                let b = budget.get_or_insert_with(Budget::unlimited);
                b.soft_time = Duration::from_secs_f64(secs);
                b.hard_time = Duration::from_secs_f64(secs * 2.0);
            }
            "cut-nodes" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| malformed(format!("bad cut-nodes `{value}`")))?;
                params
                    .hier
                    .get_or_insert_with(HierOptions::default)
                    .cut_nodes = n;
            }
            other => {
                return Err(malformed(format!(
                    "unknown opt key `{other}` \
                     (expected mode|rule|budget-solutions|budget-time|cut-nodes)"
                )))
            }
        }
    }
    params.budget = budget;
    Ok(params)
}

fn parse_edit(tokens: &[&str]) -> Result<Command, RequestError> {
    let kind = tokens
        .first()
        .ok_or_else(|| malformed("`edit` needs a kind (sink|rat|wire|lib)"))?;
    let handle = parse_handle(tokens.get(1).copied(), "edit")?;
    // Node tokens accept the rendered `n<IDX>` form or a bare index.
    let parse_node = |pos: usize| -> Result<u32, RequestError> {
        let token = tokens
            .get(pos)
            .ok_or_else(|| malformed(format!("`edit {kind}` needs a node index")))?;
        token
            .strip_prefix('n')
            .unwrap_or(token)
            .parse()
            .map_err(|_| malformed(format!("bad node index `{token}`")))
    };
    let parse_value = |pos: usize, what: &str| -> Result<f64, RequestError> {
        let token = tokens
            .get(pos)
            .ok_or_else(|| malformed(format!("`edit {kind}` needs a {what}")))?;
        token
            .parse()
            .map_err(|_| malformed(format!("bad {what} `{token}`")))
    };
    let op = match *kind {
        "sink" => EditOp::SinkCap {
            node: parse_node(2)?,
            capacitance: parse_value(3, "capacitance (fF)")?,
        },
        "rat" => EditOp::SinkRat {
            node: parse_node(2)?,
            required_arrival: parse_value(3, "required arrival (ps)")?,
        },
        "wire" => EditOp::Wire {
            node: parse_node(2)?,
            length: parse_value(3, "length (um)")?,
        },
        "lib" => EditOp::Lib(match tokens.get(2).copied() {
            Some("full") => LibChoice::Full,
            Some("single") => LibChoice::Single,
            other => {
                return Err(malformed(format!(
                    "unknown library `{}` (expected full|single)",
                    other.unwrap_or("")
                )))
            }
        }),
        other => {
            return Err(malformed(format!(
                "unknown edit kind `{other}` (expected sink|rat|wire|lib)"
            )))
        }
    };
    let arity = if matches!(op, EditOp::Lib(_)) { 3 } else { 4 };
    if tokens.len() > arity {
        return Err(malformed(format!("trailing fields after `edit {kind}`")));
    }
    Ok(Command::Req(Request::Edit { handle, op }))
}

fn parse_inject(tokens: &[&str]) -> Result<Command, RequestError> {
    let kind = tokens
        .first()
        .ok_or_else(|| malformed("`inject` needs a fault kind (panic|delay|spike)"))?;
    let id: u64 = tokens
        .get(1)
        .ok_or_else(|| malformed("`inject` needs a request id"))?
        .parse()
        .map_err(|_| malformed("bad request id"))?;
    let fault = match *kind {
        "panic" => RequestFault::Panic,
        "delay" => {
            let secs: f64 = tokens
                .get(2)
                .ok_or_else(|| malformed("`inject delay` needs seconds"))?
                .parse()
                .map_err(|_| malformed("bad delay seconds"))?;
            if !(secs.is_finite() && secs > 0.0) {
                return Err(malformed("delay must be positive seconds"));
            }
            RequestFault::Delay(Duration::from_secs_f64(secs))
        }
        "spike" => {
            let count: usize = tokens
                .get(2)
                .ok_or_else(|| malformed("`inject spike` needs a pad count"))?
                .parse()
                .map_err(|_| malformed("bad spike count"))?;
            RequestFault::AllocSpike(count)
        }
        other => {
            return Err(malformed(format!(
                "unknown fault kind `{other}` (expected panic|delay|spike)"
            )))
        }
    };
    Ok(Command::Inject { id, fault })
}

/// Parses one protocol line into a [`Command`].
///
/// # Errors
///
/// [`RequestError::Malformed`] on empty lines, unknown verbs, or bad
/// arguments — the serve loop renders these as `err malformed …` and
/// keeps serving.
pub fn parse_line(line: &str) -> Result<Command, RequestError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some((&verb, rest)) = tokens.split_first() else {
        return Err(malformed("empty command"));
    };
    match verb {
        "open" => {
            let spec = rest
                .first()
                .ok_or_else(|| malformed("`open` needs a net spec"))?;
            let tree = parse_open_spec(spec)?;
            let spatial = parse_spatial(rest.get(1).copied())?;
            if rest.len() > 2 {
                return Err(malformed("`open` takes at most two arguments"));
            }
            Ok(Command::Req(Request::Open {
                tree: Box::new(tree),
                spatial,
            }))
        }
        "load" => {
            let spatial = parse_spatial(rest.first().copied())?;
            Ok(Command::LoadTree { spatial })
        }
        "close" => Ok(Command::Req(Request::Close {
            handle: parse_handle(rest.first().copied(), "close")?,
        })),
        "opt" => {
            let handle = parse_handle(rest.first().copied(), "opt")?;
            let params = parse_opt_params(&rest[1..])?;
            Ok(Command::Req(Request::Optimize { handle, params }))
        }
        "cts" => {
            // `opt` routed through the hierarchical engine — the verb
            // resident clock-tree sessions use at full-chip scale.
            let handle = parse_handle(rest.first().copied(), "cts")?;
            let mut params = parse_opt_params(&rest[1..])?;
            params.hier.get_or_insert_with(HierOptions::default);
            Ok(Command::Req(Request::Optimize { handle, params }))
        }
        "edit" => parse_edit(rest),
        "info" => Ok(Command::Req(Request::Info {
            handle: parse_handle(rest.first().copied(), "info")?,
        })),
        "stats" => Ok(Command::Req(Request::Stats)),
        "ping" => Ok(Command::Req(Request::Ping)),
        "inject" => parse_inject(rest),
        "begin" => Ok(Command::Begin),
        "commit" => Ok(Command::Commit),
        "quit" => Ok(Command::Quit),
        "help" => Ok(Command::Help),
        other => Err(malformed(format!("unknown command `{other}`"))),
    }
}

/// The protocol summary printed by the `help` command.
pub const PROTOCOL_HELP: &str = "\
commands:
  open <random:SINKS[:SEED]|htree:LEVELS> [homog|hetero]   open a session
  load [homog|hetero]   read a varbuf-tree v1 net on following lines, until `end`
  close s<I>.<G>        close a session (frees the slot, bumps its generation)
  opt s<I>.<G> [mode=d2d|wid] [rule=2p|4p|1p] [budget-solutions=N] [budget-time=SECS]
  cts s<I>.<G> [same keys as opt] [cut-nodes=N]
                        opt through the hierarchical engine (cut-node
                        decomposition + streamed frontiers; clock trees)
  edit sink s<I>.<G> <NODE> <CAP_FF> | edit rat s<I>.<G> <NODE> <RAT_PS>
  edit wire s<I>.<G> <NODE> <LEN_UM> | edit lib s<I>.<G> <full|single>
                        mutate the resident net in place; the next opt
                        replays cached subtrees the edit left clean
  info s<I>.<G>         net summary
  stats                 service counters
  ping                  liveness probe
  inject panic <ID> | inject delay <ID> <SECS> | inject spike <ID> <COUNT>
                        arm a fault for optimize request ID (needs --faults)
  begin / commit        queue requests, then drain them in order
  quit                  clean shutdown";

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_tree() -> RoutingTree {
        generate_benchmark(&BenchmarkSpec::random("t", 4, 7))
    }

    fn open_tiny(service: &mut Service) -> SessionHandle {
        match service.execute(Request::Open {
            tree: Box::new(tiny_tree()),
            spatial: SpatialKind::Heterogeneous,
        }) {
            Response::Opened { handle, .. } => handle,
            other => panic!("expected Opened, got {other}"),
        }
    }

    #[test]
    fn handle_roundtrips_through_display() {
        let h = SessionHandle {
            index: 3,
            generation: 17,
        };
        assert_eq!(h.to_string(), "s3.17");
        assert_eq!("s3.17".parse::<SessionHandle>().unwrap(), h);
        assert!("x3.17".parse::<SessionHandle>().is_err());
        assert!("s3".parse::<SessionHandle>().is_err());
        assert!("s3.x".parse::<SessionHandle>().is_err());
    }

    #[test]
    fn close_bumps_generation_and_stales_the_handle() {
        let mut service = Service::new(ServiceConfig::default());
        let h1 = open_tiny(&mut service);
        assert_eq!(service.store().live(), 1);
        assert!(matches!(
            service.execute(Request::Close { handle: h1 }),
            Response::Closed { .. }
        ));
        assert_eq!(service.store().live(), 0);
        // The slot is reused with a bumped generation...
        let h2 = open_tiny(&mut service);
        assert_eq!(h2.index, h1.index);
        assert_eq!(h2.generation, h1.generation + 1);
        // ...and the old handle is a typed error, not the new net.
        match service.execute(Request::Optimize {
            handle: h1,
            params: OptimizeParams::default(),
        }) {
            Response::Error(RequestError::StaleHandle { handle }) => assert_eq!(handle, h1),
            other => panic!("expected stale-handle error, got {other}"),
        }
    }

    #[test]
    fn session_limit_is_a_typed_error() {
        let mut service = Service::new(ServiceConfig {
            max_sessions: 1,
            ..ServiceConfig::default()
        });
        open_tiny(&mut service);
        match service.execute(Request::Open {
            tree: Box::new(tiny_tree()),
            spatial: SpatialKind::Heterogeneous,
        }) {
            Response::Error(RequestError::SessionLimit { limit }) => assert_eq!(limit, 1),
            other => panic!("expected session-limit error, got {other}"),
        }
    }

    #[test]
    fn contained_panic_poisons_only_its_session() {
        let mut service = Service::new(ServiceConfig {
            allow_faults: true,
            ..ServiceConfig::default()
        });
        let healthy = open_tiny(&mut service);
        let doomed = open_tiny(&mut service);
        // Ids are assigned in submission order: the next opt is id 1.
        assert!(matches!(
            service.inject(1, RequestFault::Panic),
            Response::Injected { id: 1 }
        ));
        match service.execute(Request::Optimize {
            handle: doomed,
            params: OptimizeParams::default(),
        }) {
            Response::Error(RequestError::Internal { message }) => {
                assert!(message.contains("injected panic"), "got: {message}");
            }
            other => panic!("expected contained panic, got {other}"),
        }
        // The faulted session only accepts close now.
        assert!(matches!(
            service.execute(Request::Optimize {
                handle: doomed,
                params: OptimizeParams::default(),
            }),
            Response::Error(RequestError::SessionPoisoned { .. })
        ));
        // The other session is untouched.
        assert!(matches!(
            service.execute(Request::Optimize {
                handle: healthy,
                params: OptimizeParams::default(),
            }),
            Response::Optimized { .. }
        ));
        assert!(matches!(
            service.execute(Request::Close { handle: doomed }),
            Response::Closed { .. }
        ));
        assert_eq!(service.stats().panics_contained, 1);
    }

    #[test]
    fn watchdog_cancels_a_delayed_request_best_so_far() {
        let mut service = Service::new(ServiceConfig {
            allow_faults: true,
            watchdog: Some(Duration::from_millis(50)),
            ..ServiceConfig::default()
        });
        let h = open_tiny(&mut service);
        // Pre-age the request's clock past the watchdog deadline.
        service.inject(1, RequestFault::Delay(Duration::from_secs(5)));
        match service.execute(Request::Optimize {
            handle: h,
            params: OptimizeParams::default(),
        }) {
            Response::Optimized { cancelled, .. } => {
                assert!(cancelled, "watchdog should have cancelled the run");
            }
            other => panic!("expected cancelled-but-completed run, got {other}"),
        }
        assert_eq!(service.stats().cancelled, 1);
    }

    #[test]
    fn hard_queue_budget_sheds_and_soft_budget_tightens() {
        // Budgets are in tree-node units; derive them from the actual
        // cost so exactly two requests fit and the second is tightened.
        let cost = {
            let mut probe = Service::new(ServiceConfig::default());
            let h = open_tiny(&mut probe);
            probe.cost_of(h)
        };
        assert!(cost > 1, "tiny tree cost: {cost}");
        let mut service = Service::new(ServiceConfig {
            queue_soft_cost: cost - 1,
            queue_hard_cost: cost * 2,
            ..ServiceConfig::default()
        });
        let h = open_tiny(&mut service);
        service.submit(Request::Optimize {
            handle: h,
            params: OptimizeParams::default(),
        });
        service.submit(Request::Optimize {
            handle: h,
            params: OptimizeParams::default(),
        });
        // Third request would exceed the hard budget → shed at submit.
        service.submit(Request::Optimize {
            handle: h,
            params: OptimizeParams::default(),
        });
        let responses = service.drain(1);
        assert_eq!(responses.len(), 3);
        assert!(matches!(
            responses[0],
            Response::Optimized {
                tightened: false,
                ..
            }
        ));
        assert!(
            matches!(
                responses[1],
                Response::Optimized {
                    tightened: true,
                    ..
                }
            ),
            "second request was admitted over the soft budget"
        );
        match &responses[2] {
            Response::Error(RequestError::Overloaded {
                queued_cost,
                limit,
                retry_after,
            }) => {
                assert_eq!(*queued_cost, cost * 2);
                assert_eq!(*limit, cost * 2);
                assert!(*retry_after > Duration::ZERO);
            }
            other => panic!("expected overloaded, got {other}"),
        }
        let stats = service.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.tightened, 1);
        assert_eq!(service.queued_cost(), 0);
    }

    #[test]
    fn faults_require_opt_in() {
        let mut service = Service::new(ServiceConfig::default());
        assert!(matches!(
            service.inject(1, RequestFault::Panic),
            Response::Error(RequestError::FaultsDisabled)
        ));
    }

    #[test]
    fn drain_is_order_preserving_across_jobs() {
        let run = |jobs: usize| -> Vec<String> {
            let mut service = Service::new(ServiceConfig::default());
            let h = open_tiny(&mut service);
            for _ in 0..4 {
                service.submit(Request::Optimize {
                    handle: h,
                    params: OptimizeParams::default(),
                });
            }
            service.submit(Request::Close { handle: h });
            service
                .drain(jobs)
                .iter()
                .map(ToString::to_string)
                .collect()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn edits_bump_epoch_and_dirty_only_the_root_path() {
        let mut service = Service::new(ServiceConfig::default());
        let h = open_tiny(&mut service);
        // Warm the cache, then edit one sink's RAT: the replay after it
        // must recompute only the dirtied root path.
        assert!(matches!(
            service.execute(Request::Optimize {
                handle: h,
                params: OptimizeParams::default(),
            }),
            Response::Optimized { .. }
        ));
        let warm = service.stats();
        assert_eq!(warm.cache_hits, 0, "cold run replays nothing");
        let sink = {
            let tree = service.store().resolve(h).unwrap().tree();
            tree.sinks().next().unwrap()
        };
        let dirty = match service.execute(Request::Edit {
            handle: h,
            op: EditOp::SinkRat {
                node: sink.0,
                required_arrival: 321.0,
            },
        }) {
            Response::Edited {
                epoch: 1, dirty, ..
            } => dirty,
            other => panic!("expected first-epoch Edited, got {other}"),
        };
        let nodes = service.store().resolve(h).unwrap().tree().len() as u64;
        assert!(dirty >= 1 && dirty < nodes, "path dirty count: {dirty}");
        assert!(matches!(
            service.execute(Request::Optimize {
                handle: h,
                params: OptimizeParams::default(),
            }),
            Response::Optimized { .. }
        ));
        let s = service.stats();
        assert_eq!(s.cache_hits, nodes - dirty, "clean subtrees replayed");
        assert!(s.cache_invalidations >= dirty);
        // A library swap is model-wide: the next run is cold again.
        assert!(matches!(
            service.execute(Request::Edit {
                handle: h,
                op: EditOp::Lib(LibChoice::Single),
            }),
            Response::Edited { epoch: 2, .. }
        ));
        let before = service.stats().cache_hits;
        assert!(matches!(
            service.execute(Request::Optimize {
                handle: h,
                params: OptimizeParams::default(),
            }),
            Response::Optimized { .. }
        ));
        assert_eq!(service.stats().cache_hits, before, "lib swap flushed");
    }

    #[test]
    fn edits_reject_bad_targets_with_typed_errors() {
        let mut service = Service::new(ServiceConfig::default());
        let h = open_tiny(&mut service);
        for (op, what) in [
            (
                EditOp::SinkCap {
                    node: 10_000,
                    capacitance: 1.0,
                },
                "out-of-range node",
            ),
            (
                EditOp::SinkRat {
                    node: 0,
                    required_arrival: 1.0,
                },
                "root is not a sink",
            ),
            (
                EditOp::Wire {
                    node: 0,
                    length: 5.0,
                },
                "root has no parent edge",
            ),
            (
                EditOp::Wire {
                    node: 1,
                    length: f64::NAN,
                },
                "non-finite length",
            ),
        ] {
            assert!(
                matches!(
                    service.execute(Request::Edit { handle: h, op }),
                    Response::Error(RequestError::Malformed { .. })
                ),
                "{what} should be malformed"
            );
        }
        // Rejected edits never bump the epoch.
        let epoch = service.store().resolve(h).unwrap().epoch();
        assert_eq!(epoch, 0);
    }

    #[test]
    fn incremental_replay_is_byte_identical_to_cold() {
        // The same open/edit/opt script against a cache-on and a
        // cache-off service must render identical responses (the stats
        // line is excluded — counters legitimately differ).
        let run = |use_cache: bool| -> Vec<String> {
            let mut service = Service::new(ServiceConfig {
                use_cache,
                ..ServiceConfig::default()
            });
            let h = match service.execute(Request::Open {
                tree: Box::new(generate_benchmark(&BenchmarkSpec::random("t", 24, 11))),
                spatial: SpatialKind::Heterogeneous,
            }) {
                Response::Opened { handle, .. } => handle,
                other => panic!("expected Opened, got {other}"),
            };
            let sink = {
                let tree = service.store().resolve(h).unwrap().tree();
                tree.sinks().nth(2).unwrap()
            };
            let mut out = Vec::new();
            // 2P/1P only: unconstrained 4P is intractable at this size
            // (the bounds oracle caps it at 6 sinks); the fuzz oracle
            // covers 4P replay identity on small nets.
            for (rule, rat) in [
                (RuleChoice::TwoP, 100.0),
                (RuleChoice::OneP, 250.0),
                (RuleChoice::TwoP, -50.0),
            ] {
                out.push(
                    service
                        .execute(Request::Edit {
                            handle: h,
                            op: EditOp::SinkRat {
                                node: sink.0,
                                required_arrival: rat,
                            },
                        })
                        .to_string(),
                );
                out.push(
                    service
                        .execute(Request::Optimize {
                            handle: h,
                            params: OptimizeParams {
                                rule,
                                ..OptimizeParams::default()
                            },
                        })
                        .to_string(),
                );
            }
            out
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn protocol_parses_and_rejects() {
        assert!(matches!(
            parse_line("open random:8:7 homog"),
            Ok(Command::Req(Request::Open { .. }))
        ));
        assert!(matches!(
            parse_line("opt s0.0 mode=d2d rule=4p budget-solutions=100"),
            Ok(Command::Req(Request::Optimize { .. }))
        ));
        assert!(matches!(
            parse_line("inject delay 3 0.5"),
            Ok(Command::Inject {
                id: 3,
                fault: RequestFault::Delay(_)
            })
        ));
        assert!(matches!(
            parse_line("edit rat s0.0 n5 250.5"),
            Ok(Command::Req(Request::Edit {
                op: EditOp::SinkRat { node: 5, .. },
                ..
            }))
        ));
        assert!(matches!(
            parse_line("edit wire s0.0 3 140"),
            Ok(Command::Req(Request::Edit {
                op: EditOp::Wire { node: 3, .. },
                ..
            }))
        ));
        assert!(matches!(
            parse_line("edit lib s1.2 single"),
            Ok(Command::Req(Request::Edit {
                op: EditOp::Lib(LibChoice::Single),
                ..
            }))
        ));
        for bad in [
            "",
            "frobnicate",
            "open random:0",
            "open htree:30",
            "open random:abc",
            "opt s0.0 mode=nominal",
            "opt s0.0 rule=5p",
            "opt notahandle",
            "inject panic",
            "inject fizzle 1",
            "edit",
            "edit sink s0.0 n1",
            "edit sink s0.0 n1 abc",
            "edit lib s0.0 tiny",
            "edit wire s0.0 n1 5 extra",
            "edit grow s0.0 n1 5",
        ] {
            assert!(
                matches!(parse_line(bad), Err(RequestError::Malformed { .. })),
                "`{bad}` should be malformed"
            );
        }
    }
}
