//! Epoch-scoped solution caching for incremental re-optimization.
//!
//! The van Ginneken-style DP is naturally incremental: a node's pruned
//! solution list is a pure function of its subtree (topology, sink
//! parameters, wire lengths) plus the run-wide inputs (buffer library,
//! pruning rule, options). This module provides the two pieces the
//! resident service needs to exploit that:
//!
//! * [`NodeSigs`] — per-node Merkle content signatures. A node's
//!   signature folds its own parameters with its children's signatures,
//!   so an edit at node `v` changes exactly the signatures on the path
//!   `v → root` and nothing else. [`NodeSigs::update_path`] recomputes
//!   that path and returns it — the dirty set for the next run.
//! * [`SolutionCache`] — a per-session arena mapping node index →
//!   `(signature, pruned solution list)` under a run-wide signature
//!   ([`run_signature`]: rule, mode, epsilon, sizing widths, model
//!   epoch). A lookup hits only when both the run signature and the
//!   node's content signature match, so replayed lists are byte-identical
//!   to what a cold run would have produced at that node.
//!
//! Model-level inputs (buffer library, variation budgets) are *not* part
//! of the node signatures — the service bumps a `model_epoch` instead,
//! which flows into the run signature and flushes the whole cache in one
//! comparison.

use crate::solution::StatSolution;
use varbuf_rctree::{NodeId, NodeKind, RoutingTree};

/// `splitmix64` finalizer — the same mixer the in-tree RNG uses; good
/// avalanche behaviour for hash folding at one multiply-shift per word.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds one word into a running signature.
#[inline]
fn fold(acc: u64, word: u64) -> u64 {
    mix(acc ^ word)
}

/// Folds an `f64` by exact bit pattern (`-0.0 != 0.0` is fine here: the
/// tree validators reject non-finite values and edits go through the
/// same setters, so bit equality is the equality we want).
#[inline]
fn fold_f64(acc: u64, value: f64) -> u64 {
    fold(acc, value.to_bits())
}

/// Per-node Merkle content signatures for a routing tree.
///
/// `sigs[i]` covers the entire subtree rooted at node `i`: the node's
/// kind and parameters, its parent-edge length, its candidate flag, its
/// location, the tree's wire parameters, and — recursively — all child
/// signatures in child order.
#[derive(Debug, Clone)]
pub struct NodeSigs {
    sigs: Vec<u64>,
}

impl NodeSigs {
    /// Computes signatures for every node of `tree` bottom-up.
    #[must_use]
    pub fn build(tree: &RoutingTree) -> Self {
        let mut sigs = vec![0u64; tree.len()];
        for &id in &tree.postorder() {
            sigs[id.index()] = Self::node_sig(tree, id, &sigs);
        }
        Self { sigs }
    }

    /// Local + children fold for one node, reading child signatures from
    /// `sigs` (children must already be up to date).
    fn node_sig(tree: &RoutingTree, id: NodeId, sigs: &[u64]) -> u64 {
        let node = tree.node(id);
        let wire = tree.wire();
        let mut acc = match node.kind {
            NodeKind::Source { driver_resistance } => fold_f64(fold(0x51, 0), driver_resistance),
            NodeKind::Sink {
                capacitance,
                required_arrival,
            } => fold_f64(fold_f64(fold(0x53, 0), capacitance), required_arrival),
            NodeKind::Internal => fold(0x49, 0),
        };
        acc = fold_f64(acc, node.edge_length);
        acc = fold(acc, u64::from(node.is_candidate));
        acc = fold_f64(acc, node.location.x);
        acc = fold_f64(acc, node.location.y);
        acc = fold_f64(acc, wire.res_per_um);
        acc = fold_f64(acc, wire.cap_per_um);
        for &c in &node.children {
            acc = fold(acc, sigs[c.index()]);
        }
        acc
    }

    /// Recomputes the signatures on the path `from → root` after an edit
    /// at `from`, and returns the path (the dirty node set) in leaf-first
    /// order. All off-path signatures are untouched.
    pub fn update_path(&mut self, tree: &RoutingTree, from: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cursor = Some(from);
        while let Some(id) = cursor {
            self.sigs[id.index()] = Self::node_sig(tree, id, &self.sigs);
            path.push(id);
            cursor = tree.node(id).parent;
        }
        path
    }

    /// The signature of node `id`.
    #[inline]
    #[must_use]
    pub fn get(&self, id: NodeId) -> u64 {
        self.sigs[id.index()]
    }

    /// Number of node signatures held.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the signature table is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }
}

/// Run-wide cache signature: everything that changes a node's pruned
/// list *without* changing the node's subtree content. `rule_tag` is the
/// pruning-rule discriminant, `mode_tag` the variation mode, `epsilon`
/// the sparsify threshold, `widths` the wire-sizing width count,
/// `lazy_wire` whether lazy wire propagation is enabled (cached lists
/// carry deferred-coupling state and slightly different term bits, so
/// lazy and eager runs must never share entries), and `model_epoch` the
/// session's library/model generation.
#[must_use]
pub fn run_signature(
    rule_tag: u64,
    mode_tag: u64,
    epsilon: f64,
    widths: usize,
    lazy_wire: bool,
    model_epoch: u64,
) -> u64 {
    let mut acc = fold(0x7255_4e53_4947, rule_tag);
    acc = fold(acc, mode_tag);
    acc = fold_f64(acc, epsilon);
    acc = fold(acc, widths as u64);
    acc = fold(acc, u64::from(lazy_wire));
    fold(acc, model_epoch)
}

/// One cached node entry: the content signature the list was computed
/// under, plus the pruned list itself.
#[derive(Debug)]
struct Entry {
    sig: u64,
    list: Vec<StatSolution>,
}

/// Arena of cached per-node solution lists for one session.
///
/// The cache is valid for exactly one run signature at a time; a
/// [`SolutionCache::begin_run`] with a different signature flushes it.
/// Entries are validated per lookup against the node's current content
/// signature, so stale subtrees simply miss.
#[derive(Debug, Default)]
pub struct SolutionCache {
    run_sig: u64,
    entries: Vec<Option<Entry>>,
    live: usize,
    invalidations: u64,
}

impl SolutionCache {
    /// A fresh, empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the cache for a run over `n` nodes under `run_sig`. If
    /// the signature differs from the previous run's, every live entry
    /// is dropped (and counted as an invalidation).
    pub fn begin_run(&mut self, run_sig: u64, n: usize) {
        if self.run_sig != run_sig {
            self.clear();
            self.run_sig = run_sig;
        }
        if self.entries.len() != n {
            self.clear();
            self.entries.resize_with(n, || None);
        }
    }

    /// The pruned list cached for node `id`, if its content signature
    /// still matches.
    #[must_use]
    pub fn lookup(&self, id: NodeId, sig: u64) -> Option<&[StatSolution]> {
        match self.entries.get(id.index())? {
            Some(e) if e.sig == sig => Some(&e.list),
            _ => None,
        }
    }

    /// Stores (a clone of) `list` for node `id` under `sig`.
    pub fn store(&mut self, id: NodeId, sig: u64, list: &[StatSolution]) {
        if id.index() >= self.entries.len() {
            return;
        }
        let slot = &mut self.entries[id.index()];
        if slot.is_none() {
            self.live += 1;
        }
        *slot = Some(Entry {
            sig,
            list: list.to_vec(),
        });
    }

    /// Drops the entry for node `id`, if any.
    pub fn invalidate(&mut self, id: NodeId) {
        if let Some(slot) = self.entries.get_mut(id.index()) {
            if slot.take().is_some() {
                self.live -= 1;
                self.invalidations += 1;
            }
        }
    }

    /// Drops every entry (counting each as an invalidation) — used when
    /// a degraded, cancelled, or failed run may have produced lists that
    /// do not match the unconstrained fixpoint.
    pub fn clear(&mut self) {
        self.invalidations += self.live as u64;
        self.live = 0;
        for slot in &mut self.entries {
            *slot = None;
        }
    }

    /// Number of nodes currently holding a cached list.
    #[inline]
    #[must_use]
    pub fn live_entries(&self) -> usize {
        self.live
    }

    /// Total entries dropped over the cache's lifetime.
    #[inline]
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_rctree::{Point, WireParams};

    fn chain_tree(sinks: usize) -> RoutingTree {
        let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.1, WireParams::default_65nm());
        let mut parent = t.root();
        for i in 0..sinks {
            let x = 100.0 * (i + 1) as f64;
            let mid = t.add_internal(parent, Point::new(x, 0.0));
            t.add_sink(mid, Point::new(x, 100.0), 10.0 + i as f64, 0.0);
            parent = mid;
        }
        t
    }

    #[test]
    fn sigs_are_deterministic_and_content_addressed() {
        let t = chain_tree(4);
        let a = NodeSigs::build(&t);
        let b = NodeSigs::build(&t);
        assert_eq!(a.sigs, b.sigs);
        // Distinct sinks (different capacitance) get distinct signatures.
        let sinks: Vec<NodeId> = t.sinks().collect();
        assert_ne!(a.get(sinks[0]), a.get(sinks[1]));
    }

    #[test]
    fn edit_dirties_exactly_the_root_path() {
        let mut t = chain_tree(5);
        let mut sigs = NodeSigs::build(&t);
        let before = sigs.sigs.clone();
        let victim: NodeId = t.sinks().nth(2).expect("sink");
        t.set_sink(victim, 99.0, -10.0);
        let path = sigs.update_path(&t, victim);
        // The path runs leaf-first from the edited sink to the root.
        assert_eq!(*path.first().unwrap(), victim);
        assert_eq!(*path.last().unwrap(), t.root());
        for (i, (&old, &new)) in before.iter().zip(&sigs.sigs).enumerate() {
            let on_path = path.iter().any(|p| p.index() == i);
            if on_path {
                assert_ne!(old, new, "path node {i} must change");
            } else {
                assert_eq!(old, new, "off-path node {i} must be stable");
            }
        }
    }

    #[test]
    fn reverting_an_edit_restores_the_signature() {
        let mut t = chain_tree(3);
        let mut sigs = NodeSigs::build(&t);
        let before = sigs.sigs.clone();
        let victim: NodeId = t.sinks().next().expect("sink");
        t.set_sink(victim, 77.0, 5.0);
        sigs.update_path(&t, victim);
        t.set_sink(victim, 10.0, 0.0);
        sigs.update_path(&t, victim);
        assert_eq!(before, sigs.sigs);
    }

    #[test]
    fn begin_run_flushes_on_signature_change_only() {
        let t = chain_tree(2);
        let sigs = NodeSigs::build(&t);
        let mut cache = SolutionCache::new();
        let rs = run_signature(2, 1, 0.0, 1, true, 0);
        cache.begin_run(rs, t.len());
        cache.store(t.root(), sigs.get(t.root()), &[]);
        assert_eq!(cache.live_entries(), 1);
        cache.begin_run(rs, t.len());
        assert_eq!(cache.live_entries(), 1, "same signature keeps entries");
        cache.begin_run(run_signature(2, 1, 0.0, 1, false, 0), t.len());
        assert_eq!(cache.live_entries(), 0, "lazy-wire toggle flushes");
        cache.begin_run(run_signature(2, 1, 0.0, 1, false, 1), t.len());
        assert_eq!(cache.live_entries(), 0, "model epoch bump flushes");
        assert_eq!(cache.invalidations(), 1);
    }

    #[test]
    fn lookup_validates_the_content_signature() {
        let t = chain_tree(2);
        let sigs = NodeSigs::build(&t);
        let mut cache = SolutionCache::new();
        cache.begin_run(1, t.len());
        let id = t.root();
        cache.store(id, sigs.get(id), &[]);
        assert!(cache.lookup(id, sigs.get(id)).is_some());
        assert!(cache.lookup(id, sigs.get(id) ^ 1).is_none());
        cache.invalidate(id);
        assert!(cache.lookup(id, sigs.get(id)).is_none());
        assert_eq!(cache.invalidations(), 1);
    }
}
