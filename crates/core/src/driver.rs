//! High-level optimization entry points (the NOM / D2D / WID algorithms
//! compared in Section 5.3).

use crate::det::optimize_deterministic;
use crate::dp::{optimize_with_rule, DpOptions};
use crate::error::InsertionError;
use crate::metrics::DpStats;
use crate::prune::TwoParam;
use varbuf_rctree::{NodeId, RoutingTree};
use varbuf_stats::CanonicalForm;
use varbuf_variation::{BufferTypeId, ProcessModel, VariationMode};

/// Options shared by the driver entry points.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Options {
    /// Engine limits passed to the statistical DP.
    pub dp: DpOptions,
    /// The 2P thresholds (`p̄_L`, `p̄_T`).
    pub rule: TwoParam,
}

/// A uniform result across the three algorithms.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// Which variation categories the optimizer modeled.
    pub mode: VariationMode,
    /// The RAT at the source as the *optimizer* saw it: a deterministic
    /// value for NOM (zero-variance form), a full canonical form for
    /// D2D/WID.
    pub root_rat: CanonicalForm,
    /// The buffer placement.
    pub assignment: Vec<(NodeId, BufferTypeId)>,
    /// Run instrumentation.
    pub stats: DpStats,
}

impl OptimizeResult {
    /// Number of buffers inserted (Table 5's metric).
    #[must_use]
    pub fn buffer_count(&self) -> usize {
        self.assignment.len()
    }
}

/// The deterministic **NOM** algorithm: plain van Ginneken on nominal
/// values, blind to every variation category.
///
/// # Errors
///
/// See [`optimize_deterministic`].
pub fn optimize_nominal(
    tree: &RoutingTree,
    model: &ProcessModel,
    _options: &Options,
) -> Result<OptimizeResult, InsertionError> {
    let r = optimize_deterministic(tree, model.library())?;
    Ok(OptimizeResult {
        mode: VariationMode::Nominal,
        root_rat: CanonicalForm::constant(r.root_rat),
        assignment: r.assignment,
        stats: r.stats,
    })
}

/// The variation-aware algorithms: **D2D**
/// ([`VariationMode::DieToDie`]: random + inter-die) or **WID**
/// ([`VariationMode::WithinDie`]: + spatially correlated intra-die),
/// both with the 2P pruning rule.
///
/// # Errors
///
/// See [`optimize_with_rule`]. Passing [`VariationMode::Nominal`] is
/// accepted and equivalent to [`optimize_nominal`] modulo the engine used.
pub fn optimize_statistical(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    options: &Options,
) -> Result<OptimizeResult, InsertionError> {
    if matches!(mode, VariationMode::Nominal) {
        return optimize_nominal(tree, model, options);
    }
    let r = optimize_with_rule(tree, model, mode, &options.rule, &options.dp)?;
    Ok(OptimizeResult {
        mode,
        root_rat: r.root_rat,
        assignment: r.assignment,
        stats: r.stats,
    })
}

/// Runs all three algorithms on one benchmark — the row generator for
/// Tables 3–5.
///
/// # Errors
///
/// Propagates the first optimizer failure.
pub fn optimize_all_modes(
    tree: &RoutingTree,
    model: &ProcessModel,
    options: &Options,
) -> Result<[OptimizeResult; 3], InsertionError> {
    Ok([
        optimize_nominal(tree, model, options)?,
        optimize_statistical(tree, model, VariationMode::DieToDie, options)?,
        optimize_statistical(tree, model, VariationMode::WithinDie, options)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
    use varbuf_variation::SpatialKind;

    fn setup(sinks: usize, seed: u64) -> (RoutingTree, ProcessModel) {
        let tree = generate_benchmark(&BenchmarkSpec::random("drv", sinks, seed));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
        (tree, model)
    }

    #[test]
    fn all_three_modes_run() {
        let (tree, model) = setup(40, 2);
        let opts = Options::default();
        let [nom, d2d, wid] = optimize_all_modes(&tree, &model, &opts).expect("all");
        assert_eq!(nom.mode, VariationMode::Nominal);
        assert_eq!(d2d.mode, VariationMode::DieToDie);
        assert_eq!(wid.mode, VariationMode::WithinDie);
        assert!(nom.root_rat.std_dev() < 1e-12);
        assert!(d2d.root_rat.std_dev() > 0.0);
        assert!(wid.root_rat.std_dev() >= d2d.root_rat.std_dev() * 0.5);
        for r in [&nom, &d2d, &wid] {
            assert!(r.buffer_count() > 0);
        }
    }

    #[test]
    fn nominal_mode_via_statistical_entry() {
        let (tree, model) = setup(20, 4);
        let opts = Options::default();
        let direct = optimize_nominal(&tree, &model, &opts).expect("nom");
        let via = optimize_statistical(&tree, &model, VariationMode::Nominal, &opts).expect("via");
        assert_eq!(direct.root_rat, via.root_rat);
        assert_eq!(direct.assignment.len(), via.assignment.len());
    }
}
