//! Statistical clock-skew analysis — the extension the paper names as
//! future work ("we intend to apply the same 2P-based pruning rule and
//! develop efficient algorithms for clock skew minimization").
//!
//! For a *fixed* buffered clock tree, [`SkewAnalyzer`] propagates
//! source-to-sink **arrival times** as first-order canonical forms (the
//! downward analogue of the upward RAT propagation): every sink's
//! arrival becomes `a0 + Σ aᵢ·Xᵢ`, so the skew between any two sinks is
//! just the difference of two forms — with all the shared inter-die and
//! spatial terms cancelling exactly as they do on silicon. The global
//! skew (max minus min arrival) is estimated with iterated Clark
//! max/min.

use crate::ops::merge_pair_stat;
use crate::solution::StatSolution;
use std::collections::HashMap;
use varbuf_rctree::tree::NodeKind;
use varbuf_rctree::{NodeId, RoutingTree};
use varbuf_stats::{stat_max, stat_min, CanonicalForm};
use varbuf_variation::{BufferTypeId, ProcessModel, VariationMode};

/// Per-sink arrival forms plus derived skew quantities.
#[derive(Debug, Clone)]
pub struct SkewAnalysis {
    /// Arrival time of every sink, canonical form, ps.
    pub arrivals: Vec<(NodeId, CanonicalForm)>,
    /// The statistical latest arrival (Clark max over sinks).
    pub latest: CanonicalForm,
    /// The statistical earliest arrival (Clark min over sinks).
    pub earliest: CanonicalForm,
}

impl SkewAnalysis {
    /// The global-skew form: latest minus earliest arrival.
    ///
    /// Shared variation (inter-die, common spatial regions, shared
    /// buffers on common paths) cancels in the difference — the reason a
    /// correlation-aware model predicts far less skew than an
    /// independent-variation one.
    #[must_use]
    pub fn global_skew(&self) -> CanonicalForm {
        self.latest.sub(&self.earliest)
    }

    /// The skew form between two specific sinks.
    ///
    /// # Panics
    ///
    /// Panics if either node is not a sink of the analyzed tree.
    #[must_use]
    pub fn pair_skew(&self, a: NodeId, b: NodeId) -> CanonicalForm {
        let find = |id: NodeId| {
            self.arrivals
                .iter()
                .find(|&&(n, _)| n == id)
                .unwrap_or_else(|| panic!("{id} is not a sink of the analyzed tree"))
                .1
                .clone()
        };
        find(a).sub(&find(b))
    }

    /// Probability that the global skew stays below `target` ps.
    #[must_use]
    pub fn skew_yield(&self, target: f64) -> f64 {
        // P(skew <= target) = P(skew - target <= 0).
        1.0 - self.global_skew().prob_at_least(target)
    }
}

/// Computes arrival-time forms for fixed buffer placements on one tree.
#[derive(Debug)]
pub struct SkewAnalyzer<'a> {
    tree: &'a RoutingTree,
    model: &'a ProcessModel,
    mode: VariationMode,
}

impl<'a> SkewAnalyzer<'a> {
    /// Creates an analyzer; `mode` selects the silicon's variation
    /// categories (normally [`VariationMode::WithinDie`]).
    #[must_use]
    pub fn new(tree: &'a RoutingTree, model: &'a ProcessModel, mode: VariationMode) -> Self {
        Self { tree, model, mode }
    }

    /// Analyzes one buffer placement.
    ///
    /// # Panics
    ///
    /// Panics if the tree has no sinks.
    #[must_use]
    pub fn analyze(&self, assignment: &[(NodeId, BufferTypeId)]) -> SkewAnalysis {
        let buffers: HashMap<NodeId, BufferTypeId> = assignment.iter().copied().collect();
        let wire = self.tree.wire();
        let n = self.tree.len();

        // Upward pass: subtree load below each node (the load any buffer
        // placed at the node drives) and the load the node presents
        // upward (buffer cap form when buffered).
        let mut subtree_load: Vec<Option<CanonicalForm>> = vec![None; n];
        let mut upward_load: Vec<Option<CanonicalForm>> = vec![None; n];
        let postorder = self.tree.postorder();
        for &id in &postorder {
            let node = self.tree.node(id);
            let mut load = match node.kind {
                NodeKind::Sink { capacitance, .. } => CanonicalForm::constant(capacitance),
                _ => CanonicalForm::constant(0.0),
            };
            for &c in &node.children {
                let seg_cap = wire.cap_per_um * self.tree.node(c).edge_length;
                load = load
                    .add(upward_load[c.index()].as_ref().expect("post-order"))
                    .plus_constant(seg_cap);
            }
            upward_load[id.index()] = Some(match buffers.get(&id) {
                Some(&ty) => self.model.buffer_cap_form(ty, id, node.location, self.mode),
                None => load.clone(),
            });
            subtree_load[id.index()] = Some(load);
        }

        // Downward pass: arrival forms.
        let root = self.tree.root();
        let driver_res = match self.tree.node(root).kind {
            NodeKind::Source { driver_resistance } => driver_resistance,
            _ => panic!("root must be a source"),
        };
        let mut arrival: Vec<Option<CanonicalForm>> = vec![None; n];
        arrival[root.index()] = Some(
            upward_load[root.index()]
                .as_ref()
                .expect("root")
                .scaled(driver_res),
        );
        for &id in postorder.iter().rev() {
            let base = arrival[id.index()].clone().expect("pre-order");
            for &c in &self.tree.node(id).children {
                let child = self.tree.node(c);
                let seg = wire.segment(child.edge_length);
                // Wire delay r·l·(c·l/2 + upward load of child).
                let mut t = base.linear_combination(
                    1.0,
                    upward_load[c.index()].as_ref().expect("post-order"),
                    seg.resistance,
                );
                t.add_constant(seg.resistance * seg.capacitance / 2.0);
                if let Some(&ty) = buffers.get(&c) {
                    let delay = self
                        .model
                        .buffer_delay_form(ty, c, child.location, self.mode);
                    t = t.add(&delay).linear_combination(
                        1.0,
                        subtree_load[c.index()].as_ref().expect("post-order"),
                        self.model.buffer_resistance(ty),
                    );
                }
                arrival[c.index()] = Some(t);
            }
        }

        // Collect sinks; fold Clark max/min.
        let mut arrivals = Vec::new();
        for (id, node) in self.tree.iter() {
            if matches!(node.kind, NodeKind::Sink { .. }) {
                arrivals.push((id, arrival[id.index()].clone().expect("computed")));
            }
        }
        assert!(!arrivals.is_empty(), "tree must have at least one sink");
        let mut latest = arrivals[0].1.clone();
        let mut earliest = arrivals[0].1.clone();
        for (_, a) in &arrivals[1..] {
            latest = stat_max(&latest, a).form;
            earliest = stat_min(&earliest, a).form;
        }
        SkewAnalysis {
            arrivals,
            latest,
            earliest,
        }
    }
}

// merge_pair_stat and StatSolution are the RAT-side analogues; referenced
// here so the module docs' "downward analogue" claim stays anchored.
#[allow(unused)]
fn _anchor(a: &StatSolution, b: &StatSolution) -> StatSolution {
    merge_pair_stat(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{optimize_statistical, Options};
    use varbuf_rctree::generate::{generate_benchmark, generate_htree, BenchmarkSpec, HTreeSpec};
    use varbuf_variation::SpatialKind;

    #[test]
    fn symmetric_htree_has_zero_mean_skew() {
        let tree = generate_htree(&HTreeSpec::with_levels(6));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        let analyzer = SkewAnalyzer::new(&tree, &model, VariationMode::WithinDie);
        // Unbuffered symmetric tree: all nominal arrivals identical.
        let analysis = analyzer.analyze(&[]);
        let skew = analysis.global_skew();
        // Mean skew is positive (max > min with independent terms) but
        // small relative to arrival times.
        let arrival_scale = analysis.arrivals[0].1.mean().abs();
        assert!(skew.mean() >= -1e-9);
        assert!(
            skew.mean() < 0.05 * arrival_scale,
            "skew {} vs arrival {arrival_scale}",
            skew.mean()
        );
        // Pairwise skew between mirror sinks: zero-mean.
        let a = analysis.arrivals.first().expect("sinks").0;
        let b = analysis.arrivals.last().expect("sinks").0;
        let pair = analysis.pair_skew(a, b);
        assert!(pair.mean().abs() < 1e-6);
    }

    #[test]
    fn buffered_htree_skew_and_yield() {
        let tree = generate_htree(&HTreeSpec::with_levels(7));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        let wid =
            optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
                .expect("optimize");
        let analyzer = SkewAnalyzer::new(&tree, &model, VariationMode::WithinDie);
        let analysis = analyzer.analyze(&wid.assignment);
        let skew = analysis.global_skew();
        assert!(skew.mean() >= 0.0);
        // Yield is monotone in the target and hits the extremes.
        let tight = analysis.skew_yield(0.0);
        let loose = analysis.skew_yield(skew.mean() + 10.0 * skew.std_dev() + 1.0);
        assert!(tight <= 0.6, "P(skew<=0) = {tight}");
        assert!(loose > 0.999);
        assert!(analysis.skew_yield(skew.mean()) >= tight);
    }

    #[test]
    fn asymmetric_tree_has_nonzero_mean_skew() {
        let tree = generate_benchmark(&BenchmarkSpec::random("skew", 24, 9));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        let analyzer = SkewAnalyzer::new(&tree, &model, VariationMode::WithinDie);
        let analysis = analyzer.analyze(&[]);
        let skew = analysis.global_skew();
        // Random trees have structurally different path lengths.
        assert!(skew.mean() > 1.0, "skew mean {}", skew.mean());
        // Latest >= every arrival mean; earliest <= every arrival mean.
        for (_, a) in &analysis.arrivals {
            assert!(analysis.latest.mean() >= a.mean() - 1e-6);
            assert!(analysis.earliest.mean() <= a.mean() + 1e-6);
        }
    }

    #[test]
    fn arrival_matches_deterministic_elmore_nominal() {
        use crate::det::assignment_with_nominal_values;
        use varbuf_rctree::elmore::ElmoreEvaluator;

        let tree = generate_benchmark(&BenchmarkSpec::random("skewdet", 16, 4));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        let wid =
            optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
                .expect("optimize");
        // In Nominal mode the arrival forms are deterministic and must
        // equal the Elmore evaluator's sink delays exactly.
        let analyzer = SkewAnalyzer::new(&tree, &model, VariationMode::Nominal);
        let analysis = analyzer.analyze(&wid.assignment);
        let elmore = ElmoreEvaluator::new(&tree).evaluate(
            &assignment_with_nominal_values(&wid.assignment, model.library())
                .expect("ids from this library"),
        );
        for (id, form) in &analysis.arrivals {
            let (_, d) = elmore
                .sink_delays
                .iter()
                .find(|&&(s, _)| s == *id)
                .expect("sink present");
            assert!(
                (form.mean() - d).abs() < 1e-6 * d.abs().max(1.0),
                "{id}: skew-analyzer {} vs elmore {}",
                form.mean(),
                d
            );
            assert!(form.std_dev() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "is not a sink")]
    fn pair_skew_rejects_non_sinks() {
        let tree = generate_htree(&HTreeSpec::with_levels(3));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        let analysis = SkewAnalyzer::new(&tree, &model, VariationMode::WithinDie).analyze(&[]);
        let _ = analysis.pair_skew(tree.root(), tree.root());
    }
}
