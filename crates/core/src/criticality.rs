//! Statistical sink criticality.
//!
//! Under variation there is no single critical sink: each sink has a
//! *probability* of being the one that sets the root RAT. This module
//! computes those probabilities with the tightness-probability cascade
//! used in block-based SSTA (Visweswariah et al., the paper's \[3\]):
//! fold the per-sink slack forms through Clark minimums, scaling the
//! already-folded criticalities by each step's tightness.
//!
//! Criticalities are a diagnosis tool the deterministic flow cannot
//! offer: a design whose criticality mass is spread across many sinks is
//! the regime where variation-aware optimization matters (and where
//! deterministic "fix the worst path" iterations thrash).

use crate::skew::SkewAnalyzer;
use varbuf_rctree::tree::NodeKind;
use varbuf_rctree::{NodeId, RoutingTree};
use varbuf_stats::{stat_min, CanonicalForm};
use varbuf_variation::{BufferTypeId, ProcessModel, VariationMode};

/// Per-sink criticality report.
#[derive(Debug, Clone)]
pub struct CriticalityReport {
    /// `(sink, slack form, probability the sink is critical)`, sorted by
    /// descending criticality. Probabilities sum to 1.
    pub sinks: Vec<(NodeId, CanonicalForm, f64)>,
    /// The statistical minimum slack (the root-RAT form relative to the
    /// sink required times).
    pub min_slack: CanonicalForm,
}

impl CriticalityReport {
    /// The number of sinks needed to cover `mass` of the criticality
    /// probability (e.g. `0.95`) — a scalar "how spread out is the
    /// criticality" summary.
    ///
    /// # Panics
    ///
    /// Panics unless `mass` is in `(0, 1]`.
    #[must_use]
    pub fn sinks_covering(&self, mass: f64) -> usize {
        assert!(mass > 0.0 && mass <= 1.0, "mass must be in (0, 1]");
        let mut acc = 0.0;
        for (i, &(_, _, c)) in self.sinks.iter().enumerate() {
            acc += c;
            if acc >= mass {
                return i + 1;
            }
        }
        self.sinks.len()
    }
}

/// Computes sink criticalities for a fixed buffered design.
///
/// `mode` is the silicon's variation model (normally
/// [`VariationMode::WithinDie`]).
///
/// # Panics
///
/// Panics if the tree has no sinks.
#[must_use]
pub fn sink_criticalities(
    tree: &RoutingTree,
    model: &ProcessModel,
    mode: VariationMode,
    assignment: &[(NodeId, BufferTypeId)],
) -> CriticalityReport {
    // Arrival forms come from the skew analyzer's downward propagation.
    let arrivals = SkewAnalyzer::new(tree, model, mode)
        .analyze(assignment)
        .arrivals;

    // Slack_i = required_i − arrival_i.
    let mut slacks: Vec<(NodeId, CanonicalForm)> = arrivals
        .into_iter()
        .map(|(id, arrival)| {
            let required = match tree.node(id).kind {
                NodeKind::Sink {
                    required_arrival, ..
                } => required_arrival,
                _ => unreachable!("arrivals only lists sinks"),
            };
            (id, arrival.scaled(-1.0).plus_constant(required))
        })
        .collect();
    assert!(!slacks.is_empty(), "tree must have at least one sink");

    // Tightness cascade: fold slacks through Clark minimums. At each
    // step, `t = P(running-min < next)` keeps the accumulated mass and
    // `1 − t` goes to the newcomer.
    let (first_id, first_slack) = slacks.remove(0);
    let mut min_slack = first_slack.clone();
    let mut report: Vec<(NodeId, CanonicalForm, f64)> = vec![(first_id, first_slack, 1.0)];
    for (id, slack) in slacks {
        let folded = stat_min(&min_slack, &slack);
        let t = folded.tightness; // P(running-min is the min)
        for entry in &mut report {
            entry.2 *= t;
        }
        report.push((id, slack, 1.0 - t));
        min_slack = folded.form;
    }
    report.sort_by(|a, b| b.2.total_cmp(&a.2));

    CriticalityReport {
        sinks: report,
        min_slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{optimize_statistical, Options};
    use varbuf_rctree::generate::{generate_benchmark, generate_htree, BenchmarkSpec, HTreeSpec};
    use varbuf_variation::SpatialKind;

    #[test]
    fn criticalities_sum_to_one_and_sorted() {
        let tree = generate_benchmark(&BenchmarkSpec::random("crit", 40, 5));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        let wid =
            optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
                .expect("optimize");
        let report = sink_criticalities(&tree, &model, VariationMode::WithinDie, &wid.assignment);
        let total: f64 = report.sinks.iter().map(|&(_, _, c)| c).sum();
        assert!((total - 1.0).abs() < 1e-9, "criticalities sum to {total}");
        assert!(report.sinks.windows(2).all(|w| w[0].2 >= w[1].2 - 1e-12));
        assert!(report
            .sinks
            .iter()
            .all(|&(_, _, c)| (0.0..=1.0).contains(&c)));
        assert_eq!(report.sinks.len(), tree.sink_count());
    }

    #[test]
    fn symmetric_buffered_htree_spreads_criticality() {
        // Every sink of an ideal H-tree is equally likely to be critical;
        // with real (buffered) variation the tightness cascade should
        // spread the mass across many sinks. (The unbuffered tree is
        // fully deterministic, where ties make the cascade order-biased —
        // a known limitation of Clark cascades on exact ties.)
        let tree = generate_htree(&HTreeSpec::with_levels(5));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        let wid =
            optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
                .expect("optimize");
        let report = sink_criticalities(&tree, &model, VariationMode::WithinDie, &wid.assignment);
        let n = tree.sink_count();
        // Covering 95% of the mass needs a sizable fraction of the sinks.
        assert!(
            report.sinks_covering(0.95) > n / 4,
            "covering {} of {n}",
            report.sinks_covering(0.95)
        );
    }

    #[test]
    fn dominant_sink_concentrates_criticality() {
        // An unbuffered random tree: the farthest path dominates sharply,
        // so a handful of sinks hoard the criticality mass.
        let tree = generate_benchmark(&BenchmarkSpec::random("crit2", 20, 9));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        let report = sink_criticalities(&tree, &model, VariationMode::WithinDie, &[]);
        assert!(
            report.sinks_covering(0.95) <= 5,
            "expected concentration, needed {}",
            report.sinks_covering(0.95)
        );
        // min_slack mean is at most the most-critical sink's slack mean.
        let best = report.sinks[0].1.mean();
        assert!(report.min_slack.mean() <= best + 1e-9);
    }

    #[test]
    #[should_panic(expected = "mass must be in (0, 1]")]
    fn covering_rejects_bad_mass() {
        let tree = generate_htree(&HTreeSpec::with_levels(2));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
        let report = sink_criticalities(&tree, &model, VariationMode::WithinDie, &[]);
        let _ = report.sinks_covering(0.0);
    }
}
