//! The variation-aware key operations of Section 4.2.
//!
//! Three operations drive the dynamic program, each mapping canonical-form
//! solutions to canonical-form solutions:
//!
//! * **wire extension** (eqs. (33)–(34)): adding a wire of length `l`
//!   above a solution;
//! * **buffer extension** (eqs. (35)–(36)): inserting a buffer whose
//!   `C_b`/`T_b` are themselves canonical forms;
//! * **branch merge** (eqs. (37)–(38)): summing loads and taking the
//!   statistical minimum of the RATs via tightness probabilities.

use crate::solution::{DetSolution, StatSolution};
use crate::trace::Trace;
use varbuf_rctree::wire::WireSegment;
use varbuf_rctree::NodeId;
use varbuf_stats::{stat_min, CanonicalForm};
use varbuf_variation::BufferTypeId;

/// Wire extension, statistical (eqs. (33)–(34)):
/// `L' = L + c·l`, `T' = T − r·l·L − ½·r·c·l²`.
#[must_use]
pub fn wire_extend_stat(sol: &StatSolution, seg: &WireSegment) -> StatSolution {
    let load = sol.load.plus_constant(seg.capacitance);
    // T' couples the load's sensitivities into the RAT: −r·l · L.
    let mut rat = sol.rat.linear_combination(1.0, &sol.load, -seg.resistance);
    rat.add_constant(-0.5 * seg.resistance * seg.capacitance);
    StatSolution {
        load,
        rat,
        trace: sol.trace.clone(),
    }
}

/// Wire extension, deterministic (eqs. (25)–(26)).
#[must_use]
pub fn wire_extend_det(sol: &DetSolution, seg: &WireSegment) -> DetSolution {
    DetSolution {
        load: sol.load + seg.capacitance,
        rat: sol.rat - seg.resistance * (sol.load + seg.capacitance / 2.0),
        trace: sol.trace.clone(),
    }
}

/// Buffer extension, statistical (eqs. (35)–(36)):
/// `L' = C_b`, `T' = T − T_b − R_b·L` with `C_b`/`T_b` canonical forms.
#[must_use]
pub fn buffer_extend_stat(
    sol: &StatSolution,
    cap_form: &CanonicalForm,
    delay_form: &CanonicalForm,
    resistance: f64,
    node: NodeId,
    ty: BufferTypeId,
) -> StatSolution {
    let rat = sol
        .rat
        .linear_combination(1.0, &sol.load, -resistance)
        .sub(delay_form);
    StatSolution {
        load: cap_form.clone(),
        rat,
        trace: Trace::buffer(node, ty, sol.trace.clone()),
    }
}

/// Buffer extension, deterministic (eqs. (27)–(28)).
#[must_use]
pub fn buffer_extend_det(
    sol: &DetSolution,
    capacitance: f64,
    intrinsic_delay: f64,
    resistance: f64,
    node: NodeId,
    ty: BufferTypeId,
) -> DetSolution {
    DetSolution {
        load: capacitance,
        rat: sol.rat - intrinsic_delay - resistance * sol.load,
        trace: Trace::buffer(node, ty, sol.trace.clone()),
    }
}

/// Branch merge of one pair, statistical (eqs. (37)–(38)):
/// `L' = L_n + L_m`, `T' = min(T_n, T_m)` via tightness probability.
#[must_use]
pub fn merge_pair_stat(a: &StatSolution, b: &StatSolution) -> StatSolution {
    StatSolution {
        load: a.load.add(&b.load),
        rat: stat_min(&a.rat, &b.rat).form,
        trace: Trace::join(a.trace.clone(), b.trace.clone()),
    }
}

/// Branch merge of one pair, deterministic (eqs. (29)–(30)).
#[must_use]
pub fn merge_pair_det(a: &DetSolution, b: &DetSolution) -> DetSolution {
    DetSolution {
        load: a.load + b.load,
        rat: a.rat.min(b.rat),
        trace: Trace::join(a.trace.clone(), b.trace.clone()),
    }
}

/// Final driver step: the RAT seen at the source once the driver
/// resistance `R_d` charges the root load — statistical form.
#[must_use]
pub fn driver_rat_stat(sol: &StatSolution, driver_resistance: f64) -> CanonicalForm {
    sol.rat
        .linear_combination(1.0, &sol.load, -driver_resistance)
}

/// Final driver step, deterministic.
#[must_use]
pub fn driver_rat_det(sol: &DetSolution, driver_resistance: f64) -> f64 {
    sol.rat - driver_resistance * sol.load
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_rctree::WireParams;
    use varbuf_stats::SourceId;

    fn wire_seg(l: f64) -> WireSegment {
        WireParams {
            res_per_um: 1e-3,
            cap_per_um: 0.1,
        }
        .segment(l)
    }

    fn stat(load: f64, lterm: f64, rat: f64, rterm: f64) -> StatSolution {
        StatSolution::new(
            CanonicalForm::with_terms(load, vec![(SourceId(0), lterm)]),
            CanonicalForm::with_terms(rat, vec![(SourceId(1), rterm)]),
        )
    }

    #[test]
    fn stat_wire_matches_det_on_means() {
        let s = stat(30.0, 2.0, -100.0, 3.0);
        let d = DetSolution::new(30.0, -100.0);
        let seg = wire_seg(500.0);
        let sw = wire_extend_stat(&s, &seg);
        let dw = wire_extend_det(&d, &seg);
        assert!((sw.load.mean() - dw.load).abs() < 1e-9);
        assert!((sw.rat.mean() - dw.rat).abs() < 1e-9);
    }

    #[test]
    fn wire_couples_load_variation_into_rat() {
        // Eq. (34): the RAT sensitivity picks up −r·l·α from the load.
        let s = stat(30.0, 2.0, -100.0, 0.0);
        let seg = wire_seg(1000.0); // r·l = 1.0 kΩ
        let sw = wire_extend_stat(&s, &seg);
        assert!((sw.rat.coeff(SourceId(0)) + 2.0).abs() < 1e-12);
        // Load terms are untouched by wire.
        assert!((sw.load.coeff(SourceId(0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_replaces_load_with_cap_form() {
        let s = stat(50.0, 1.0, -200.0, 1.0);
        let cap = CanonicalForm::with_terms(20.0, vec![(SourceId(5), 1.0)]);
        let delay = CanonicalForm::with_terms(35.0, vec![(SourceId(5), 1.8)]);
        let out = buffer_extend_stat(&s, &cap, &delay, 0.2, NodeId(3), BufferTypeId(0));
        assert_eq!(out.load, cap);
        // T' = T − T_b − R·L → mean −200 − 35 − 0.2·50 = −245.
        assert!((out.rat.mean() + 245.0).abs() < 1e-9);
        // Sensitivities: rat gets −1.8 (delay) on S5, −0.2·1.0 on S0 (from R·L), keeps 1.0 on S1.
        assert!((out.rat.coeff(SourceId(5)) + 1.8).abs() < 1e-12);
        assert!((out.rat.coeff(SourceId(0)) + 0.2).abs() < 1e-12);
        assert!((out.rat.coeff(SourceId(1)) - 1.0).abs() < 1e-12);
        assert_eq!(out.trace.buffer_count(), 1);
    }

    #[test]
    fn det_buffer_matches_formula() {
        let s = DetSolution::new(50.0, -200.0);
        let out = buffer_extend_det(&s, 20.0, 35.0, 0.2, NodeId(3), BufferTypeId(1));
        assert_eq!(out.load, 20.0);
        assert!((out.rat + 245.0).abs() < 1e-12);
        assert_eq!(out.trace.collect(), vec![(NodeId(3), BufferTypeId(1))]);
    }

    #[test]
    fn merge_sums_loads_and_mins_rats() {
        let a = stat(10.0, 1.0, -100.0, 1.0);
        let b = stat(20.0, 0.5, -50.0, 1.0);
        let m = merge_pair_stat(&a, &b);
        assert!((m.load.mean() - 30.0).abs() < 1e-12);
        // Statistical min mean is at most min of the means.
        assert!(m.rat.mean() <= -100.0 + 1e-9);
        // Deterministic counterpart.
        let dm = merge_pair_det(
            &DetSolution::new(10.0, -100.0),
            &DetSolution::new(20.0, -50.0),
        );
        assert_eq!(dm.load, 30.0);
        assert_eq!(dm.rat, -100.0);
    }

    #[test]
    fn driver_rat_subtracts_charging_delay() {
        let s = stat(40.0, 1.0, -100.0, 0.0);
        let rat = driver_rat_stat(&s, 0.1);
        assert!((rat.mean() + 104.0).abs() < 1e-9);
        assert!((rat.coeff(SourceId(0)) + 0.1).abs() < 1e-12);
        let d = driver_rat_det(&DetSolution::new(40.0, -100.0), 0.1);
        assert!((d + 104.0).abs() < 1e-12);
    }
}
