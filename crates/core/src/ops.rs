//! The variation-aware key operations of Section 4.2.
//!
//! Three operations drive the dynamic program, each mapping canonical-form
//! solutions to canonical-form solutions:
//!
//! * **wire extension** (eqs. (33)–(34)): adding a wire of length `l`
//!   above a solution;
//! * **buffer extension** (eqs. (35)–(36)): inserting a buffer whose
//!   `C_b`/`T_b` are themselves canonical forms;
//! * **branch merge** (eqs. (37)–(38)): summing loads and taking the
//!   statistical minimum of the RATs via tightness probabilities.

use crate::solution::{DetSolution, StatSolution};
use crate::trace::Trace;
use varbuf_rctree::wire::WireSegment;
use varbuf_rctree::NodeId;
use varbuf_stats::clark::stat_min_assign;
use varbuf_stats::{stat_min, CanonicalForm};
use varbuf_variation::BufferTypeId;

/// Wire extension, statistical (eqs. (33)–(34)):
/// `L' = L + c·l`, `T' = T − r·l·L − ½·r·c·l²`.
#[must_use]
pub fn wire_extend_stat(sol: &StatSolution, seg: &WireSegment) -> StatSolution {
    let load = sol.load.plus_constant(seg.capacitance);
    // T' couples the load's sensitivities into the RAT: −r·l · L.
    let mut rat = sol.rat.linear_combination(1.0, &sol.load, -seg.resistance);
    rat.add_constant(-0.5 * seg.resistance * seg.capacitance);
    StatSolution {
        load,
        rat,
        trace: sol.trace.clone(),
    }
}

/// In-place [`wire_extend_stat`]: writes the extended solution into a
/// recycled `dest` (which must be distinct from `sol`), reusing its term
/// buffers. Bitwise identical to the allocating version.
pub fn wire_extend_stat_into(dest: &mut StatSolution, sol: &StatSolution, seg: &WireSegment) {
    dest.load.copy_from(&sol.load);
    dest.load.add_constant(seg.capacitance);
    // T' couples the load's sensitivities into the RAT: −r·l · L.
    dest.rat
        .lin_comb_into(&sol.rat, 1.0, &sol.load, -seg.resistance);
    dest.rat
        .add_constant(-0.5 * seg.resistance * seg.capacitance);
    dest.trace = sol.trace.clone();
}

/// [`wire_extend_stat`] mutating the solution itself — for the
/// single-width lift, where the child list is consumed and each
/// solution can be extended where it sits instead of copied. Bitwise
/// identical to the copying versions: the RAT update is
/// [`CanonicalForm::add_scaled_assign`] (documented bit-equal to the
/// `linear_combination` the copying kernel runs) against the load
/// *before* its constant shift, the same operand order both kernels
/// use. The trace is untouched — the same `Arc` the copying path
/// clones.
pub fn wire_extend_stat_in_place(sol: &mut StatSolution, seg: &WireSegment) {
    sol.rat.add_scaled_assign(&sol.load, -seg.resistance);
    sol.rat
        .add_constant(-0.5 * seg.resistance * seg.capacitance);
    sol.load.add_constant(seg.capacitance);
}

/// Wire extension, deterministic (eqs. (25)–(26)).
#[must_use]
pub fn wire_extend_det(sol: &DetSolution, seg: &WireSegment) -> DetSolution {
    DetSolution {
        load: sol.load + seg.capacitance,
        rat: sol.rat - seg.resistance * (sol.load + seg.capacitance / 2.0),
        trace: sol.trace.clone(),
    }
}

/// Buffer extension, statistical (eqs. (35)–(36)):
/// `L' = C_b`, `T' = T − T_b − R_b·L` with `C_b`/`T_b` canonical forms.
#[must_use]
pub fn buffer_extend_stat(
    sol: &StatSolution,
    cap_form: &CanonicalForm,
    delay_form: &CanonicalForm,
    resistance: f64,
    node: NodeId,
    ty: BufferTypeId,
) -> StatSolution {
    let rat = sol
        .rat
        .linear_combination(1.0, &sol.load, -resistance)
        .sub(delay_form);
    StatSolution {
        load: cap_form.clone(),
        rat,
        trace: Trace::buffer(node, ty, sol.trace.clone()),
    }
}

/// In-place [`buffer_extend_stat`]: writes into a recycled `dest`
/// (distinct from `sol`), fusing the `−R·L` coupling and the `−T_b`
/// subtraction into one merge walk. Bitwise identical to the allocating
/// two-pass version (pinned by `lin_comb_sub_into`'s own tests).
pub fn buffer_extend_stat_into(
    dest: &mut StatSolution,
    sol: &StatSolution,
    cap_form: &CanonicalForm,
    delay_form: &CanonicalForm,
    resistance: f64,
    node: NodeId,
    ty: BufferTypeId,
) {
    dest.rat
        .lin_comb_sub_into(&sol.rat, 1.0, &sol.load, -resistance, delay_form);
    dest.load.copy_from(cap_form);
    dest.trace = Trace::buffer(node, ty, sol.trace.clone());
}

/// Buffer extension, deterministic (eqs. (27)–(28)).
#[must_use]
pub fn buffer_extend_det(
    sol: &DetSolution,
    capacitance: f64,
    intrinsic_delay: f64,
    resistance: f64,
    node: NodeId,
    ty: BufferTypeId,
) -> DetSolution {
    DetSolution {
        load: capacitance,
        rat: sol.rat - intrinsic_delay - resistance * sol.load,
        trace: Trace::buffer(node, ty, sol.trace.clone()),
    }
}

/// Branch merge of one pair, statistical (eqs. (37)–(38)):
/// `L' = L_n + L_m`, `T' = min(T_n, T_m)` via tightness probability.
#[must_use]
pub fn merge_pair_stat(a: &StatSolution, b: &StatSolution) -> StatSolution {
    StatSolution {
        load: a.load.add(&b.load),
        rat: stat_min(&a.rat, &b.rat).form,
        trace: Trace::join(a.trace.clone(), b.trace.clone()),
    }
}

/// In-place [`merge_pair_stat`]: writes into a recycled `dest` (distinct
/// from both operands). Bitwise identical to the allocating version —
/// the load add is the same sorted merge and the RAT min goes through
/// [`stat_min_assign`], which reproduces `stat_min` exactly.
pub fn merge_pair_stat_into(dest: &mut StatSolution, a: &StatSolution, b: &StatSolution) {
    dest.load.lin_comb_into(&a.load, 1.0, &b.load, 1.0);
    stat_min_assign(&mut dest.rat, &a.rat, &b.rat);
    dest.trace = Trace::join(a.trace.clone(), b.trace.clone());
}

/// Branch merge of one pair, deterministic (eqs. (29)–(30)).
#[must_use]
pub fn merge_pair_det(a: &DetSolution, b: &DetSolution) -> DetSolution {
    DetSolution {
        load: a.load + b.load,
        rat: a.rat.min(b.rat),
        trace: Trace::join(a.trace.clone(), b.trace.clone()),
    }
}

/// Final driver step: the RAT seen at the source once the driver
/// resistance `R_d` charges the root load — statistical form.
#[must_use]
pub fn driver_rat_stat(sol: &StatSolution, driver_resistance: f64) -> CanonicalForm {
    sol.rat
        .linear_combination(1.0, &sol.load, -driver_resistance)
}

/// Final driver step, deterministic.
#[must_use]
pub fn driver_rat_det(sol: &DetSolution, driver_resistance: f64) -> f64 {
    sol.rat - driver_resistance * sol.load
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_rctree::WireParams;
    use varbuf_stats::SourceId;

    fn wire_seg(l: f64) -> WireSegment {
        WireParams {
            res_per_um: 1e-3,
            cap_per_um: 0.1,
        }
        .segment(l)
    }

    fn stat(load: f64, lterm: f64, rat: f64, rterm: f64) -> StatSolution {
        StatSolution::new(
            CanonicalForm::with_terms(load, vec![(SourceId(0), lterm)]),
            CanonicalForm::with_terms(rat, vec![(SourceId(1), rterm)]),
        )
    }

    #[test]
    fn wire_extend_in_place_matches_copying_kernel_bitwise() {
        // Load sources both overlapping the RAT's and disjoint from it,
        // so the in-place update exercises matches and insertions.
        let mut s = StatSolution::new(
            CanonicalForm::with_terms(30.0, vec![(SourceId(0), 2.0), (SourceId(3), -0.5)]),
            CanonicalForm::with_terms(-100.0, vec![(SourceId(1), 3.0), (SourceId(3), 0.25)]),
        );
        let seg = wire_seg(750.0);
        let reference = wire_extend_stat(&s, &seg);
        wire_extend_stat_in_place(&mut s, &seg);
        for (a, b) in [(&reference.load, &s.load), (&reference.rat, &s.rat)] {
            assert_eq!(a.mean().to_bits(), b.mean().to_bits());
            assert_eq!(a.term_count(), b.term_count());
            for (x, y) in a.terms().zip(b.terms()) {
                assert_eq!(x.0, y.0);
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
        assert!(std::sync::Arc::ptr_eq(&reference.trace, &s.trace));
    }

    #[test]
    fn stat_wire_matches_det_on_means() {
        let s = stat(30.0, 2.0, -100.0, 3.0);
        let d = DetSolution::new(30.0, -100.0);
        let seg = wire_seg(500.0);
        let sw = wire_extend_stat(&s, &seg);
        let dw = wire_extend_det(&d, &seg);
        assert!((sw.load.mean() - dw.load).abs() < 1e-9);
        assert!((sw.rat.mean() - dw.rat).abs() < 1e-9);
    }

    #[test]
    fn wire_couples_load_variation_into_rat() {
        // Eq. (34): the RAT sensitivity picks up −r·l·α from the load.
        let s = stat(30.0, 2.0, -100.0, 0.0);
        let seg = wire_seg(1000.0); // r·l = 1.0 kΩ
        let sw = wire_extend_stat(&s, &seg);
        assert!((sw.rat.coeff(SourceId(0)) + 2.0).abs() < 1e-12);
        // Load terms are untouched by wire.
        assert!((sw.load.coeff(SourceId(0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_replaces_load_with_cap_form() {
        let s = stat(50.0, 1.0, -200.0, 1.0);
        let cap = CanonicalForm::with_terms(20.0, vec![(SourceId(5), 1.0)]);
        let delay = CanonicalForm::with_terms(35.0, vec![(SourceId(5), 1.8)]);
        let out = buffer_extend_stat(&s, &cap, &delay, 0.2, NodeId(3), BufferTypeId(0));
        assert_eq!(out.load, cap);
        // T' = T − T_b − R·L → mean −200 − 35 − 0.2·50 = −245.
        assert!((out.rat.mean() + 245.0).abs() < 1e-9);
        // Sensitivities: rat gets −1.8 (delay) on S5, −0.2·1.0 on S0 (from R·L), keeps 1.0 on S1.
        assert!((out.rat.coeff(SourceId(5)) + 1.8).abs() < 1e-12);
        assert!((out.rat.coeff(SourceId(0)) + 0.2).abs() < 1e-12);
        assert!((out.rat.coeff(SourceId(1)) - 1.0).abs() < 1e-12);
        assert_eq!(out.trace.buffer_count(), 1);
    }

    #[test]
    fn det_buffer_matches_formula() {
        let s = DetSolution::new(50.0, -200.0);
        let out = buffer_extend_det(&s, 20.0, 35.0, 0.2, NodeId(3), BufferTypeId(1));
        assert_eq!(out.load, 20.0);
        assert!((out.rat + 245.0).abs() < 1e-12);
        assert_eq!(out.trace.collect(), vec![(NodeId(3), BufferTypeId(1))]);
    }

    #[test]
    fn merge_sums_loads_and_mins_rats() {
        let a = stat(10.0, 1.0, -100.0, 1.0);
        let b = stat(20.0, 0.5, -50.0, 1.0);
        let m = merge_pair_stat(&a, &b);
        assert!((m.load.mean() - 30.0).abs() < 1e-12);
        // Statistical min mean is at most min of the means.
        assert!(m.rat.mean() <= -100.0 + 1e-9);
        // Deterministic counterpart.
        let dm = merge_pair_det(
            &DetSolution::new(10.0, -100.0),
            &DetSolution::new(20.0, -50.0),
        );
        assert_eq!(dm.load, 30.0);
        assert_eq!(dm.rat, -100.0);
    }

    fn assert_form_bits(a: &CanonicalForm, b: &CanonicalForm) {
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.term_count(), b.term_count());
        for (x, y) in a.terms().zip(b.terms()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }

    #[test]
    fn into_ops_match_allocating_ops_bitwise() {
        let a = stat(30.0, 2.0, -100.0, 3.0);
        let b = stat(12.0, -0.7, -80.0, 1.1);
        let seg = wire_seg(750.0);
        let cap = CanonicalForm::with_terms(20.0, vec![(SourceId(5), 1.0)]);
        let delay = CanonicalForm::with_terms(35.0, vec![(SourceId(1), 1.8)]);
        // Recycled destination with stale content that must be overwritten.
        let mut dest = stat(9.9, 9.9, 9.9, 9.9);

        let w = wire_extend_stat(&a, &seg);
        wire_extend_stat_into(&mut dest, &a, &seg);
        assert_form_bits(&dest.load, &w.load);
        assert_form_bits(&dest.rat, &w.rat);

        let bf = buffer_extend_stat(&a, &cap, &delay, 0.2, NodeId(3), BufferTypeId(0));
        buffer_extend_stat_into(&mut dest, &a, &cap, &delay, 0.2, NodeId(3), BufferTypeId(0));
        assert_form_bits(&dest.load, &bf.load);
        assert_form_bits(&dest.rat, &bf.rat);
        assert_eq!(dest.trace.buffer_count(), 1);

        let m = merge_pair_stat(&a, &b);
        merge_pair_stat_into(&mut dest, &a, &b);
        assert_form_bits(&dest.load, &m.load);
        assert_form_bits(&dest.rat, &m.rat);
    }

    #[test]
    fn driver_rat_subtracts_charging_delay() {
        let s = stat(40.0, 1.0, -100.0, 0.0);
        let rat = driver_rat_stat(&s, 0.1);
        assert!((rat.mean() + 104.0).abs() < 1e-9);
        assert!((rat.coeff(SourceId(0)) + 0.1).abs() < 1e-12);
        let d = driver_rat_det(&DetSolution::new(40.0, -100.0), 0.1);
        assert!((d + 104.0).abs() < 1e-12);
    }
}
