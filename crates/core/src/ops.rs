//! The variation-aware key operations of Section 4.2.
//!
//! Three operations drive the dynamic program, each mapping canonical-form
//! solutions to canonical-form solutions:
//!
//! * **wire extension** (eqs. (33)–(34)): adding a wire of length `l`
//!   above a solution;
//! * **buffer extension** (eqs. (35)–(36)): inserting a buffer whose
//!   `C_b`/`T_b` are themselves canonical forms;
//! * **branch merge** (eqs. (37)–(38)): summing loads and taking the
//!   statistical minimum of the RATs via tightness probabilities.

use crate::solution::{DetSolution, StatSolution};
use crate::trace::Trace;
use varbuf_rctree::wire::WireSegment;
use varbuf_rctree::NodeId;
use varbuf_stats::clark::stat_min_assign;
use varbuf_stats::{stat_min, CanonicalForm};
use varbuf_variation::BufferTypeId;

/// Wire extension, statistical (eqs. (33)–(34)):
/// `L' = L + c·l`, `T' = T − r·l·L − ½·r·c·l²`.
#[must_use]
pub fn wire_extend_stat(sol: &StatSolution, seg: &WireSegment) -> StatSolution {
    let load = sol.load.plus_constant(seg.capacitance);
    // T' couples the load's sensitivities into the RAT: −r·l · L.
    let mut rat = sol.rat.linear_combination(1.0, &sol.load, -seg.resistance);
    rat.add_constant(-0.5 * seg.resistance * seg.capacitance);
    StatSolution {
        load,
        rat,
        // A pending deferral survives an eager extension unchanged: this
        // segment's coupling used the (wire-invariant) load terms, so the
        // deficit `−p·load_terms` still describes exactly what `rat` owes.
        wire_pending: sol.wire_pending,
        trace: sol.trace.clone(),
    }
}

/// In-place [`wire_extend_stat`]: writes the extended solution into a
/// recycled `dest` (which must be distinct from `sol`), reusing its term
/// buffers. Bitwise identical to the allocating version.
pub fn wire_extend_stat_into(dest: &mut StatSolution, sol: &StatSolution, seg: &WireSegment) {
    dest.load.copy_from(&sol.load);
    dest.load.add_constant(seg.capacitance);
    // T' couples the load's sensitivities into the RAT: −r·l · L.
    dest.rat
        .lin_comb_into(&sol.rat, 1.0, &sol.load, -seg.resistance);
    dest.rat
        .add_constant(-0.5 * seg.resistance * seg.capacitance);
    dest.wire_pending = sol.wire_pending;
    dest.trace = sol.trace.clone();
}

/// Lazy wire extension, statistical: folds the segment's effect on the
/// *means* in immediately — bit-for-bit the same two nominal adds the
/// eager kernel performs — and defers the O(terms) coupling
/// `rat ← rat − r·load` (terms only) by accumulating `r` into
/// [`StatSolution::wire_pending`]. Load terms are invariant under wire
/// extension, so the deferred chain collapses exactly to one
/// `−(Σrᵢ)·load` term update at materialization.
pub fn wire_defer_stat_in_place(sol: &mut StatSolution, seg: &WireSegment) {
    // Same fadd sequence as `wire_extend_stat_in_place`'s nominal path:
    // `+= −r·L̄` (add_scaled_assign's nominal update), then `−½·r·c·l²`.
    sol.rat.add_constant(-seg.resistance * sol.load.mean());
    sol.rat
        .add_constant(-0.5 * seg.resistance * seg.capacitance);
    sol.load.add_constant(seg.capacitance);
    sol.wire_pending += seg.resistance;
}

/// Copying [`wire_defer_stat_in_place`] for the multi-width lift: writes
/// the lazily-extended solution into a recycled `dest` (distinct from
/// `sol`). Means match the eager kernel bit-for-bit; the term coupling is
/// carried forward in `dest.wire_pending`.
pub fn wire_defer_stat_into(dest: &mut StatSolution, sol: &StatSolution, seg: &WireSegment) {
    dest.load.copy_from(&sol.load);
    dest.load.add_constant(seg.capacitance);
    dest.rat.copy_from(&sol.rat);
    dest.rat.add_constant(-seg.resistance * sol.load.mean());
    dest.rat
        .add_constant(-0.5 * seg.resistance * seg.capacitance);
    dest.wire_pending = sol.wire_pending + seg.resistance;
    dest.trace = sol.trace.clone();
}

/// Pays off a solution's deferred wire coupling: one
/// `rat ← rat − p·load` over the *terms* alone (the means were kept
/// current eagerly), clearing [`StatSolution::wire_pending`]. For a
/// unit-length chain (`p` the single segment's `r·l`) the term update is
/// the exact walk `wire_extend_stat_in_place` would have run, so the
/// result is bit-identical to the eager kernel; longer chains reassociate
/// the coefficient sum only.
pub fn materialize_wire_stat(sol: &mut StatSolution) {
    if sol.wire_pending != 0.0 {
        let p = sol.wire_pending;
        sol.rat.add_scaled_terms_assign(&sol.load, -p);
        sol.wire_pending = 0.0;
    }
}

/// [`wire_extend_stat`] mutating the solution itself — for the
/// single-width lift, where the child list is consumed and each
/// solution can be extended where it sits instead of copied. Bitwise
/// identical to the copying versions: the RAT update is
/// [`CanonicalForm::add_scaled_assign`] (documented bit-equal to the
/// `linear_combination` the copying kernel runs) against the load
/// *before* its constant shift, the same operand order both kernels
/// use. The trace is untouched — the same `Arc` the copying path
/// clones.
pub fn wire_extend_stat_in_place(sol: &mut StatSolution, seg: &WireSegment) {
    sol.rat.add_scaled_assign(&sol.load, -seg.resistance);
    sol.rat
        .add_constant(-0.5 * seg.resistance * seg.capacitance);
    sol.load.add_constant(seg.capacitance);
}

/// Wire extension, deterministic (eqs. (25)–(26)).
#[must_use]
pub fn wire_extend_det(sol: &DetSolution, seg: &WireSegment) -> DetSolution {
    DetSolution {
        load: sol.load + seg.capacitance,
        rat: sol.rat - seg.resistance * (sol.load + seg.capacitance / 2.0),
        trace: sol.trace.clone(),
    }
}

/// A composed chain of wire segments as one affine transform on
/// solutions: applying it performs
/// `L ← L + c`, `T ← T − r·(L + c/2) − d`
/// (`L` the load *before* the shift). A single segment is
/// `{d: 0, r: r_s, c: c_s}` — the `x − 0.0` tail is a bitwise identity,
/// so a unit-length transform reproduces [`wire_extend_det`] (and the
/// statistical kernels) exactly. `d` accumulates the cross terms that
/// composition introduces: folding each segment's `½·r·c` constant into
/// the `r·(L + c/2)` grouping keeps the degenerate case byte-identical,
/// at the cost of the slightly less obvious composition rule below.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingWire {
    /// Accumulated constant delay beyond the composed `½·r·c` term, ps.
    pub d: f64,
    /// Total segment resistance `Σrᵢ`, kΩ.
    pub r: f64,
    /// Total segment capacitance `Σcᵢ`, fF.
    pub c: f64,
}

impl PendingWire {
    /// The do-nothing transform.
    #[must_use]
    pub fn identity() -> Self {
        Self {
            d: 0.0,
            r: 0.0,
            c: 0.0,
        }
    }

    /// The transform of one wire segment.
    #[must_use]
    pub fn from_segment(seg: &WireSegment) -> Self {
        Self {
            d: 0.0,
            r: seg.resistance,
            c: seg.capacitance,
        }
    }

    /// Whether applying this transform is a no-op.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.d == 0.0 && self.r == 0.0 && self.c == 0.0
    }

    /// Extends the chain by one more segment `s` (applied *after* the
    /// segments already composed): with `T₁ = T − r·(L + c/2) − d` and
    /// `L₁ = L + c`, the next segment subtracts `r_s·(L₁ + c_s/2)`;
    /// regrouping under `r' = r + r_s`, `c' = c + c_s` leaves the
    /// correction `d' = d + (r_s·c − r·c_s)/2`.
    pub fn compose(&mut self, seg: &WireSegment) {
        self.d += 0.5 * (seg.resistance * self.c - self.r * seg.capacitance);
        self.r += seg.resistance;
        self.c += seg.capacitance;
    }

    /// Applies the transform to a deterministic solution. A unit-length
    /// transform is bit-identical to [`wire_extend_det`].
    #[must_use]
    pub fn apply_det(&self, sol: &DetSolution) -> DetSolution {
        DetSolution {
            load: sol.load + self.c,
            rat: sol.rat - self.r * (sol.load + self.c / 2.0) - self.d,
            trace: sol.trace.clone(),
        }
    }

    /// Applies the full transform (means and terms) to a statistical
    /// solution. A unit-length transform is bit-identical to
    /// [`wire_extend_stat_in_place`]; the reference the lazy engine path
    /// (defer + [`materialize_wire_stat`]) is property-tested against.
    pub fn apply_stat(&self, sol: &mut StatSolution) {
        sol.rat.add_scaled_assign(&sol.load, -self.r);
        sol.rat.add_constant(-0.5 * self.r * self.c);
        sol.rat.add_constant(-self.d);
        sol.load.add_constant(self.c);
    }
}

/// Buffer extension, statistical (eqs. (35)–(36)):
/// `L' = C_b`, `T' = T − T_b − R_b·L` with `C_b`/`T_b` canonical forms.
#[must_use]
pub fn buffer_extend_stat(
    sol: &StatSolution,
    cap_form: &CanonicalForm,
    delay_form: &CanonicalForm,
    resistance: f64,
    node: NodeId,
    ty: BufferTypeId,
) -> StatSolution {
    debug_assert_eq!(
        sol.wire_pending, 0.0,
        "buffer extension reads the RAT's terms; materialize first"
    );
    let rat = sol
        .rat
        .linear_combination(1.0, &sol.load, -resistance)
        .sub(delay_form);
    StatSolution {
        load: cap_form.clone(),
        rat,
        wire_pending: 0.0,
        trace: Trace::buffer(node, ty, sol.trace.clone()),
    }
}

/// In-place [`buffer_extend_stat`]: writes into a recycled `dest`
/// (distinct from `sol`), fusing the `−R·L` coupling and the `−T_b`
/// subtraction into one merge walk. Bitwise identical to the allocating
/// two-pass version (pinned by `lin_comb_sub_into`'s own tests).
pub fn buffer_extend_stat_into(
    dest: &mut StatSolution,
    sol: &StatSolution,
    cap_form: &CanonicalForm,
    delay_form: &CanonicalForm,
    resistance: f64,
    node: NodeId,
    ty: BufferTypeId,
) {
    debug_assert_eq!(
        sol.wire_pending, 0.0,
        "buffer extension reads the RAT's terms; materialize first"
    );
    dest.rat
        .lin_comb_sub_into(&sol.rat, 1.0, &sol.load, -resistance, delay_form);
    dest.load.copy_from(cap_form);
    dest.wire_pending = 0.0;
    dest.trace = Trace::buffer(node, ty, sol.trace.clone());
}

/// Buffer extension, deterministic (eqs. (27)–(28)).
#[must_use]
pub fn buffer_extend_det(
    sol: &DetSolution,
    capacitance: f64,
    intrinsic_delay: f64,
    resistance: f64,
    node: NodeId,
    ty: BufferTypeId,
) -> DetSolution {
    DetSolution {
        load: capacitance,
        rat: sol.rat - intrinsic_delay - resistance * sol.load,
        trace: Trace::buffer(node, ty, sol.trace.clone()),
    }
}

/// Branch merge of one pair, statistical (eqs. (37)–(38)):
/// `L' = L_n + L_m`, `T' = min(T_n, T_m)` via tightness probability.
#[must_use]
pub fn merge_pair_stat(a: &StatSolution, b: &StatSolution) -> StatSolution {
    debug_assert!(
        a.wire_pending == 0.0 && b.wire_pending == 0.0,
        "merge's statistical min reads both RATs' terms; materialize first"
    );
    StatSolution {
        load: a.load.add(&b.load),
        rat: stat_min(&a.rat, &b.rat).form,
        wire_pending: 0.0,
        trace: Trace::join(a.trace.clone(), b.trace.clone()),
    }
}

/// In-place [`merge_pair_stat`]: writes into a recycled `dest` (distinct
/// from both operands). Bitwise identical to the allocating version —
/// the load add is the same sorted merge and the RAT min goes through
/// [`stat_min_assign`], which reproduces `stat_min` exactly.
pub fn merge_pair_stat_into(dest: &mut StatSolution, a: &StatSolution, b: &StatSolution) {
    debug_assert!(
        a.wire_pending == 0.0 && b.wire_pending == 0.0,
        "merge's statistical min reads both RATs' terms; materialize first"
    );
    dest.load.lin_comb_into(&a.load, 1.0, &b.load, 1.0);
    stat_min_assign(&mut dest.rat, &a.rat, &b.rat);
    dest.wire_pending = 0.0;
    dest.trace = Trace::join(a.trace.clone(), b.trace.clone());
}

/// Branch merge of one pair, deterministic (eqs. (29)–(30)).
#[must_use]
pub fn merge_pair_det(a: &DetSolution, b: &DetSolution) -> DetSolution {
    DetSolution {
        load: a.load + b.load,
        rat: a.rat.min(b.rat),
        trace: Trace::join(a.trace.clone(), b.trace.clone()),
    }
}

/// Final driver step: the RAT seen at the source once the driver
/// resistance `R_d` charges the root load — statistical form.
#[must_use]
pub fn driver_rat_stat(sol: &StatSolution, driver_resistance: f64) -> CanonicalForm {
    debug_assert_eq!(
        sol.wire_pending, 0.0,
        "driver RAT reads the root RAT's terms; materialize first"
    );
    sol.rat
        .linear_combination(1.0, &sol.load, -driver_resistance)
}

/// Final driver step, deterministic.
#[must_use]
pub fn driver_rat_det(sol: &DetSolution, driver_resistance: f64) -> f64 {
    sol.rat - driver_resistance * sol.load
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_rctree::WireParams;
    use varbuf_stats::SourceId;

    fn wire_seg(l: f64) -> WireSegment {
        WireParams {
            res_per_um: 1e-3,
            cap_per_um: 0.1,
        }
        .segment(l)
    }

    fn stat(load: f64, lterm: f64, rat: f64, rterm: f64) -> StatSolution {
        StatSolution::new(
            CanonicalForm::with_terms(load, vec![(SourceId(0), lterm)]),
            CanonicalForm::with_terms(rat, vec![(SourceId(1), rterm)]),
        )
    }

    #[test]
    fn wire_extend_in_place_matches_copying_kernel_bitwise() {
        // Load sources both overlapping the RAT's and disjoint from it,
        // so the in-place update exercises matches and insertions.
        let mut s = StatSolution::new(
            CanonicalForm::with_terms(30.0, vec![(SourceId(0), 2.0), (SourceId(3), -0.5)]),
            CanonicalForm::with_terms(-100.0, vec![(SourceId(1), 3.0), (SourceId(3), 0.25)]),
        );
        let seg = wire_seg(750.0);
        let reference = wire_extend_stat(&s, &seg);
        wire_extend_stat_in_place(&mut s, &seg);
        for (a, b) in [(&reference.load, &s.load), (&reference.rat, &s.rat)] {
            assert_eq!(a.mean().to_bits(), b.mean().to_bits());
            assert_eq!(a.term_count(), b.term_count());
            for (x, y) in a.terms().zip(b.terms()) {
                assert_eq!(x.0, y.0);
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
        assert!(std::sync::Arc::ptr_eq(&reference.trace, &s.trace));
    }

    #[test]
    fn lazy_unit_chain_is_bitwise_identical_to_eager() {
        // One segment deferred then materialized must reproduce the
        // eager kernel exactly: the mean adds run in the same order and
        // the term walk is `add_scaled_assign`'s with the same operands.
        let mk = || {
            StatSolution::new(
                CanonicalForm::with_terms(30.0, vec![(SourceId(0), 2.0), (SourceId(3), -0.5)]),
                CanonicalForm::with_terms(-100.0, vec![(SourceId(1), 3.0), (SourceId(3), 0.25)]),
            )
        };
        let seg = wire_seg(750.0);
        let mut eager = mk();
        wire_extend_stat_in_place(&mut eager, &seg);
        let mut lazy = mk();
        wire_defer_stat_in_place(&mut lazy, &seg);
        assert_eq!(lazy.wire_pending, seg.resistance);
        materialize_wire_stat(&mut lazy);
        assert_eq!(lazy.wire_pending, 0.0);
        assert_form_bits(&eager.load, &lazy.load);
        assert_form_bits(&eager.rat, &lazy.rat);
        // The copying variant carries the accumulated pending forward.
        let mut dest = mk();
        wire_defer_stat_into(&mut dest, &lazy, &seg);
        assert_eq!(dest.wire_pending, seg.resistance);
        assert_eq!(dest.rat.mean().to_bits(), {
            let mut e2 = eager.clone();
            wire_extend_stat_in_place(&mut e2, &seg);
            e2.rat.mean().to_bits()
        });
    }

    #[test]
    fn pending_wire_unit_transform_matches_kernels_bitwise() {
        let seg = wire_seg(617.0);
        let t = PendingWire::from_segment(&seg);
        assert!(!t.is_identity());
        assert!(PendingWire::identity().is_identity());

        let d = DetSolution::new(37.5, -210.25);
        let eager = wire_extend_det(&d, &seg);
        let lazy = t.apply_det(&d);
        assert_eq!(eager.load.to_bits(), lazy.load.to_bits());
        assert_eq!(eager.rat.to_bits(), lazy.rat.to_bits());

        let mut s = stat(30.0, 2.0, -100.0, 3.0);
        let mut viat = s.clone();
        wire_extend_stat_in_place(&mut s, &seg);
        t.apply_stat(&mut viat);
        assert_form_bits(&s.load, &viat.load);
        assert_form_bits(&s.rat, &viat.rat);
    }

    /// Satellite: pending-transform composition vs the sequential eager
    /// chain, 3 seeds × lengths {1,2,8,32} × {D2D, WID}-shaped forms,
    /// within 1e-12 relative.
    #[test]
    fn deferred_chain_matches_sequential_within_1e12() {
        use varbuf_stats::rng::SplitMix64;
        let close = |a: f64, b: f64| {
            let scale = a.abs().max(b.abs()).max(1.0);
            assert!(
                (a - b).abs() <= 1e-12 * scale,
                "deferred {a} vs sequential {b}"
            );
        };
        for seed in [0x9E37_79B9u64, 0x85EB_CA6B, 0xC2B2_AE35] {
            for len in [1usize, 2, 8, 32] {
                // D2D: a handful of shared global sources; WID: many
                // region sources, mostly disjoint between load and RAT.
                for sources in [4u32, 40] {
                    let mut rng = SplitMix64::new(seed ^ (len as u64) ^ u64::from(sources));
                    let mut terms = |n: usize| {
                        (0..n)
                            .map(|_| {
                                (
                                    SourceId(rng.next_u64() as u32 % sources),
                                    rng.next_f64() * 4.0 - 2.0,
                                )
                            })
                            .collect::<Vec<_>>()
                    };
                    let lterms = terms(3 + sources as usize / 4);
                    let rterms = terms(3 + sources as usize / 4);
                    let mut rng2 =
                        SplitMix64::new(seed.wrapping_mul(0xD129_42C2).wrapping_add(len as u64));
                    let base = StatSolution::new(
                        CanonicalForm::with_terms(20.0 + rng2.next_f64() * 30.0, lterms),
                        CanonicalForm::with_terms(-150.0 + rng2.next_f64() * 50.0, rterms),
                    );
                    let segs: Vec<WireSegment> = (0..len)
                        .map(|_| wire_seg(50.0 + rng2.next_f64() * 450.0))
                        .collect();

                    let mut eager = base.clone();
                    for seg in &segs {
                        wire_extend_stat_in_place(&mut eager, seg);
                    }

                    // Engine path: per-segment defer, one materialize.
                    let mut lazy = base.clone();
                    for seg in &segs {
                        wire_defer_stat_in_place(&mut lazy, seg);
                    }
                    materialize_wire_stat(&mut lazy);

                    // Composed-transform path.
                    let mut composed = PendingWire::identity();
                    for seg in &segs {
                        composed.compose(seg);
                    }
                    let mut viat = base.clone();
                    composed.apply_stat(&mut viat);

                    for got in [&lazy, &viat] {
                        close(eager.load.mean(), got.load.mean());
                        close(eager.rat.mean(), got.rat.mean());
                        assert_eq!(eager.load.term_count(), got.load.term_count());
                        assert_eq!(eager.rat.term_count(), got.rat.term_count());
                        for (x, y) in eager.rat.terms().zip(got.rat.terms()) {
                            assert_eq!(x.0, y.0);
                            close(x.1, y.1);
                        }
                    }
                }
            }
        }
    }

    /// Det-side exact-equality variant: with dyadic segment values every
    /// intermediate is exactly representable, so composition must agree
    /// with the sequential chain bit for bit, not just to 1e-12.
    #[test]
    fn pending_wire_det_composition_exact_on_dyadic_chains() {
        let segs = [
            (0.125, 2.0),
            (0.25, 4.0),
            (0.5, 1.0),
            (0.0625, 8.0),
            (1.0, 0.5),
        ]
        .map(|(resistance, capacitance)| WireSegment {
            length: 1.0,
            resistance,
            capacitance,
        });
        for take in 1..=segs.len() {
            let mut seq = DetSolution::new(16.0, -64.0);
            let mut composed = PendingWire::identity();
            for seg in &segs[..take] {
                seq = wire_extend_det(&seq, seg);
                composed.compose(seg);
            }
            let lazy = composed.apply_det(&DetSolution::new(16.0, -64.0));
            assert_eq!(seq.load.to_bits(), lazy.load.to_bits(), "load, len {take}");
            assert_eq!(seq.rat.to_bits(), lazy.rat.to_bits(), "rat, len {take}");
        }
    }

    /// Satellite regression: per-segment epsilon-sparsification compounds
    /// term drop along a chain — a term a single post-materialization
    /// sparsify keeps is lost when every segment re-thresholds against
    /// its own intermediate σ.
    #[test]
    fn per_segment_sparsify_compounds_term_drop_on_chains() {
        let epsilon = 0.1;
        // The RAT starts with a large S0 coefficient that the chain's
        // coupling cancels almost exactly (load carries +1 on S0, each
        // segment subtracts r·1), plus a small independent S9 term that
        // is below ε·σ early on but dominant once S0 has cancelled.
        let mk = || {
            StatSolution::new(
                CanonicalForm::with_terms(100.0, vec![(SourceId(0), 1.0)]),
                CanonicalForm::with_terms(-500.0, vec![(SourceId(0), 10.0), (SourceId(9), 0.15)]),
            )
        };
        let seg = WireSegment {
            length: 1000.0,
            resistance: 1.0,
            capacitance: 10.0,
        };
        let mut eager = mk();
        for _ in 0..10 {
            wire_extend_stat_in_place(&mut eager, &seg);
            eager.load.sparsify(epsilon);
            eager.rat.sparsify(epsilon);
        }
        let mut lazy = mk();
        for _ in 0..10 {
            wire_defer_stat_in_place(&mut lazy, &seg);
        }
        materialize_wire_stat(&mut lazy);
        lazy.load.sparsify(epsilon);
        lazy.rat.sparsify(epsilon);
        // Eager dropped S9 at the first threshold pass (σ ≈ 9 there);
        // the lazy path's single final pass sees σ ≈ 0.15 and keeps it.
        assert_eq!(eager.rat.coeff(SourceId(9)), 0.0, "eager compounding");
        assert!((lazy.rat.coeff(SourceId(9)) - 0.15).abs() < 1e-12);
        assert!(lazy.rat.term_count() > eager.rat.term_count());
    }

    #[test]
    fn stat_wire_matches_det_on_means() {
        let s = stat(30.0, 2.0, -100.0, 3.0);
        let d = DetSolution::new(30.0, -100.0);
        let seg = wire_seg(500.0);
        let sw = wire_extend_stat(&s, &seg);
        let dw = wire_extend_det(&d, &seg);
        assert!((sw.load.mean() - dw.load).abs() < 1e-9);
        assert!((sw.rat.mean() - dw.rat).abs() < 1e-9);
    }

    #[test]
    fn wire_couples_load_variation_into_rat() {
        // Eq. (34): the RAT sensitivity picks up −r·l·α from the load.
        let s = stat(30.0, 2.0, -100.0, 0.0);
        let seg = wire_seg(1000.0); // r·l = 1.0 kΩ
        let sw = wire_extend_stat(&s, &seg);
        assert!((sw.rat.coeff(SourceId(0)) + 2.0).abs() < 1e-12);
        // Load terms are untouched by wire.
        assert!((sw.load.coeff(SourceId(0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_replaces_load_with_cap_form() {
        let s = stat(50.0, 1.0, -200.0, 1.0);
        let cap = CanonicalForm::with_terms(20.0, vec![(SourceId(5), 1.0)]);
        let delay = CanonicalForm::with_terms(35.0, vec![(SourceId(5), 1.8)]);
        let out = buffer_extend_stat(&s, &cap, &delay, 0.2, NodeId(3), BufferTypeId(0));
        assert_eq!(out.load, cap);
        // T' = T − T_b − R·L → mean −200 − 35 − 0.2·50 = −245.
        assert!((out.rat.mean() + 245.0).abs() < 1e-9);
        // Sensitivities: rat gets −1.8 (delay) on S5, −0.2·1.0 on S0 (from R·L), keeps 1.0 on S1.
        assert!((out.rat.coeff(SourceId(5)) + 1.8).abs() < 1e-12);
        assert!((out.rat.coeff(SourceId(0)) + 0.2).abs() < 1e-12);
        assert!((out.rat.coeff(SourceId(1)) - 1.0).abs() < 1e-12);
        assert_eq!(out.trace.buffer_count(), 1);
    }

    #[test]
    fn det_buffer_matches_formula() {
        let s = DetSolution::new(50.0, -200.0);
        let out = buffer_extend_det(&s, 20.0, 35.0, 0.2, NodeId(3), BufferTypeId(1));
        assert_eq!(out.load, 20.0);
        assert!((out.rat + 245.0).abs() < 1e-12);
        assert_eq!(out.trace.collect(), vec![(NodeId(3), BufferTypeId(1))]);
    }

    #[test]
    fn merge_sums_loads_and_mins_rats() {
        let a = stat(10.0, 1.0, -100.0, 1.0);
        let b = stat(20.0, 0.5, -50.0, 1.0);
        let m = merge_pair_stat(&a, &b);
        assert!((m.load.mean() - 30.0).abs() < 1e-12);
        // Statistical min mean is at most min of the means.
        assert!(m.rat.mean() <= -100.0 + 1e-9);
        // Deterministic counterpart.
        let dm = merge_pair_det(
            &DetSolution::new(10.0, -100.0),
            &DetSolution::new(20.0, -50.0),
        );
        assert_eq!(dm.load, 30.0);
        assert_eq!(dm.rat, -100.0);
    }

    fn assert_form_bits(a: &CanonicalForm, b: &CanonicalForm) {
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.term_count(), b.term_count());
        for (x, y) in a.terms().zip(b.terms()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }

    #[test]
    fn into_ops_match_allocating_ops_bitwise() {
        let a = stat(30.0, 2.0, -100.0, 3.0);
        let b = stat(12.0, -0.7, -80.0, 1.1);
        let seg = wire_seg(750.0);
        let cap = CanonicalForm::with_terms(20.0, vec![(SourceId(5), 1.0)]);
        let delay = CanonicalForm::with_terms(35.0, vec![(SourceId(1), 1.8)]);
        // Recycled destination with stale content that must be overwritten.
        let mut dest = stat(9.9, 9.9, 9.9, 9.9);

        let w = wire_extend_stat(&a, &seg);
        wire_extend_stat_into(&mut dest, &a, &seg);
        assert_form_bits(&dest.load, &w.load);
        assert_form_bits(&dest.rat, &w.rat);

        let bf = buffer_extend_stat(&a, &cap, &delay, 0.2, NodeId(3), BufferTypeId(0));
        buffer_extend_stat_into(&mut dest, &a, &cap, &delay, 0.2, NodeId(3), BufferTypeId(0));
        assert_form_bits(&dest.load, &bf.load);
        assert_form_bits(&dest.rat, &bf.rat);
        assert_eq!(dest.trace.buffer_count(), 1);

        let m = merge_pair_stat(&a, &b);
        merge_pair_stat_into(&mut dest, &a, &b);
        assert_form_bits(&dest.load, &m.load);
        assert_form_bits(&dest.rat, &m.rat);
    }

    #[test]
    fn driver_rat_subtracts_charging_delay() {
        let s = stat(40.0, 1.0, -100.0, 0.0);
        let rat = driver_rat_stat(&s, 0.1);
        assert!((rat.mean() + 104.0).abs() < 1e-9);
        assert!((rat.coeff(SourceId(0)) + 0.1).abs() < 1e-12);
        let d = driver_rat_det(&DetSolution::new(40.0, -100.0), 0.1);
        assert!((d + 104.0).abs() < 1e-12);
    }
}
