//! The statistical pruning rules (Section 2 of the paper).
//!
//! A pruning rule decides when one random solution *dominates* another —
//! the single design decision that determines whether the dynamic program
//! stays polynomial:
//!
//! * [`TwoParam`] — the paper's contribution. Solutions are ordered by
//!   the probability conditions (6)–(7), `P(L₁<L₂) ≥ p̄_L` and
//!   `P(T₁>T₂) ≥ p̄_T`. Under joint normality this ordering is total and
//!   transitive (Lemmas 2–4, Theorem 2), so merge and prune run in
//!   **linear** time over mean-sorted lists, giving `O(B·N²)` overall
//!   (Theorem 1).
//! * [`FourParam`] — the rule of the DATE 2005 paper \[7\] this work
//!   extends: interval dominance between percentile pairs. Only a partial
//!   order, so merging needs the full `O(n·m)` cross product and pruning
//!   `O(N²)` pairwise checks — the blow-up shown in Table 2.
//! * [`OneParam`] — the simplified single-percentile rule of \[8\]:
//!   deterministic dominance applied to fixed percentiles; linear, but
//!   blind to correlations between solutions.

use crate::solution::StatSolution;
use std::fmt;
use varbuf_stats::norm_quantile;

/// Structure-of-arrays scratch holding every solution's pruning keys,
/// computed **once** per prune/merge instead of once per comparison.
///
/// `load`/`rat` hold the rule's scalar keys (load ascending = better, RAT
/// descending = better); `aux` holds rule-specific extra columns (the 4P
/// rule stores its four percentile arrays there). The table is recycled
/// across nodes by the DP's solution pool, so batch key computation is
/// allocation-free once the vectors have grown to the high-water mark.
#[derive(Debug, Default, Clone)]
pub struct KeyTable {
    /// Load keys (ascending = better), aligned with the solution list.
    pub load: Vec<f64>,
    /// RAT keys (descending = better), aligned with the solution list.
    pub rat: Vec<f64>,
    /// Rule-specific auxiliary columns; unused ones stay empty.
    pub aux: [Vec<f64>; 4],
}

impl KeyTable {
    /// Empties all columns, retaining capacity.
    pub fn clear(&mut self) {
        self.load.clear();
        self.rat.clear();
        for a in &mut self.aux {
            a.clear();
        }
    }

    /// Number of keyed solutions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.load.len()
    }

    /// Whether the table holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.load.is_empty()
    }

    /// Swaps the keys of solutions `i` and `j` in every populated column
    /// (keeps the table aligned when the solution list is permuted).
    pub fn swap(&mut self, i: usize, j: usize) {
        self.load.swap(i, j);
        self.rat.swap(i, j);
        for a in &mut self.aux {
            if !a.is_empty() {
                a.swap(i, j);
            }
        }
    }

    /// Truncates every populated column to `len`.
    pub fn truncate(&mut self, len: usize) {
        self.load.truncate(len);
        self.rat.truncate(len);
        for a in &mut self.aux {
            if !a.is_empty() {
                a.truncate(len);
            }
        }
    }
}

/// A rule was configured with thresholds outside its valid range.
///
/// Returned by the `try_new` constructors so that user-supplied
/// parameters (e.g. a CLI `--p` flag) surface as a recoverable error
/// instead of a panic deep inside the optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleConfigError {
    rule: &'static str,
    message: String,
}

impl RuleConfigError {
    fn new(rule: &'static str, message: String) -> Self {
        Self { rule, message }
    }

    /// Name of the rule that rejected its configuration.
    #[must_use]
    pub fn rule(&self) -> &'static str {
        self.rule
    }
}

impl fmt::Display for RuleConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} configuration: {}", self.rule, self.message)
    }
}

impl std::error::Error for RuleConfigError {}

/// A pruning key came out non-finite (NaN or ±∞).
///
/// `f64::total_cmp` gives NaN a defined sort position, but a NaN load or
/// RAT key means the solution itself is corrupt — comparisons against it
/// are meaningless and the dominance sweep would silently keep or drop it
/// depending on where the sort happened to place it. The checked prune
/// entry point surfaces the first offender as a typed error instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteKey {
    /// Index of the offending solution in the pre-prune list.
    pub index: usize,
    /// Name of the key column (`"load"`, `"rat"`, or `"aux[k]"`).
    pub column: &'static str,
    /// The non-finite value itself.
    pub value: f64,
}

impl fmt::Display for NonFiniteKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solution {} has a non-finite {} pruning key ({})",
            self.index, self.column, self.value
        )
    }
}

impl std::error::Error for NonFiniteKey {}

/// How a rule's `merge`/`prune` must traverse solution sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// The rule induces a total, transitive order: lists stay sorted and
    /// merge/prune are linear walks (Figure 1 of the paper).
    SortedLinear,
    /// The rule is only a partial order: all `n·m` combinations must be
    /// formed and pruning is pairwise quadratic.
    CrossProduct,
}

/// A dominance relation between statistical solutions.
///
/// This trait is sealed in spirit: the three implementations in this
/// module are the rules the paper studies, and the DP engine treats them
/// uniformly through it. Rules must be `Send + Sync` so the parallel
/// engine can consult one rule object from every worker; the three
/// paper rules are plain `Copy` value types, so this costs nothing.
pub trait PruningRule: fmt::Debug + Send + Sync {
    /// Human-readable rule name (`"2P"`, `"4P"`, `"1P"`).
    fn name(&self) -> &'static str;

    /// The traversal strategy this rule supports.
    fn strategy(&self) -> MergeStrategy;

    /// Scalar key ordering loads ascending (smaller = better).
    fn load_key(&self, s: &StatSolution) -> f64;

    /// Scalar key ordering RATs (larger = better).
    fn rat_key(&self, s: &StatSolution) -> f64;

    /// Whether `a` dominates `b` (so `b` may be discarded).
    fn dominates(&self, a: &StatSolution, b: &StatSolution) -> bool;

    /// Computes every solution's keys in one batch into `keys`
    /// (cleared first). The default fills `load`/`rat` from
    /// [`load_key`](Self::load_key)/[`rat_key`](Self::rat_key); rules
    /// with more expensive keys (4P percentiles) override this to hoist
    /// shared work (e.g. `norm_quantile` lookups) out of the per-solution
    /// loop. Key values are bitwise what the scalar accessors return.
    fn batch_keys(&self, sols: &[StatSolution], keys: &mut KeyTable) {
        keys.clear();
        keys.load.extend(sols.iter().map(|s| self.load_key(s)));
        keys.rat.extend(sols.iter().map(|s| self.rat_key(s)));
    }

    /// [`dominates`](Self::dominates) evaluated through precomputed keys:
    /// decides whether solution `a` (by index) dominates solution `b`.
    /// `keys` must be aligned with `sols` (same order). The default
    /// ignores the keys and delegates to the form-based check; rules
    /// whose dominance is a pure key comparison override it so pruning
    /// sweeps touch only flat `f64` columns.
    fn dominates_keyed(&self, keys: &KeyTable, a: usize, b: usize, sols: &[StatSolution]) -> bool {
        let _ = keys;
        self.dominates(&sols[a], &sols[b])
    }

    /// Whether this rule's scalar keys are plain means — i.e.
    /// `load_key == load_mean()` and `rat_key == rat_mean()` with
    /// dominance a pure `(load ≤, rat ≥)` key comparison. When true, the
    /// DP can predict a candidate's keys from scalar arithmetic *before*
    /// building its canonical forms, enabling the Li–Shi generation skip
    /// (see `DpOptions::use_lishi`). Percentile-keyed rules (1P, 2P with
    /// thresholds above 0.5, 2P9) need a σ that only exists once the
    /// form is built, so they return the default `false`.
    fn mean_keys(&self) -> bool {
        false
    }
}

/// The proposed two-parameter rule, eqs. (6)–(7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoParam {
    p_load: f64,
    p_rat: f64,
}

impl TwoParam {
    /// Creates the rule with thresholds `p̄_L` and `p̄_T`.
    ///
    /// # Panics
    ///
    /// Panics unless both thresholds are in `[0.5, 1)` — values below 0.5
    /// are meaningless for pruning (footnote 3 of the paper) and `1.0`
    /// degenerates to the almost-sure ordering of eqs. (4)–(5).
    #[must_use]
    pub fn new(p_load: f64, p_rat: f64) -> Self {
        match Self::try_new(p_load, p_rat) {
            Ok(rule) => rule,
            Err(e) => panic!("2P thresholds must be in [0.5, 1), got ({p_load}, {p_rat}): {e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new) for user-supplied
    /// thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`RuleConfigError`] unless both thresholds are in
    /// `[0.5, 1)`.
    pub fn try_new(p_load: f64, p_rat: f64) -> Result<Self, RuleConfigError> {
        if !((0.5..1.0).contains(&p_load) && (0.5..1.0).contains(&p_rat)) {
            return Err(RuleConfigError::new(
                "2P",
                format!("thresholds must be in [0.5, 1), got ({p_load}, {p_rat})"),
            ));
        }
        Ok(Self { p_load, p_rat })
    }

    /// The thresholds `(p̄_L, p̄_T)`.
    #[must_use]
    pub fn thresholds(&self) -> (f64, f64) {
        (self.p_load, self.p_rat)
    }
}

impl Default for TwoParam {
    /// The `p̄_L = p̄_T = 0.5` setting of Theorem 1 (pure mean ordering).
    fn default() -> Self {
        Self::new(0.5, 0.5)
    }
}

impl PruningRule for TwoParam {
    fn name(&self) -> &'static str {
        "2P"
    }

    fn strategy(&self) -> MergeStrategy {
        MergeStrategy::SortedLinear
    }

    fn load_key(&self, s: &StatSolution) -> f64 {
        s.load_mean()
    }

    fn rat_key(&self, s: &StatSolution) -> f64 {
        s.rat_mean()
    }

    fn dominates(&self, a: &StatSolution, b: &StatSolution) -> bool {
        if self.p_load == 0.5 && self.p_rat == 0.5 {
            // Lemma 4: the probability conditions reduce to mean ordering.
            return a.load_mean() <= b.load_mean() && a.rat_mean() >= b.rat_mean();
        }
        a.load.prob_less(&b.load) >= self.p_load && a.rat.prob_greater(&b.rat) >= self.p_rat
    }

    fn dominates_keyed(&self, keys: &KeyTable, a: usize, b: usize, sols: &[StatSolution]) -> bool {
        if self.p_load == 0.5 && self.p_rat == 0.5 {
            // The keys ARE the means — the whole check reads two flat
            // columns (the 2P hot path).
            return keys.load[a] <= keys.load[b] && keys.rat[a] >= keys.rat[b];
        }
        // Thresholded 2P needs the probability integrals; prob_less /
        // prob_greater are allocation-free via `sub_stats`.
        self.dominates(&sols[a], &sols[b])
    }

    fn mean_keys(&self) -> bool {
        self.p_load == 0.5 && self.p_rat == 0.5
    }
}

/// The four-parameter rule of the DATE 2005 paper \[7\], eqs. (2)–(3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FourParam {
    alpha_l: f64,
    alpha_u: f64,
    beta_l: f64,
    beta_u: f64,
}

impl FourParam {
    /// Creates the rule with load percentiles `(α_l, α_u)` and RAT
    /// percentiles `(β_l, β_u)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < α_l < α_u < 1` and `0 < β_l < β_u < 1`.
    #[must_use]
    pub fn new(alpha_l: f64, alpha_u: f64, beta_l: f64, beta_u: f64) -> Self {
        match Self::try_new(alpha_l, alpha_u, beta_l, beta_u) {
            Ok(rule) => rule,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new) for user-supplied
    /// percentile pairs.
    ///
    /// # Errors
    ///
    /// Returns [`RuleConfigError`] unless `0 < α_l < α_u < 1` and
    /// `0 < β_l < β_u < 1`.
    pub fn try_new(
        alpha_l: f64,
        alpha_u: f64,
        beta_l: f64,
        beta_u: f64,
    ) -> Result<Self, RuleConfigError> {
        if !(0.0 < alpha_l && alpha_l < alpha_u && alpha_u < 1.0) {
            return Err(RuleConfigError::new(
                "4P",
                format!("need 0 < α_l < α_u < 1, got ({alpha_l}, {alpha_u})"),
            ));
        }
        if !(0.0 < beta_l && beta_l < beta_u && beta_u < 1.0) {
            return Err(RuleConfigError::new(
                "4P",
                format!("need 0 < β_l < β_u < 1, got ({beta_l}, {beta_u})"),
            ));
        }
        Ok(Self {
            alpha_l,
            alpha_u,
            beta_l,
            beta_u,
        })
    }
}

impl Default for FourParam {
    /// A representative designer preference: 10%/90% intervals.
    fn default() -> Self {
        Self::new(0.1, 0.9, 0.1, 0.9)
    }
}

impl PruningRule for FourParam {
    fn name(&self) -> &'static str {
        "4P"
    }

    fn strategy(&self) -> MergeStrategy {
        MergeStrategy::CrossProduct
    }

    fn load_key(&self, s: &StatSolution) -> f64 {
        s.load_mean()
    }

    fn rat_key(&self, s: &StatSolution) -> f64 {
        s.rat_mean()
    }

    fn dominates(&self, a: &StatSolution, b: &StatSolution) -> bool {
        // Eq. (2): π_{α_u}(L₁) < π_{α_l}(L₂);
        // eq. (3): π_{β_l}(T₁) > π_{β_u}(T₂).
        a.load.percentile(self.alpha_u) < b.load.percentile(self.alpha_l)
            && a.rat.percentile(self.beta_l) > b.rat.percentile(self.beta_u)
    }

    fn batch_keys(&self, sols: &[StatSolution], keys: &mut KeyTable) {
        keys.clear();
        keys.load.extend(sols.iter().map(|s| s.load_mean()));
        keys.rat.extend(sols.iter().map(|s| s.rat_mean()));
        // Hoist the four quantile inversions out of the per-solution loop
        // (`norm_quantile` is deterministic, so the products are bitwise
        // what per-call `percentile` computes), and take each form's
        // std_dev once instead of once per percentile.
        let z_al = norm_quantile(self.alpha_l);
        let z_au = norm_quantile(self.alpha_u);
        let z_bl = norm_quantile(self.beta_l);
        let z_bu = norm_quantile(self.beta_u);
        for s in sols {
            let (lm, ls) = (s.load.mean(), s.load.std_dev());
            if ls == 0.0 {
                keys.aux[0].push(lm);
                keys.aux[1].push(lm);
            } else {
                keys.aux[0].push(lm + z_al * ls);
                keys.aux[1].push(lm + z_au * ls);
            }
            let (rm, rs) = (s.rat.mean(), s.rat.std_dev());
            if rs == 0.0 {
                keys.aux[2].push(rm);
                keys.aux[3].push(rm);
            } else {
                keys.aux[2].push(rm + z_bl * rs);
                keys.aux[3].push(rm + z_bu * rs);
            }
        }
    }

    fn dominates_keyed(&self, keys: &KeyTable, a: usize, b: usize, _sols: &[StatSolution]) -> bool {
        // aux[0] = π_{α_l}(L), aux[1] = π_{α_u}(L),
        // aux[2] = π_{β_l}(T), aux[3] = π_{β_u}(T).
        keys.aux[1][a] < keys.aux[0][b] && keys.aux[2][a] > keys.aux[3][b]
    }
}

/// The one-parameter percentile rule of \[8\]: deterministic dominance on
/// fixed percentiles (load at `α`, RAT at `1−α`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneParam {
    alpha: f64,
}

impl OneParam {
    /// Creates the rule with percentile `α`.
    ///
    /// # Panics
    ///
    /// Panics unless `α ∈ (0, 1)`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        match Self::try_new(alpha) {
            Ok(rule) => rule,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new) for a user-supplied
    /// percentile.
    ///
    /// # Errors
    ///
    /// Returns [`RuleConfigError`] unless `α ∈ (0, 1)`.
    pub fn try_new(alpha: f64) -> Result<Self, RuleConfigError> {
        if !((0.0..1.0).contains(&alpha) && alpha > 0.0) {
            return Err(RuleConfigError::new(
                "1P",
                format!("percentile must be in (0, 1), got {alpha}"),
            ));
        }
        Ok(Self { alpha })
    }
}

impl Default for OneParam {
    /// The conservative 95th-percentile setting.
    fn default() -> Self {
        Self::new(0.95)
    }
}

impl PruningRule for OneParam {
    fn name(&self) -> &'static str {
        "1P"
    }

    fn strategy(&self) -> MergeStrategy {
        MergeStrategy::SortedLinear
    }

    fn load_key(&self, s: &StatSolution) -> f64 {
        s.load.percentile(self.alpha)
    }

    fn rat_key(&self, s: &StatSolution) -> f64 {
        s.rat.percentile(1.0 - self.alpha)
    }

    fn dominates(&self, a: &StatSolution, b: &StatSolution) -> bool {
        self.load_key(a) <= self.load_key(b) && self.rat_key(a) >= self.rat_key(b)
    }

    fn dominates_keyed(&self, keys: &KeyTable, a: usize, b: usize, _sols: &[StatSolution]) -> bool {
        // The percentile keys were computed once by `batch_keys`; the
        // per-comparison sqrt/quantile work of the scalar path vanishes.
        keys.load[a] <= keys.load[b] && keys.rat[a] >= keys.rat[b]
    }
}

/// Removes dominated solutions.
///
/// For [`MergeStrategy::SortedLinear`] rules this sorts by the load key
/// and sweeps once, pruning against the last kept solution — sound by the
/// transitivity theorems. For [`MergeStrategy::CrossProduct`] rules it
/// falls back to pairwise `O(N²)` elimination.
///
/// The output is sorted by ascending load key (and, for linear rules,
/// ascending RAT key).
#[must_use]
pub fn prune_solutions(rule: &dyn PruningRule, mut sols: Vec<StatSolution>) -> Vec<StatSolution> {
    prune_solutions_in_place(rule, &mut sols);
    sols
}

/// [`prune_solutions`] without the by-value round trip: the survivors are
/// compacted to the front of `sols` and the tail truncated, so the DP hot
/// path reuses one buffer instead of allocating a `kept` vector per
/// prune. Output order is identical to [`prune_solutions`].
pub fn prune_solutions_in_place(rule: &dyn PruningRule, sols: &mut Vec<StatSolution>) {
    let mut scratch = PruneScratch::default();
    prune_solutions_keyed(rule, sols, &mut scratch);
}

/// Recycled scratch for [`prune_solutions_keyed`]: the key table plus the
/// argsort/permutation/flag buffers. One per DP worker, reused across
/// every node, so a steady-state prune allocates nothing.
#[derive(Debug, Default)]
pub struct PruneScratch {
    /// The batched key columns (exposed so callers can reuse the keys of
    /// the most recent prune).
    pub keys: KeyTable,
    order: Vec<u32>,
    perm: Vec<u32>,
    flags: Vec<bool>,
    retired: Vec<StatSolution>,
}

impl PruneScratch {
    /// Drains the solutions the last prune eliminated. A recycling pool
    /// can reclaim their term-vector capacity (the DP's `SolPool` does);
    /// dropping the iterator discards whatever it did not consume, which
    /// is also what happens when the scratch is simply reused.
    pub fn drain_retired(&mut self) -> std::vec::Drain<'_, StatSolution> {
        self.retired.drain(..)
    }
}

/// Insertion-sort cutoff: below this length the argsort runs in place
/// with zero allocation (and is near-linear on the almost-sorted lists
/// the sorted-merge produces); above it, std's stable sort takes over.
const INSERTION_SORT_MAX: usize = 64;

/// Stable argsort of `order` (assumed to be `0..n`) by `less_eq`-style
/// comparator `cmp`: after the call, `order[k]` is the index of the k-th
/// element in sorted order, with equal elements keeping their original
/// relative order (matching what `slice::sort_by` does on the solutions
/// directly — any stable algorithm yields the same permutation).
fn stable_argsort(order: &mut [u32], mut cmp: impl FnMut(u32, u32) -> std::cmp::Ordering) {
    if order.len() < INSERTION_SORT_MAX {
        for i in 1..order.len() {
            let x = order[i];
            let mut j = i;
            while j > 0 && cmp(order[j - 1], x) == std::cmp::Ordering::Greater {
                order[j] = order[j - 1];
                j -= 1;
            }
            order[j] = x;
        }
    } else {
        order.sort_by(|&a, &b| cmp(a, b));
    }
}

/// Applies the sorted order to `sols` and `keys` in lockstep:
/// `final[k] = original[order[k]]`. Consumes `perm` as scratch (rebuilt
/// as the inverse permutation, then reduced to the identity by cycle
/// swaps).
fn apply_order(sols: &mut [StatSolution], keys: &mut KeyTable, order: &[u32], perm: &mut Vec<u32>) {
    perm.clear();
    perm.resize(order.len(), 0);
    // perm[i] = destination position of the element currently at i.
    for (k, &src) in order.iter().enumerate() {
        perm[src as usize] = k as u32;
    }
    for i in 0..perm.len() {
        while perm[i] as usize != i {
            let j = perm[i] as usize;
            sols.swap(i, j);
            keys.swap(i, j);
            perm.swap(i, j);
        }
    }
}

/// [`prune_solutions_in_place`] driven by batched keys: the rule computes
/// every solution's keys once ([`PruningRule::batch_keys`]), the sort and
/// dominance sweeps then run over flat `f64` columns
/// ([`PruningRule::dominates_keyed`]), and all scratch comes from the
/// recycled `scratch`. Survivor set and output order are identical —
/// bitwise — to the unkeyed path: the keys are the same deterministic
/// values the scalar accessors produce, compared in the same order.
///
/// On return, `scratch.keys` holds the surviving solutions' keys, aligned
/// with `sols`.
pub fn prune_solutions_keyed(
    rule: &dyn PruningRule,
    sols: &mut Vec<StatSolution>,
    scratch: &mut PruneScratch,
) {
    let n = sols.len();
    // Eliminated solutions from the previous prune that nobody drained
    // are dropped here, so a non-draining caller stays bounded.
    scratch.retired.clear();
    rule.batch_keys(sols, &mut scratch.keys);
    debug_assert_eq!(scratch.keys.len(), n, "rule keyed fewer solutions");
    match rule.strategy() {
        MergeStrategy::SortedLinear => {
            let keys = &scratch.keys;
            // Sorted-merge fast path: the linear merge walk emits 2P lists
            // already ordered by (load asc, rat desc), so most prunes see
            // pre-sorted keys. A stable sort of a sorted list is the
            // identity permutation, so skipping the argsort + apply is
            // bitwise identical to running them.
            let presorted = (1..n).all(|i| {
                keys.load[i - 1]
                    .total_cmp(&keys.load[i])
                    .then(keys.rat[i].total_cmp(&keys.rat[i - 1]))
                    != std::cmp::Ordering::Greater
            });
            if !presorted {
                scratch.order.clear();
                scratch.order.extend(0..n as u32);
                stable_argsort(&mut scratch.order, |a, b| {
                    let (a, b) = (a as usize, b as usize);
                    keys.load[a]
                        .total_cmp(&keys.load[b])
                        .then(keys.rat[b].total_cmp(&keys.rat[a]))
                });
                apply_order(sols, &mut scratch.keys, &scratch.order, &mut scratch.perm);
            }
            // In-place compaction: `w` is one past the last kept entry.
            let mut w = 0usize;
            for r in 0..n {
                if w > 0 && rule.dominates_keyed(&scratch.keys, w - 1, r, sols) {
                    continue;
                }
                sols.swap(w, r);
                scratch.keys.swap(w, r);
                w += 1;
            }
            scratch.retired.extend(sols.drain(w..));
            scratch.keys.truncate(w);
        }
        MergeStrategy::CrossProduct => {
            scratch.flags.clear();
            scratch.flags.resize(n, false);
            let dominated = &mut scratch.flags;
            for i in 0..n {
                if dominated[i] {
                    continue;
                }
                // Index loop: `j` feeds the keyed dominance check while
                // `dominated[j]` is written under an active read of
                // `dominated[i]` — an iterator form would fight the
                // borrow.
                #[allow(clippy::needless_range_loop)]
                for j in 0..n {
                    if i == j || dominated[j] {
                        continue;
                    }
                    if rule.dominates_keyed(&scratch.keys, i, j, sols) {
                        dominated[j] = true;
                    }
                }
            }
            // Order-preserving compaction of the survivors (what `retain`
            // does, but keeping the key columns aligned).
            let mut w = 0usize;
            for (r, &dom) in dominated.iter().enumerate() {
                if dom {
                    continue;
                }
                sols.swap(w, r);
                scratch.keys.swap(w, r);
                w += 1;
            }
            scratch.retired.extend(sols.drain(w..));
            scratch.keys.truncate(w);
            let keys = &scratch.keys;
            scratch.order.clear();
            scratch.order.extend(0..w as u32);
            stable_argsort(&mut scratch.order, |a, b| {
                keys.load[a as usize].total_cmp(&keys.load[b as usize])
            });
            apply_order(sols, &mut scratch.keys, &scratch.order, &mut scratch.perm);
        }
    }
}

/// [`prune_solutions_keyed`] with a non-finite key guard: after batching
/// the keys, every populated column is scanned and the first NaN/∞ entry
/// is reported as a typed [`NonFiniteKey`] error, leaving `sols`
/// untouched. The DP's internal path stays unchecked — its kernels cannot
/// produce non-finite values from the validated inputs — but externally
/// assembled solution lists (a stored design, a user bridge) should come
/// through here.
///
/// # Errors
///
/// Returns [`NonFiniteKey`] identifying the first offending solution and
/// key column.
pub fn prune_solutions_keyed_checked(
    rule: &dyn PruningRule,
    sols: &mut Vec<StatSolution>,
    scratch: &mut PruneScratch,
) -> Result<(), NonFiniteKey> {
    rule.batch_keys(sols, &mut scratch.keys);
    let columns: [(&'static str, &[f64]); 6] = [
        ("load", &scratch.keys.load),
        ("rat", &scratch.keys.rat),
        ("aux[0]", &scratch.keys.aux[0]),
        ("aux[1]", &scratch.keys.aux[1]),
        ("aux[2]", &scratch.keys.aux[2]),
        ("aux[3]", &scratch.keys.aux[3]),
    ];
    for (column, values) in columns {
        if let Some((index, &value)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(NonFiniteKey {
                index,
                column,
                value,
            });
        }
    }
    prune_solutions_keyed(rule, sols, scratch);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_stats::{CanonicalForm, SourceId};

    fn sol(load: f64, rat: f64) -> StatSolution {
        StatSolution::new(CanonicalForm::constant(load), CanonicalForm::constant(rat))
    }

    fn sol_var(load: f64, lsig: f64, rat: f64, rsig: f64, src: u32) -> StatSolution {
        StatSolution::new(
            CanonicalForm::with_terms(load, vec![(SourceId(src), lsig)]),
            CanonicalForm::with_terms(rat, vec![(SourceId(src + 100), rsig)]),
        )
    }

    #[test]
    fn two_param_mean_ordering() {
        let rule = TwoParam::default();
        let a = sol(10.0, -50.0);
        let b = sol(20.0, -60.0);
        assert!(rule.dominates(&a, &b));
        assert!(!rule.dominates(&b, &a));
        // Incomparable pair: smaller load but worse RAT.
        let c = sol(5.0, -100.0);
        assert!(!rule.dominates(&a, &c));
        assert!(!rule.dominates(&c, &a));
    }

    #[test]
    fn two_param_high_threshold_needs_margin() {
        let rule = TwoParam::new(0.9, 0.9);
        // Tiny mean differences with large variance: not dominated.
        let a = sol_var(10.0, 5.0, -50.0, 5.0, 0);
        let b = sol_var(10.5, 5.0, -51.0, 5.0, 1);
        assert!(!rule.dominates(&a, &b));
        // Huge margins: dominated even at 0.9.
        let c = sol_var(100.0, 5.0, -500.0, 5.0, 2);
        assert!(rule.dominates(&a, &c));
    }

    #[test]
    fn two_param_correlated_solutions_prune_easier() {
        // Same source in both: the difference variance shrinks, so a
        // modest margin suffices at a high threshold — the paper's
        // argument for why 2P keeps working on real (correlated) nets.
        let rule = TwoParam::new(0.9, 0.9);
        let a = StatSolution::new(
            CanonicalForm::with_terms(10.0, vec![(SourceId(0), 5.0)]),
            CanonicalForm::with_terms(-50.0, vec![(SourceId(1), 5.0)]),
        );
        let b = StatSolution::new(
            CanonicalForm::with_terms(12.0, vec![(SourceId(0), 5.0)]),
            CanonicalForm::with_terms(-55.0, vec![(SourceId(1), 5.0)]),
        );
        // Differences are deterministic (perfect correlation) → P = 1.
        assert!(rule.dominates(&a, &b));
    }

    #[test]
    #[should_panic(expected = "2P thresholds")]
    fn two_param_rejects_bad_threshold() {
        let _ = TwoParam::new(0.4, 0.5);
    }

    #[test]
    fn four_param_interval_dominance() {
        let rule = FourParam::default();
        // Deterministic solutions: percentiles equal the values.
        let a = sol(10.0, -50.0);
        let b = sol(20.0, -60.0);
        assert!(rule.dominates(&a, &b));
        // Wide variance makes intervals overlap → incomparable.
        let c = sol_var(10.0, 20.0, -50.0, 20.0, 0);
        let d = sol_var(20.0, 20.0, -60.0, 20.0, 1);
        assert!(!rule.dominates(&c, &d));
        assert!(!rule.dominates(&d, &c));
    }

    #[test]
    fn one_param_percentile_keys() {
        let rule = OneParam::new(0.95);
        let tight = sol_var(10.0, 0.1, -50.0, 0.1, 0);
        let loose = sol_var(10.0, 10.0, -50.0, 10.0, 1);
        // The loose solution's 95th-percentile load is much worse.
        assert!(rule.load_key(&loose) > rule.load_key(&tight));
        assert!(rule.rat_key(&loose) < rule.rat_key(&tight));
        assert!(rule.dominates(&tight, &loose));
        assert!(!rule.dominates(&loose, &tight));
    }

    #[test]
    fn prune_keeps_pareto_front_two_param() {
        let rule = TwoParam::default();
        let sols = vec![
            sol(10.0, -100.0),
            sol(20.0, -80.0),
            sol(30.0, -60.0),
            sol(15.0, -120.0), // dominated by the first
            sol(25.0, -90.0),  // dominated by the second
        ];
        let kept = prune_solutions(&rule, sols);
        assert_eq!(kept.len(), 3);
        // Sorted by load, RAT strictly improving.
        for w in kept.windows(2) {
            assert!(w[0].load_mean() < w[1].load_mean());
            assert!(w[0].rat_mean() < w[1].rat_mean());
        }
    }

    #[test]
    fn prune_four_param_keeps_incomparables() {
        let rule = FourParam::default();
        // Same means, huge variances → intervals overlap → nothing prunes.
        let sols = vec![
            sol_var(10.0, 30.0, -100.0, 30.0, 0),
            sol_var(12.0, 30.0, -95.0, 30.0, 1),
            sol_var(14.0, 30.0, -90.0, 30.0, 2),
        ];
        let kept = prune_solutions(&rule, sols);
        assert_eq!(kept.len(), 3, "4P must keep overlapping-interval solutions");
        // The same set under 2P collapses to a single survivor chain.
        let rule2 = TwoParam::default();
        let sols2 = vec![
            sol_var(10.0, 30.0, -100.0, 30.0, 0),
            sol_var(12.0, 30.0, -95.0, 30.0, 1),
            sol_var(14.0, 30.0, -90.0, 30.0, 2),
        ];
        let kept2 = prune_solutions(&rule2, sols2);
        assert_eq!(kept2.len(), 3); // strictly increasing load AND rat: all kept
                                    // But a dominated-by-mean one disappears under 2P and not under 4P.
        let extra = vec![
            sol_var(10.0, 30.0, -100.0, 30.0, 0),
            sol_var(11.0, 30.0, -101.0, 30.0, 1), // worse mean load and rat
        ];
        assert_eq!(prune_solutions(&rule2, extra.clone()).len(), 1);
        assert_eq!(prune_solutions(&rule, extra).len(), 2);
    }

    #[test]
    fn prune_empty_and_singleton() {
        let rule = TwoParam::default();
        assert!(prune_solutions(&rule, vec![]).is_empty());
        assert_eq!(prune_solutions(&rule, vec![sol(1.0, -1.0)]).len(), 1);
    }

    #[test]
    fn prune_removes_exact_duplicates() {
        let rule = TwoParam::default();
        let kept = prune_solutions(&rule, vec![sol(5.0, -10.0), sol(5.0, -10.0)]);
        assert_eq!(kept.len(), 1);
    }

    /// Reference implementation: the pre-KeyTable prune, kept verbatim so
    /// the keyed path can be pinned against it.
    fn prune_reference(rule: &dyn PruningRule, sols: &mut Vec<StatSolution>) {
        match rule.strategy() {
            MergeStrategy::SortedLinear => {
                sols.sort_by(|a, b| {
                    rule.load_key(a)
                        .total_cmp(&rule.load_key(b))
                        .then(rule.rat_key(b).total_cmp(&rule.rat_key(a)))
                });
                let mut w = 0usize;
                for r in 0..sols.len() {
                    if w > 0 && rule.dominates(&sols[w - 1], &sols[r]) {
                        continue;
                    }
                    sols.swap(w, r);
                    w += 1;
                }
                sols.truncate(w);
            }
            MergeStrategy::CrossProduct => {
                let mut dominated = vec![false; sols.len()];
                for i in 0..sols.len() {
                    if dominated[i] {
                        continue;
                    }
                    for j in 0..sols.len() {
                        if i == j || dominated[j] {
                            continue;
                        }
                        if rule.dominates(&sols[i], &sols[j]) {
                            dominated[j] = true;
                        }
                    }
                }
                let mut flags = dominated.iter();
                sols.retain(|_| !flags.next().expect("same length"));
                sols.sort_by(|a, b| rule.load_key(a).total_cmp(&rule.load_key(b)));
            }
        }
    }

    #[test]
    fn keyed_prune_matches_reference_for_all_rules() {
        use varbuf_stats::SplitMix64;
        let rules: [&dyn PruningRule; 5] = [
            &TwoParam::default(),
            &TwoParam::new(0.9, 0.9),
            &FourParam::default(),
            &OneParam::default(),
            &OneParam::new(0.6),
        ];
        let mut scratch = PruneScratch::default();
        for (ri, rule) in rules.iter().enumerate() {
            for seed in [1u64, 2, 3] {
                let mut rng = SplitMix64::new(seed * 31 + ri as u64);
                // Sizes straddling the insertion-sort cutoff, plus
                // duplicates to exercise sort stability.
                for n in [0usize, 1, 2, 17, 63, 64, 90] {
                    let base: Vec<StatSolution> = (0..n)
                        .map(|i| {
                            let load = (rng.next_u64() % 8) as f64 + rng.next_f64() * 0.01;
                            let rat = -100.0 + (rng.next_u64() % 8) as f64;
                            if i % 3 == 0 {
                                sol(load, rat) // deterministic duplicates
                            } else {
                                sol_var(
                                    load,
                                    rng.next_f64() * 3.0,
                                    rat,
                                    rng.next_f64() * 3.0,
                                    i as u32,
                                )
                            }
                        })
                        .collect();
                    let mut reference = base.clone();
                    prune_reference(*rule, &mut reference);
                    let mut keyed = base;
                    prune_solutions_keyed(*rule, &mut keyed, &mut scratch);
                    assert_eq!(
                        keyed.len(),
                        reference.len(),
                        "{} n={n} seed={seed}",
                        rule.name()
                    );
                    assert_eq!(scratch.keys.len(), keyed.len());
                    for (k, (a, b)) in keyed.iter().zip(&reference).enumerate() {
                        assert_eq!(
                            a.load_mean().to_bits(),
                            b.load_mean().to_bits(),
                            "{} n={n} seed={seed} pos={k} load",
                            rule.name()
                        );
                        assert_eq!(
                            a.rat_mean().to_bits(),
                            b.rat_mean().to_bits(),
                            "{} n={n} seed={seed} pos={k} rat",
                            rule.name()
                        );
                        assert_eq!(a.load, b.load);
                        assert_eq!(a.rat, b.rat);
                        // The retained key column matches the rule's
                        // scalar accessors on the survivor.
                        assert_eq!(scratch.keys.load[k].to_bits(), rule.load_key(a).to_bits());
                        assert_eq!(scratch.keys.rat[k].to_bits(), rule.rat_key(a).to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn batched_four_param_keys_match_percentiles_bitwise() {
        let rule = FourParam::new(0.2, 0.8, 0.15, 0.85);
        let sols = vec![
            sol(10.0, -50.0),
            sol_var(12.0, 4.0, -60.0, 2.5, 0),
            sol_var(9.0, 0.0, -40.0, 7.0, 1),
        ];
        let mut keys = KeyTable::default();
        rule.batch_keys(&sols, &mut keys);
        for (i, s) in sols.iter().enumerate() {
            assert_eq!(keys.aux[0][i].to_bits(), s.load.percentile(0.2).to_bits());
            assert_eq!(keys.aux[1][i].to_bits(), s.load.percentile(0.8).to_bits());
            assert_eq!(keys.aux[2][i].to_bits(), s.rat.percentile(0.15).to_bits());
            assert_eq!(keys.aux[3][i].to_bits(), s.rat.percentile(0.85).to_bits());
        }
        // Keyed dominance equals form dominance on every pair.
        for i in 0..sols.len() {
            for j in 0..sols.len() {
                assert_eq!(
                    rule.dominates_keyed(&keys, i, j, &sols),
                    rule.dominates(&sols[i], &sols[j])
                );
            }
        }
    }

    #[test]
    fn keyed_prune_empty_list() {
        let rule = TwoParam::default();
        let mut scratch = PruneScratch::default();
        let mut sols: Vec<StatSolution> = vec![];
        prune_solutions_keyed(&rule, &mut sols, &mut scratch);
        assert!(sols.is_empty());
        assert!(scratch.keys.is_empty());
        assert_eq!(scratch.drain_retired().count(), 0);
    }

    #[test]
    fn keyed_prune_single_solution() {
        let mut scratch = PruneScratch::default();
        for rule in [
            &TwoParam::default() as &dyn PruningRule,
            &FourParam::default(),
            &OneParam::default(),
        ] {
            let mut sols = vec![sol(7.0, -3.0)];
            prune_solutions_keyed(rule, &mut sols, &mut scratch);
            assert_eq!(sols.len(), 1, "{}", rule.name());
            assert_eq!(sols[0].load_mean(), 7.0);
            assert_eq!(scratch.keys.len(), 1);
            assert_eq!(scratch.drain_retired().count(), 0);
        }
    }

    #[test]
    fn keyed_prune_all_identical_keys() {
        // Every solution has bit-identical keys: the first dominates the
        // rest (non-strict comparisons), exactly one survives, and the
        // retired carcasses are all recoverable.
        let mut scratch = PruneScratch::default();
        let rule = TwoParam::default();
        let mut sols: Vec<StatSolution> = (0..8).map(|_| sol(5.0, -10.0)).collect();
        prune_solutions_keyed(&rule, &mut sols, &mut scratch);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].load_mean(), 5.0);
        assert_eq!(scratch.drain_retired().count(), 7);
        // 4P interval dominance is strict (<, >), so identical keys are
        // incomparable and everything survives.
        let rule4 = FourParam::default();
        let mut sols4: Vec<StatSolution> = (0..8).map(|_| sol(5.0, -10.0)).collect();
        prune_solutions_keyed(&rule4, &mut sols4, &mut scratch);
        assert_eq!(sols4.len(), 8);
    }

    #[test]
    fn checked_prune_rejects_non_finite_keys() {
        let rule = TwoParam::default();
        let mut scratch = PruneScratch::default();

        let mut sols = vec![sol(1.0, -1.0), sol(f64::NAN, -2.0), sol(3.0, -3.0)];
        let e = prune_solutions_keyed_checked(&rule, &mut sols, &mut scratch).unwrap_err();
        assert_eq!(e.index, 1);
        assert_eq!(e.column, "load");
        assert!(e.value.is_nan());
        assert_eq!(sols.len(), 3, "the list must be left untouched on error");
        assert!(e.to_string().contains("non-finite"), "{e}");

        let mut sols = vec![sol(1.0, f64::INFINITY)];
        let e = prune_solutions_keyed_checked(&rule, &mut sols, &mut scratch).unwrap_err();
        assert_eq!((e.index, e.column), (0, "rat"));
        assert_eq!(e.value, f64::INFINITY);

        // Finite lists pass through with the identical survivor set.
        let mut checked = vec![sol(10.0, -100.0), sol(15.0, -120.0), sol(20.0, -80.0)];
        let mut unchecked = checked.clone();
        prune_solutions_keyed_checked(&rule, &mut checked, &mut scratch).unwrap();
        prune_solutions_keyed(&rule, &mut unchecked, &mut scratch);
        assert_eq!(checked.len(), unchecked.len());
        for (a, b) in checked.iter().zip(&unchecked) {
            assert_eq!(a.load, b.load);
            assert_eq!(a.rat, b.rat);
        }
    }

    #[test]
    fn checked_prune_scans_aux_columns() {
        // A 4P rule with zero σ keeps aux = mean, so a non-finite mean
        // shows up in `load` first; force a NaN into an aux column via a
        // non-finite variance term instead.
        let rule = FourParam::default();
        let mut scratch = PruneScratch::default();
        let mut sols = vec![sol(1.0, -1.0), sol_var(2.0, f64::NAN, -2.0, 1.0, 0)];
        let e = prune_solutions_keyed_checked(&rule, &mut sols, &mut scratch).unwrap_err();
        assert_eq!(e.index, 1);
        assert!(e.column.starts_with("aux"), "{}", e.column);
    }

    #[test]
    fn presorted_fast_path_matches_unsorted_input() {
        // The same multiset pruned from sorted and shuffled order must
        // produce the identical survivor list (the fast path only skips
        // a sort that would be the identity).
        let rule = TwoParam::default();
        let mut scratch = PruneScratch::default();
        let sorted = vec![
            sol(10.0, -100.0),
            sol(15.0, -120.0),
            sol(20.0, -80.0),
            sol(25.0, -90.0),
            sol(30.0, -60.0),
        ];
        let mut shuffled = vec![
            sorted[4].clone(),
            sorted[1].clone(),
            sorted[3].clone(),
            sorted[0].clone(),
            sorted[2].clone(),
        ];
        let mut fast = sorted.clone();
        prune_solutions_keyed(&rule, &mut fast, &mut scratch);
        prune_solutions_keyed(&rule, &mut shuffled, &mut scratch);
        assert_eq!(fast.len(), shuffled.len());
        for (a, b) in fast.iter().zip(&shuffled) {
            assert_eq!(a.load_mean().to_bits(), b.load_mean().to_bits());
            assert_eq!(a.rat_mean().to_bits(), b.rat_mean().to_bits());
        }
    }

    #[test]
    fn rule_names() {
        assert_eq!(TwoParam::default().name(), "2P");
        assert_eq!(FourParam::default().name(), "4P");
        assert_eq!(OneParam::default().name(), "1P");
        assert_eq!(TwoParam::default().strategy(), MergeStrategy::SortedLinear);
        assert_eq!(FourParam::default().strategy(), MergeStrategy::CrossProduct);
    }

    #[test]
    fn try_new_rejects_out_of_range_thresholds() {
        let e = TwoParam::try_new(0.4, 0.9).unwrap_err();
        assert_eq!(e.rule(), "2P");
        assert!(e.to_string().contains("[0.5, 1)"), "{e}");
        assert!(TwoParam::try_new(0.9, 0.9).is_ok());

        let e = FourParam::try_new(0.9, 0.1, 0.1, 0.9).unwrap_err();
        assert_eq!(e.rule(), "4P");
        assert!(FourParam::try_new(0.1, 0.9, 0.1, 0.9).is_ok());
        assert!(FourParam::try_new(0.1, 0.9, 0.9, 0.1).is_err());

        let e = OneParam::try_new(1.5).unwrap_err();
        assert_eq!(e.rule(), "1P");
        assert!(OneParam::try_new(0.0).is_err());
        assert!(OneParam::try_new(0.95).is_ok());
    }
}
