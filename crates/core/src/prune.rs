//! The statistical pruning rules (Section 2 of the paper).
//!
//! A pruning rule decides when one random solution *dominates* another —
//! the single design decision that determines whether the dynamic program
//! stays polynomial:
//!
//! * [`TwoParam`] — the paper's contribution. Solutions are ordered by
//!   the probability conditions (6)–(7), `P(L₁<L₂) ≥ p̄_L` and
//!   `P(T₁>T₂) ≥ p̄_T`. Under joint normality this ordering is total and
//!   transitive (Lemmas 2–4, Theorem 2), so merge and prune run in
//!   **linear** time over mean-sorted lists, giving `O(B·N²)` overall
//!   (Theorem 1).
//! * [`FourParam`] — the rule of the DATE 2005 paper \[7\] this work
//!   extends: interval dominance between percentile pairs. Only a partial
//!   order, so merging needs the full `O(n·m)` cross product and pruning
//!   `O(N²)` pairwise checks — the blow-up shown in Table 2.
//! * [`OneParam`] — the simplified single-percentile rule of \[8\]:
//!   deterministic dominance applied to fixed percentiles; linear, but
//!   blind to correlations between solutions.

use crate::solution::StatSolution;
use std::fmt;

/// A rule was configured with thresholds outside its valid range.
///
/// Returned by the `try_new` constructors so that user-supplied
/// parameters (e.g. a CLI `--p` flag) surface as a recoverable error
/// instead of a panic deep inside the optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleConfigError {
    rule: &'static str,
    message: String,
}

impl RuleConfigError {
    fn new(rule: &'static str, message: String) -> Self {
        Self { rule, message }
    }

    /// Name of the rule that rejected its configuration.
    #[must_use]
    pub fn rule(&self) -> &'static str {
        self.rule
    }
}

impl fmt::Display for RuleConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} configuration: {}", self.rule, self.message)
    }
}

impl std::error::Error for RuleConfigError {}

/// How a rule's `merge`/`prune` must traverse solution sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// The rule induces a total, transitive order: lists stay sorted and
    /// merge/prune are linear walks (Figure 1 of the paper).
    SortedLinear,
    /// The rule is only a partial order: all `n·m` combinations must be
    /// formed and pruning is pairwise quadratic.
    CrossProduct,
}

/// A dominance relation between statistical solutions.
///
/// This trait is sealed in spirit: the three implementations in this
/// module are the rules the paper studies, and the DP engine treats them
/// uniformly through it. Rules must be `Send + Sync` so the parallel
/// engine can consult one rule object from every worker; the three
/// paper rules are plain `Copy` value types, so this costs nothing.
pub trait PruningRule: fmt::Debug + Send + Sync {
    /// Human-readable rule name (`"2P"`, `"4P"`, `"1P"`).
    fn name(&self) -> &'static str;

    /// The traversal strategy this rule supports.
    fn strategy(&self) -> MergeStrategy;

    /// Scalar key ordering loads ascending (smaller = better).
    fn load_key(&self, s: &StatSolution) -> f64;

    /// Scalar key ordering RATs (larger = better).
    fn rat_key(&self, s: &StatSolution) -> f64;

    /// Whether `a` dominates `b` (so `b` may be discarded).
    fn dominates(&self, a: &StatSolution, b: &StatSolution) -> bool;
}

/// The proposed two-parameter rule, eqs. (6)–(7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoParam {
    p_load: f64,
    p_rat: f64,
}

impl TwoParam {
    /// Creates the rule with thresholds `p̄_L` and `p̄_T`.
    ///
    /// # Panics
    ///
    /// Panics unless both thresholds are in `[0.5, 1)` — values below 0.5
    /// are meaningless for pruning (footnote 3 of the paper) and `1.0`
    /// degenerates to the almost-sure ordering of eqs. (4)–(5).
    #[must_use]
    pub fn new(p_load: f64, p_rat: f64) -> Self {
        match Self::try_new(p_load, p_rat) {
            Ok(rule) => rule,
            Err(e) => panic!("2P thresholds must be in [0.5, 1), got ({p_load}, {p_rat}): {e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new) for user-supplied
    /// thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`RuleConfigError`] unless both thresholds are in
    /// `[0.5, 1)`.
    pub fn try_new(p_load: f64, p_rat: f64) -> Result<Self, RuleConfigError> {
        if !((0.5..1.0).contains(&p_load) && (0.5..1.0).contains(&p_rat)) {
            return Err(RuleConfigError::new(
                "2P",
                format!("thresholds must be in [0.5, 1), got ({p_load}, {p_rat})"),
            ));
        }
        Ok(Self { p_load, p_rat })
    }

    /// The thresholds `(p̄_L, p̄_T)`.
    #[must_use]
    pub fn thresholds(&self) -> (f64, f64) {
        (self.p_load, self.p_rat)
    }
}

impl Default for TwoParam {
    /// The `p̄_L = p̄_T = 0.5` setting of Theorem 1 (pure mean ordering).
    fn default() -> Self {
        Self::new(0.5, 0.5)
    }
}

impl PruningRule for TwoParam {
    fn name(&self) -> &'static str {
        "2P"
    }

    fn strategy(&self) -> MergeStrategy {
        MergeStrategy::SortedLinear
    }

    fn load_key(&self, s: &StatSolution) -> f64 {
        s.load_mean()
    }

    fn rat_key(&self, s: &StatSolution) -> f64 {
        s.rat_mean()
    }

    fn dominates(&self, a: &StatSolution, b: &StatSolution) -> bool {
        if self.p_load == 0.5 && self.p_rat == 0.5 {
            // Lemma 4: the probability conditions reduce to mean ordering.
            return a.load_mean() <= b.load_mean() && a.rat_mean() >= b.rat_mean();
        }
        a.load.prob_less(&b.load) >= self.p_load && a.rat.prob_greater(&b.rat) >= self.p_rat
    }
}

/// The four-parameter rule of the DATE 2005 paper \[7\], eqs. (2)–(3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FourParam {
    alpha_l: f64,
    alpha_u: f64,
    beta_l: f64,
    beta_u: f64,
}

impl FourParam {
    /// Creates the rule with load percentiles `(α_l, α_u)` and RAT
    /// percentiles `(β_l, β_u)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < α_l < α_u < 1` and `0 < β_l < β_u < 1`.
    #[must_use]
    pub fn new(alpha_l: f64, alpha_u: f64, beta_l: f64, beta_u: f64) -> Self {
        match Self::try_new(alpha_l, alpha_u, beta_l, beta_u) {
            Ok(rule) => rule,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new) for user-supplied
    /// percentile pairs.
    ///
    /// # Errors
    ///
    /// Returns [`RuleConfigError`] unless `0 < α_l < α_u < 1` and
    /// `0 < β_l < β_u < 1`.
    pub fn try_new(
        alpha_l: f64,
        alpha_u: f64,
        beta_l: f64,
        beta_u: f64,
    ) -> Result<Self, RuleConfigError> {
        if !(0.0 < alpha_l && alpha_l < alpha_u && alpha_u < 1.0) {
            return Err(RuleConfigError::new(
                "4P",
                format!("need 0 < α_l < α_u < 1, got ({alpha_l}, {alpha_u})"),
            ));
        }
        if !(0.0 < beta_l && beta_l < beta_u && beta_u < 1.0) {
            return Err(RuleConfigError::new(
                "4P",
                format!("need 0 < β_l < β_u < 1, got ({beta_l}, {beta_u})"),
            ));
        }
        Ok(Self {
            alpha_l,
            alpha_u,
            beta_l,
            beta_u,
        })
    }
}

impl Default for FourParam {
    /// A representative designer preference: 10%/90% intervals.
    fn default() -> Self {
        Self::new(0.1, 0.9, 0.1, 0.9)
    }
}

impl PruningRule for FourParam {
    fn name(&self) -> &'static str {
        "4P"
    }

    fn strategy(&self) -> MergeStrategy {
        MergeStrategy::CrossProduct
    }

    fn load_key(&self, s: &StatSolution) -> f64 {
        s.load_mean()
    }

    fn rat_key(&self, s: &StatSolution) -> f64 {
        s.rat_mean()
    }

    fn dominates(&self, a: &StatSolution, b: &StatSolution) -> bool {
        // Eq. (2): π_{α_u}(L₁) < π_{α_l}(L₂);
        // eq. (3): π_{β_l}(T₁) > π_{β_u}(T₂).
        a.load.percentile(self.alpha_u) < b.load.percentile(self.alpha_l)
            && a.rat.percentile(self.beta_l) > b.rat.percentile(self.beta_u)
    }
}

/// The one-parameter percentile rule of \[8\]: deterministic dominance on
/// fixed percentiles (load at `α`, RAT at `1−α`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneParam {
    alpha: f64,
}

impl OneParam {
    /// Creates the rule with percentile `α`.
    ///
    /// # Panics
    ///
    /// Panics unless `α ∈ (0, 1)`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        match Self::try_new(alpha) {
            Ok(rule) => rule,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new) for a user-supplied
    /// percentile.
    ///
    /// # Errors
    ///
    /// Returns [`RuleConfigError`] unless `α ∈ (0, 1)`.
    pub fn try_new(alpha: f64) -> Result<Self, RuleConfigError> {
        if !((0.0..1.0).contains(&alpha) && alpha > 0.0) {
            return Err(RuleConfigError::new(
                "1P",
                format!("percentile must be in (0, 1), got {alpha}"),
            ));
        }
        Ok(Self { alpha })
    }
}

impl Default for OneParam {
    /// The conservative 95th-percentile setting.
    fn default() -> Self {
        Self::new(0.95)
    }
}

impl PruningRule for OneParam {
    fn name(&self) -> &'static str {
        "1P"
    }

    fn strategy(&self) -> MergeStrategy {
        MergeStrategy::SortedLinear
    }

    fn load_key(&self, s: &StatSolution) -> f64 {
        s.load.percentile(self.alpha)
    }

    fn rat_key(&self, s: &StatSolution) -> f64 {
        s.rat.percentile(1.0 - self.alpha)
    }

    fn dominates(&self, a: &StatSolution, b: &StatSolution) -> bool {
        self.load_key(a) <= self.load_key(b) && self.rat_key(a) >= self.rat_key(b)
    }
}

/// Removes dominated solutions.
///
/// For [`MergeStrategy::SortedLinear`] rules this sorts by the load key
/// and sweeps once, pruning against the last kept solution — sound by the
/// transitivity theorems. For [`MergeStrategy::CrossProduct`] rules it
/// falls back to pairwise `O(N²)` elimination.
///
/// The output is sorted by ascending load key (and, for linear rules,
/// ascending RAT key).
#[must_use]
pub fn prune_solutions(rule: &dyn PruningRule, mut sols: Vec<StatSolution>) -> Vec<StatSolution> {
    prune_solutions_in_place(rule, &mut sols);
    sols
}

/// [`prune_solutions`] without the by-value round trip: the survivors are
/// compacted to the front of `sols` and the tail truncated, so the DP hot
/// path reuses one buffer instead of allocating a `kept` vector per
/// prune. Output order is identical to [`prune_solutions`].
pub fn prune_solutions_in_place(rule: &dyn PruningRule, sols: &mut Vec<StatSolution>) {
    match rule.strategy() {
        MergeStrategy::SortedLinear => {
            sols.sort_by(|a, b| {
                rule.load_key(a)
                    .total_cmp(&rule.load_key(b))
                    .then(rule.rat_key(b).total_cmp(&rule.rat_key(a)))
            });
            // In-place compaction: `w` is one past the last kept entry.
            let mut w = 0usize;
            for r in 0..sols.len() {
                if w > 0 && rule.dominates(&sols[w - 1], &sols[r]) {
                    continue;
                }
                sols.swap(w, r);
                w += 1;
            }
            sols.truncate(w);
        }
        MergeStrategy::CrossProduct => {
            let mut dominated = vec![false; sols.len()];
            for i in 0..sols.len() {
                if dominated[i] {
                    continue;
                }
                for j in 0..sols.len() {
                    if i == j || dominated[j] {
                        continue;
                    }
                    if rule.dominates(&sols[i], &sols[j]) {
                        dominated[j] = true;
                    }
                }
            }
            let mut flags = dominated.iter();
            sols.retain(|_| !flags.next().expect("same length"));
            sols.sort_by(|a, b| rule.load_key(a).total_cmp(&rule.load_key(b)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbuf_stats::{CanonicalForm, SourceId};

    fn sol(load: f64, rat: f64) -> StatSolution {
        StatSolution::new(CanonicalForm::constant(load), CanonicalForm::constant(rat))
    }

    fn sol_var(load: f64, lsig: f64, rat: f64, rsig: f64, src: u32) -> StatSolution {
        StatSolution::new(
            CanonicalForm::with_terms(load, vec![(SourceId(src), lsig)]),
            CanonicalForm::with_terms(rat, vec![(SourceId(src + 100), rsig)]),
        )
    }

    #[test]
    fn two_param_mean_ordering() {
        let rule = TwoParam::default();
        let a = sol(10.0, -50.0);
        let b = sol(20.0, -60.0);
        assert!(rule.dominates(&a, &b));
        assert!(!rule.dominates(&b, &a));
        // Incomparable pair: smaller load but worse RAT.
        let c = sol(5.0, -100.0);
        assert!(!rule.dominates(&a, &c));
        assert!(!rule.dominates(&c, &a));
    }

    #[test]
    fn two_param_high_threshold_needs_margin() {
        let rule = TwoParam::new(0.9, 0.9);
        // Tiny mean differences with large variance: not dominated.
        let a = sol_var(10.0, 5.0, -50.0, 5.0, 0);
        let b = sol_var(10.5, 5.0, -51.0, 5.0, 1);
        assert!(!rule.dominates(&a, &b));
        // Huge margins: dominated even at 0.9.
        let c = sol_var(100.0, 5.0, -500.0, 5.0, 2);
        assert!(rule.dominates(&a, &c));
    }

    #[test]
    fn two_param_correlated_solutions_prune_easier() {
        // Same source in both: the difference variance shrinks, so a
        // modest margin suffices at a high threshold — the paper's
        // argument for why 2P keeps working on real (correlated) nets.
        let rule = TwoParam::new(0.9, 0.9);
        let a = StatSolution::new(
            CanonicalForm::with_terms(10.0, vec![(SourceId(0), 5.0)]),
            CanonicalForm::with_terms(-50.0, vec![(SourceId(1), 5.0)]),
        );
        let b = StatSolution::new(
            CanonicalForm::with_terms(12.0, vec![(SourceId(0), 5.0)]),
            CanonicalForm::with_terms(-55.0, vec![(SourceId(1), 5.0)]),
        );
        // Differences are deterministic (perfect correlation) → P = 1.
        assert!(rule.dominates(&a, &b));
    }

    #[test]
    #[should_panic(expected = "2P thresholds")]
    fn two_param_rejects_bad_threshold() {
        let _ = TwoParam::new(0.4, 0.5);
    }

    #[test]
    fn four_param_interval_dominance() {
        let rule = FourParam::default();
        // Deterministic solutions: percentiles equal the values.
        let a = sol(10.0, -50.0);
        let b = sol(20.0, -60.0);
        assert!(rule.dominates(&a, &b));
        // Wide variance makes intervals overlap → incomparable.
        let c = sol_var(10.0, 20.0, -50.0, 20.0, 0);
        let d = sol_var(20.0, 20.0, -60.0, 20.0, 1);
        assert!(!rule.dominates(&c, &d));
        assert!(!rule.dominates(&d, &c));
    }

    #[test]
    fn one_param_percentile_keys() {
        let rule = OneParam::new(0.95);
        let tight = sol_var(10.0, 0.1, -50.0, 0.1, 0);
        let loose = sol_var(10.0, 10.0, -50.0, 10.0, 1);
        // The loose solution's 95th-percentile load is much worse.
        assert!(rule.load_key(&loose) > rule.load_key(&tight));
        assert!(rule.rat_key(&loose) < rule.rat_key(&tight));
        assert!(rule.dominates(&tight, &loose));
        assert!(!rule.dominates(&loose, &tight));
    }

    #[test]
    fn prune_keeps_pareto_front_two_param() {
        let rule = TwoParam::default();
        let sols = vec![
            sol(10.0, -100.0),
            sol(20.0, -80.0),
            sol(30.0, -60.0),
            sol(15.0, -120.0), // dominated by the first
            sol(25.0, -90.0),  // dominated by the second
        ];
        let kept = prune_solutions(&rule, sols);
        assert_eq!(kept.len(), 3);
        // Sorted by load, RAT strictly improving.
        for w in kept.windows(2) {
            assert!(w[0].load_mean() < w[1].load_mean());
            assert!(w[0].rat_mean() < w[1].rat_mean());
        }
    }

    #[test]
    fn prune_four_param_keeps_incomparables() {
        let rule = FourParam::default();
        // Same means, huge variances → intervals overlap → nothing prunes.
        let sols = vec![
            sol_var(10.0, 30.0, -100.0, 30.0, 0),
            sol_var(12.0, 30.0, -95.0, 30.0, 1),
            sol_var(14.0, 30.0, -90.0, 30.0, 2),
        ];
        let kept = prune_solutions(&rule, sols);
        assert_eq!(kept.len(), 3, "4P must keep overlapping-interval solutions");
        // The same set under 2P collapses to a single survivor chain.
        let rule2 = TwoParam::default();
        let sols2 = vec![
            sol_var(10.0, 30.0, -100.0, 30.0, 0),
            sol_var(12.0, 30.0, -95.0, 30.0, 1),
            sol_var(14.0, 30.0, -90.0, 30.0, 2),
        ];
        let kept2 = prune_solutions(&rule2, sols2);
        assert_eq!(kept2.len(), 3); // strictly increasing load AND rat: all kept
                                    // But a dominated-by-mean one disappears under 2P and not under 4P.
        let extra = vec![
            sol_var(10.0, 30.0, -100.0, 30.0, 0),
            sol_var(11.0, 30.0, -101.0, 30.0, 1), // worse mean load and rat
        ];
        assert_eq!(prune_solutions(&rule2, extra.clone()).len(), 1);
        assert_eq!(prune_solutions(&rule, extra).len(), 2);
    }

    #[test]
    fn prune_empty_and_singleton() {
        let rule = TwoParam::default();
        assert!(prune_solutions(&rule, vec![]).is_empty());
        assert_eq!(prune_solutions(&rule, vec![sol(1.0, -1.0)]).len(), 1);
    }

    #[test]
    fn prune_removes_exact_duplicates() {
        let rule = TwoParam::default();
        let kept = prune_solutions(&rule, vec![sol(5.0, -10.0), sol(5.0, -10.0)]);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn rule_names() {
        assert_eq!(TwoParam::default().name(), "2P");
        assert_eq!(FourParam::default().name(), "4P");
        assert_eq!(OneParam::default().name(), "1P");
        assert_eq!(TwoParam::default().strategy(), MergeStrategy::SortedLinear);
        assert_eq!(FourParam::default().strategy(), MergeStrategy::CrossProduct);
    }

    #[test]
    fn try_new_rejects_out_of_range_thresholds() {
        let e = TwoParam::try_new(0.4, 0.9).unwrap_err();
        assert_eq!(e.rule(), "2P");
        assert!(e.to_string().contains("[0.5, 1)"), "{e}");
        assert!(TwoParam::try_new(0.9, 0.9).is_ok());

        let e = FourParam::try_new(0.9, 0.1, 0.1, 0.9).unwrap_err();
        assert_eq!(e.rule(), "4P");
        assert!(FourParam::try_new(0.1, 0.9, 0.1, 0.9).is_ok());
        assert!(FourParam::try_new(0.1, 0.9, 0.9, 0.1).is_err());

        let e = OneParam::try_new(1.5).unwrap_err();
        assert_eq!(e.rule(), "1P");
        assert!(OneParam::try_new(0.0).is_err());
        assert!(OneParam::try_new(0.95).is_ok());
    }
}
