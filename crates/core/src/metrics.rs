//! Instrumentation collected by the dynamic programs.

use std::time::Duration;

/// Counters describing one optimization run — the raw material for
/// Table 2 and Figure 5 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DpStats {
    /// Nodes processed (equals the tree size on success).
    pub nodes_processed: usize,
    /// Largest candidate list held at any node.
    pub max_solutions_per_node: usize,
    /// Candidate solutions generated across the whole run.
    pub solutions_generated: usize,
    /// Solutions discarded by pruning.
    pub solutions_pruned: usize,
    /// Wall-clock runtime.
    pub runtime: Duration,
    /// Pruning-rule fallback steps a governed run took (0 = primary rule
    /// held for the whole run).
    pub rule_fallbacks: usize,
    /// Epsilon-tightening steps a governed run took.
    pub epsilon_tightenings: usize,
    /// Spread-preserving list truncations a governed run applied.
    pub list_truncations: usize,
    /// Poisoned (non-finite) candidates dropped by the sanitizer.
    pub poisoned_dropped: usize,
    /// Whether the run finished in panic-completion (best-so-far) mode.
    pub panic_completion: bool,
}

impl DpStats {
    /// Fraction of generated solutions that pruning removed.
    #[must_use]
    pub fn prune_ratio(&self) -> f64 {
        if self.solutions_generated == 0 {
            return 0.0;
        }
        self.solutions_pruned as f64 / self.solutions_generated as f64
    }

    /// Whether the run gave up any fidelity to stay within budget.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.rule_fallbacks > 0
            || self.epsilon_tightenings > 0
            || self.list_truncations > 0
            || self.poisoned_dropped > 0
            || self.panic_completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_ratio_handles_zero() {
        assert_eq!(DpStats::default().prune_ratio(), 0.0);
        let s = DpStats {
            solutions_generated: 10,
            solutions_pruned: 4,
            ..DpStats::default()
        };
        assert!((s.prune_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn degraded_reflects_any_counter() {
        assert!(!DpStats::default().degraded());
        assert!(DpStats {
            rule_fallbacks: 1,
            ..DpStats::default()
        }
        .degraded());
        assert!(DpStats {
            panic_completion: true,
            ..DpStats::default()
        }
        .degraded());
    }
}
