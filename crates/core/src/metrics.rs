//! Instrumentation collected by the dynamic programs.

use std::time::Duration;

/// Counters describing one optimization run — the raw material for
/// Table 2 and Figure 5 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DpStats {
    /// Nodes processed (equals the tree size on success).
    pub nodes_processed: usize,
    /// Largest candidate list held at any node.
    pub max_solutions_per_node: usize,
    /// Candidate solutions generated across the whole run.
    pub solutions_generated: usize,
    /// Solutions discarded by pruning.
    pub solutions_pruned: usize,
    /// Wall-clock runtime.
    pub runtime: Duration,
    /// Time spent generating branch-merge combinations (both the linear
    /// walk and the 4P cross product). Under the parallel engine this is
    /// the *sum* across workers, so it can exceed `runtime`.
    pub merge_time: Duration,
    /// Time spent extending solutions along wire segments (the lift
    /// loops, eager or deferred) plus materializing pending lazy-wire
    /// transforms at consumption points. Was folded into `merge_time`
    /// before lazy wire propagation made the split worth watching.
    /// Summed across workers in parallel runs. Materialization that
    /// happens inside the buffering arm is charged to `buffer_time`.
    pub wire_time: Duration,
    /// Time spent in dominance pruning (list pruning plus the quadratic
    /// cross-product sweep). Summed across workers in parallel runs.
    pub prune_time: Duration,
    /// Time spent offering buffers at candidate nodes. Summed across
    /// workers in parallel runs.
    pub buffer_time: Duration,
    /// Solutions retired by the deterministic upstream bound before any
    /// dominance sweep saw them (0 when bounding is off or disarmed).
    pub pruned_by_bound: usize,
    /// Solutions removed by dominance pruning (the keyed 2P/4P sweeps) —
    /// together with `pruned_by_bound` this partitions the predictive
    /// share of `solutions_pruned` from the comparative share.
    pub pruned_by_dominance: usize,
    /// Time spent testing candidates against the deterministic bounds,
    /// including the preorder bound construction. Summed across workers
    /// in parallel runs.
    pub bound_time: Duration,
    /// Buffered-candidate generations the Li–Shi precheck skipped: the
    /// candidate's predicted keys were already shadowed by a listed
    /// solution, so the dominance sweep would have discarded it and the
    /// form kernels never ran (0 when `use_lishi` is off or disarmed).
    pub lishi_skipped: usize,
    /// The `DpOptions::jobs` value the caller asked for (1 = sequential).
    /// Recorded for bench attribution; cleared by
    /// [`sans_times`](Self::sans_times) because it is configuration, not
    /// computation.
    pub jobs_requested: usize,
    /// The worker count actually used after clamping to the host's
    /// available parallelism (unless forced). Cleared by
    /// [`sans_times`](Self::sans_times) — it is host-dependent while the
    /// computed result is not.
    pub jobs_effective: usize,
    /// Pruning-rule fallback steps a governed run took (0 = primary rule
    /// held for the whole run).
    pub rule_fallbacks: usize,
    /// Epsilon-tightening steps a governed run took.
    pub epsilon_tightenings: usize,
    /// Spread-preserving list truncations a governed run applied.
    pub list_truncations: usize,
    /// Poisoned (non-finite) candidates dropped by the sanitizer.
    pub poisoned_dropped: usize,
    /// Whether the run finished in panic-completion (best-so-far) mode.
    pub panic_completion: bool,
    /// Nodes whose pruned lists were replayed from the session solution
    /// cache instead of being recomputed (0 outside incremental runs).
    pub cache_hits: usize,
    /// Nodes the incremental engine had to recompute — the dirty set.
    /// Equals `nodes_processed` on the incremental path; 0 elsewhere.
    pub cache_misses: usize,
    /// Candidate nodes where the deterministic bound pass was skipped
    /// because the subtree probe had already disarmed it (the anchor
    /// invocations retired nothing).
    pub bound_skipped: usize,
}

impl DpStats {
    /// Fraction of generated solutions that pruning removed.
    #[must_use]
    pub fn prune_ratio(&self) -> f64 {
        if self.solutions_generated == 0 {
            return 0.0;
        }
        self.solutions_pruned as f64 / self.solutions_generated as f64
    }

    /// Whether the run gave up any fidelity to stay within budget.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.rule_fallbacks > 0
            || self.epsilon_tightenings > 0
            || self.list_truncations > 0
            || self.poisoned_dropped > 0
            || self.panic_completion
    }

    /// One-line attribution of where the run's time went — the
    /// phase-level companion to `runtime` used by the bench output.
    #[must_use]
    pub fn phase_summary(&self) -> String {
        format!(
            "wire {:.1}ms, merge {:.1}ms, prune {:.1}ms, buffering {:.1}ms, bounds {:.1}ms \
             (of {:.1}ms total; cache {}/{} hit/miss, {} bound-skipped)",
            self.wire_time.as_secs_f64() * 1e3,
            self.merge_time.as_secs_f64() * 1e3,
            self.prune_time.as_secs_f64() * 1e3,
            self.buffer_time.as_secs_f64() * 1e3,
            self.bound_time.as_secs_f64() * 1e3,
            self.runtime.as_secs_f64() * 1e3,
            self.cache_hits,
            self.cache_misses,
            self.bound_skipped,
        )
    }

    /// This record with every wall-clock field zeroed — counters only.
    ///
    /// Timings vary run to run even when the computation is bit-for-bit
    /// identical; the determinism suite compares `sans_times()` records.
    #[must_use]
    pub fn sans_times(mut self) -> Self {
        self.runtime = Duration::ZERO;
        self.merge_time = Duration::ZERO;
        self.wire_time = Duration::ZERO;
        self.prune_time = Duration::ZERO;
        self.buffer_time = Duration::ZERO;
        self.bound_time = Duration::ZERO;
        self.jobs_requested = 0;
        self.jobs_effective = 0;
        self
    }

    /// Accumulates another run's counters into this one (batch/parallel
    /// reduction): sums counts and times, maxes the peak list size, and
    /// ORs the panic flag. `runtime` is maxed, not summed — in a parallel
    /// reduction it reflects the longest worker.
    pub fn absorb(&mut self, other: &DpStats) {
        self.nodes_processed += other.nodes_processed;
        self.max_solutions_per_node = self
            .max_solutions_per_node
            .max(other.max_solutions_per_node);
        self.solutions_generated += other.solutions_generated;
        self.solutions_pruned += other.solutions_pruned;
        self.runtime = self.runtime.max(other.runtime);
        self.merge_time += other.merge_time;
        self.wire_time += other.wire_time;
        self.prune_time += other.prune_time;
        self.buffer_time += other.buffer_time;
        self.pruned_by_bound += other.pruned_by_bound;
        self.pruned_by_dominance += other.pruned_by_dominance;
        self.bound_time += other.bound_time;
        self.lishi_skipped += other.lishi_skipped;
        self.jobs_requested = self.jobs_requested.max(other.jobs_requested);
        self.jobs_effective = self.jobs_effective.max(other.jobs_effective);
        self.rule_fallbacks += other.rule_fallbacks;
        self.epsilon_tightenings += other.epsilon_tightenings;
        self.list_truncations += other.list_truncations;
        self.poisoned_dropped += other.poisoned_dropped;
        self.panic_completion |= other.panic_completion;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.bound_skipped += other.bound_skipped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_ratio_handles_zero() {
        assert_eq!(DpStats::default().prune_ratio(), 0.0);
        let s = DpStats {
            solutions_generated: 10,
            solutions_pruned: 4,
            ..DpStats::default()
        };
        assert!((s.prune_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn degraded_reflects_any_counter() {
        assert!(!DpStats::default().degraded());
        assert!(DpStats {
            rule_fallbacks: 1,
            ..DpStats::default()
        }
        .degraded());
        assert!(DpStats {
            panic_completion: true,
            ..DpStats::default()
        }
        .degraded());
    }
}
