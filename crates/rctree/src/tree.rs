//! The arena-based routing tree.
//!
//! A [`RoutingTree`] is a rooted tree over three kinds of nodes:
//!
//! * exactly one **source** (the driver) at the root,
//! * **sinks** at the leaves, each with a load capacitance and a required
//!   arrival time (RAT),
//! * **internal** nodes (Steiner / branch points) everywhere else.
//!
//! Every edge connects a parent to a child and carries a wire length.
//! Following the paper's benchmark convention (Table 1: `positions =
//! 2·sinks − 1` for a binary topology), each edge offers **one legal
//! buffer position at its downstream endpoint**; nodes can opt out via
//! [`RoutingTree::set_candidate`].

use crate::geom::{BoundingBox, Point};
use crate::wire::WireParams;
use std::error::Error;
use std::fmt;

/// Index of a node inside a [`RoutingTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index as `usize`.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a tree node is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// The driver at the root of the net. Carries the driver resistance
    /// (kΩ) used when computing the delay from the source into the tree.
    Source {
        /// Driver output resistance, kΩ.
        driver_resistance: f64,
    },
    /// A leaf being driven.
    Sink {
        /// Input (load) capacitance, fF.
        capacitance: f64,
        /// Required arrival time, ps. The optimization maximizes the RAT
        /// propagated to the root.
        required_arrival: f64,
    },
    /// A Steiner / branch point.
    Internal,
}

/// One node of the arena.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Position on the die.
    pub location: Point,
    /// What the node is.
    pub kind: NodeKind,
    /// Parent link (`None` only for the root).
    pub parent: Option<NodeId>,
    /// Wire length of the edge from the parent, µm (0 for the root).
    pub edge_length: f64,
    /// Whether a buffer may legally be inserted at this node (at the
    /// downstream end of its parent edge). Always `false` for the root.
    pub is_candidate: bool,
    /// Children, in insertion order.
    pub children: Vec<NodeId>,
}

/// Structural error detected by [`RoutingTree::validate`] or during
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// The tree has no nodes.
    Empty,
    /// A non-root node has no parent, or the root has one.
    BrokenParentLink(NodeId),
    /// Parent/child links disagree.
    InconsistentChildLink {
        /// The parent whose child list is wrong.
        parent: NodeId,
        /// The child with the broken link.
        child: NodeId,
    },
    /// A sink has children.
    SinkWithChildren(NodeId),
    /// A non-sink leaf (dangling internal node).
    DanglingInternal(NodeId),
    /// A second source node was found.
    MultipleSources(NodeId),
    /// The root is not a source.
    RootNotSource,
    /// Edge length is negative or non-finite.
    BadEdgeLength(NodeId),
    /// Node is unreachable from the root (cycle or disconnection).
    Unreachable(NodeId),
    /// A sink parameter is invalid (negative capacitance, non-finite RAT).
    BadSink(NodeId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "routing tree has no nodes"),
            TreeError::BrokenParentLink(n) => write!(f, "broken parent link at {n}"),
            TreeError::InconsistentChildLink { parent, child } => {
                write!(f, "inconsistent child link {parent} -> {child}")
            }
            TreeError::SinkWithChildren(n) => write!(f, "sink {n} has children"),
            TreeError::DanglingInternal(n) => write!(f, "internal node {n} is a leaf"),
            TreeError::MultipleSources(n) => write!(f, "unexpected extra source at {n}"),
            TreeError::RootNotSource => write!(f, "root node is not a source"),
            TreeError::BadEdgeLength(n) => write!(f, "bad edge length at {n}"),
            TreeError::Unreachable(n) => write!(f, "node {n} unreachable from the root"),
            TreeError::BadSink(n) => write!(f, "sink {n} has invalid parameters"),
        }
    }
}

impl Error for TreeError {}

/// A rooted RC routing tree with wire parameters.
///
/// Construction is incremental: create the tree with its source, then
/// attach internal nodes and sinks. All structural invariants are checked
/// by [`RoutingTree::validate`].
///
/// ```
/// use varbuf_rctree::{RoutingTree, NodeKind, Point, WireParams};
///
/// let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.1, WireParams::default_65nm());
/// let mid = t.add_internal(t.root(), Point::new(500.0, 0.0));
/// t.add_sink(mid, Point::new(1000.0, 0.0), 20.0, 0.0);
/// t.add_sink(mid, Point::new(500.0, 500.0), 15.0, 0.0);
/// t.validate().unwrap();
/// assert_eq!(t.sink_count(), 2);
/// assert_eq!(t.candidate_count(), 3); // one per edge
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTree {
    nodes: Vec<Node>,
    wire: WireParams,
    name: String,
}

impl RoutingTree {
    /// Creates a tree containing just the source node.
    #[must_use]
    pub fn new(source_location: Point, driver_resistance: f64, wire: WireParams) -> Self {
        Self {
            nodes: vec![Node {
                location: source_location,
                kind: NodeKind::Source { driver_resistance },
                parent: None,
                edge_length: 0.0,
                is_candidate: false,
                children: Vec::new(),
            }],
            wire,
            name: String::new(),
        }
    }

    /// Sets a human-readable benchmark name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The benchmark name (may be empty).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root (source) node id.
    #[inline]
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The wire parameters.
    #[inline]
    #[must_use]
    pub fn wire(&self) -> WireParams {
        self.wire
    }

    /// Total number of nodes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true after construction).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterator over `(NodeId, &Node)` in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Ids of all sink nodes.
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Sink { .. }))
            .map(|(id, _)| id)
    }

    /// Number of sinks.
    #[must_use]
    pub fn sink_count(&self) -> usize {
        self.sinks().count()
    }

    /// Number of legal buffer positions.
    #[must_use]
    pub fn candidate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_candidate).count()
    }

    /// Total wire length, µm.
    #[must_use]
    pub fn total_wire_length(&self) -> f64 {
        self.nodes.iter().map(|n| n.edge_length).sum()
    }

    /// Bounding box of all node locations.
    #[must_use]
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::of(self.nodes.iter().map(|n| n.location))
            .expect("tree always has at least the source")
    }

    /// Attaches an internal (Steiner) node under `parent`; edge length is
    /// the Manhattan distance between the endpoints. The node is a buffer
    /// candidate by default.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range or is a sink.
    pub fn add_internal(&mut self, parent: NodeId, location: Point) -> NodeId {
        self.attach(parent, location, NodeKind::Internal)
    }

    /// Attaches a sink under `parent`. The sink position is a buffer
    /// candidate by default (a buffer may shield the sink from upstream).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range or is a sink, if `capacitance`
    /// is negative, or if either parameter is non-finite.
    pub fn add_sink(
        &mut self,
        parent: NodeId,
        location: Point,
        capacitance: f64,
        required_arrival: f64,
    ) -> NodeId {
        assert!(
            capacitance.is_finite() && capacitance >= 0.0,
            "sink capacitance must be finite and non-negative"
        );
        assert!(
            required_arrival.is_finite(),
            "sink required arrival time must be finite"
        );
        self.attach(
            parent,
            location,
            NodeKind::Sink {
                capacitance,
                required_arrival,
            },
        )
    }

    fn attach(&mut self, parent: NodeId, location: Point, kind: NodeKind) -> NodeId {
        assert!(parent.index() < self.nodes.len(), "parent out of range");
        assert!(
            !matches!(self.nodes[parent.index()].kind, NodeKind::Sink { .. }),
            "cannot attach a child to a sink"
        );
        let edge_length = self.nodes[parent.index()].location.manhattan(location);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            location,
            kind,
            parent: Some(parent),
            edge_length,
            is_candidate: true,
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Enables/disables the buffer position at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the root (the source is never a candidate) or out
    /// of range.
    pub fn set_candidate(&mut self, id: NodeId, candidate: bool) {
        assert!(id != self.root(), "the source cannot host a buffer");
        self.nodes[id.index()].is_candidate = candidate;
    }

    /// Overwrites the load capacitance and required arrival time of the
    /// sink at `id`, keeping the node's position and links intact. This is
    /// the mutation surface incremental re-optimization edits through.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or not a sink, if `capacitance` is
    /// negative, or if either parameter is non-finite.
    pub fn set_sink(&mut self, id: NodeId, capacitance: f64, required_arrival: f64) {
        assert!(
            capacitance.is_finite() && capacitance >= 0.0,
            "sink capacitance must be finite and non-negative"
        );
        assert!(
            required_arrival.is_finite(),
            "sink required arrival time must be finite"
        );
        let node = &mut self.nodes[id.index()];
        assert!(
            matches!(node.kind, NodeKind::Sink { .. }),
            "set_sink target must be a sink"
        );
        node.kind = NodeKind::Sink {
            capacitance,
            required_arrival,
        };
    }

    /// Overrides the wire length of the edge above `id` (by default the
    /// Manhattan distance between the endpoints; detoured routes may be
    /// longer).
    ///
    /// # Panics
    ///
    /// Panics if `id` is the root, out of range, or `length` is negative
    /// or non-finite.
    pub fn set_edge_length(&mut self, id: NodeId, length: f64) {
        assert!(id != self.root(), "the root has no parent edge");
        assert!(
            length.is_finite() && length >= 0.0,
            "edge length must be finite and non-negative"
        );
        self.nodes[id.index()].edge_length = length;
    }

    /// Post-order (children before parents) traversal from the root.
    ///
    /// This is the reverse-topological order the dynamic program consumes.
    #[must_use]
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        // Iterative post-order with an explicit stack of (node, visited).
        let mut stack = vec![(self.root(), false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
            } else {
                stack.push((id, true));
                for &c in &self.nodes[id.index()].children {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// Returns a copy of the tree with every edge longer than
    /// `max_segment_um` subdivided into equal pieces by chains of
    /// internal candidate nodes.
    ///
    /// Buffer-insertion quality depends on how finely wires expose legal
    /// positions; the generated benchmarks default to one position per
    /// Steiner edge (matching Table 1 of the paper), and this method
    /// refines that when more placement freedom is wanted.
    ///
    /// # Panics
    ///
    /// Panics if `max_segment_um` is not strictly positive.
    #[must_use]
    pub fn subdivided(&self, max_segment_um: f64) -> RoutingTree {
        assert!(
            max_segment_um > 0.0,
            "segment length must be positive, got {max_segment_um}"
        );
        let root = self.root();
        let mut out = RoutingTree::new(
            self.nodes[root.index()].location,
            match self.nodes[root.index()].kind {
                NodeKind::Source { driver_resistance } => driver_resistance,
                _ => 0.0,
            },
            self.wire,
        );
        out.set_name(self.name.clone());

        // Map old ids to new ids, walking parents before children
        // (pre-order = reverse post-order).
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        remap[root.index()] = Some(out.root());
        for &old_id in self.postorder().iter().rev() {
            if old_id == root {
                continue;
            }
            let node = &self.nodes[old_id.index()];
            let old_parent = node.parent.expect("non-root");
            let mut parent = remap[old_parent.index()].expect("pre-order");
            let parent_loc = out.node(parent).location;

            // Insert intermediate candidates along the edge.
            let pieces = (node.edge_length / max_segment_um).ceil().max(1.0) as usize;
            for k in 1..pieces {
                let t = k as f64 / pieces as f64;
                let loc = Point::new(
                    parent_loc.x + t * (node.location.x - parent_loc.x),
                    parent_loc.y + t * (node.location.y - parent_loc.y),
                );
                let mid = out.add_internal(parent, loc);
                out.set_edge_length(mid, node.edge_length / pieces as f64);
                parent = mid;
            }
            let new_id = match node.kind {
                NodeKind::Sink {
                    capacitance,
                    required_arrival,
                } => out.add_sink(parent, node.location, capacitance, required_arrival),
                _ => out.add_internal(parent, node.location),
            };
            out.set_edge_length(new_id, node.edge_length / pieces as f64);
            out.set_candidate(new_id, node.is_candidate);
            remap[old_id.index()] = Some(new_id);
        }
        out
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`TreeError`] found; see the enum for the list of
    /// conditions.
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.nodes.is_empty() {
            return Err(TreeError::Empty);
        }
        if !matches!(self.nodes[0].kind, NodeKind::Source { .. }) {
            return Err(TreeError::RootNotSource);
        }
        if self.nodes[0].parent.is_some() {
            return Err(TreeError::BrokenParentLink(self.root()));
        }

        let mut reached = vec![false; self.nodes.len()];
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            if reached[id.index()] {
                // A node reachable twice means a child appears in two
                // child lists — surface it as an inconsistent link.
                return Err(TreeError::InconsistentChildLink {
                    parent: self.nodes[id.index()].parent.unwrap_or(self.root()),
                    child: id,
                });
            }
            reached[id.index()] = true;
            let node = &self.nodes[id.index()];
            for &c in &node.children {
                if c.index() >= self.nodes.len() || self.nodes[c.index()].parent != Some(id) {
                    return Err(TreeError::InconsistentChildLink {
                        parent: id,
                        child: c,
                    });
                }
                stack.push(c);
            }
        }

        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            if !reached[i] {
                return Err(TreeError::Unreachable(id));
            }
            if i != 0 {
                if node.parent.is_none() {
                    return Err(TreeError::BrokenParentLink(id));
                }
                if matches!(node.kind, NodeKind::Source { .. }) {
                    return Err(TreeError::MultipleSources(id));
                }
                if !node.edge_length.is_finite() || node.edge_length < 0.0 {
                    return Err(TreeError::BadEdgeLength(id));
                }
            }
            match node.kind {
                NodeKind::Sink {
                    capacitance,
                    required_arrival,
                } => {
                    if !node.children.is_empty() {
                        return Err(TreeError::SinkWithChildren(id));
                    }
                    if !capacitance.is_finite()
                        || capacitance < 0.0
                        || !required_arrival.is_finite()
                    {
                        return Err(TreeError::BadSink(id));
                    }
                }
                NodeKind::Internal => {
                    if node.children.is_empty() {
                        return Err(TreeError::DanglingInternal(id));
                    }
                }
                NodeKind::Source { .. } => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sink_tree() -> RoutingTree {
        let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.1, WireParams::default_65nm());
        let mid = t.add_internal(t.root(), Point::new(100.0, 0.0));
        t.add_sink(mid, Point::new(200.0, 0.0), 10.0, 0.0);
        t.add_sink(mid, Point::new(100.0, 100.0), 20.0, -50.0);
        t
    }

    #[test]
    fn construction_and_counts() {
        let t = two_sink_tree();
        assert_eq!(t.len(), 4);
        assert_eq!(t.sink_count(), 2);
        assert_eq!(t.candidate_count(), 3);
        assert_eq!(t.total_wire_length(), 300.0);
        t.validate().expect("valid");
    }

    #[test]
    fn edge_lengths_are_manhattan() {
        let t = two_sink_tree();
        let mid = NodeId(1);
        assert_eq!(t.node(mid).edge_length, 100.0);
        assert_eq!(t.node(NodeId(3)).edge_length, 100.0);
    }

    #[test]
    fn postorder_children_first() {
        let t = two_sink_tree();
        let order = t.postorder();
        assert_eq!(order.len(), 4);
        assert_eq!(*order.last().unwrap(), t.root());
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        // Children come before their parent.
        assert!(pos(NodeId(2)) < pos(NodeId(1)));
        assert!(pos(NodeId(3)) < pos(NodeId(1)));
        assert!(pos(NodeId(1)) < pos(NodeId(0)));
    }

    #[test]
    fn set_candidate_changes_count() {
        let mut t = two_sink_tree();
        t.set_candidate(NodeId(2), false);
        assert_eq!(t.candidate_count(), 2);
        t.set_candidate(NodeId(2), true);
        assert_eq!(t.candidate_count(), 3);
    }

    #[test]
    fn set_sink_updates_parameters_in_place() {
        let mut t = two_sink_tree();
        t.set_sink(NodeId(2), 42.0, -7.5);
        assert_eq!(
            t.node(NodeId(2)).kind,
            NodeKind::Sink {
                capacitance: 42.0,
                required_arrival: -7.5
            }
        );
        t.validate().expect("still valid");
    }

    #[test]
    #[should_panic(expected = "must be a sink")]
    fn set_sink_rejects_non_sinks() {
        let mut t = two_sink_tree();
        t.set_sink(NodeId(1), 10.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "source cannot host a buffer")]
    fn root_cannot_be_candidate() {
        let mut t = two_sink_tree();
        t.set_candidate(t.root(), true);
    }

    #[test]
    #[should_panic(expected = "cannot attach a child to a sink")]
    fn sink_cannot_have_children() {
        let mut t = two_sink_tree();
        t.add_sink(NodeId(2), Point::new(300.0, 0.0), 5.0, 0.0);
    }

    #[test]
    fn validate_detects_dangling_internal() {
        let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.1, WireParams::default_65nm());
        t.add_internal(t.root(), Point::new(10.0, 0.0));
        assert_eq!(t.validate(), Err(TreeError::DanglingInternal(NodeId(1))));
    }

    #[test]
    fn validate_detects_bad_edge_length() {
        let mut t = two_sink_tree();
        // Bypass set_edge_length's assert by mutating via serde round-trip
        // is overkill; use the setter for a valid value then break it with
        // a non-finite length through the public setter's panic path being
        // separate, we check the validator on NaN injected via set + edit.
        t.set_edge_length(NodeId(2), 50.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn debug_format_names_node_kinds() {
        let t = two_sink_tree();
        let debug = format!("{t:?}");
        assert!(debug.contains("Sink"));
    }

    #[test]
    fn subdivided_preserves_structure_and_length() {
        let t = two_sink_tree();
        let s = t.subdivided(30.0);
        s.validate().expect("valid");
        assert_eq!(s.sink_count(), t.sink_count());
        assert!((s.total_wire_length() - t.total_wire_length()).abs() < 1e-9);
        // Each 100 µm edge becomes four 25 µm pieces: 3 edges → 12 edges.
        assert_eq!(s.candidate_count(), 12);
        // Electrically identical: same Elmore delays at sinks.
        let et = crate::elmore::ElmoreEvaluator::new(&t).evaluate_unbuffered();
        let es = crate::elmore::ElmoreEvaluator::new(&s).evaluate_unbuffered();
        assert!((et.root_rat - es.root_rat).abs() < 1e-9 * et.root_rat.abs().max(1.0));
    }

    #[test]
    fn subdivided_with_large_limit_is_identity_shaped() {
        let t = two_sink_tree();
        let s = t.subdivided(1e9);
        assert_eq!(s.len(), t.len());
        assert_eq!(s.candidate_count(), t.candidate_count());
        assert!((s.total_wire_length() - t.total_wire_length()).abs() < 1e-9);
    }

    #[test]
    fn display_of_errors() {
        assert!(!TreeError::Empty.to_string().is_empty());
        assert!(TreeError::Unreachable(NodeId(3)).to_string().contains("n3"));
    }
}
