//! Wire electrical parameters and the Elmore π-model of a segment.

/// Per-unit-length electrical parameters of the routing layer.
///
/// Units: resistance kΩ/µm, capacitance fF/µm, so that `R·C` products are
/// directly in ps. The defaults are representative 65 nm global-layer
/// values commonly used in the buffer-insertion literature.
///
/// ```
/// use varbuf_rctree::WireParams;
/// let w = WireParams::default_65nm();
/// let seg = w.segment(1000.0); // a 1 mm wire
/// assert!(seg.resistance > 0.0 && seg.capacitance > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireParams {
    /// Sheet/unit resistance, kΩ per µm.
    pub res_per_um: f64,
    /// Unit capacitance, fF per µm.
    pub cap_per_um: f64,
}

impl WireParams {
    /// Representative 65 nm global-layer values:
    /// `r = 0.076 Ω/µm`, `c = 0.118 fF/µm`.
    #[must_use]
    pub fn default_65nm() -> Self {
        Self {
            res_per_um: 0.076e-3, // kΩ/µm
            cap_per_um: 0.118,    // fF/µm
        }
    }

    /// The lumped π-model of a wire of length `length_um`.
    ///
    /// # Panics
    ///
    /// Panics if `length_um` is negative or non-finite.
    #[must_use]
    pub fn segment(&self, length_um: f64) -> WireSegment {
        assert!(
            length_um.is_finite() && length_um >= 0.0,
            "wire length must be finite and non-negative, got {length_um}"
        );
        WireSegment {
            length: length_um,
            resistance: self.res_per_um * length_um,
            capacitance: self.cap_per_um * length_um,
        }
    }
}

impl Default for WireParams {
    fn default() -> Self {
        Self::default_65nm()
    }
}

/// Lumped quantities of one wire segment (π-model: half the capacitance at
/// each end, full resistance between).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSegment {
    /// Length, µm.
    pub length: f64,
    /// Total resistance, kΩ.
    pub resistance: f64,
    /// Total capacitance, fF.
    pub capacitance: f64,
}

impl WireSegment {
    /// Elmore delay of this segment driving a downstream load `load_ff`:
    /// `R·(C/2 + L)` in ps — equivalently the
    /// `r·l·L + ½·r·c·l²` of eq. (26).
    #[inline]
    #[must_use]
    pub fn elmore_delay(&self, load_ff: f64) -> f64 {
        self.resistance * (self.capacitance / 2.0 + load_ff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_scales_linearly() {
        let w = WireParams::default_65nm();
        let a = w.segment(100.0);
        let b = w.segment(200.0);
        assert!((b.resistance - 2.0 * a.resistance).abs() < 1e-15);
        assert!((b.capacitance - 2.0 * a.capacitance).abs() < 1e-12);
    }

    #[test]
    fn zero_length_segment_is_free() {
        let seg = WireParams::default_65nm().segment(0.0);
        assert_eq!(seg.elmore_delay(100.0), 0.0);
    }

    #[test]
    fn elmore_matches_formula() {
        let w = WireParams {
            res_per_um: 1e-3,
            cap_per_um: 0.2,
        };
        let l = 500.0;
        let load = 30.0;
        let seg = w.segment(l);
        let expect = w.res_per_um * l * load + 0.5 * w.res_per_um * w.cap_per_um * l * l;
        assert!((seg.elmore_delay(load) - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_rejected() {
        let _ = WireParams::default_65nm().segment(-1.0);
    }
}
