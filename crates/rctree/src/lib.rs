//! RC routing-tree substrate for variation-aware buffer insertion.
//!
//! This crate provides everything below the optimization layer:
//!
//! * [`geom`] — die coordinates (micrometers) and rectilinear distance.
//! * [`tree`] — the arena-based [`RoutingTree`]: a source (driver) node,
//!   sink nodes carrying load capacitance and required arrival times, and
//!   internal nodes; every edge carries a wire length and offers one legal
//!   buffer position at its downstream end (so a binary tree over `n`
//!   sinks exposes exactly `2n − 1` candidate positions, matching Table 1
//!   of the paper).
//! * [`wire`] — per-unit-length electrical parameters and the Elmore
//!   π-model quantities of a wire segment.
//! * [`elmore`] — a deterministic Elmore-delay evaluator for a tree with a
//!   concrete buffer assignment; this is the independent checker used to
//!   validate the dynamic program and to drive Monte Carlo analysis.
//! * [`generate`] — seeded benchmark generators: geometric-bipartition
//!   Steiner-like trees matching the p1/p2/r1–r5 suite of the paper, and
//!   H-tree clock networks for the >64k-sink capacity experiment.
//! * [`io`] — a simple line-oriented text format for trees.
//!
//! Units across the workspace: distance in µm, resistance in kΩ,
//! capacitance in fF, time in ps (so `kΩ · fF = ps` with no conversion
//! factors).
//!
//! # Example
//!
//! ```
//! use varbuf_rctree::generate::{BenchmarkSpec, generate_benchmark};
//!
//! let tree = generate_benchmark(&BenchmarkSpec::named("r1").unwrap());
//! assert_eq!(tree.sink_count(), 267);
//! assert_eq!(tree.candidate_count(), 533);
//! tree.validate().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elmore;
pub mod generate;
pub mod geom;
pub mod io;
pub mod tree;
pub mod wire;

pub use elmore::ElmoreEvaluator;
pub use geom::Point;
pub use tree::{NodeId, NodeKind, RoutingTree, TreeError};
pub use wire::WireParams;
