//! Deterministic Elmore-delay evaluation of a (possibly buffered) tree.
//!
//! [`ElmoreEvaluator`] computes, for a concrete buffer assignment, the
//! downstream load everywhere, the source-to-sink Elmore delays, and the
//! required arrival time (RAT) propagated to the root — i.e. exactly what
//! the dynamic program optimizes, evaluated independently from first
//! principles. It is the ground-truth checker for the DP and the inner
//! loop of the Monte Carlo analysis (each MC sample perturbs the buffer
//! values and re-runs this evaluator).

use crate::tree::{NodeId, NodeKind, RoutingTree};
use std::collections::HashMap;

/// Electrical values of one placed buffer instance.
///
/// These are *values*, not a library type: Monte Carlo analysis samples a
/// different realization per instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferValues {
    /// Input capacitance, fF.
    pub capacitance: f64,
    /// Intrinsic delay, ps.
    pub intrinsic_delay: f64,
    /// Output resistance, kΩ.
    pub resistance: f64,
}

/// A concrete buffer placement: which candidate nodes host a buffer and
/// with what electrical values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BufferAssignment {
    buffers: HashMap<u32, BufferValues>,
}

impl BufferAssignment {
    /// An empty (unbuffered) assignment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Places (or replaces) a buffer at `node`.
    pub fn insert(&mut self, node: NodeId, values: BufferValues) {
        self.buffers.insert(node.0, values);
    }

    /// The buffer at `node`, if any.
    #[must_use]
    pub fn get(&self, node: NodeId) -> Option<&BufferValues> {
        self.buffers.get(&node.0)
    }

    /// Number of placed buffers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether no buffer is placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Iterator over `(NodeId, &BufferValues)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &BufferValues)> {
        self.buffers.iter().map(|(&id, v)| (NodeId(id), v))
    }
}

/// Per-edge wire-width multipliers for sized evaluation.
///
/// A width `w` scales the edge's resistance by `1/w` and its capacitance
/// by `w` (the first-order geometry scaling used by wire-sizing
/// formulations such as \[8\]). Edges not present use width `1.0`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeWidths {
    widths: HashMap<u32, f64>,
}

impl EdgeWidths {
    /// All edges at default width.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the width multiplier of the edge above `node`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive and finite.
    pub fn set(&mut self, node: NodeId, width: f64) {
        assert!(
            width.is_finite() && width > 0.0,
            "wire width must be positive and finite, got {width}"
        );
        self.widths.insert(node.0, width);
    }

    /// The width multiplier of the edge above `node` (default `1.0`).
    #[must_use]
    pub fn get(&self, node: NodeId) -> f64 {
        self.widths.get(&node.0).copied().unwrap_or(1.0)
    }

    /// Number of non-default entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.widths.len()
    }

    /// Whether every edge is at default width.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.widths.is_empty()
    }
}

/// Result of one Elmore evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ElmoreReport {
    /// RAT at the source after subtracting the driver delay, ps.
    pub root_rat: f64,
    /// Load presented to the driver, fF.
    pub root_load: f64,
    /// Elmore delay from the source to every sink, ps.
    pub sink_delays: Vec<(NodeId, f64)>,
    /// The sink with the smallest slack (`rat − delay`).
    pub critical_sink: NodeId,
}

/// Evaluates Elmore delay and root RAT for buffer assignments on one tree.
///
/// ```
/// use varbuf_rctree::{RoutingTree, Point, WireParams};
/// use varbuf_rctree::elmore::{BufferAssignment, ElmoreEvaluator};
///
/// let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.1, WireParams::default_65nm());
/// let s = t.add_sink(t.root(), Point::new(1000.0, 0.0), 20.0, 0.0);
/// let eval = ElmoreEvaluator::new(&t);
/// let report = eval.evaluate(&BufferAssignment::new());
/// assert!(report.root_rat < 0.0); // delay makes the root RAT negative
/// assert_eq!(report.critical_sink, s);
/// ```
#[derive(Debug)]
pub struct ElmoreEvaluator<'a> {
    tree: &'a RoutingTree,
    postorder: Vec<NodeId>,
}

impl<'a> ElmoreEvaluator<'a> {
    /// Prepares an evaluator (caches the traversal order).
    #[must_use]
    pub fn new(tree: &'a RoutingTree) -> Self {
        Self {
            tree,
            postorder: tree.postorder(),
        }
    }

    /// The underlying tree.
    #[must_use]
    pub fn tree(&self) -> &RoutingTree {
        self.tree
    }

    /// Evaluates the tree under `buffers` (all wires at default width).
    ///
    /// # Panics
    ///
    /// Panics if the tree has no sinks (an unconnected net has no RAT).
    #[must_use]
    pub fn evaluate(&self, buffers: &BufferAssignment) -> ElmoreReport {
        self.evaluate_sized(buffers, &EdgeWidths::new())
    }

    /// Evaluates the tree under `buffers` with per-edge wire widths.
    ///
    /// # Panics
    ///
    /// Panics if the tree has no sinks (an unconnected net has no RAT).
    #[must_use]
    pub fn evaluate_sized(&self, buffers: &BufferAssignment, widths: &EdgeWidths) -> ElmoreReport {
        let n = self.tree.len();
        let wire = self.tree.wire();

        // Pass 1 (post-order): subtree load below each node, ignoring any
        // buffer placed *at* the node itself (that is "the load the buffer
        // drives"), plus the load each node presents upward (buffer cap if
        // buffered, subtree load otherwise).
        let mut subtree_load = vec![0.0_f64; n];
        let mut upward_load = vec![0.0_f64; n];
        for &id in &self.postorder {
            let node = self.tree.node(id);
            let mut load = match node.kind {
                NodeKind::Sink { capacitance, .. } => capacitance,
                _ => 0.0,
            };
            for &c in &node.children {
                let seg_cap = wire.cap_per_um * self.tree.node(c).edge_length * widths.get(c);
                load += seg_cap + upward_load[c.index()];
            }
            subtree_load[id.index()] = load;
            upward_load[id.index()] = match buffers.get(id) {
                Some(b) => b.capacitance,
                None => load,
            };
        }

        // Pass 2 (pre-order): accumulate delay from the source.
        // `arrival[v]` = Elmore delay from the driver input to the point
        // *after* any buffer at v (i.e. at v driving its subtree).
        let mut arrival = vec![0.0_f64; n];
        let root = self.tree.root();
        let driver_res = match self.tree.node(root).kind {
            NodeKind::Source { driver_resistance } => driver_resistance,
            _ => 0.0,
        };
        arrival[root.index()] = driver_res * upward_load[root.index()];
        // Pre-order = reverse post-order for this stack discipline.
        for &id in self.postorder.iter().rev() {
            let base = arrival[id.index()];
            let node = self.tree.node(id);
            for &c in &node.children {
                let child = self.tree.node(c);
                let w = widths.get(c);
                let mut seg = wire.segment(child.edge_length);
                seg.resistance /= w;
                seg.capacitance *= w;
                // Wire delay into the child (π-model: half cap local).
                let mut t = base + seg.elmore_delay(upward_load[c.index()]);
                // Buffer delay at the child, if present.
                if let Some(b) = buffers.get(c) {
                    t += b.intrinsic_delay + b.resistance * subtree_load[c.index()];
                }
                arrival[c.index()] = t;
            }
        }

        // Collect sink slacks.
        let mut sink_delays = Vec::new();
        let mut root_rat = f64::INFINITY;
        let mut critical_sink = None;
        for (id, node) in self.tree.iter() {
            if let NodeKind::Sink {
                required_arrival, ..
            } = node.kind
            {
                let delay = arrival[id.index()];
                sink_delays.push((id, delay));
                let slack = required_arrival - delay;
                if slack < root_rat {
                    root_rat = slack;
                    critical_sink = Some(id);
                }
            }
        }

        ElmoreReport {
            root_rat,
            root_load: upward_load[root.index()],
            sink_delays,
            critical_sink: critical_sink.expect("tree must have at least one sink"),
        }
    }

    /// Convenience: evaluate without any buffers.
    #[must_use]
    pub fn evaluate_unbuffered(&self) -> ElmoreReport {
        self.evaluate(&BufferAssignment::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;
    use crate::wire::WireParams;

    fn wire() -> WireParams {
        WireParams {
            res_per_um: 1e-3, // 1 Ω/µm in kΩ
            cap_per_um: 0.1,  // fF/µm
        }
    }

    #[test]
    fn single_wire_matches_hand_computation() {
        // Source --1000µm--> sink(20fF, rat 0), driver 0.1 kΩ.
        let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.1, wire());
        t.add_sink(t.root(), Point::new(1000.0, 0.0), 20.0, 0.0);
        let eval = ElmoreEvaluator::new(&t);
        let rep = eval.evaluate_unbuffered();

        let r = 1e-3 * 1000.0; // 1 kΩ
        let c = 0.1 * 1000.0; // 100 fF
        let expect_delay = 0.1 * (c + 20.0) + r * (c / 2.0 + 20.0);
        assert!((rep.sink_delays[0].1 - expect_delay).abs() < 1e-9);
        assert!((rep.root_rat + expect_delay).abs() < 1e-9);
        assert!((rep.root_load - (c + 20.0)).abs() < 1e-9);
    }

    #[test]
    fn buffer_decouples_downstream_load() {
        // Long wire with a buffer in the middle: the driver should see the
        // buffer cap, not the full downstream capacitance.
        let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.1, wire());
        let mid = t.add_internal(t.root(), Point::new(1000.0, 0.0));
        t.add_sink(mid, Point::new(2000.0, 0.0), 20.0, 0.0);

        let eval = ElmoreEvaluator::new(&t);
        let unbuf = eval.evaluate_unbuffered();

        let mut buf = BufferAssignment::new();
        buf.insert(
            mid,
            BufferValues {
                capacitance: 10.0,
                intrinsic_delay: 30.0,
                resistance: 0.2,
            },
        );
        let with_buf = eval.evaluate(&buf);

        // Root load becomes first-segment cap + buffer cap.
        assert!((with_buf.root_load - (100.0 + 10.0)).abs() < 1e-9);
        assert!(with_buf.root_load < unbuf.root_load);
        // Long unbuffered wire is quadratic; one buffer should help here.
        assert!(with_buf.root_rat > unbuf.root_rat);
    }

    #[test]
    fn branch_takes_min_slack() {
        let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.05, wire());
        let j = t.add_internal(t.root(), Point::new(100.0, 0.0));
        let near = t.add_sink(j, Point::new(200.0, 0.0), 10.0, 0.0);
        let far = t.add_sink(j, Point::new(100.0, 2000.0), 10.0, 0.0);
        let eval = ElmoreEvaluator::new(&t);
        let rep = eval.evaluate_unbuffered();
        // The far sink dominates the root RAT.
        assert_eq!(rep.critical_sink, far);
        let d_near = rep.sink_delays.iter().find(|&&(s, _)| s == near).unwrap().1;
        let d_far = rep.sink_delays.iter().find(|&&(s, _)| s == far).unwrap().1;
        assert!(d_far > d_near);
        assert!((rep.root_rat + d_far).abs() < 1e-9);
    }

    #[test]
    fn sink_rat_offsets_propagate() {
        // Give the near sink a very tight (negative) RAT so it becomes
        // critical despite its shorter delay.
        let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.05, wire());
        let j = t.add_internal(t.root(), Point::new(100.0, 0.0));
        let near = t.add_sink(j, Point::new(200.0, 0.0), 10.0, -1e6);
        t.add_sink(j, Point::new(100.0, 2000.0), 10.0, 0.0);
        let eval = ElmoreEvaluator::new(&t);
        let rep = eval.evaluate_unbuffered();
        assert_eq!(rep.critical_sink, near);
    }

    #[test]
    fn buffer_at_branch_shields_sibling() {
        // Buffering the heavy branch improves the light branch's delay.
        let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.5, wire());
        let j = t.add_internal(t.root(), Point::new(10.0, 0.0));
        let light = t.add_sink(j, Point::new(110.0, 0.0), 5.0, 0.0);
        let heavy = t.add_internal(j, Point::new(10.0, 3000.0));
        t.add_sink(heavy, Point::new(10.0, 5000.0), 50.0, 0.0);

        let eval = ElmoreEvaluator::new(&t);
        let unbuf = eval.evaluate_unbuffered();
        let mut buf = BufferAssignment::new();
        buf.insert(
            heavy,
            BufferValues {
                capacitance: 5.0,
                intrinsic_delay: 30.0,
                resistance: 0.2,
            },
        );
        let buffered = eval.evaluate(&buf);
        let light_unbuf = unbuf
            .sink_delays
            .iter()
            .find(|&&(s, _)| s == light)
            .unwrap()
            .1;
        let light_buf = buffered
            .sink_delays
            .iter()
            .find(|&&(s, _)| s == light)
            .unwrap()
            .1;
        assert!(
            light_buf < light_unbuf,
            "shielding failed: {light_buf} !< {light_unbuf}"
        );
    }

    #[test]
    fn wider_wires_cut_resistance_delay() {
        // A long resistive line driving a large load: widening trades
        // higher wire cap for lower wire resistance, a net win here.
        let mut t = RoutingTree::new(Point::new(0.0, 0.0), 0.01, wire());
        let s = t.add_sink(t.root(), Point::new(5000.0, 0.0), 100.0, 0.0);
        let eval = ElmoreEvaluator::new(&t);
        let narrow = eval.evaluate_unbuffered();
        let mut widths = EdgeWidths::new();
        widths.set(s, 4.0);
        let wide = eval.evaluate_sized(&BufferAssignment::new(), &widths);
        assert!(
            wide.root_rat > narrow.root_rat,
            "wide {} vs narrow {}",
            wide.root_rat,
            narrow.root_rat
        );
        // Driver load grows with the wider wire's capacitance.
        assert!(wide.root_load > narrow.root_load);
    }

    #[test]
    fn edge_widths_default_is_one() {
        let w = EdgeWidths::new();
        assert!(w.is_empty());
        assert_eq!(w.get(NodeId(5)), 1.0);
        let mut w2 = EdgeWidths::new();
        w2.set(NodeId(5), 2.0);
        assert_eq!(w2.len(), 1);
        assert_eq!(w2.get(NodeId(5)), 2.0);
    }

    #[test]
    #[should_panic(expected = "wire width must be positive")]
    fn zero_width_rejected() {
        let mut w = EdgeWidths::new();
        w.set(NodeId(1), 0.0);
    }

    #[test]
    fn assignment_accessors() {
        let mut a = BufferAssignment::new();
        assert!(a.is_empty());
        a.insert(
            NodeId(3),
            BufferValues {
                capacitance: 1.0,
                intrinsic_delay: 2.0,
                resistance: 3.0,
            },
        );
        assert_eq!(a.len(), 1);
        assert!(a.get(NodeId(3)).is_some());
        assert!(a.get(NodeId(4)).is_none());
        assert_eq!(a.iter().count(), 1);
    }
}
