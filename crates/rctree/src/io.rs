//! A simple line-oriented text format for routing trees.
//!
//! The format is self-describing and diff-friendly:
//!
//! ```text
//! varbuf-tree v1
//! name r1
//! wire 0.000076 0.118
//! source 0 0.0 8000.0 0.1
//! internal 1 0 4900.2 4733.8 9100.4 1
//! sink 2 1 5100.0 4000.0 933.8 1 17.5 0.0
//! ```
//!
//! Node lines are `kind id [parent] x y [edge_len] [candidate] [extras…]`;
//! ids must be dense and in increasing order with the source first (the
//! order produced by [`write_tree`]).

use crate::geom::Point;
use crate::tree::{NodeId, NodeKind, RoutingTree};
use crate::wire::WireParams;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error while reading or writing the tree text format.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic problem, with the 1-based line number.
    Parse {
        /// Line where the problem was found.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o failure: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes `tree` in the v1 text format.
///
/// A `&mut` reference can be passed for `w` (e.g. `&mut file`).
///
/// # Errors
///
/// Propagates write failures as [`IoError::Io`].
pub fn write_tree<W: Write>(tree: &RoutingTree, mut w: W) -> Result<(), IoError> {
    writeln!(w, "varbuf-tree v1")?;
    if !tree.name().is_empty() {
        writeln!(w, "name {}", tree.name())?;
    }
    let wire = tree.wire();
    writeln!(w, "wire {} {}", wire.res_per_um, wire.cap_per_um)?;
    for (id, node) in tree.iter() {
        match node.kind {
            NodeKind::Source { driver_resistance } => {
                writeln!(
                    w,
                    "source {} {} {} {}",
                    id.0, node.location.x, node.location.y, driver_resistance
                )?;
            }
            NodeKind::Internal => {
                writeln!(
                    w,
                    "internal {} {} {} {} {} {}",
                    id.0,
                    node.parent.expect("non-root").0,
                    node.location.x,
                    node.location.y,
                    node.edge_length,
                    u8::from(node.is_candidate),
                )?;
            }
            NodeKind::Sink {
                capacitance,
                required_arrival,
            } => {
                writeln!(
                    w,
                    "sink {} {} {} {} {} {} {} {}",
                    id.0,
                    node.parent.expect("non-root").0,
                    node.location.x,
                    node.location.y,
                    node.edge_length,
                    u8::from(node.is_candidate),
                    capacitance,
                    required_arrival,
                )?;
            }
        }
    }
    Ok(())
}

/// Reads a tree written by [`write_tree`].
///
/// A `&mut` reference can be passed for `r` (e.g. `&mut reader`).
///
/// # Errors
///
/// Returns [`IoError::Parse`] with a line number for malformed input and
/// [`IoError::Io`] for read failures. The resulting tree is validated
/// before being returned.
pub fn read_tree<R: BufRead>(r: R) -> Result<RoutingTree, IoError> {
    let mut lines = r.lines().enumerate();

    let (n0, header) = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty input"))?
        .map_parse()?;
    if header.trim() != "varbuf-tree v1" {
        return Err(parse_err(n0 + 1, "missing `varbuf-tree v1` header"));
    }

    let mut name = String::new();
    let mut wire: Option<WireParams> = None;
    let mut tree: Option<RoutingTree> = None;

    for item in lines {
        let (idx, line) = item.map_parse()?;
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        let head = toks.next().expect("non-empty line");
        let rest: Vec<&str> = toks.collect();
        match head {
            "name" => name = rest.join(" "),
            "wire" => {
                let [r, c] = take::<2>(&rest, lineno)?;
                let (rv, cv) = (num(r, lineno)?, num(c, lineno)?);
                if !(rv.is_finite() && rv > 0.0 && cv.is_finite() && cv > 0.0) {
                    return Err(parse_err(lineno, "wire parameters must be positive"));
                }
                wire = Some(WireParams {
                    res_per_um: rv,
                    cap_per_um: cv,
                });
            }
            "source" => {
                if tree.is_some() {
                    return Err(parse_err(lineno, "duplicate source line"));
                }
                let [id, x, y, rd] = take::<4>(&rest, lineno)?;
                if num(id, lineno)? != 0.0 {
                    return Err(parse_err(lineno, "source must have id 0"));
                }
                let w = wire.ok_or_else(|| parse_err(lineno, "wire line must precede nodes"))?;
                let (sx, sy, srd) = (num(x, lineno)?, num(y, lineno)?, num(rd, lineno)?);
                if !sx.is_finite() || !sy.is_finite() {
                    return Err(parse_err(lineno, "source coordinates must be finite"));
                }
                if !srd.is_finite() || srd < 0.0 {
                    return Err(parse_err(
                        lineno,
                        "driver resistance must be finite and non-negative",
                    ));
                }
                let mut t = RoutingTree::new(Point::new(sx, sy), srd, w);
                t.set_name(name.clone());
                tree = Some(t);
            }
            "internal" | "sink" => {
                let t = tree
                    .as_mut()
                    .ok_or_else(|| parse_err(lineno, "node before source line"))?;
                let (id_s, parent_s, x, y, len, cand, extras) = match head {
                    "internal" => {
                        let [a, b, c, d, e, f] = take::<6>(&rest, lineno)?;
                        (a, b, c, d, e, f, &rest[6..])
                    }
                    _ => {
                        let [a, b, c, d, e, f, _, _] = take::<8>(&rest, lineno)?;
                        (a, b, c, d, e, f, &rest[6..])
                    }
                };
                let id = num(id_s, lineno)? as usize;
                if id != t.len() {
                    return Err(parse_err(
                        lineno,
                        format!(
                            "ids must be dense and increasing (expected {}, got {id})",
                            t.len()
                        ),
                    ));
                }
                let parent = NodeId(num(parent_s, lineno)? as u32);
                if parent.index() >= t.len() {
                    return Err(parse_err(lineno, "parent id refers to a later node"));
                }
                let (lx, ly) = (num(x, lineno)?, num(y, lineno)?);
                if !lx.is_finite() || !ly.is_finite() {
                    return Err(parse_err(lineno, "node coordinates must be finite"));
                }
                let loc = Point::new(lx, ly);
                let edge_len = num(len, lineno)?;
                if !edge_len.is_finite() || edge_len < 0.0 {
                    return Err(parse_err(
                        lineno,
                        "edge length must be finite and non-negative",
                    ));
                }
                let node_id = if head == "internal" {
                    t.add_internal(parent, loc)
                } else {
                    let cap = num(extras[0], lineno)?;
                    let rat = num(extras[1], lineno)?;
                    if !cap.is_finite() || cap < 0.0 {
                        return Err(parse_err(lineno, "sink capacitance must be non-negative"));
                    }
                    if !rat.is_finite() {
                        return Err(parse_err(lineno, "sink required arrival must be finite"));
                    }
                    t.add_sink(parent, loc, cap, rat)
                };
                t.set_edge_length(node_id, edge_len);
                t.set_candidate(node_id, cand != "0");
            }
            other => {
                return Err(parse_err(lineno, format!("unknown record `{other}`")));
            }
        }
    }

    let tree = tree.ok_or_else(|| parse_err(0, "no source node in input"))?;
    tree.validate()
        .map_err(|e| parse_err(0, format!("structurally invalid tree: {e}")))?;
    Ok(tree)
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

fn num(s: &str, line: usize) -> Result<f64, IoError> {
    s.parse::<f64>()
        .map_err(|_| parse_err(line, format!("expected a number, got `{s}`")))
}

fn take<'a, const N: usize>(rest: &[&'a str], line: usize) -> Result<[&'a str; N], IoError> {
    if rest.len() < N {
        return Err(parse_err(
            line,
            format!("expected at least {N} fields, got {}", rest.len()),
        ));
    }
    let mut out = [""; N];
    out.copy_from_slice(&rest[..N]);
    Ok(out)
}

/// Helper to convert the `(index, io::Result<String>)` pairs from
/// `lines().enumerate()` into our error type.
trait MapParse {
    fn map_parse(self) -> Result<(usize, String), IoError>;
}

impl MapParse for (usize, Result<String, std::io::Error>) {
    fn map_parse(self) -> Result<(usize, String), IoError> {
        let (i, r) = self;
        Ok((i, r?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_benchmark, BenchmarkSpec};

    #[test]
    fn roundtrip_small_tree() {
        let mut t = RoutingTree::new(Point::new(0.0, 10.0), 0.1, WireParams::default_65nm());
        t.set_name("toy");
        let mid = t.add_internal(t.root(), Point::new(100.0, 10.0));
        t.add_sink(mid, Point::new(200.0, 10.0), 17.5, -3.0);
        t.add_sink(mid, Point::new(100.0, 90.0), 8.0, 0.0);
        t.set_candidate(mid, false);

        let mut buf = Vec::new();
        write_tree(&t, &mut buf).expect("write");
        let back = read_tree(buf.as_slice()).expect("read");
        assert_eq!(t, back);
    }

    #[test]
    fn roundtrip_generated_benchmark() {
        let t = generate_benchmark(&BenchmarkSpec::random("round", 64, 5));
        let mut buf = Vec::new();
        write_tree(&t, &mut buf).expect("write");
        let back = read_tree(buf.as_slice()).expect("read");
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_missing_header() {
        let e = read_tree("nope\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("header"));
    }

    #[test]
    fn rejects_node_before_source() {
        let text = "varbuf-tree v1\nwire 1 1\ninternal 1 0 0 0 5 1\n";
        let e = read_tree(text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("before source"));
    }

    #[test]
    fn rejects_sparse_ids() {
        let text = "varbuf-tree v1\nwire 1 1\nsource 0 0 0 0.1\nsink 5 0 1 1 2 1 10 0\n";
        let e = read_tree(text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("dense"));
    }

    #[test]
    fn rejects_bad_number() {
        let text = "varbuf-tree v1\nwire 1 abc\nsource 0 0 0 0.1\n";
        let e = read_tree(text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("expected a number"));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text =
            "varbuf-tree v1\n# a comment\n\nwire 1 1\nsource 0 0 0 0.1\nsink 1 0 9 0 9 1 10 0\n";
        let t = read_tree(text.as_bytes()).expect("read");
        assert_eq!(t.sink_count(), 1);
    }
}
