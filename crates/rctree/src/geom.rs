//! Die-plane geometry in micrometers.

use std::fmt;
use std::ops::{Add, Sub};

/// A point on the die, in micrometers.
///
/// ```
/// use varbuf_rctree::geom::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.manhattan(b), 7.0);
/// assert_eq!(a.euclid(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate, µm.
    pub x: f64,
    /// Vertical coordinate, µm.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Rectilinear (Manhattan) distance — the routing distance on a
    /// Manhattan grid, which is also the wire length of an L-shaped route.
    #[inline]
    #[must_use]
    pub fn manhattan(self, other: Self) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance, used by the spatial-correlation taper.
    #[inline]
    #[must_use]
    pub fn euclid(self, other: Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Midpoint of the segment to `other`.
    #[inline]
    #[must_use]
    pub fn midpoint(self, other: Self) -> Self {
        Self::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// Axis-aligned bounding box of a point set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl BoundingBox {
    /// Bounding box of a non-empty point iterator; `None` when empty.
    pub fn of(points: impl IntoIterator<Item = Point>) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox {
            min: first,
            max: first,
        };
        for p in it {
            bb.min.x = bb.min.x.min(p.x);
            bb.min.y = bb.min.y.min(p.y);
            bb.max.x = bb.max.x.max(p.x);
            bb.max.y = bb.max.y.max(p.y);
        }
        Some(bb)
    }

    /// Width in µm.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in µm.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Whether `p` lies inside (inclusive).
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.manhattan(b), 7.0);
        assert_eq!(b.manhattan(a), 7.0);
        assert_eq!(a.euclid(b), 5.0);
        assert_eq!(a.manhattan(a), 0.0);
    }

    #[test]
    fn midpoint_and_ops() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), Point::new(1.0, 2.0));
        assert_eq!(a + b, b);
        assert_eq!(b - b, a);
    }

    #[test]
    fn bounding_box() {
        let pts = vec![
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let bb = BoundingBox::of(pts).expect("non-empty");
        assert_eq!(bb.min, Point::new(-2.0, -1.0));
        assert_eq!(bb.max, Point::new(4.0, 5.0));
        assert_eq!(bb.width(), 6.0);
        assert_eq!(bb.height(), 6.0);
        assert!(bb.contains(Point::new(0.0, 0.0)));
        assert!(!bb.contains(Point::new(5.0, 0.0)));
        assert!(BoundingBox::of(std::iter::empty()).is_none());
    }
}
