//! Seeded benchmark generators.
//!
//! The paper evaluates on two public benchmark suites (`p1`/`p2` and
//! `r1`–`r5`, Table 1) plus an 8-level H-tree clock network with more than
//! 64 000 sinks (footnote 4). The historic benchmark files are not
//! redistributable, so — per the substitution policy in `DESIGN.md` — this
//! module generates *seeded synthetic equivalents* with exactly the same
//! sink counts and candidate-position counts (`2·sinks − 1`): uniformly
//! placed sinks connected by a recursive geometric-bipartition topology
//! that mimics a Steiner routing tree. The DP's complexity and pruning
//! behavior depend on these size/topology statistics, not on the exact
//! historic nets.

use crate::geom::Point;
use crate::tree::{NodeId, RoutingTree};
use crate::wire::WireParams;
use varbuf_stats::rng::SplitMix64;

/// Parameters for the random-benchmark generator.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name recorded on the tree.
    pub name: String,
    /// Number of sinks.
    pub sinks: usize,
    /// Die edge length, µm (sinks are placed uniformly in the square).
    pub die_um: f64,
    /// RNG seed (same seed ⇒ same tree).
    pub seed: u64,
    /// Sink capacitance range, fF.
    pub sink_cap_range: (f64, f64),
    /// Sink required arrival times are drawn uniformly from
    /// `[-spread, 0]` ps (0 ⇒ every sink at RAT 0, the suite default).
    /// Heterogeneous sink RATs make criticality structure richer.
    pub sink_rat_spread: f64,
    /// Driver output resistance, kΩ.
    pub driver_resistance: f64,
    /// Wire parameters.
    pub wire: WireParams,
}

impl BenchmarkSpec {
    /// The named suite from Table 1 of the paper.
    ///
    /// | name | sinks | candidates |
    /// |------|-------|------------|
    /// | p1   | 269   | 537        |
    /// | p2   | 603   | 1205       |
    /// | r1   | 267   | 533        |
    /// | r2   | 598   | 1195       |
    /// | r3   | 862   | 1723       |
    /// | r4   | 1903  | 3805       |
    /// | r5   | 3101  | 6201       |
    ///
    /// Returns `None` for an unknown name.
    #[must_use]
    pub fn named(name: &str) -> Option<Self> {
        let (sinks, seed) = match name {
            "p1" => (269, 0x7001),
            "p2" => (603, 0x7002),
            "r1" => (267, 0x9001),
            "r2" => (598, 0x9002),
            "r3" => (862, 0x9003),
            "r4" => (1903, 0x9004),
            "r5" => (3101, 0x9005),
            _ => return None,
        };
        let mut spec = Self::random(name, sinks, seed);
        if name.starts_with('p') {
            // The paper's p-family nets are much slower than the r-family
            // at similar sink counts (Table 3: p1 at −2612 ps vs r1 at
            // −1070 ps): sparse nets spanning a full-size die.
            spec.die_um = 25_000.0;
        }
        Some(spec)
    }

    /// All seven named benchmarks, in Table 1 order.
    #[must_use]
    pub fn suite() -> Vec<Self> {
        ["p1", "p2", "r1", "r2", "r3", "r4", "r5"]
            .iter()
            .map(|n| Self::named(n).expect("known name"))
            .collect()
    }

    /// A spec with the default electrical values and a die scaled as
    /// `1000·√sinks` µm, capped at 25 mm (keeps wire density roughly
    /// constant across sizes while staying within reticle-sized dies).
    #[must_use]
    pub fn random(name: &str, sinks: usize, seed: u64) -> Self {
        Self {
            name: name.to_owned(),
            sinks,
            die_um: (1000.0 * (sinks as f64).sqrt()).min(25_000.0),
            seed,
            sink_cap_range: (5.0, 30.0),
            sink_rat_spread: 0.0,
            driver_resistance: 0.1,
            wire: WireParams::default_65nm(),
        }
    }
}

/// Generates the synthetic benchmark tree for `spec`.
///
/// The topology is a recursive geometric bipartition of the sink set:
/// split the sinks along the wider axis of their bounding box at the
/// median, place a Steiner node at the centroid, and recurse. A binary
/// tree over `n` sinks has `n − 1` Steiner nodes and `2n − 1` edges, so
/// the tree exposes exactly `2n − 1` candidate buffer positions.
///
/// # Panics
///
/// Panics if `spec.sinks == 0`.
#[must_use]
pub fn generate_benchmark(spec: &BenchmarkSpec) -> RoutingTree {
    assert!(spec.sinks > 0, "benchmark needs at least one sink");
    let mut rng = SplitMix64::new(spec.seed);

    // Sinks uniform in the die; driver at the west edge midpoint.
    let mut sinks: Vec<(Point, f64, f64)> = (0..spec.sinks)
        .map(|_| {
            let p = Point::new(rng.uniform(0.0, spec.die_um), rng.uniform(0.0, spec.die_um));
            let cap = rng.uniform(spec.sink_cap_range.0, spec.sink_cap_range.1);
            let rat = if spec.sink_rat_spread > 0.0 {
                -rng.uniform(0.0, spec.sink_rat_spread)
            } else {
                0.0
            };
            (p, cap, rat)
        })
        .collect();

    let source = Point::new(0.0, spec.die_um / 2.0);
    let mut tree = RoutingTree::new(source, spec.driver_resistance, spec.wire);
    tree.set_name(spec.name.clone());
    let root = tree.root();
    build_bipartition(&mut tree, root, &mut sinks);
    tree
}

/// Recursively attaches the sink set `pts` below `parent`.
fn build_bipartition(tree: &mut RoutingTree, parent: NodeId, pts: &mut [(Point, f64, f64)]) {
    match pts {
        [] => unreachable!("recursion never reaches an empty set"),
        [(p, cap, rat)] => {
            tree.add_sink(parent, *p, *cap, *rat);
        }
        _ => {
            // Steiner node at the centroid of the set.
            let n = pts.len() as f64;
            let cx = pts.iter().map(|(p, ..)| p.x).sum::<f64>() / n;
            let cy = pts.iter().map(|(p, ..)| p.y).sum::<f64>() / n;
            let steiner = tree.add_internal(parent, Point::new(cx, cy));

            // Split along the wider axis at the median.
            let (min_x, max_x) = min_max(pts.iter().map(|(p, ..)| p.x));
            let (min_y, max_y) = min_max(pts.iter().map(|(p, ..)| p.y));
            let mid = pts.len() / 2;
            if max_x - min_x >= max_y - min_y {
                pts.sort_by(|a, b| a.0.x.total_cmp(&b.0.x));
            } else {
                pts.sort_by(|a, b| a.0.y.total_cmp(&b.0.y));
            }
            let (left, right) = pts.split_at_mut(mid);
            build_bipartition(tree, steiner, left);
            build_bipartition(tree, steiner, right);
        }
    }
}

fn min_max(it: impl Iterator<Item = f64>) -> (f64, f64) {
    it.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

/// Generates a benchmark with a **rectilinear minimum spanning tree**
/// topology instead of the default geometric bipartition: sinks are
/// connected by Prim's algorithm under Manhattan distance and every MST
/// edge is routed as an L-shape with a Steiner node at the bend.
///
/// Compared to the bipartition topology (balanced, binary), RMST trees
/// are chainy with high-degree hubs — a usefully different stress case
/// for the DP (same electrical model, same candidate conventions: one
/// legal position per edge).
///
/// # Panics
///
/// Panics if `spec.sinks == 0`.
#[must_use]
pub fn generate_benchmark_rmst(spec: &BenchmarkSpec) -> RoutingTree {
    assert!(spec.sinks > 0, "benchmark needs at least one sink");
    let mut rng = SplitMix64::new(spec.seed);

    let sinks: Vec<(Point, f64, f64)> = (0..spec.sinks)
        .map(|_| {
            let p = Point::new(rng.uniform(0.0, spec.die_um), rng.uniform(0.0, spec.die_um));
            let cap = rng.uniform(spec.sink_cap_range.0, spec.sink_cap_range.1);
            let rat = if spec.sink_rat_spread > 0.0 {
                -rng.uniform(0.0, spec.sink_rat_spread)
            } else {
                0.0
            };
            (p, cap, rat)
        })
        .collect();

    let source = Point::new(0.0, spec.die_um / 2.0);
    let mut tree = RoutingTree::new(source, spec.driver_resistance, spec.wire);
    tree.set_name(format!("{}-rmst", spec.name));

    // Prim's algorithm over {source} ∪ sinks with Manhattan metric.
    // Each connected sink hangs by a zero-length edge from a Steiner node
    // at its own location; later edges attach to that Steiner node (sinks
    // themselves can never host children).
    let n = sinks.len();
    let mut in_tree = vec![false; n];
    let mut best_dist: Vec<f64> = sinks.iter().map(|&(p, ..)| p.manhattan(source)).collect();
    let mut best_parent: Vec<NodeId> = vec![tree.root(); n];
    let mut hub_of: Vec<Option<NodeId>> = vec![None; n];

    for _ in 0..n {
        // Pick the closest not-yet-connected sink.
        let (i, _) = best_dist
            .iter()
            .enumerate()
            .filter(|&(i, _)| !in_tree[i])
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("some sink remains");
        in_tree[i] = true;

        let parent = best_parent[i];
        let (p, cap, rat) = sinks[i];
        let parent_loc = tree.node(parent).location;

        // Route as an L: horizontal first, bend at (p.x, parent.y).
        let bend = Point::new(p.x, parent_loc.y);
        let attach = if bend.manhattan(parent_loc) > 0.0 && bend.manhattan(p) > 0.0 {
            tree.add_internal(parent, bend)
        } else {
            parent
        };
        let hub = tree.add_internal(attach, p);
        let sink = tree.add_sink(hub, p, cap, rat);
        // The zero-length sink edge is not an interesting buffer spot.
        tree.set_candidate(sink, false);
        hub_of[i] = Some(hub);

        // Relax distances through the freshly added hub.
        for j in 0..n {
            if in_tree[j] {
                continue;
            }
            let d = sinks[j].0.manhattan(p);
            if d < best_dist[j] {
                best_dist[j] = d;
                best_parent[j] = hub_of[i].expect("just set");
            }
        }
    }
    tree
}

/// Parameters for the H-tree clock-network generator (capacity test).
#[derive(Debug, Clone, PartialEq)]
pub struct HTreeSpec {
    /// Number of binary branching levels; the tree has `2^levels` sinks.
    /// The paper's capacity experiment uses an "eight-level H-tree" with
    /// more than 64 000 sinks, i.e. `levels = 16` in binary-branching
    /// terms (each H has two binary levels).
    pub levels: u32,
    /// Die edge length, µm.
    pub die_um: f64,
    /// Sink (clock pin) capacitance, fF.
    pub sink_cap: f64,
    /// Driver output resistance, kΩ.
    pub driver_resistance: f64,
    /// Wire parameters.
    pub wire: WireParams,
}

impl HTreeSpec {
    /// A spec with default electricals; `levels = 16` gives 65 536 sinks.
    #[must_use]
    pub fn with_levels(levels: u32) -> Self {
        Self {
            levels,
            die_um: 16_000.0,
            sink_cap: 12.0,
            driver_resistance: 0.05,
            wire: WireParams::default_65nm(),
        }
    }
}

/// Generates a symmetric binary H-tree with `2^levels` sinks.
///
/// # Panics
///
/// Panics if `levels == 0` or `levels > 24` (guard against accidental
/// multi-hundred-million-node requests).
#[must_use]
pub fn generate_htree(spec: &HTreeSpec) -> RoutingTree {
    assert!(
        spec.levels >= 1 && spec.levels <= 24,
        "H-tree levels must be in 1..=24, got {}",
        spec.levels
    );
    let center = Point::new(spec.die_um / 2.0, spec.die_um / 2.0);
    let mut tree = RoutingTree::new(center, spec.driver_resistance, spec.wire);
    tree.set_name(format!("htree{}", spec.levels));

    // Recursive construction: at each level we branch in two, alternating
    // horizontal/vertical, with arm length halving every two levels.
    let mut stack = vec![(
        tree.root(),
        center,
        spec.die_um / 4.0,
        0u32, // level index; even = horizontal split
    )];
    while let Some((parent, at, arm, level)) = stack.pop() {
        if level == spec.levels {
            continue;
        }
        let offsets = if level % 2 == 0 {
            [Point::new(-arm, 0.0), Point::new(arm, 0.0)]
        } else {
            [Point::new(0.0, -arm), Point::new(0.0, arm)]
        };
        for off in offsets {
            let child_at = at + off;
            if level + 1 == spec.levels {
                tree.add_sink(parent, child_at, spec.sink_cap, 0.0);
            } else {
                let child = tree.add_internal(parent, child_at);
                let next_arm = if level % 2 == 0 { arm } else { arm / 2.0 };
                stack.push((child, child_at, next_arm, level + 1));
            }
        }
    }
    // Re-validate the geometry before handing the tree out. The arm
    // halves every two levels, so deep subdivision drives edge lengths
    // toward the die's floating-point resolution; if a future spec
    // change (tiny die, huge level count) ever collapses an arm to
    // zero, `at + off == at` silently produces coincident nodes and
    // zero-length wires — a degenerate net that downstream Elmore and
    // DP code would accept without complaint. Fail loudly here instead.
    for id in tree.postorder() {
        if tree.node(id).parent.is_none() {
            continue;
        }
        let len = tree.node(id).edge_length;
        assert!(
            len.is_finite() && len > 0.0,
            "H-tree level {} produced a degenerate edge (length {len}) at node {}: \
             die {} um is too small for this subdivision depth",
            spec.levels,
            id.index(),
            spec.die_um,
        );
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_suite_matches_table1() {
        let expected = [
            ("p1", 269),
            ("p2", 603),
            ("r1", 267),
            ("r2", 598),
            ("r3", 862),
            ("r4", 1903),
            ("r5", 3101),
        ];
        for (name, sinks) in expected {
            let spec = BenchmarkSpec::named(name).expect("known");
            let tree = generate_benchmark(&spec);
            assert_eq!(tree.sink_count(), sinks, "{name}");
            assert_eq!(tree.candidate_count(), 2 * sinks - 1, "{name}");
            tree.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(BenchmarkSpec::named("bogus").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = BenchmarkSpec::named("r1").expect("known");
        let a = generate_benchmark(&spec);
        let b = generate_benchmark(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_benchmark(&BenchmarkSpec::random("x", 50, 1));
        let b = generate_benchmark(&BenchmarkSpec::random("x", 50, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn single_sink_benchmark() {
        let tree = generate_benchmark(&BenchmarkSpec::random("one", 1, 7));
        assert_eq!(tree.sink_count(), 1);
        assert_eq!(tree.candidate_count(), 1);
        tree.validate().expect("valid");
    }

    #[test]
    fn sinks_inside_die() {
        let spec = BenchmarkSpec::random("t", 200, 3);
        let tree = generate_benchmark(&spec);
        for id in tree.sinks() {
            let p = tree.node(id).location;
            assert!(p.x >= 0.0 && p.x <= spec.die_um);
            assert!(p.y >= 0.0 && p.y <= spec.die_um);
        }
    }

    #[test]
    fn sink_rat_spread_produces_heterogeneous_rats() {
        use crate::tree::NodeKind;
        let mut spec = BenchmarkSpec::random("spread", 50, 8);
        spec.sink_rat_spread = 200.0;
        let tree = generate_benchmark(&spec);
        let rats: Vec<f64> = tree
            .sinks()
            .map(|id| match tree.node(id).kind {
                NodeKind::Sink {
                    required_arrival, ..
                } => required_arrival,
                _ => unreachable!(),
            })
            .collect();
        assert!(rats.iter().all(|&r| (-200.0..=0.0).contains(&r)));
        let distinct = rats
            .iter()
            .map(|r| (r * 1e6) as i64)
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 40, "RATs should spread out");
        tree.validate().expect("valid");
    }

    #[test]
    fn rmst_topology_is_valid_and_shorter() {
        for seed in [1u64, 7, 23] {
            let spec = BenchmarkSpec::random("rmst", 80, seed);
            let rmst = generate_benchmark_rmst(&spec);
            rmst.validate().expect("valid");
            assert_eq!(rmst.sink_count(), 80);
            assert!(rmst.name().ends_with("-rmst"));

            // The MST topology uses (weakly) less wire than the
            // bipartition's centroid routing on the same sink set.
            let bipart = generate_benchmark(&spec);
            assert!(
                rmst.total_wire_length() <= bipart.total_wire_length(),
                "seed {seed}: rmst {} vs bipartition {}",
                rmst.total_wire_length(),
                bipart.total_wire_length()
            );
        }
    }

    #[test]
    fn rmst_is_deterministic_and_optimizable() {
        let spec = BenchmarkSpec::random("rmstd", 30, 5);
        let a = generate_benchmark_rmst(&spec);
        let b = generate_benchmark_rmst(&spec);
        assert_eq!(a, b);
        // Zero-length sink edges must not confuse Elmore.
        let rep = crate::elmore::ElmoreEvaluator::new(&a).evaluate_unbuffered();
        assert!(rep.root_rat.is_finite() && rep.root_rat < 0.0);
    }

    #[test]
    fn htree_sink_count_is_power_of_two() {
        for levels in [1u32, 2, 3, 6, 10] {
            let tree = generate_htree(&HTreeSpec::with_levels(levels));
            assert_eq!(tree.sink_count(), 1 << levels, "levels={levels}");
            tree.validate().expect("valid");
        }
    }

    #[test]
    fn htree_is_symmetric_in_wirelength() {
        let tree = generate_htree(&HTreeSpec::with_levels(6));
        // All sinks are equidistant from the root in an ideal H-tree —
        // check that path lengths agree.
        let mut lengths = Vec::new();
        for sink in tree.sinks() {
            let mut len = 0.0;
            let mut cur = sink;
            while let Some(p) = tree.node(cur).parent {
                len += tree.node(cur).edge_length;
                cur = p;
            }
            lengths.push(len);
        }
        let first = lengths[0];
        assert!(lengths.iter().all(|&l| (l - first).abs() < 1e-6));
    }

    #[test]
    fn htree_deep_levels_round_trip() {
        // Deep subdivision (above the historical bench range) must keep
        // every wire non-degenerate and survive a serialize/parse
        // round-trip intact.
        for levels in [8u32, 10, 12] {
            let tree = generate_htree(&HTreeSpec::with_levels(levels));
            tree.validate().expect("valid");
            assert_eq!(tree.sink_count(), 1 << levels, "levels={levels}");
            let min_edge = tree
                .postorder()
                .into_iter()
                .filter(|&id| tree.node(id).parent.is_some())
                .map(|id| tree.node(id).edge_length)
                .fold(f64::INFINITY, f64::min);
            assert!(
                min_edge.is_finite() && min_edge > 0.0,
                "levels={levels}: degenerate min edge {min_edge}"
            );
            let mut buf = Vec::new();
            crate::io::write_tree(&tree, &mut buf).expect("write");
            let back = crate::io::read_tree(buf.as_slice()).expect("read");
            assert_eq!(back.len(), tree.len(), "levels={levels}: node count");
            assert_eq!(back.sink_count(), tree.sink_count());
            for id in tree.postorder() {
                assert_eq!(
                    back.node(id).edge_length.to_bits(),
                    tree.node(id).edge_length.to_bits(),
                    "levels={levels}: edge length bits at node {}",
                    id.index()
                );
            }
            // Generation is deterministic: a second call is identical.
            let again = generate_htree(&HTreeSpec::with_levels(levels));
            assert_eq!(again.len(), tree.len());
        }
    }

    #[test]
    fn capacity_htree_64k() {
        // The paper's footnote-4 configuration: > 64 000 sinks.
        let tree = generate_htree(&HTreeSpec::with_levels(16));
        assert_eq!(tree.sink_count(), 65_536);
        tree.validate().expect("valid");
    }

    #[test]
    #[should_panic(expected = "1..=24")]
    fn htree_levels_bounded() {
        let _ = generate_htree(&HTreeSpec::with_levels(0));
    }
}
