//! Robustness fuzzing of the tree text parser: arbitrary input must
//! never panic — it either parses to a valid tree or returns a typed
//! error.

use proptest::prelude::*;
use varbuf_rctree::io::read_tree;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        // Lossy conversion mirrors what a user feeding a mangled file
        // would produce at the BufRead layer.
        let text = String::from_utf8_lossy(&data).into_owned();
        let _ = read_tree(text.as_bytes());
    }

    #[test]
    fn arbitrary_token_soup_never_panics(
        lines in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    Just("source".to_owned()),
                    Just("sink".to_owned()),
                    Just("internal".to_owned()),
                    Just("wire".to_owned()),
                    Just("name".to_owned()),
                    Just("varbuf-tree".to_owned()),
                    Just("v1".to_owned()),
                    Just("-1".to_owned()),
                    Just("0".to_owned()),
                    Just("1".to_owned()),
                    Just("1e308".to_owned()),
                    Just("nan".to_owned()),
                    Just("inf".to_owned()),
                    Just("0.5".to_owned()),
                ],
                0..10,
            ),
            0..30,
        ),
    ) {
        let mut text = String::from("varbuf-tree v1\n");
        for line in &lines {
            text.push_str(&line.join(" "));
            text.push('\n');
        }
        if let Ok(tree) = read_tree(text.as_bytes()) {
            prop_assert!(tree.validate().is_ok(), "parser returned invalid tree");
        }
    }

    #[test]
    fn mutated_valid_file_never_panics(
        sinks in 1usize..20,
        seed in 0u64..20,
        flip_at in 0usize..4000,
        flip_to in any::<u8>(),
    ) {
        use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
        use varbuf_rctree::io::write_tree;
        let tree = generate_benchmark(&BenchmarkSpec::random("fuzz", sinks, seed));
        let mut buf = Vec::new();
        write_tree(&tree, &mut buf).expect("write");
        if !buf.is_empty() {
            let idx = flip_at % buf.len();
            buf[idx] = flip_to;
        }
        let text = String::from_utf8_lossy(&buf).into_owned();
        if let Ok(t) = read_tree(text.as_bytes()) {
            prop_assert!(t.validate().is_ok());
        }
    }
}
