//! Robustness fuzzing of the tree text parser: arbitrary input must
//! never panic — it either parses to a valid tree or returns a typed
//! error. Inputs are synthesized deterministically from [`SplitMix64`]
//! so the corpus is reproducible offline.

use varbuf_rctree::io::read_tree;
use varbuf_stats::rng::SplitMix64;

#[test]
fn arbitrary_bytes_never_panic() {
    let mut rng = SplitMix64::new(0xF00D);
    for _ in 0..256 {
        let len = rng.below(2048);
        let data: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        // Lossy conversion mirrors what a user feeding a mangled file
        // would produce at the BufRead layer.
        let text = String::from_utf8_lossy(&data).into_owned();
        let _ = read_tree(text.as_bytes());
    }
}

#[test]
fn arbitrary_token_soup_never_panics() {
    const TOKENS: &[&str] = &[
        "source",
        "sink",
        "internal",
        "wire",
        "name",
        "varbuf-tree",
        "v1",
        "-1",
        "0",
        "1",
        "1e308",
        "nan",
        "inf",
        "0.5",
    ];
    let mut rng = SplitMix64::new(0xBEEF);
    for _ in 0..256 {
        let mut text = String::from("varbuf-tree v1\n");
        for _ in 0..rng.below(30) {
            let words: Vec<&str> = (0..rng.below(10))
                .map(|_| TOKENS[rng.below(TOKENS.len())])
                .collect();
            text.push_str(&words.join(" "));
            text.push('\n');
        }
        if let Ok(tree) = read_tree(text.as_bytes()) {
            assert!(tree.validate().is_ok(), "parser returned invalid tree");
        }
    }
}

#[test]
fn mutated_valid_file_never_panics() {
    use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
    use varbuf_rctree::io::write_tree;
    let mut rng = SplitMix64::new(0xFA2E);
    for _ in 0..256 {
        let sinks = 1 + rng.below(19);
        let seed = rng.next_u64() % 20;
        let flip_at = rng.below(4000);
        let flip_to = (rng.next_u64() & 0xFF) as u8;
        let tree = generate_benchmark(&BenchmarkSpec::random("fuzz", sinks, seed));
        let mut buf = Vec::new();
        write_tree(&tree, &mut buf).expect("write");
        if !buf.is_empty() {
            let idx = flip_at % buf.len();
            buf[idx] = flip_to;
        }
        let text = String::from_utf8_lossy(&buf).into_owned();
        if let Ok(t) = read_tree(text.as_bytes()) {
            assert!(t.validate().is_ok());
        }
    }
}
