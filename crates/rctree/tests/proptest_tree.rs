//! Property-style tests on routing-tree structure, generation, Elmore
//! evaluation, and IO round-tripping, driven by the in-tree deterministic
//! [`SplitMix64`] generator.

use varbuf_rctree::elmore::{BufferAssignment, BufferValues, ElmoreEvaluator};
use varbuf_rctree::generate::{generate_benchmark, generate_htree, BenchmarkSpec, HTreeSpec};
use varbuf_rctree::io::{read_tree, write_tree};
use varbuf_rctree::tree::NodeKind;
use varbuf_stats::rng::SplitMix64;

#[test]
fn generated_tree_invariants() {
    let mut rng = SplitMix64::new(0xA11CE);
    for _ in 0..48 {
        let sinks = 1 + rng.below(159);
        let seed = rng.next_u64() % 1000;
        let tree = generate_benchmark(&BenchmarkSpec::random("prop", sinks, seed));
        assert!(tree.validate().is_ok());
        assert_eq!(tree.sink_count(), sinks);
        assert_eq!(tree.candidate_count(), 2 * sinks - 1);
        // Binary topology over n sinks: n-1 internal nodes + source.
        assert_eq!(tree.len(), 2 * sinks);
        assert!(tree.total_wire_length() >= 0.0);
    }
}

#[test]
fn postorder_is_a_valid_schedule() {
    let mut rng = SplitMix64::new(1);
    for _ in 0..48 {
        let sinks = 1 + rng.below(99);
        let seed = rng.next_u64() % 100;
        let tree = generate_benchmark(&BenchmarkSpec::random("prop", sinks, seed));
        let order = tree.postorder();
        assert_eq!(order.len(), tree.len());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for (id, node) in tree.iter() {
            for &c in &node.children {
                assert!(pos[&c] < pos[&id], "child after parent");
            }
        }
    }
}

#[test]
fn io_roundtrip() {
    let mut rng = SplitMix64::new(2);
    for _ in 0..48 {
        let sinks = 1 + rng.below(79);
        let seed = rng.next_u64() % 100;
        let tree = generate_benchmark(&BenchmarkSpec::random("prop", sinks, seed));
        let mut buf = Vec::new();
        write_tree(&tree, &mut buf).expect("write");
        let back = read_tree(buf.as_slice()).expect("read");
        assert_eq!(tree, back);
    }
}

#[test]
fn unbuffered_rat_bounded_by_critical_path() {
    let mut rng = SplitMix64::new(3);
    for _ in 0..48 {
        let sinks = 2 + rng.below(78);
        let seed = rng.next_u64() % 100;
        let tree = generate_benchmark(&BenchmarkSpec::random("prop", sinks, seed));
        let eval = ElmoreEvaluator::new(&tree);
        let rep = eval.evaluate_unbuffered();
        // All sink RATs are 0 in generated benchmarks, so root RAT is
        // minus the max delay, which must be positive.
        let max_delay = rep
            .sink_delays
            .iter()
            .map(|&(_, d)| d)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_delay > 0.0);
        assert!((rep.root_rat + max_delay).abs() < 1e-6 * max_delay.abs());
        // Delays are all positive and finite.
        for &(_, d) in &rep.sink_delays {
            assert!(d.is_finite() && d > 0.0);
        }
    }
}

#[test]
fn buffering_never_increases_root_load() {
    let mut rng = SplitMix64::new(4);
    for _ in 0..48 {
        let sinks = 2 + rng.below(58);
        let seed = rng.next_u64() % 50;
        let pick = rng.below(117);
        let tree = generate_benchmark(&BenchmarkSpec::random("prop", sinks, seed));
        let eval = ElmoreEvaluator::new(&tree);
        let unbuf = eval.evaluate_unbuffered();

        // Place one small buffer at some candidate.
        let candidates: Vec<_> = tree
            .iter()
            .filter(|(_, n)| n.is_candidate)
            .map(|(id, _)| id)
            .collect();
        let at = candidates[pick % candidates.len()];
        let mut buffers = BufferAssignment::new();
        buffers.insert(
            at,
            BufferValues {
                capacitance: 5.0,
                intrinsic_delay: 30.0,
                resistance: 0.2,
            },
        );
        let buffered = eval.evaluate(&buffers);
        // A 5 fF buffer cap can only reduce (or preserve) the load the
        // driver sees, because it replaces a subtree of sinks >= 5 fF...
        // unless the subtree is a single tiny sink; allow equality slack.
        assert!(buffered.root_load <= unbuf.root_load + 5.0);
        assert!(buffered.root_rat.is_finite());
    }
}

#[test]
fn htree_structure() {
    for levels in 1u32..10 {
        let tree = generate_htree(&HTreeSpec::with_levels(levels));
        assert!(tree.validate().is_ok());
        assert_eq!(tree.sink_count(), 1usize << levels);
        // Sinks all carry the same capacitance.
        for id in tree.sinks() {
            match tree.node(id).kind {
                NodeKind::Sink { capacitance, .. } => assert_eq!(capacitance, 12.0),
                _ => panic!("non-sink from sinks()"),
            }
        }
    }
}
