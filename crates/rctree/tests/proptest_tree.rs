//! Property-based tests on routing-tree structure, generation, Elmore
//! evaluation, and IO round-tripping.

use proptest::prelude::*;
use varbuf_rctree::elmore::{BufferAssignment, BufferValues, ElmoreEvaluator};
use varbuf_rctree::generate::{generate_benchmark, generate_htree, BenchmarkSpec, HTreeSpec};
use varbuf_rctree::io::{read_tree, write_tree};
use varbuf_rctree::tree::NodeKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_tree_invariants(sinks in 1usize..160, seed in 0u64..1000) {
        let tree = generate_benchmark(&BenchmarkSpec::random("prop", sinks, seed));
        prop_assert!(tree.validate().is_ok());
        prop_assert_eq!(tree.sink_count(), sinks);
        prop_assert_eq!(tree.candidate_count(), 2 * sinks - 1);
        // Binary topology over n sinks: n-1 internal nodes + source.
        prop_assert_eq!(tree.len(), 2 * sinks);
        prop_assert!(tree.total_wire_length() >= 0.0);
    }

    #[test]
    fn postorder_is_a_valid_schedule(sinks in 1usize..100, seed in 0u64..100) {
        let tree = generate_benchmark(&BenchmarkSpec::random("prop", sinks, seed));
        let order = tree.postorder();
        prop_assert_eq!(order.len(), tree.len());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for (id, node) in tree.iter() {
            for &c in &node.children {
                prop_assert!(pos[&c] < pos[&id], "child after parent");
            }
        }
    }

    #[test]
    fn io_roundtrip(sinks in 1usize..80, seed in 0u64..100) {
        let tree = generate_benchmark(&BenchmarkSpec::random("prop", sinks, seed));
        let mut buf = Vec::new();
        write_tree(&tree, &mut buf).expect("write");
        let back = read_tree(buf.as_slice()).expect("read");
        prop_assert_eq!(tree, back);
    }

    #[test]
    fn unbuffered_rat_bounded_by_critical_path(sinks in 2usize..80, seed in 0u64..100) {
        let tree = generate_benchmark(&BenchmarkSpec::random("prop", sinks, seed));
        let eval = ElmoreEvaluator::new(&tree);
        let rep = eval.evaluate_unbuffered();
        // All sink RATs are 0 in generated benchmarks, so root RAT is
        // minus the max delay, which must be positive.
        let max_delay = rep
            .sink_delays
            .iter()
            .map(|&(_, d)| d)
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(max_delay > 0.0);
        prop_assert!((rep.root_rat + max_delay).abs() < 1e-6 * max_delay.abs());
        // Delays are all positive and finite.
        for &(_, d) in &rep.sink_delays {
            prop_assert!(d.is_finite() && d > 0.0);
        }
    }

    #[test]
    fn buffering_never_increases_root_load(sinks in 2usize..60, seed in 0u64..50, pick in 0usize..117) {
        let tree = generate_benchmark(&BenchmarkSpec::random("prop", sinks, seed));
        let eval = ElmoreEvaluator::new(&tree);
        let unbuf = eval.evaluate_unbuffered();

        // Place one small buffer at some candidate.
        let candidates: Vec<_> = tree
            .iter()
            .filter(|(_, n)| n.is_candidate)
            .map(|(id, _)| id)
            .collect();
        let at = candidates[pick % candidates.len()];
        let mut buffers = BufferAssignment::new();
        buffers.insert(
            at,
            BufferValues {
                capacitance: 5.0,
                intrinsic_delay: 30.0,
                resistance: 0.2,
            },
        );
        let buffered = eval.evaluate(&buffers);
        // A 5 fF buffer cap can only reduce (or preserve) the load the
        // driver sees, because it replaces a subtree of sinks >= 5 fF...
        // unless the subtree is a single tiny sink; allow equality slack.
        prop_assert!(buffered.root_load <= unbuf.root_load + 5.0);
        prop_assert!(buffered.root_rat.is_finite());
    }

    #[test]
    fn htree_structure(levels in 1u32..10) {
        let tree = generate_htree(&HTreeSpec::with_levels(levels));
        prop_assert!(tree.validate().is_ok());
        prop_assert_eq!(tree.sink_count(), 1usize << levels);
        // Sinks all carry the same capacitance.
        for id in tree.sinks() {
            match tree.node(id).kind {
                NodeKind::Sink { capacitance, .. } => prop_assert_eq!(capacitance, 12.0),
                _ => prop_assert!(false, "non-sink from sinks()"),
            }
        }
    }
}
