//! Phase-level profile of a single statistical DP run on the scaling
//! bench's exact configuration (`random("scale", N, 77)` subdivided at
//! 500 µm, Heterogeneous WID, 2P, jobs = 1).
//!
//! Usage:
//! `cargo run --release -p varbuf-bench --example profile_stat [N] [--json FILE]`
//!
//! This is the tool behind the phase tables in EXPERIMENTS.md: it prints
//! the `phase_summary` split (merge/prune/buffering/bounds) plus the
//! generated/pruned/retired counters for one warm run, which the
//! aggregate medians in BENCH_dp.json deliberately hide. With `--json`
//! the same attribution is written as a machine-readable report
//! (ci.sh's smoke gate validates it).

use varbuf_bench::harness::JsonReport;
use varbuf_core::dp::{optimize_with_rule, DpOptions};
use varbuf_core::prune::TwoParam;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args
        .get(1)
        .filter(|s| !s.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let tree = generate_benchmark(&BenchmarkSpec::random("scale", n, 77)).subdivided(500.0);
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
    let rule = TwoParam::default();
    let opts = DpOptions::default();
    // One warm-up run so the bound memo and allocator are primed, then
    // the measured run.
    let _ = optimize_with_rule(&tree, &model, VariationMode::WithinDie, &rule, &opts)
        .expect("warm-up run");
    let t = std::time::Instant::now();
    let r = optimize_with_rule(&tree, &model, VariationMode::WithinDie, &rule, &opts)
        .expect("profiled run");
    let wall = t.elapsed();
    println!("N={n}: wall {:.2} ms", wall.as_secs_f64() * 1e3);
    println!("phases: {}", r.stats.phase_summary());
    println!(
        "generated {}, pruned {} (bound {}, dominance {}), lishi-skipped {}, peak list {}",
        r.stats.solutions_generated,
        r.stats.solutions_pruned,
        r.stats.pruned_by_bound,
        r.stats.pruned_by_dominance,
        r.stats.lishi_skipped,
        r.stats.max_solutions_per_node,
    );
    println!(
        "root RAT {:.1} ± {:.2} ps ({} terms), {} buffers",
        r.root_rat.mean(),
        r.root_rat.std_dev(),
        r.root_rat.term_count(),
        r.assignment.len(),
    );
    if let Some(path) = json_path {
        let mut report = JsonReport::new();
        report.meta_str("profile", "stat");
        report.meta_num("sinks", n as f64);
        report.meta_num("wall_ns", wall.as_nanos() as f64);
        report.meta_num("wire_ns", r.stats.wire_time.as_nanos() as f64);
        report.meta_num("merge_ns", r.stats.merge_time.as_nanos() as f64);
        report.meta_num("prune_ns", r.stats.prune_time.as_nanos() as f64);
        report.meta_num("buffer_ns", r.stats.buffer_time.as_nanos() as f64);
        report.meta_num("bound_ns", r.stats.bound_time.as_nanos() as f64);
        report.meta_num("nodes_processed", r.stats.nodes_processed as f64);
        report.meta_num("solutions_generated", r.stats.solutions_generated as f64);
        report.meta_num("solutions_pruned", r.stats.solutions_pruned as f64);
        report.meta_num("pruned_by_bound", r.stats.pruned_by_bound as f64);
        report.meta_num("pruned_by_dominance", r.stats.pruned_by_dominance as f64);
        report.meta_num("lishi_skipped", r.stats.lishi_skipped as f64);
        report.meta_num(
            "max_solutions_per_node",
            r.stats.max_solutions_per_node as f64,
        );
        report.meta_num("jobs_requested", r.stats.jobs_requested as f64);
        report.meta_num("jobs_effective", r.stats.jobs_effective as f64);
        report.write(&path).expect("write profile JSON");
        println!("phase attribution written to {}", path.display());
    }
}
