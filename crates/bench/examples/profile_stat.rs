//! Phase-level profile of a single statistical DP run on the scaling
//! bench's exact configuration (`random("scale", N, 77)` subdivided at
//! 500 µm, Heterogeneous WID, 2P, jobs = 1).
//!
//! Usage: `cargo run --release -p varbuf-bench --example profile_stat [N]`
//!
//! This is the tool behind the phase tables in EXPERIMENTS.md: it prints
//! the `phase_summary` split (merge/prune/buffering/bounds) plus the
//! generated/pruned/retired counters for one warm run, which the
//! aggregate medians in BENCH_dp.json deliberately hide.

use varbuf_core::dp::{optimize_with_rule, DpOptions};
use varbuf_core::prune::TwoParam;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let tree = generate_benchmark(&BenchmarkSpec::random("scale", n, 77)).subdivided(500.0);
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
    let rule = TwoParam::default();
    let opts = DpOptions::default();
    // One warm-up run so the bound memo and allocator are primed, then
    // the measured run.
    let _ = optimize_with_rule(&tree, &model, VariationMode::WithinDie, &rule, &opts)
        .expect("warm-up run");
    let t = std::time::Instant::now();
    let r = optimize_with_rule(&tree, &model, VariationMode::WithinDie, &rule, &opts)
        .expect("profiled run");
    let wall = t.elapsed();
    println!("N={n}: wall {:.2} ms", wall.as_secs_f64() * 1e3);
    println!("phases: {}", r.stats.phase_summary());
    println!(
        "generated {}, pruned {} (bound {}, dominance {}), peak list {}",
        r.stats.solutions_generated,
        r.stats.solutions_pruned,
        r.stats.pruned_by_bound,
        r.stats.pruned_by_dominance,
        r.stats.max_solutions_per_node,
    );
    println!(
        "root RAT {:.1} ± {:.2} ps ({} terms), {} buffers",
        r.root_rat.mean(),
        r.root_rat.std_dev(),
        r.root_rat.terms().len(),
        r.assignment.len(),
    );
}
