//! Benchmark of yield analysis: canonical-form propagation of a fixed
//! design versus per-sample Monte Carlo re-evaluation — quantifying why
//! the analytic first-order model matters (Figure 6's cost side).

use varbuf_bench::harness::{black_box, BenchConfig, Bencher};
use varbuf_core::driver::{optimize_statistical, Options};
use varbuf_core::yield_eval::YieldEvaluator;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

fn main() {
    let tree = generate_benchmark(&BenchmarkSpec::random("yield", 256, 5)).subdivided(500.0);
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
    let wid = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
        .expect("optimization succeeds");
    let evaluator = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);

    let mut group = Bencher::new("yield_eval");
    group.bench("analytic_rat_form", || {
        evaluator.rat_form(black_box(&wid.assignment))
    });
    let mut slow = Bencher::new("yield_eval").with_config(BenchConfig::slow());
    slow.bench("monte_carlo_100", || {
        evaluator.monte_carlo(black_box(&wid.assignment), 100, 3)
    });
    group.finish();
}
