//! Criterion benchmark of yield analysis: canonical-form propagation of a
//! fixed design versus per-sample Monte Carlo re-evaluation — quantifying
//! why the analytic first-order model matters (Figure 6's cost side).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use varbuf_core::driver::{optimize_statistical, Options};
use varbuf_core::yield_eval::YieldEvaluator;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

fn bench_yield(c: &mut Criterion) {
    let tree = generate_benchmark(&BenchmarkSpec::random("yield", 256, 5)).subdivided(500.0);
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
    let wid = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
        .expect("optimization succeeds");
    let evaluator = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);

    let mut group = c.benchmark_group("yield_eval");
    group.bench_function("analytic_rat_form", |b| {
        b.iter(|| evaluator.rat_form(black_box(&wid.assignment)))
    });
    group.sample_size(10);
    group.bench_function("monte_carlo_100", |b| {
        b.iter(|| evaluator.monte_carlo(black_box(&wid.assignment), 100, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_yield);
criterion_main!(benches);
