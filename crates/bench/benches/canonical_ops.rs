//! Criterion micro-benchmarks of the canonical-form kernel — the ablation
//! called out in DESIGN.md for the sparse-representation decision: linear
//! combination, covariance and statistical min across term counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use varbuf_stats::{stat_min, CanonicalForm, SourceId};

fn form(terms: usize, offset: u32, stride: u32) -> CanonicalForm {
    CanonicalForm::with_terms(
        100.0,
        (0..terms as u32)
            .map(|i| (SourceId(offset + i * stride), 0.3 + f64::from(i % 5)))
            .collect(),
    )
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonical");
    for &k in &[8usize, 64, 512, 2048] {
        // Half-overlapping source sets: the realistic DP merge case.
        let a = form(k, 0, 2);
        let b = form(k, 1, 2);
        group.bench_with_input(BenchmarkId::new("linear_combination", k), &k, |bch, _| {
            bch.iter(|| black_box(&a).linear_combination(1.0, black_box(&b), -0.5))
        });
        group.bench_with_input(BenchmarkId::new("covariance", k), &k, |bch, _| {
            bch.iter(|| black_box(&a).covariance(black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("stat_min", k), &k, |bch, _| {
            bch.iter(|| stat_min(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("prob_greater", k), &k, |bch, _| {
            bch.iter(|| black_box(&a).prob_greater(black_box(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
