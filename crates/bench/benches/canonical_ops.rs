//! Micro-benchmarks of the canonical-form kernel — the ablation called
//! out in DESIGN.md for the sparse-representation decision: linear
//! combination, covariance and statistical min across term counts.

use varbuf_bench::harness::{black_box, Bencher};
use varbuf_stats::{stat_min, CanonicalForm, SourceId};

fn form(terms: usize, offset: u32, stride: u32) -> CanonicalForm {
    CanonicalForm::with_terms(
        100.0,
        (0..terms as u32)
            .map(|i| (SourceId(offset + i * stride), 0.3 + f64::from(i % 5)))
            .collect(),
    )
}

fn main() {
    let mut group = Bencher::new("canonical");
    for &k in &[8usize, 64, 512, 2048] {
        // Half-overlapping source sets: the realistic DP merge case.
        let a = form(k, 0, 2);
        let b = form(k, 1, 2);
        group.bench(&format!("linear_combination/{k}"), || {
            black_box(&a).linear_combination(1.0, black_box(&b), -0.5)
        });
        group.bench(&format!("covariance/{k}"), || {
            black_box(&a).covariance(black_box(&b))
        });
        group.bench(&format!("stat_min/{k}"), || {
            stat_min(black_box(&a), black_box(&b))
        });
        group.bench(&format!("prob_greater/{k}"), || {
            black_box(&a).prob_greater(black_box(&b))
        });
    }
    group.finish();
}
