//! Micro-benchmarks of the pruning rules (the Table 2 story at the
//! operation level): prune and merge cost of 2P/1P (linear) versus 4P
//! (quadratic) on synthetic candidate lists.

use varbuf_bench::harness::{black_box, Bencher};
use varbuf_core::prune::{prune_solutions, FourParam, OneParam, PruningRule, TwoParam};
use varbuf_core::solution::StatSolution;
use varbuf_stats::{CanonicalForm, SourceId};

/// Builds `n` synthetic solutions along a noisy Pareto front with a few
/// correlated variation terms each.
fn synthetic_solutions(n: usize) -> Vec<StatSolution> {
    (0..n)
        .map(|i| {
            let f = i as f64;
            let load = CanonicalForm::with_terms(
                10.0 + f,
                vec![(SourceId(0), 0.5), (SourceId(1 + (i % 7) as u32), 0.8)],
            );
            // Mostly increasing RAT with dips so pruning has work to do.
            let rat = CanonicalForm::with_terms(
                -1000.0 + 2.0 * f - if i % 5 == 0 { 15.0 } else { 0.0 },
                vec![(SourceId(0), 1.0), (SourceId(8 + (i % 5) as u32), 1.2)],
            );
            StatSolution::new(load, rat)
        })
        .collect()
}

fn main() {
    let mut group = Bencher::new("prune");
    for &n in &[64usize, 256, 1024] {
        let sols = synthetic_solutions(n);
        let rules: Vec<(&str, Box<dyn PruningRule>)> = vec![
            ("2P", Box::new(TwoParam::default())),
            ("2P-0.9", Box::new(TwoParam::new(0.9, 0.9))),
            ("1P", Box::new(OneParam::default())),
            ("4P", Box::new(FourParam::default())),
        ];
        for (name, rule) in rules {
            group.bench(&format!("{name}/{n}"), || {
                prune_solutions(black_box(rule.as_ref()), black_box(sols.clone()))
            });
        }
    }
    group.finish();
}
