//! Overhead of the resource governor: the same DP run strict (the legacy
//! path) versus governed with an unlimited budget — the difference is the
//! pure bookkeeping cost of budget checks, memory accounting and
//! admission control. A third variant runs 4P under a solution budget it
//! cannot meet, pricing the full fallback cascade.

use std::sync::Arc;
use varbuf_bench::harness::{black_box, BenchConfig, Bencher};
use varbuf_core::dp::{optimize_governed, optimize_with_rule, DpOptions};
use varbuf_core::governor::Budget;
use varbuf_core::prune::{FourParam, TwoParam};
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

fn main() {
    let mut group = Bencher::new("degradation").with_config(BenchConfig::slow());
    for &sinks in &[32usize, 96] {
        let tree = generate_benchmark(&BenchmarkSpec::random("deg", sinks, 13)).subdivided(500.0);
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
        let opts = DpOptions::default();

        // Baseline: the strict engine, exactly what optimize_statistical runs.
        group.bench(&format!("strict-2P/{sinks}"), || {
            optimize_with_rule(
                black_box(&tree),
                &model,
                VariationMode::WithinDie,
                &TwoParam::default(),
                &opts,
            )
            .expect("strict completes")
        });

        // Governed, unlimited budget: same work plus governor bookkeeping.
        // The gap to strict-2P is the governor's overhead.
        let unlimited = Budget::unlimited();
        group.bench(&format!("governed-2P-unlimited/{sinks}"), || {
            optimize_governed(
                black_box(&tree),
                &model,
                VariationMode::WithinDie,
                Arc::new(TwoParam::default()),
                &opts,
                &unlimited,
            )
            .expect("governed completes")
        });

        // Governed 4P under real pressure: the budget forces the fallback
        // cascade, pricing degradation itself (strict 4P would abort here).
        let tight = Budget {
            soft_solutions: 150,
            hard_solutions: 600,
            ..Budget::unlimited()
        };
        let capped = DpOptions {
            max_solutions_per_node: 150,
            ..DpOptions::default()
        };
        group.bench(&format!("governed-4P-pressured/{sinks}"), || {
            let r = optimize_governed(
                black_box(&tree),
                &model,
                VariationMode::WithinDie,
                Arc::new(FourParam::default()),
                &capped,
                &tight,
            )
            .expect("governed absorbs the pressure");
            assert!(r.degradation.degraded(), "budget must actually bind");
            r
        });
    }
    group.finish();
}
