//! Benchmark of the end-to-end DP across benchmark sizes — the measured
//! backbone of Figure 5's linearity claim — plus the batch-throughput
//! comparison for the parallel engine (`--jobs 1` vs `--jobs 4`).
//!
//! All DP timings route through [`optimize_batch`], so the wall-clock
//! columns reflect the engine the CLI and experiment binaries actually
//! run; with one worker the batch path is the plain sequential loop, so
//! `--jobs 1` reproduces the historical numbers. On top of the printed
//! tables the run writes machine-readable `BENCH_dp.json` at the repo
//! root (median ns, solutions/sec, peak list size per bench, plus the
//! thread count the speedup must be judged against).
//!
//! `VARBUF_BENCH_SMOKE=1` shrinks sizes and budgets to a CI-friendly
//! smoke run.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use varbuf_bench::harness::{alloc_counter, black_box, BenchConfig, Bencher, JsonReport};
use varbuf_core::det::{optimize_deterministic, optimize_deterministic_with};
use varbuf_core::dp::DpOptions;
use varbuf_core::governor::Budget;
use varbuf_core::hier::HierOptions;
use varbuf_core::pool::{default_jobs, optimize_batch, optimize_batch_forced, BatchRequest};
use varbuf_core::prune::TwoParam;
use varbuf_core::service::{EditOp, OptimizeParams, Request, Response, Service, ServiceConfig};
use varbuf_core::RequestError;
use varbuf_rctree::generate::{generate_benchmark, generate_htree, BenchmarkSpec, HTreeSpec};
use varbuf_rctree::RoutingTree;
use varbuf_stats::{
    prob_greater_normal, CanonicalForm, FormBatch, ScatterPlanCache, SourceId, TermInterner,
};
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

/// Counting allocator: lets the bench assert the DP hot path stays
/// (nearly) allocation-free per candidate — see `assert_alloc_budget`.
#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

fn request<'a>(tree: &'a RoutingTree, model: &'a ProcessModel, jobs: usize) -> BatchRequest<'a> {
    let mut req = BatchRequest::new(
        tree,
        model,
        VariationMode::WithinDie,
        Arc::new(TwoParam::default()),
    );
    req.strict = true;
    req.options = DpOptions {
        jobs,
        ..DpOptions::default()
    };
    req
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .map_or(1, |n: usize| if n == 0 { default_jobs() } else { n });
    let smoke = std::env::var_os("VARBUF_BENCH_SMOKE").is_some();

    let mut report = JsonReport::new();
    report.meta_str("bench", "scaling");
    report.meta_num("threads_available", default_jobs() as f64);
    report.meta_num("jobs", jobs as f64);
    report.meta_num("smoke", u32::from(smoke).into());

    // Per-size scaling, Figure 5 style.
    let sizes: &[usize] = if smoke {
        &[64]
    } else {
        &[128, 256, 512, 1024, 4096]
    };
    let config = if smoke {
        BenchConfig {
            warmup: Duration::from_millis(10),
            measure: Duration::from_millis(200),
            max_iters: 5,
        }
    } else {
        BenchConfig::slow()
    };
    let mut group = Bencher::new("dp_scaling").with_config(config);
    let mut last_ratio = f64::NAN;
    let mut last_ratio_sinks = 0usize;
    for &sinks in sizes {
        let tree = generate_benchmark(&BenchmarkSpec::random("scale", sinks, 77)).subdivided(500.0);
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);

        let reqs = vec![request(&tree, &model, jobs)];
        // Warm run: collects the DP counters for annotation and doubles
        // as the allocation-budget probe. The engine's recycling pool is
        // per-run, so a single run is already steady state; the only
        // per-candidate allocations left in the hot path are the trace
        // `Arc`s recording lineage (one per merge pair / buffered
        // candidate), far below one allocation per generated solution.
        // Prime the per-thread bounds memo first: the deterministic
        // anchor runs allocate freely but happen once per (tree, model)
        // — the probe below must measure the steady-state DP.
        drop(optimize_batch(&reqs, 1));
        let allocs_before = alloc_counter::alloc_count();
        let stats = optimize_batch(&reqs, 1)
            .pop()
            .expect("one request")
            .expect("completes")
            .result
            .stats;
        let run_allocs = alloc_counter::alloc_count() - allocs_before;
        assert!(
            run_allocs < 2 * stats.solutions_generated as u64,
            "DP hot path regressed to per-candidate heap traffic: \
             {run_allocs} allocations for {} generated solutions at N={sinks}",
            stats.solutions_generated
        );
        let stat_median = group
            .bench(&format!("2P-WID/{sinks}"), || {
                optimize_batch(black_box(&reqs), 1)
            })
            .annotate_dp(stats.solutions_generated, stats.max_solutions_per_node)
            .median;
        let det_median = group
            .bench(&format!("deterministic/{sinks}"), || {
                optimize_deterministic(black_box(&tree), model.library()).expect("completes")
            })
            .median;
        // The statistical/deterministic gap this PR attacks: median
        // wall-clock ratio at identical tree size (ISSUE 3's figure of
        // merit; the committed baseline was ~29x at N=1024).
        last_ratio = stat_median.as_secs_f64() / det_median.as_secs_f64().max(f64::MIN_POSITIVE);
        last_ratio_sinks = sinks;
        report.meta_num(&format!("stat_vs_det_ratio_{sinks}"), last_ratio);
    }
    group.finish();
    report.record_group("dp_scaling", group.results());
    // The headline ratio always aliases the largest size *actually run*
    // (a smoke run shrinks the size list), so the size it came from is
    // recorded alongside — consumers must not assume N=1024.
    report.meta_num("stat_vs_det_ratio", last_ratio);
    report.meta_num("stat_vs_det_ratio_sinks", last_ratio_sinks as f64);
    println!("stat vs det ratio (N={last_ratio_sinks}): {last_ratio:.2}x");

    // Bound-guided pruning: the same 2P-WID run with the deterministic
    // bound filter on vs off at the largest scaling size, plus the
    // counter ratios that attribute the pruning work (predictive
    // retirement vs dominance sweeps). The per-thread bounds memo means
    // repeat iterations pay the two deterministic anchor runs once.
    // Pinned at 1024 (not the new 4096 tail of the scaling sweep) so the
    // bound_guided / lishi rows keep their historical size and remain
    // comparable across releases.
    let bg_sinks = if smoke { sizes[0] } else { 1024 };
    let bg_tree =
        generate_benchmark(&BenchmarkSpec::random("scale", bg_sinks, 77)).subdivided(500.0);
    let bg_model = ProcessModel::paper_defaults(bg_tree.bounding_box(), SpatialKind::Heterogeneous);
    let on_reqs = vec![request(&bg_tree, &bg_model, jobs)];
    let mut off_reqs = vec![request(&bg_tree, &bg_model, jobs)];
    off_reqs[0].options.use_bounds = false;
    let bg_stats = optimize_batch(&on_reqs, 1)
        .pop()
        .expect("one request")
        .expect("completes")
        .result
        .stats;
    let generated = bg_stats.solutions_generated.max(1) as f64;
    // What the engine actually ran with, next to what was asked for —
    // the clamp to available threads is invisible in the request.
    report.meta_num("jobs_requested", bg_stats.jobs_requested as f64);
    report.meta_num("jobs_effective", bg_stats.jobs_effective as f64);
    report.meta_num("pruned_by_bound", bg_stats.pruned_by_bound as f64);
    report.meta_num("pruned_by_dominance", bg_stats.pruned_by_dominance as f64);
    report.meta_num(
        "pruned_by_bound_ratio",
        bg_stats.pruned_by_bound as f64 / generated,
    );
    report.meta_num(
        "pruned_by_dominance_ratio",
        bg_stats.pruned_by_dominance as f64 / generated,
    );
    report.meta_num("bound_pass_ns", bg_stats.bound_time.as_nanos() as f64);
    let mut bg = Bencher::new("bound_guided").with_config(config);
    let on_median = bg
        .bench(&format!("bounds_on/{bg_sinks}"), || {
            optimize_batch(black_box(&on_reqs), 1)
        })
        .annotate_dp(
            bg_stats.solutions_generated,
            bg_stats.max_solutions_per_node,
        )
        .median;
    let off_median = bg
        .bench(&format!("bounds_off/{bg_sinks}"), || {
            optimize_batch(black_box(&off_reqs), 1)
        })
        .median;
    bg.finish();
    report.record_group("bound_guided", bg.results());
    let bound_speedup = off_median.as_secs_f64() / on_median.as_secs_f64().max(f64::MIN_POSITIVE);
    report.meta_num("bound_guided_speedup", bound_speedup);
    println!(
        "bound-guided pruning at N={bg_sinks}: {bound_speedup:.2}x \
         ({:.1}% of candidates retired by bound, {:.1}% by dominance)",
        100.0 * bg_stats.pruned_by_bound as f64 / generated,
        100.0 * bg_stats.pruned_by_dominance as f64 / generated,
    );

    // Li–Shi generation skip: the same 2P-WID run (mean-keyed, so the
    // skip arms) with `use_lishi` on — the default — vs off, and the
    // deterministic DP both ways. The skip is output-identical by the
    // oracle suites, so any delta here is pure avoided generation work.
    report.meta_num("lishi_skipped", bg_stats.lishi_skipped as f64);
    let mut ls_off_reqs = vec![request(&bg_tree, &bg_model, jobs)];
    ls_off_reqs[0].options.use_lishi = false;
    let mut ls = Bencher::new("lishi").with_config(config);
    let ls_on = ls
        .bench(&format!("stat_on/{bg_sinks}"), || {
            optimize_batch(black_box(&on_reqs), 1)
        })
        .median;
    let ls_off = ls
        .bench(&format!("stat_off/{bg_sinks}"), || {
            optimize_batch(black_box(&ls_off_reqs), 1)
        })
        .median;
    let det_on = ls
        .bench(&format!("det_on/{bg_sinks}"), || {
            optimize_deterministic_with(black_box(&bg_tree), bg_model.library(), true)
                .expect("completes")
        })
        .median;
    let det_off = ls
        .bench(&format!("det_off/{bg_sinks}"), || {
            optimize_deterministic_with(black_box(&bg_tree), bg_model.library(), false)
                .expect("completes")
        })
        .median;
    ls.finish();
    report.record_group("lishi", ls.results());
    let lishi_stat = ls_off.as_secs_f64() / ls_on.as_secs_f64().max(f64::MIN_POSITIVE);
    let lishi_det = det_off.as_secs_f64() / det_on.as_secs_f64().max(f64::MIN_POSITIVE);
    report.meta_num("lishi_speedup_stat", lishi_stat);
    report.meta_num("lishi_speedup_det", lishi_det);
    println!(
        "Li-Shi skip at N={bg_sinks}: stat {lishi_stat:.2}x, det {lishi_det:.2}x \
         ({} generations skipped)",
        bg_stats.lishi_skipped
    );

    // Lazy wire propagation: deferred affine wire transforms (the
    // default) vs the eager per-segment kernels, on subdivision-heavy
    // trees where the deferral pays — `subdiv` segments per ~1000 µm
    // Steiner edge means the eager path rewrites every RAT term
    // `subdiv` times per chain while the lazy path folds the whole
    // chain into one materialization at the next merge/buffer. The
    // oracle suite (`tests/lazy_wire_oracle.rs`) pins the two paths
    // equal-objective, so the delta here is pure avoided term traffic.
    // The heaviest configuration runs last so the headline
    // `lazy_wire_speedup` aliases it.
    let wire_cfgs: &[(usize, usize)] = if smoke {
        &[(16, 64)]
    } else {
        &[(4, 256), (16, 256), (4, 1024), (16, 1024)]
    };
    let mut wh = Bencher::new("wire_heavy").with_config(config);
    let mut lazy_speedup = f64::NAN;
    let mut lazy_label = (0usize, 0usize);
    for &(subdiv, sinks) in wire_cfgs {
        // The random benchmarks place sinks on a 1000·√N µm die, so a
        // typical Steiner edge runs ~1000 µm; this pitch splits it into
        // ~`subdiv` buffer-candidate segments.
        let pitch = 1000.0 / subdiv as f64;
        let tree =
            generate_benchmark(&BenchmarkSpec::random("wire-heavy", sinks, 77)).subdivided(pitch);
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
        let on_reqs = vec![request(&tree, &model, jobs)];
        let mut off_reqs = vec![request(&tree, &model, jobs)];
        off_reqs[0].options.use_lazy_wire = false;
        let probe = optimize_batch(&on_reqs, 1)
            .pop()
            .expect("one request")
            .expect("completes")
            .result
            .stats;
        let on_median = wh
            .bench(&format!("lazy_on/{subdiv}x{sinks}"), || {
                optimize_batch(black_box(&on_reqs), 1)
            })
            .annotate_dp(probe.solutions_generated, probe.max_solutions_per_node)
            .median;
        let off_median = wh
            .bench(&format!("lazy_off/{subdiv}x{sinks}"), || {
                optimize_batch(black_box(&off_reqs), 1)
            })
            .median;
        lazy_speedup = off_median.as_secs_f64() / on_median.as_secs_f64().max(f64::MIN_POSITIVE);
        lazy_label = (subdiv, sinks);
        report.meta_num(&format!("lazy_wire_speedup_{subdiv}x{sinks}"), lazy_speedup);
        // The wire/merge split the deferral changes — from the lazy
        // probe, so `wire_ns` covers defers + materializations.
        report.meta_num(
            &format!("wire_pass_ns_{subdiv}x{sinks}"),
            probe.wire_time.as_nanos() as f64,
        );
    }
    wh.finish();
    report.record_group("wire_heavy", wh.results());
    report.meta_num("lazy_wire_speedup", lazy_speedup);
    println!(
        "lazy wire propagation at {}x{}: {lazy_speedup:.2}x over eager per-segment kernels",
        lazy_label.0, lazy_label.1
    );

    // Batch throughput: independent nets fanned across the worker pool.
    let (net_count, net_sinks) = if smoke { (3, 24) } else { (8, 64) };
    let trees: Vec<RoutingTree> = (0..net_count)
        .map(|i| {
            generate_benchmark(&BenchmarkSpec::random("batch", net_sinks, 100 + i as u64))
                .subdivided(500.0)
        })
        .collect();
    let models: Vec<ProcessModel> = trees
        .iter()
        .map(|t| ProcessModel::paper_defaults(t.bounding_box(), SpatialKind::Heterogeneous))
        .collect();
    let reqs: Vec<BatchRequest> = trees
        .iter()
        .zip(&models)
        .map(|(t, m)| request(t, m, 1))
        .collect();

    let sample: Vec<_> = optimize_batch(&reqs, 1)
        .into_iter()
        .map(|r| r.expect("completes").result.stats)
        .collect();
    let total_generated: usize = sample.iter().map(|s| s.solutions_generated).sum();
    let peak_list = sample
        .iter()
        .map(|s| s.max_solutions_per_node)
        .max()
        .unwrap_or(0);

    let mut batch = Bencher::new("batch_throughput").with_config(config);
    let mut medians = [Duration::ZERO; 2];
    for (slot, workers) in [1usize, 4].into_iter().enumerate() {
        // Forced: the multi-worker slot must exercise the pool even on a
        // host with fewer threads, or the reported "speedup" silently
        // compares jobs=1 against itself (threads_available in the meta
        // says how to judge the number).
        medians[slot] = batch
            .bench(&format!("{net_count}nets/jobs{workers}"), || {
                optimize_batch_forced(black_box(&reqs), workers)
            })
            .annotate_dp(total_generated, peak_list)
            .median;
    }
    batch.finish();
    report.record_group("batch_throughput", batch.results());

    let speedup = medians[0].as_secs_f64() / medians[1].as_secs_f64().max(f64::MIN_POSITIVE);
    report.meta_num("batch_speedup_jobs4_vs_jobs1", speedup);
    println!(
        "batch throughput: jobs=4 vs jobs=1 speedup {speedup:.2}x \
         ({net_count} requests on {} hardware threads)",
        default_jobs()
    );

    // Microbenches of the statistical kernels the DP spends its time
    // in: the sparse linear combination (one per wire/buffer step), its
    // in-place variant, covariance both per-pair (sparse merge walk)
    // and batched over a SoA column layout, and the tightness
    // probability underneath every statistical min.
    let kernel_config = if smoke {
        BenchConfig {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(50),
            max_iters: 10_000,
        }
    } else {
        BenchConfig::default()
    };
    let mut kern = Bencher::new("canonical_kernels").with_config(kernel_config);
    // Two overlapping ~32-term forms over a 48-source universe — the
    // shape of a WID solution's RAT form on a mid-size net.
    let universe: Vec<SourceId> = (0..48u32).map(SourceId).collect();
    let form_a = CanonicalForm::with_terms(
        -120.0,
        (0..32u32)
            .map(|i| (SourceId(i), 0.25 + f64::from(i) * 0.01))
            .collect(),
    );
    let form_b = CanonicalForm::with_terms(
        -95.0,
        (16..48u32)
            .map(|i| (SourceId(i), 0.75 - f64::from(i) * 0.01))
            .collect(),
    );
    kern.bench("linear_combination/32t", || {
        form_a.linear_combination(1.0, &form_b, -0.5)
    });
    let mut dest = CanonicalForm::constant(0.0);
    kern.bench("lin_comb_into/32t", || {
        dest.lin_comb_into(&form_a, 1.0, &form_b, -0.5);
        dest.mean()
    });
    let interner = TermInterner::new(universe.iter().copied());
    let mut batch = FormBatch::new(&interner);
    let forms: Vec<CanonicalForm> = (0..64u32)
        .map(|k| {
            CanonicalForm::with_terms(
                f64::from(k),
                (0..48u32)
                    .filter(|i| (i + k) % 3 != 0)
                    .map(|i| (SourceId(i), 0.1 + f64::from(i % 7) * 0.05))
                    .collect(),
            )
        })
        .collect();
    for f in &forms {
        batch.push(&interner, f);
    }
    let probe = varbuf_stats::ColumnForm::from_canonical(&interner, &form_a);
    let mut cov_out = Vec::new();
    let lane_cov = kern
        .bench("batched_covariance/64x48", || {
            batch.covariances_with_into(&probe, &mut cov_out);
            cov_out[0]
        })
        .median;
    let sparse_cov = kern
        .bench("sparse_covariance/64x48", || {
            forms.iter().map(|f| f.covariance(&form_a)).sum::<f64>()
        })
        .median;
    kern.bench("prob_greater_normal", || {
        prob_greater_normal(
            black_box(-100.0),
            black_box(-101.5),
            black_box(2.0),
            black_box(2.5),
            black_box(0.35),
        )
    });
    kern.finish();
    report.record_group("canonical_kernels", kern.results());

    // Lane-blocked batch kernels against their sparse per-form
    // references — the microbench delta the fixed-stride SoA layout is
    // accountable to. Both sides compute the same 64 moments; the lane
    // side sweeps zero-padded `8·⌈48/8⌉` rows branch-free, the sparse
    // side walks each form's live terms.
    let mut lanes = Bencher::new("lane_kernels").with_config(kernel_config);
    let mut var_out = Vec::new();
    let lane_var = lanes
        .bench("lane_variance/64x48", || {
            batch.variances_into(&mut var_out);
            var_out[0]
        })
        .median;
    let sparse_var = lanes
        .bench("sparse_variance/64x48", || {
            forms.iter().map(CanonicalForm::variance).sum::<f64>()
        })
        .median;
    let mut env_lo = Vec::new();
    let mut env_hi = Vec::new();
    lanes.bench("lane_envelopes/64x48", || {
        batch.envelopes_into(3.0, &mut env_lo, &mut env_hi);
        env_lo[0]
    });
    // Batch building through the scatter-plan interner: the 64 forms
    // share 3 distinct term sets, so after the first iteration almost
    // every push is a single hash probe. The accumulated counters feed
    // the hit/miss meta the observability satellite reports on.
    let mut plan_cache = ScatterPlanCache::new();
    lanes.bench("push_interned/64x48", || {
        let mut scratch = FormBatch::new(&interner);
        for f in &forms {
            scratch.push_interned(&interner, &mut plan_cache, f);
        }
        scratch.len()
    });
    lanes.finish();
    report.record_group("lane_kernels", lanes.results());
    report.meta_num("scatter_plan_hits", plan_cache.hits() as f64);
    report.meta_num("scatter_plan_misses", plan_cache.misses() as f64);
    let var_speedup = sparse_var.as_secs_f64() / lane_var.as_secs_f64().max(f64::MIN_POSITIVE);
    let cov_speedup = sparse_cov.as_secs_f64() / lane_cov.as_secs_f64().max(f64::MIN_POSITIVE);
    report.meta_num("lane_variance_speedup", var_speedup);
    report.meta_num("lane_covariance_speedup", cov_speedup);
    println!(
        "lane kernels vs sparse references (64x48): variance {var_speedup:.2}x, \
         covariance {cov_speedup:.2}x"
    );

    // Resident service: per-request round-trip latency (p50/p99 over
    // individual samples, not Bencher medians), sustained throughput,
    // and the admission-control shed count under a deliberate overload
    // burst. The session stays open across all samples, so the model's
    // device-characterization memo is warm — the quantity the service
    // exists to amortize.
    let (svc_sinks, svc_requests) = if smoke { (12usize, 40usize) } else { (48, 400) };
    // Cache off: with the solution cache armed every repeat opt on an
    // unedited session is a pure replay, which would silently turn this
    // latency metric into the incremental benchmark below. Pinning it
    // cold keeps p50/p99/throughput comparable across releases.
    let mut service = Service::new(ServiceConfig {
        use_cache: false,
        ..ServiceConfig::default()
    });
    let svc_tree = generate_benchmark(&BenchmarkSpec::random("serve", svc_sinks, 11));
    let svc_cost = svc_tree.len() as u64;
    let handle = match service.execute(Request::Open {
        tree: Box::new(svc_tree),
        spatial: SpatialKind::Heterogeneous,
    }) {
        Response::Opened { handle, .. } => handle,
        other => panic!("service open failed: {other}"),
    };
    let opt = || Request::Optimize {
        handle,
        params: OptimizeParams::default(),
    };
    let mut latencies = Vec::with_capacity(svc_requests);
    let span = Instant::now();
    for _ in 0..svc_requests {
        let t = Instant::now();
        let response = service.execute(opt());
        latencies.push(t.elapsed());
        assert!(
            !response.is_error(),
            "clean service run errored: {response}"
        );
    }
    let elapsed = span.elapsed();
    latencies.sort_unstable();
    let p50 = latencies[svc_requests / 2];
    let p99 = latencies[(svc_requests * 99 / 100).min(svc_requests - 1)];
    let throughput = svc_requests as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    report.meta_num("service_p50_ns", p50.as_nanos() as f64);
    report.meta_num("service_p99_ns", p99.as_nanos() as f64);
    report.meta_num("service_throughput_rps", throughput);

    // Overload burst: room for 4 requests, 12 submitted — the rest must
    // come back `overloaded`, and the drain must answer every one.
    let mut burst = Service::new(ServiceConfig {
        queue_hard_cost: svc_cost * 4,
        queue_soft_cost: svc_cost * 2,
        ..ServiceConfig::default()
    });
    let burst_tree = generate_benchmark(&BenchmarkSpec::random("serve", svc_sinks, 11));
    let burst_handle = match burst.execute(Request::Open {
        tree: Box::new(burst_tree),
        spatial: SpatialKind::Heterogeneous,
    }) {
        Response::Opened { handle, .. } => handle,
        other => panic!("service open failed: {other}"),
    };
    for _ in 0..12 {
        burst.submit(Request::Optimize {
            handle: burst_handle,
            params: OptimizeParams::default(),
        });
    }
    let burst_responses = burst.drain(jobs);
    let shed = burst_responses
        .iter()
        .filter(|r| matches!(r, Response::Error(RequestError::Overloaded { .. })))
        .count();
    assert_eq!(burst_responses.len(), 12, "drain must answer every request");
    assert!(shed > 0, "overload burst never shed");
    report.meta_num("service_shed", shed as f64);

    let mut svc_bench = Bencher::new("service").with_config(kernel_config);
    svc_bench.bench(&format!("execute_opt/{svc_sinks}sinks"), || {
        service.execute(opt())
    });
    svc_bench.finish();
    report.record_group("service", svc_bench.results());
    println!(
        "service: p50 {:.3} ms, p99 {:.3} ms, {throughput:.0} req/s, {shed} shed in burst",
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
    );

    // Incremental re-optimization: the edit→opt loop the session cache
    // exists for. Two services over identical N-sink trees — one with
    // the default (armed) cache, one pinned cold — replay the same
    // single-sink RAT-edit script; the warm side recomputes only the
    // dirtied root path, the cold side reruns the full DP. The median
    // ratio is the headline `incremental_speedup`, and the warm side's
    // hit/miss counters give `cache_hit_rate` (results are byte-
    // identical either way — `tests/incremental.rs` is the oracle).
    let inc_sinks = if smoke { 96usize } else { 1024 };
    let inc_iters = if smoke { 5usize } else { 9 };
    let inc_tree = generate_benchmark(&BenchmarkSpec::random("incr", inc_sinks, 23));
    let edit_sink = inc_tree.sinks().last().expect("generated tree has sinks").0;
    let open_session = |use_cache: bool| {
        let mut svc = Service::new(ServiceConfig {
            use_cache,
            ..ServiceConfig::default()
        });
        let handle = match svc.execute(Request::Open {
            tree: Box::new(inc_tree.clone()),
            spatial: SpatialKind::Heterogeneous,
        }) {
            Response::Opened { handle, .. } => handle,
            other => panic!("service open failed: {other}"),
        };
        // Prime run: charges the model memo on both sides and, on the
        // warm side, populates the cache the edits will dirty.
        let warmup = svc.execute(Request::Optimize {
            handle,
            params: OptimizeParams::default(),
        });
        assert!(!warmup.is_error(), "prime run errored: {warmup}");
        (svc, handle)
    };
    let (mut warm_svc, warm_handle) = open_session(true);
    let (mut cold_svc, cold_handle) = open_session(false);
    let edit_opt_median = |svc: &mut Service, handle| {
        let mut samples = Vec::with_capacity(inc_iters);
        for i in 0..inc_iters {
            let edited = svc.execute(Request::Edit {
                handle,
                op: EditOp::SinkRat {
                    node: edit_sink,
                    required_arrival: 250.0 + i as f64 * 7.0,
                },
            });
            assert!(!edited.is_error(), "edit errored: {edited}");
            let t = Instant::now();
            let response = svc.execute(Request::Optimize {
                handle,
                params: OptimizeParams::default(),
            });
            samples.push(t.elapsed());
            assert!(!response.is_error(), "incremental opt errored: {response}");
        }
        samples.sort_unstable();
        samples[inc_iters / 2]
    };
    let warm_median = edit_opt_median(&mut warm_svc, warm_handle);
    let cold_median = edit_opt_median(&mut cold_svc, cold_handle);
    let incremental_speedup =
        cold_median.as_secs_f64() / warm_median.as_secs_f64().max(f64::MIN_POSITIVE);
    let warm_stats = warm_svc.stats();
    let cache_hit_rate = warm_stats.cache_hits as f64
        / (warm_stats.cache_hits + warm_stats.cache_misses).max(1) as f64;
    report.meta_num("incremental_speedup", incremental_speedup);
    report.meta_num("cache_hit_rate", cache_hit_rate);
    let mut inc_bench = Bencher::new("incremental").with_config(kernel_config);
    inc_bench.bench(&format!("edit_opt_warm/{inc_sinks}sinks"), || {
        let edited = warm_svc.execute(Request::Edit {
            handle: warm_handle,
            op: EditOp::SinkRat {
                node: edit_sink,
                required_arrival: 321.5,
            },
        });
        assert!(!edited.is_error(), "edit errored: {edited}");
        warm_svc.execute(Request::Optimize {
            handle: warm_handle,
            params: OptimizeParams::default(),
        })
    });
    inc_bench.finish();
    report.record_group("incremental", inc_bench.results());
    println!(
        "incremental: warm {:.3} ms vs cold {:.3} ms at N={inc_sinks} \
         ({incremental_speedup:.1}x, hit rate {cache_hit_rate:.3})",
        warm_median.as_secs_f64() * 1e3,
        cold_median.as_secs_f64() * 1e3,
    );

    // Clock-tree pipeline at full-chip scale: symmetric H-trees through
    // the hierarchical engine (cut-node decomposition + streamed
    // frontiers) under a governed memory budget — the paper's
    // footnote-4 capacity configuration (> 64 000 sinks) as a recurring
    // workload. Wall-clock and the frontier ledger's byte peak are the
    // recorded observables. Smoke shrinks the trees but keeps the field
    // names, so the schema gate is mode-independent; the `cts_*` labels
    // name the full-size configuration.
    let cts_budget_bytes: usize = if smoke { 64 << 20 } else { 512 << 20 };
    let cts_budget = Budget {
        soft_mem_bytes: cts_budget_bytes,
        hard_mem_bytes: cts_budget_bytes.saturating_mul(4),
        ..Budget::unlimited()
    };
    let cts_config = BenchConfig {
        warmup: Duration::ZERO,
        measure: Duration::from_millis(1),
        max_iters: 1,
    };
    let mut cts = Bencher::new("clock_cts").with_config(cts_config);
    // Smoke trees are far below the default cut threshold; shrink it so
    // the decomposition (and its ledger accounting) actually runs.
    let hier_opts = if smoke {
        HierOptions {
            cut_nodes: 128,
            ..HierOptions::default()
        }
    } else {
        HierOptions::default()
    };
    let mut peak_chunk_bytes = 0usize;
    for (field, levels) in [
        ("cts_16k_wall_ms", if smoke { 8u32 } else { 14 }),
        ("cts_64k_wall_ms", if smoke { 10 } else { 16 }),
    ] {
        let tree = generate_htree(&HTreeSpec::with_levels(levels));
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
        let mut req = BatchRequest::new(
            &tree,
            &model,
            VariationMode::WithinDie,
            Arc::new(TwoParam::default()),
        )
        .with_hier(hier_opts);
        req.budget = cts_budget;
        let reqs = vec![req];
        // Probe run: collects the decomposition's ledger peak (the
        // governed report carries it) and asserts the budgeted run
        // actually completed.
        let probe = optimize_batch(&reqs, 1)
            .pop()
            .expect("one request")
            .expect("completes within the governed budget");
        peak_chunk_bytes = peak_chunk_bytes.max(probe.degradation.peak_chunk_bytes);
        let sinks = tree.sink_count();
        let median = cts
            .bench(&format!("hier_2p_wid/{sinks}"), || {
                optimize_batch(black_box(&reqs), 1)
            })
            .annotate_dp(
                probe.result.stats.solutions_generated,
                probe.result.stats.max_solutions_per_node,
            )
            .median;
        report.meta_num(field, median.as_secs_f64() * 1e3);
    }
    cts.finish();
    report.record_group("clock_cts", cts.results());
    report.meta_num("peak_chunk_bytes", peak_chunk_bytes as f64);
    report.meta_num("cts_budget_bytes", cts_budget_bytes as f64);
    assert!(
        peak_chunk_bytes <= cts_budget_bytes,
        "parked-frontier peak {peak_chunk_bytes} B exceeds the governed \
         soft memory budget {cts_budget_bytes} B"
    );
    println!("clock cts: peak chunk bytes {peak_chunk_bytes} within budget {cts_budget_bytes}");

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dp.json");
    report.write(&path).expect("write BENCH_dp.json");
    println!("wrote {}", path.display());
}
