//! Benchmark of the end-to-end DP across benchmark sizes — the measured
//! backbone of Figure 5's linearity claim — plus the batch-throughput
//! comparison for the parallel engine (`--jobs 1` vs `--jobs 4`).
//!
//! All DP timings route through [`optimize_batch`], so the wall-clock
//! columns reflect the engine the CLI and experiment binaries actually
//! run; with one worker the batch path is the plain sequential loop, so
//! `--jobs 1` reproduces the historical numbers. On top of the printed
//! tables the run writes machine-readable `BENCH_dp.json` at the repo
//! root (median ns, solutions/sec, peak list size per bench, plus the
//! thread count the speedup must be judged against).
//!
//! `VARBUF_BENCH_SMOKE=1` shrinks sizes and budgets to a CI-friendly
//! smoke run.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use varbuf_bench::harness::{black_box, BenchConfig, Bencher, JsonReport};
use varbuf_core::det::optimize_deterministic;
use varbuf_core::dp::DpOptions;
use varbuf_core::pool::{default_jobs, optimize_batch, BatchRequest};
use varbuf_core::prune::TwoParam;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_rctree::RoutingTree;
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

fn request<'a>(tree: &'a RoutingTree, model: &'a ProcessModel, jobs: usize) -> BatchRequest<'a> {
    let mut req = BatchRequest::new(
        tree,
        model,
        VariationMode::WithinDie,
        Arc::new(TwoParam::default()),
    );
    req.strict = true;
    req.options = DpOptions {
        jobs,
        ..DpOptions::default()
    };
    req
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .map_or(1, |n: usize| if n == 0 { default_jobs() } else { n });
    let smoke = std::env::var_os("VARBUF_BENCH_SMOKE").is_some();

    let mut report = JsonReport::new();
    report.meta_str("bench", "scaling");
    report.meta_num("threads_available", default_jobs() as f64);
    report.meta_num("jobs", jobs as f64);
    report.meta_num("smoke", u32::from(smoke).into());

    // Per-size scaling, Figure 5 style.
    let sizes: &[usize] = if smoke { &[64] } else { &[128, 256, 512, 1024] };
    let config = if smoke {
        BenchConfig {
            warmup: Duration::from_millis(10),
            measure: Duration::from_millis(200),
            max_iters: 5,
        }
    } else {
        BenchConfig::slow()
    };
    let mut group = Bencher::new("dp_scaling").with_config(config);
    for &sinks in sizes {
        let tree = generate_benchmark(&BenchmarkSpec::random("scale", sinks, 77)).subdivided(500.0);
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);

        let reqs = vec![request(&tree, &model, jobs)];
        let stats = optimize_batch(&reqs, 1)
            .pop()
            .expect("one request")
            .expect("completes")
            .result
            .stats;
        group
            .bench(&format!("2P-WID/{sinks}"), || {
                optimize_batch(black_box(&reqs), 1)
            })
            .annotate_dp(stats.solutions_generated, stats.max_solutions_per_node);
        group.bench(&format!("deterministic/{sinks}"), || {
            optimize_deterministic(black_box(&tree), model.library()).expect("completes")
        });
    }
    group.finish();
    report.record_group("dp_scaling", group.results());

    // Batch throughput: independent nets fanned across the worker pool.
    let (net_count, net_sinks) = if smoke { (3, 24) } else { (8, 64) };
    let trees: Vec<RoutingTree> = (0..net_count)
        .map(|i| {
            generate_benchmark(&BenchmarkSpec::random("batch", net_sinks, 100 + i as u64))
                .subdivided(500.0)
        })
        .collect();
    let models: Vec<ProcessModel> = trees
        .iter()
        .map(|t| ProcessModel::paper_defaults(t.bounding_box(), SpatialKind::Heterogeneous))
        .collect();
    let reqs: Vec<BatchRequest> = trees
        .iter()
        .zip(&models)
        .map(|(t, m)| request(t, m, 1))
        .collect();

    let sample: Vec<_> = optimize_batch(&reqs, 1)
        .into_iter()
        .map(|r| r.expect("completes").result.stats)
        .collect();
    let total_generated: usize = sample.iter().map(|s| s.solutions_generated).sum();
    let peak_list = sample
        .iter()
        .map(|s| s.max_solutions_per_node)
        .max()
        .unwrap_or(0);

    let mut batch = Bencher::new("batch_throughput").with_config(config);
    let mut medians = [Duration::ZERO; 2];
    for (slot, workers) in [1usize, 4].into_iter().enumerate() {
        medians[slot] = batch
            .bench(&format!("{net_count}nets/jobs{workers}"), || {
                optimize_batch(black_box(&reqs), workers)
            })
            .annotate_dp(total_generated, peak_list)
            .median;
    }
    batch.finish();
    report.record_group("batch_throughput", batch.results());

    let speedup = medians[0].as_secs_f64() / medians[1].as_secs_f64().max(f64::MIN_POSITIVE);
    report.meta_num("batch_speedup_jobs4_vs_jobs1", speedup);
    println!(
        "batch throughput: jobs=4 vs jobs=1 speedup {speedup:.2}x \
         ({net_count} requests on {} hardware threads)",
        default_jobs()
    );

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dp.json");
    report.write(&path).expect("write BENCH_dp.json");
    println!("wrote {}", path.display());
}
