//! Benchmark of the end-to-end DP across benchmark sizes — the measured
//! backbone of Figure 5's linearity claim.

use varbuf_bench::harness::{black_box, BenchConfig, Bencher};
use varbuf_core::det::optimize_deterministic;
use varbuf_core::dp::{optimize_with_rule, DpOptions};
use varbuf_core::prune::TwoParam;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

fn main() {
    let mut group = Bencher::new("dp_scaling").with_config(BenchConfig::slow());
    for &sinks in &[128usize, 256, 512, 1024] {
        let tree = generate_benchmark(&BenchmarkSpec::random("scale", sinks, 77)).subdivided(500.0);
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);

        group.bench(&format!("2P-WID/{sinks}"), || {
            optimize_with_rule(
                black_box(&tree),
                &model,
                VariationMode::WithinDie,
                &TwoParam::default(),
                &DpOptions::default(),
            )
            .expect("completes")
        });
        group.bench(&format!("deterministic/{sinks}"), || {
            optimize_deterministic(black_box(&tree), model.library()).expect("completes")
        });
    }
    group.finish();
}
