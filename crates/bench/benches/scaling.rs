//! Criterion benchmark of the end-to-end DP across benchmark sizes — the
//! measured backbone of Figure 5's linearity claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use varbuf_core::det::optimize_deterministic;
use varbuf_core::dp::{optimize_with_rule, DpOptions};
use varbuf_core::prune::TwoParam;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_scaling");
    group.sample_size(10);
    for &sinks in &[128usize, 256, 512, 1024] {
        let tree = generate_benchmark(&BenchmarkSpec::random("scale", sinks, 77)).subdivided(500.0);
        let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);

        group.bench_with_input(BenchmarkId::new("2P-WID", sinks), &tree, |b, tree| {
            b.iter(|| {
                optimize_with_rule(
                    black_box(tree),
                    &model,
                    VariationMode::WithinDie,
                    &TwoParam::default(),
                    &DpOptions::default(),
                )
                .expect("completes")
            })
        });
        group.bench_with_input(BenchmarkId::new("deterministic", sinks), &tree, |b, tree| {
            b.iter(|| optimize_deterministic(black_box(tree), model.library()).expect("completes"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
