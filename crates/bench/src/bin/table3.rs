//! Table 3 — RAT optimization under the **heterogeneous** spatial
//! variation model.
//!
//! For every benchmark, the NOM / D2D / WID designs are scored under the
//! full within-die silicon model: the 95%-timing-yield RAT (with the
//! relative degradation versus WID in parentheses) and two yield columns —
//! the paper's target (WID mean relaxed by 10%) and the sharper "WID
//! spec" target (the RAT the WID design certifies at 95% yield).

use varbuf_bench::print_rat_table;
use varbuf_variation::SpatialKind;

fn main() {
    print_rat_table(SpatialKind::Heterogeneous, "Table 3", "heterogeneous");
    println!("\npaper reference (heterogeneous): NOM avg -9.7% / 45.0% yield,");
    println!("  D2D avg -8.4% / 47.0% yield, WID 100%/100%");
}
