//! Figure 3 — normal-distribution approximation of the buffer intrinsic
//! delay `T_b`.
//!
//! The paper runs SPICE (65 nm BSIM) over a 10%-σ `L_eff` spread, fits
//! the first-order model by least squares, and shows the fitted normal
//! PDF tracking the extracted distribution. Our SPICE substitute is the
//! analytic nonlinear power-law device (see `varbuf-variation`); the flow
//! is otherwise identical.

use varbuf_stats::norm_pdf;
use varbuf_variation::characterize::{characterize_device, NonlinearDevice};

fn main() {
    let device = NonlinearDevice::default_65nm();
    let result = characterize_device(&device, 0.10, 50_000, 42).expect("characterization succeeds");
    let delay = &result.delay;

    println!("Figure 3: normal approximation of T_b (nonlinear device, 10% sigma L_eff)");
    println!(
        "fit: T_b ≈ {:.3} + {:.3}·X  (R² = {:.5})",
        delay.nominal, delay.sensitivity, delay.r_squared
    );
    println!(
        "extracted: mean {:.3} ps, sigma {:.3} ps  (nominal {:.1} ps)",
        delay.empirical_mean, delay.empirical_std, device.delay_nominal
    );
    println!(
        "max |empirical - fitted| PDF deviation: {:.5} ({:.1}% of peak)\n",
        delay.max_pdf_deviation(),
        100.0
            * delay.max_pdf_deviation()
            * delay.sensitivity.abs()
            * (2.0 * std::f64::consts::PI).sqrt()
    );

    println!(
        "{:>10}  {:<32} | {:<32}",
        "T_b (ps)", "extracted density", "fitted normal"
    );
    let peak = norm_pdf(0.0) / delay.sensitivity.abs();
    for (x, d) in delay.histogram.density_points() {
        let fitted = delay.fitted_pdf(x);
        let bar = |v: f64| "#".repeat(((v / peak) * 32.0).round().clamp(0.0, 32.0) as usize);
        println!("{x:>10.2}  {:<32} | {:<32}", bar(d), bar(fitted));
    }
    println!("\npaper reference: 'the two PDFs are very close to each other'");

    // Also report the capacitance fit, which the paper fits alongside.
    let cap = &result.capacitance;
    println!(
        "\nC_b fit: {:.3} + {:.3}·X fF (R² = {:.6})",
        cap.nominal, cap.sensitivity, cap.r_squared
    );
}
