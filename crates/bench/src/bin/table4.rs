//! Table 4 — RAT optimization under the **homogeneous** spatial
//! variation model (same experiment as Table 3, uniform spatial budget
//! and the milder radial systematic pattern).

use varbuf_bench::print_rat_table;
use varbuf_variation::SpatialKind;

fn main() {
    print_rat_table(SpatialKind::Homogeneous, "Table 4", "homogeneous");
    println!("\npaper reference (homogeneous): NOM avg -4.8% / 45.0% yield,");
    println!("  D2D avg -4.0% / 47.0% yield, WID 100%/100%");
}
